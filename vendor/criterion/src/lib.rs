//! Offline, in-tree micro-benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the `criterion` API subset the workspace's benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up once, then runs batches of
//! iterations until either `sample_size` samples are collected or the
//! per-benchmark time budget is spent, and reports min / mean / max
//! nanoseconds per iteration on stdout. No statistics beyond that — this
//! harness exists to keep `cargo bench` runnable and comparable across
//! PRs, not to replace criterion's analysis.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, collecting per-iteration samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up (also primes caches the body builds lazily).
        black_box(f());
        let deadline = Instant::now() + self.budget;
        while self.samples.len() < self.target_samples && Instant::now() < deadline {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// The harness: collects and prints benchmark results.
pub struct Criterion {
    sample_size: usize,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            budget: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        run_one(&name, self.sample_size, self.budget, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let budget = self.budget;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            budget,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Extends the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, self.budget, f);
        self
    }

    /// Ends the group (printing is immediate; this is for API parity).
    pub fn finish(self) {}
}

fn run_one(name: &str, target_samples: usize, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        target_samples,
        budget,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<56} no samples (body never called iter?)");
        return;
    }
    let n = b.samples.len() as u128;
    let total: u128 = b.samples.iter().map(Duration::as_nanos).sum();
    let min = b.samples.iter().map(Duration::as_nanos).min().unwrap_or(0);
    let max = b.samples.iter().map(Duration::as_nanos).max().unwrap_or(0);
    println!(
        "{name:<56} {:>12} /iter  (min {}, max {}, {} samples)",
        fmt_ns(total / n),
        fmt_ns(min),
        fmt_ns(max),
        n
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(5), "5 ns");
        assert_eq!(fmt_ns(5_000), "5.000 µs");
        assert_eq!(fmt_ns(5_000_000), "5.000 ms");
        assert_eq!(fmt_ns(5_000_000_000), "5.000 s");
    }
}
