//! Offline, in-tree replacement for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the exact API subset the workspace uses — `StdRng`,
//! `SmallRng`, [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer ranges, and [`Rng::gen_bool`] — on top of xoshiro256++ seeded
//! through SplitMix64 (the same construction the real `rand` family uses
//! for its small RNGs).
//!
//! Streams are deterministic per seed but are **not** byte-compatible with
//! upstream `rand`; nothing in this workspace depends on upstream streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array for our RNGs).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Values a range can be sampled from (sealed to the integer types the
/// workspace uses).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform sample in `[0, span)` (`span > 0`) via rejection.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // The workspace only samples spans that fit in u64.
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX % span + 1) % span.max(1);
    loop {
        let v = rng.next_u64();
        if v <= zone || zone == u64::MAX {
            return (v % span) as u128;
        }
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0,1]");
        // 53 random mantissa bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the crate's standard RNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // All-zero state is a fixed point of xoshiro; perturb it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Small-footprint RNG; identical to [`StdRng`] here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| a.gen_range(0..100u32) == c.gen_range(0..100u32));
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5..=5u8);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn uniformity_rough() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket = {b}");
        }
    }
}
