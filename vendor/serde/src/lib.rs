//! Offline, in-tree facade for `serde`.
//!
//! The build environment has no crates.io access. The workspace uses serde
//! only as decorative `#[derive(Serialize, Deserialize)]` on plain data
//! types — no code serializes through serde (the experiment telemetry
//! writes JSON by hand). This facade keeps those derives compiling: the
//! traits are markers and the derive macros expand to nothing.
//!
//! If real serialization is ever needed, replace this crate with upstream
//! serde; the derive sites are already in place.

#![forbid(unsafe_code)]

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
