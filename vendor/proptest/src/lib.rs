//! Offline, in-tree property-testing harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the `proptest` API subset the workspace uses: the [`proptest!`] test
//! macro, [`Strategy`] with `prop_map`, integer-range and tuple strategies,
//! [`Just`], [`prop_oneof!`], `collection::vec`, and the `prop_assert*`
//! macros.
//!
//! Semantics: each property runs a fixed number of deterministic cases
//! (seeded from the test name), with **no shrinking** — a failing case
//! reports its case index and seed so it can be replayed. That is weaker
//! than upstream proptest but preserves the tests' meaning and their
//! determinism in CI.

#![forbid(unsafe_code)]

/// A failed property case (returned by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Generation strategies: deterministic samplers.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            // 53 random mantissa bits → uniform in [0, 1), scaled to the range.
            let unit = (rand::RngCore::next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)*) = self;
                    ($($name.sample(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            (**self).sample(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner internals used by the [`proptest!`] expansion.
pub mod test_runner {
    use super::TestCaseError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Cases per property (fixed; deterministic).
    pub const CASES: u64 = 96;

    /// Runs `f` for [`CASES`] deterministic cases seeded from `name`.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, reporting its index and seed.
    pub fn run(name: &str, f: impl Fn(&mut StdRng) -> Result<(), TestCaseError>) {
        let base: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        for case in 0..CASES {
            let seed = base.wrapping_add(case);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err(e) = f(&mut rng) {
                panic!("property {name} failed at case {case} (seed {seed:#x}): {e}");
            }
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)*
                    #[allow(unused_mut)]
                    let mut case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
}

/// Asserts inside a property, failing the case (not panicking) on false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_maps_compose(x in (0u8..4, 1u8..=2).prop_map(|(a, b)| a + b)) {
            prop_assert!((1..=5).contains(&x), "x = {x}");
        }

        #[test]
        fn vectors_respect_bounds(v in crate::collection::vec(0u8..10, 0..7)) {
            prop_assert!(v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(42u8), 0u8..10]) {
            prop_assert!(x == 42u8 || x < 10u8);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        crate::test_runner::run("always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }
}
