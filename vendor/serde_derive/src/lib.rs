//! No-op `Serialize` / `Deserialize` derives for the offline serde facade.
//!
//! The derives expand to nothing: the facade's traits are markers, and no
//! code in the workspace serializes through serde. This keeps the existing
//! decorative derive sites compiling without crates.io access.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
