//! Integration: every theorem and worked example of the paper, checked
//! through the public facade.

use quorumcc::core::certificates;
use quorumcc::core::enumerate::{CorpusConfig, Property};
use quorumcc::core::verifier::ClauseSet;
use quorumcc::core::{
    battery, minimal_dynamic_relation, minimal_static_relation, DependencyRelation, RelOrder,
};
use quorumcc::model::spec::ExploreBounds;
use quorumcc::model::EventClass;
use quorumcc_adts::{DoubleBuffer, FlagSet, Prom, Queue};

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

fn small_corpus(seed: u64) -> CorpusConfig {
    CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 2_000,
        sample_ops: 4,
        seed,
        bounds: bounds(),
        threads: 1,
    }
}

fn ec(op: &'static str, res: &'static str) -> EventClass {
    EventClass::new(op, res)
}

/// All four paper certificates hold.
#[test]
fn all_certificates_hold() {
    for cert in certificates::all() {
        assert!(cert.holds, "{cert}");
    }
}

/// Theorem 6 on the Queue: the exact four pairs from Theorem 11's table.
#[test]
fn theorem_6_queue_table() {
    let s = minimal_static_relation::<Queue>(bounds());
    assert!(s.exhaustive);
    let expect = DependencyRelation::from_pairs([
        ("Enq", ec("Deq", "Ok")),
        ("Enq", ec("Deq", "Empty")),
        ("Deq", ec("Enq", "Ok")),
        ("Deq", ec("Deq", "Ok")),
    ]);
    assert_eq!(s.relation, expect);
}

/// §4: the PROM's static relation is ≥H plus exactly the two extra pairs
/// the paper names.
#[test]
fn prom_static_is_hybrid_plus_two_pairs() {
    let s = minimal_static_relation::<Prom>(bounds());
    let expected =
        certificates::prom_hybrid_relation().union(&certificates::prom_static_extra_pairs());
    assert_eq!(s.relation, expected, "got:\n{}", s.relation);
}

/// Theorem 10 on the DoubleBuffer: exactly the paper's five pairs.
#[test]
fn theorem_10_doublebuffer_table() {
    let d = minimal_dynamic_relation::<DoubleBuffer>(bounds());
    assert_eq!(d.relation, certificates::doublebuffer_dynamic_relation());
}

/// Theorem 4 across the battery: `≥S` verifies as a hybrid dependency
/// relation for every paper type.
#[test]
fn theorem_4_static_relations_are_hybrid_relations() {
    macro_rules! check {
        ($ty:ty, $seed:expr) => {
            let s = minimal_static_relation::<$ty>(bounds());
            let clauses = ClauseSet::extract::<$ty>(Property::Hybrid, &small_corpus($seed), &[]);
            clauses
                .verify(&s.relation)
                .unwrap_or_else(|cx| panic!("{}: Theorem 4 failed:\n{cx}", <$ty>::NAME));
        };
    }
    use quorumcc::model::Sequential;
    check!(Queue, 1);
    check!(Prom, 2);
    check!(DoubleBuffer, 3);
}

/// Theorem 5 via the clause machinery: ≥H fails *static* verification for
/// the PROM (seeded with the paper's witness so the refutation is
/// deterministic).
#[test]
fn theorem_5_hybrid_relation_fails_static_clauses() {
    // The witness history from the certificate, reconstructed as a seed.
    let mut h: quorumcc::model::BHistory<_, _> = quorumcc::model::BHistory::new();
    use quorumcc_adts::prom::{PromInv, PromRes};
    h.begin(0).begin(1).begin(2).begin(3);
    h.op(0, PromInv::Write(7), PromRes::Ok);
    h.commit(0);
    h.op(2, PromInv::Seal, PromRes::Ok);
    h.commit(2);
    h.op(3, PromInv::Read, PromRes::Item(7));

    let clauses = ClauseSet::extract::<Prom>(Property::Static, &small_corpus(5), &[h]);
    assert!(
        clauses
            .verify(&certificates::prom_hybrid_relation())
            .is_err(),
        "≥H must not satisfy the static obligations (Theorem 5)"
    );
    // While the static relation does.
    let s = minimal_static_relation::<Prom>(bounds());
    clauses.verify(&s.relation).expect("≥S satisfies Static(T)");
}

/// Theorem 12 via the clause machinery: ≥D fails *hybrid* verification for
/// the DoubleBuffer.
#[test]
fn theorem_12_dynamic_relation_fails_hybrid_clauses() {
    let d = minimal_dynamic_relation::<DoubleBuffer>(bounds());
    let clauses = ClauseSet::extract::<DoubleBuffer>(Property::Hybrid, &small_corpus(7), &[]);
    assert!(clauses.verify(&d.relation).is_err(), "Theorem 12");
}

/// §4 FlagSet: both paper relations verify; the base alone does not.
#[test]
fn flagset_dual_relations_verify() {
    let witness = certificates::flagset_dual_witness();
    let clauses = ClauseSet::extract::<FlagSet>(
        Property::Hybrid,
        &CorpusConfig {
            exhaustive_ops: 2,
            max_actions: 3,
            samples: 3_000,
            sample_ops: 5,
            seed: 17,
            bounds: bounds(),
            threads: 1,
        },
        &[witness],
    );
    assert!(clauses
        .verify(&certificates::flagset_hybrid_relation_direct())
        .is_ok());
    assert!(clauses
        .verify(&certificates::flagset_hybrid_relation_transitive())
        .is_ok());
    assert!(clauses
        .verify(&certificates::flagset_base_relation())
        .is_err());
    // Non-uniqueness: at least two minimal relations, differing in exactly
    // one pair each way.
    let minimal = clauses.minimal_relations(8);
    assert!(minimal.len() >= 2, "found {}", minimal.len());
    let (a, b) = (&minimal[0], &minimal[1]);
    assert_eq!(a.difference(b).len(), 1);
    assert_eq!(b.difference(a).len(), 1);
}

/// Figure 1-2's orderings per type, as computed by the battery.
#[test]
fn figure_1_2_orderings() {
    assert_eq!(
        battery::report::<Queue>(bounds()).static_vs_dynamic(),
        RelOrder::Incomparable
    );
    assert_eq!(
        battery::report::<quorumcc_adts::Register>(bounds()).static_vs_dynamic(),
        RelOrder::LeftWeaker
    );
    assert_eq!(
        battery::report::<quorumcc_adts::Counter>(bounds()).static_vs_dynamic(),
        RelOrder::Equal
    );
}

/// Uniqueness claims: for static and dynamic atomicity the minimal
/// relation is unique (Theorems 6, 10), checked through the hitting-set
/// machinery on the Queue.
#[test]
fn static_and_dynamic_minimal_relations_are_unique() {
    for (prop, expect) in [
        (
            Property::Static,
            minimal_static_relation::<Queue>(bounds()).relation,
        ),
        (
            Property::Dynamic,
            minimal_dynamic_relation::<Queue>(bounds()).relation,
        ),
    ] {
        let clauses = ClauseSet::extract::<Queue>(prop, &small_corpus(23), &[]);
        let minimal = clauses.minimal_relations(8);
        assert_eq!(minimal.len(), 1, "{prop:?} minimal relations not unique");
        assert_eq!(minimal[0], expect, "{prop:?} mismatch");
    }
}
