//! Integration: the full pipeline for several data types — sequential
//! spec → computed dependency relation → optimized quorum assignment →
//! simulated replicated cluster under faults → captured history →
//! atomicity check.

use quorumcc::core::{minimal_dynamic_relation, minimal_static_relation, DependencyRelation};
use quorumcc::model::{Classified, Enumerable};
use quorumcc::prelude::*;
use quorumcc::quorum::threshold;
use quorumcc::replication::workload::{generate, WorkloadSpec};
use quorumcc_adts::account::AccountInv;
use quorumcc_adts::counter::CounterInv;
use quorumcc_adts::queue::QueueInv;
use quorumcc_adts::register::RegisterInv;
use quorumcc_adts::{Account, Counter, Queue, Register};
use rand::Rng;

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

/// Runs the pipeline for one type/mode/workload and asserts atomicity.
fn pipeline<S: Classified + Enumerable>(
    mode: Mode,
    workload: Vec<Vec<Transaction<S::Inv>>>,
    seed: u64,
    faults: FaultPlan,
) -> ClientStats {
    // 1. Compute the mode's dependency relation from the spec.
    let rel = match mode {
        Mode::StaticTs | Mode::Hybrid => minimal_static_relation::<S>(bounds()).relation,
        Mode::Dynamic2pl => minimal_static_relation::<S>(bounds())
            .relation
            .union(&minimal_dynamic_relation::<S>(bounds()).relation),
    };
    // 2. Derive an optimized threshold assignment over 5 sites.
    let ops = S::op_classes();
    let evs = S::event_classes();
    let ta = threshold::optimize(&rel, 5, &ops, &evs, &[]).expect("assignment exists");
    ta.validate(&rel).expect("optimizer output validates");
    // 3. Run the cluster and check the captured history.
    let report = RunBuilder::<S>::new(5)
        .protocol(ProtocolConfig::new(Protocol::new(mode, rel)).txn_retries(5))
        .thresholds(ta)
        .faults(faults)
        .seed(seed)
        .workload(workload)
        .run()
        .expect("valid run configuration");
    report
        .check_atomicity(bounds())
        .unwrap_or_else(|o| panic!("{mode}: non-atomic history for {o}"));
    report.stats()
}

#[test]
fn queue_pipeline_all_modes() {
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let w = generate(
            WorkloadSpec {
                clients: 3,
                txns_per_client: 3,
                ops_per_txn: 2,
                objects: 1,
                seed: 31,
            },
            |rng| {
                if rng.gen_bool(0.6) {
                    QueueInv::Enq(rng.gen_range(1..=2))
                } else {
                    QueueInv::Deq
                }
            },
        );
        let totals = pipeline::<Queue>(mode, w, 31, FaultPlan::none());
        assert!(totals.committed > 0, "{mode}: nothing committed");
    }
}

#[test]
fn register_pipeline_with_crash() {
    let mut faults = FaultPlan::none();
    faults.crash(2, 0, 500);
    let w = generate(
        WorkloadSpec {
            clients: 3,
            txns_per_client: 3,
            ops_per_txn: 2,
            objects: 1,
            seed: 37,
        },
        |rng| {
            if rng.gen_bool(0.5) {
                RegisterInv::Write(rng.gen_range(1..=2))
            } else {
                RegisterInv::Read
            }
        },
    );
    let totals = pipeline::<Register>(Mode::Hybrid, w, 37, faults);
    assert!(totals.committed > 0);
}

#[test]
fn counter_pipeline_concurrent_adds_commute() {
    // All Adds: under hybrid, no Add/Add conflicts — zero conflict aborts.
    let w = generate(
        WorkloadSpec {
            clients: 4,
            txns_per_client: 3,
            ops_per_txn: 2,
            objects: 1,
            seed: 41,
        },
        |rng| CounterInv::Add(if rng.gen_bool(0.5) { 1 } else { -1 }),
    );
    let totals = pipeline::<Counter>(Mode::Hybrid, w, 41, FaultPlan::none());
    assert_eq!(totals.aborted_conflict, 0, "Adds must never conflict");
    assert_eq!(totals.committed, 12);
}

#[test]
fn account_pipeline_audits() {
    let w = generate(
        WorkloadSpec {
            clients: 3,
            txns_per_client: 3,
            ops_per_txn: 2,
            objects: 1,
            seed: 43,
        },
        |rng| match rng.gen_range(0..4) {
            0..=1 => AccountInv::Deposit(rng.gen_range(1..=2)),
            2 => AccountInv::Withdraw(1),
            _ => AccountInv::Balance,
        },
    );
    let totals = pipeline::<Account>(Mode::Hybrid, w, 43, FaultPlan::none());
    assert!(totals.committed > 0);
}

#[test]
fn optimizer_output_always_validates_across_types() {
    fn check<S: Classified + Enumerable>() {
        let rel = minimal_static_relation::<S>(bounds()).relation;
        for n in [1u32, 2, 3, 5, 8] {
            let ta = threshold::optimize(&rel, n, &S::op_classes(), &S::event_classes(), &[])
                .expect("assignment");
            ta.validate(&rel).expect("validates");
        }
    }
    check::<Queue>();
    check::<Register>();
    check::<Counter>();
    check::<Account>();
    check::<quorumcc_adts::Prom>();
}

/// Smaller relation ⇒ no larger optimal quorums, for every priority target
/// (the availability half of the paper's thesis, as a monotonicity law).
#[test]
fn weaker_relations_never_need_bigger_quorums() {
    let hybrid = quorumcc::core::certificates::prom_hybrid_relation();
    let static_rel = minimal_static_relation::<quorumcc_adts::Prom>(bounds()).relation;
    assert!(hybrid.is_subset(&static_rel));
    let ops = quorumcc_adts::Prom::op_classes();
    let evs = quorumcc_adts::Prom::event_classes();
    for target in &ops {
        let h = threshold::optimize(&hybrid, 5, &ops, &evs, &[target]).unwrap();
        let s = threshold::optimize(&static_rel, 5, &ops, &evs, &[target]).unwrap();
        assert!(
            h.op_size_worst(target, &evs) <= s.op_size_worst(target, &evs),
            "{target}: hybrid needs more than static?!"
        );
    }
}

/// Theorem 11 operationally: running the *dynamic* (2PL) discipline with
/// only `≥S` as the lock relation omits the Enq/Enq conflict, so some run
/// commits two precedes-unordered enqueues — which strong dynamic
/// atomicity rejects (both serialization orders must be equivalent).
///
/// (Theorem 12 has no such operational witness in this implementation:
/// lock-based protocols pin the precedes order at commit time, so `≥D`
/// with locks implements dynamic atomicity — which *implies* hybrid. The
/// theorem's adversarial commit orders arise only for pure timestamp
/// mechanisms without locks; see EXPERIMENTS.md.)
#[test]
fn theorem_11_shows_up_operationally() {
    let s_rel: DependencyRelation = minimal_static_relation::<Queue>(bounds()).relation;
    let d_rel = s_rel.union(&minimal_dynamic_relation::<Queue>(bounds()).relation);
    let workload = |seed| {
        generate(
            WorkloadSpec {
                clients: 4,
                txns_per_client: 3,
                ops_per_txn: 1,
                objects: 1,
                seed,
            },
            |rng| QueueInv::Enq(rng.gen_range(1..=2)),
        )
    };
    // With only ≥S (no Enq ≥ Enq lock), concurrent enqueues commit
    // unordered by `precedes` — strong dynamic atomicity rejects that.
    // The commit delay models atomic-commitment latency, widening the
    // window in which two transactions fully overlap.
    let mut violated = false;
    let mut breaking_seed = 0;
    for seed in 0..40u64 {
        let report = RunBuilder::<Queue>::new(3)
            .protocol(
                ProtocolConfig::new(Protocol::new(Mode::Dynamic2pl, s_rel.clone()))
                    .commit_delay(40),
            )
            .seed(seed)
            .workload(workload(seed))
            .run()
            .unwrap();
        if report.check_atomicity(bounds()).is_err() {
            violated = true;
            breaking_seed = seed;
            break;
        }
    }
    assert!(
        violated,
        "≥S under the dynamic discipline never misbehaved (Theorem 11 predicts it must)"
    );
    // The proper dynamic relation fixes exactly that run: the Enq ≥ Enq
    // lock serializes the enqueues.
    let report = RunBuilder::<Queue>::new(3)
        .protocol(
            ProtocolConfig::new(Protocol::new(Mode::Dynamic2pl, d_rel))
                .commit_delay(40)
                .txn_retries(5),
        )
        .seed(breaking_seed)
        .workload(workload(breaking_seed))
        .run()
        .unwrap();
    report
        .check_atomicity(bounds())
        .expect("≥D must repair the violating run");
}

/// Theorem 5 at the cluster layer: the static-timestamp *implementation*
/// equipped with only `≥H` stays observably safe for the PROM -- its
/// conservative begin-order conflict checks fire through the transitive
/// `Write ≥H Seal/Ok` pair (a late write always either sees the seal in
/// its replay, answering Disabled, or aborts TooLate on a later-begun
/// seal). Theorem 5's content -- that the *view semantics alone* admit an
/// illegal response -- is demonstrated at the theory layer
/// (`certificates::thm5`, `tests/theorems.rs`); this test pins down the
/// operational margin.
#[test]
fn static_protocol_with_hybrid_relation_stays_safe_for_prom() {
    use quorumcc_adts::prom::PromInv;
    use quorumcc_adts::Prom;
    let workload = |seed| {
        generate(
            WorkloadSpec {
                clients: 3,
                txns_per_client: 3,
                ops_per_txn: 2,
                objects: 1,
                seed,
            },
            |rng| match rng.gen_range(0..5) {
                0 | 1 => PromInv::Write(rng.gen_range(1..=2)),
                2 => PromInv::Seal,
                _ => PromInv::Read,
            },
        )
    };
    let hybrid_rel = quorumcc::core::certificates::prom_hybrid_relation();
    for seed in 0..25u64 {
        let report = RunBuilder::<Prom>::new(3)
            .protocol(
                ProtocolConfig::new(Protocol::new(Mode::StaticTs, hybrid_rel.clone()))
                    .commit_delay(30),
            )
            .seed(seed)
            .workload(workload(seed))
            .run()
            .unwrap();
        report.check_atomicity(bounds()).unwrap_or_else(|o| {
            panic!(
                "seed {seed}: the conservative implementation was expected to \
                 mask Theorem 5 operationally, but {o} went non-atomic -- an \
                 interesting find; investigate"
            )
        });
    }
}
