//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use quorumcc::core::enumerate::{histories, CorpusConfig, Property};
use quorumcc::model::atomicity::{
    committed_dynamic_atomic, committed_hybrid_atomic, committed_static_atomic, in_dynamic_spec,
    in_hybrid_spec, in_static_spec,
};
use quorumcc::model::spec::{self, ExploreBounds};
use quorumcc::model::testtypes::*;
use quorumcc::model::{serial, ActionId, BHistory, Event};
use quorumcc::quorum::availability::binomial_tail;
use quorumcc::quorum::{SiteId, SiteSet};
use quorumcc::replication::types::{ActionOutcome, LogEntry, ObjectLog};
use quorumcc::sim::{LamportClock, Timestamp};

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 5,
        ..ExploreBounds::default()
    }
}

/// Strategy: a random queue event.
fn queue_event() -> impl Strategy<Value = Event<QInv, QRes>> {
    prop_oneof![
        (1u8..=2).prop_map(enq),
        (1u8..=2).prop_map(deq),
        Just(deq_empty()),
    ]
}

proptest! {
    /// Replay is deterministic and prefix-closed: a legal history's every
    /// prefix is legal.
    #[test]
    fn serial_prefix_closure(events in proptest::collection::vec(queue_event(), 0..12)) {
        if serial::is_legal::<TestQueue>(&events) {
            for n in 0..=events.len() {
                prop_assert!(serial::is_legal::<TestQueue>(&events[..n]));
            }
        }
    }

    /// Legal serial histories never dequeue more items than were enqueued.
    #[test]
    fn queue_conservation(events in proptest::collection::vec(queue_event(), 0..12)) {
        if serial::is_legal::<TestQueue>(&events) {
            let enqs = events.iter().filter(|e| matches!(e.inv, QInv::Enq(_))).count();
            let deqs = events
                .iter()
                .filter(|e| matches!((&e.inv, &e.res), (QInv::Deq, QRes::Item(_))))
                .count();
            prop_assert!(deqs <= enqs);
        }
    }

    /// Commutativity is symmetric.
    #[test]
    fn commutativity_symmetric(a in queue_event(), b in queue_event()) {
        let states = spec::reachable_states::<TestQueue>(bounds());
        prop_assert_eq!(
            spec::events_commute::<TestQueue>(&a, &b, &states, bounds()),
            spec::events_commute::<TestQueue>(&b, &a, &states, bounds())
        );
    }

    /// State equivalence is reflexive and symmetric.
    #[test]
    fn equivalence_laws(xs in proptest::collection::vec(1u8..=2, 0..5),
                        ys in proptest::collection::vec(1u8..=2, 0..5)) {
        prop_assert!(spec::equivalent_states::<TestQueue>(&xs, &xs, bounds()));
        prop_assert_eq!(
            spec::equivalent_states::<TestQueue>(&xs, &ys, bounds()),
            spec::equivalent_states::<TestQueue>(&ys, &xs, bounds())
        );
    }

    /// Binomial tails are monotone: in p (↑) and in k (↓).
    #[test]
    fn availability_monotonicity(n in 1u32..20, k in 0u32..20,
                                 p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = binomial_tail(n, k, lo).unwrap();
        let b = binomial_tail(n, k, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
        if k < n {
            let c = binomial_tail(n, k + 1, hi).unwrap();
            prop_assert!(c <= b + 1e-12);
        }
    }

    /// SiteSet algebra: De Morgan-ish laws and intersection consistency.
    #[test]
    fn siteset_laws(a in proptest::collection::vec(0u8..16, 0..8),
                    b in proptest::collection::vec(0u8..16, 0..8)) {
        let sa = SiteSet::from_ids(a);
        let sb = SiteSet::from_ids(b);
        prop_assert_eq!(sa.union(sb).len() + sa.intersection(sb).len(), sa.len() + sb.len());
        prop_assert_eq!(sa.intersects(sb), !sa.intersection(sb).is_empty());
        prop_assert!(sa.intersection(sb).is_subset(sa));
        prop_assert!(sa.is_subset(sa.union(sb)));
        prop_assert_eq!(sa.difference(sb).intersection(sb), SiteSet::EMPTY);
    }

    /// Lamport clocks: ticks strictly increase and dominate observations.
    #[test]
    fn lamport_clock_laws(obs in proptest::collection::vec((0u64..1000, 0u32..8), 0..20)) {
        let mut clock = LamportClock::new(9);
        let mut last = Timestamp::ZERO;
        for (counter, node) in obs {
            clock.observe(Timestamp { counter, node });
            let t = clock.tick();
            prop_assert!(t > last);
            prop_assert!(t.counter > counter || t.counter > 0);
            last = t;
        }
    }

    /// ObjectLog merge is idempotent and commutative, and statuses only
    /// upgrade.
    #[test]
    fn objectlog_merge_laws(
        entries_a in proptest::collection::vec((0u64..50, 0u32..4, 0u32..6), 0..10),
        entries_b in proptest::collection::vec((0u64..50, 0u32..4, 0u32..6), 0..10),
    ) {
        fn build(items: &[(u64, u32, u32)]) -> ObjectLog<QInv, QRes> {
            let mut log = ObjectLog::new();
            for (c, n, _) in items {
                // Timestamps are globally unique in the real system, so an
                // entry's content is a function of its timestamp.
                let a = (*c as u32 + *n) % 4;
                let a = &a;
                log.insert(LogEntry {
                    ts: Timestamp { counter: *c, node: *n },
                    action: ActionId(*a),
                    begin_ts: Timestamp { counter: *c, node: *n },
                    event: enq(1),
                });
                if *c % 3 == 0 {
                    // One coordinator per action: the commit timestamp is a
                    // function of the action id, as in the real system.
                    log.resolve(ActionId(*a), ActionOutcome::Committed(Timestamp {
                        counter: u64::from(*a) + 100,
                        node: 0,
                    }));
                }
            }
            log
        }
        let a = build(&entries_a);
        let b = build(&entries_b);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut abab = ab.clone();
        abab.merge(&ab);
        prop_assert_eq!(&abab, &ab);
        // Entry count is the union size.
        prop_assert!(ab.len() <= a.len() + b.len());
        prop_assert!(ab.len() >= a.len().max(b.len()));
    }
}

/// Dynamic(T) ⊆ Hybrid(T) on enumerated corpora (not proptest — the
/// corpora are the right sample space for behavioral histories).
#[test]
fn dynamic_spec_contained_in_hybrid_spec() {
    let cfg = CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 500,
        sample_ops: 4,
        seed: 3,
        bounds: bounds(),
        threads: 1,
    };
    let corpus = histories::<TestQueue>(Property::Dynamic, &cfg);
    assert!(!corpus.is_empty());
    for h in &corpus {
        assert!(in_dynamic_spec::<TestQueue>(h, cfg.bounds));
        assert!(in_hybrid_spec::<TestQueue>(h), "{h:?}");
    }
}

/// The online specs imply the committed-subhistory checks.
#[test]
fn online_spec_implies_committed_check() {
    let cfg = CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 500,
        sample_ops: 4,
        seed: 5,
        bounds: bounds(),
        threads: 1,
    };
    for h in histories::<TestQueue>(Property::Static, &cfg) {
        assert!(committed_static_atomic::<TestQueue>(&h), "{h:?}");
    }
    for h in histories::<TestQueue>(Property::Hybrid, &cfg) {
        assert!(committed_hybrid_atomic::<TestQueue>(&h), "{h:?}");
    }
    for h in histories::<TestQueue>(Property::Dynamic, &cfg) {
        assert!(
            committed_dynamic_atomic::<TestQueue>(&h, cfg.bounds),
            "{h:?}"
        );
    }
}

/// Membership in the online specs is invariant under renaming actions
/// (sanity of canonicalization).
#[test]
fn spec_membership_invariant_under_action_renaming() {
    let mut h: BHistory<QInv, QRes> = BHistory::new();
    h.begin(0);
    h.op_event(0, enq(1));
    h.begin(1);
    h.op_event(1, deq(1));
    h.commit(0);
    h.commit(1);
    let mut renamed: BHistory<QInv, QRes> = BHistory::new();
    renamed.begin(7);
    renamed.op_event(7, enq(1));
    renamed.begin(3);
    renamed.op_event(3, deq(1));
    renamed.commit(7);
    renamed.commit(3);
    assert_eq!(
        in_static_spec::<TestQueue>(&h),
        in_static_spec::<TestQueue>(&renamed)
    );
    assert_eq!(
        in_hybrid_spec::<TestQueue>(&h),
        in_hybrid_spec::<TestQueue>(&renamed)
    );
}

/// Site ids render distinctly (cheap display sanity over the whole range).
#[test]
fn site_display_roundtrip() {
    let mut seen = std::collections::HashSet::new();
    for i in 0..64u8 {
        assert!(seen.insert(SiteId(i).to_string()));
    }
}
