//! Integration tests for the `qcc` command line.

use std::process::Command;

fn qcc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_qcc"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn types_lists_the_battery() {
    let (ok, stdout, _) = qcc(&["types"]);
    assert!(ok);
    for t in ["queue", "prom", "flagset", "doublebuffer", "register"] {
        assert!(stdout.contains(t), "{stdout}");
    }
}

#[test]
fn relations_prints_both_tables() {
    let (ok, stdout, _) = qcc(&["relations", "queue"]);
    assert!(ok);
    assert!(stdout.contains("Theorem 6"));
    assert!(stdout.contains("Theorem 10"));
    assert!(stdout.contains("incomparable"));
}

#[test]
fn certificates_all_verified() {
    let (ok, stdout, _) = qcc(&["certificates"]);
    assert!(ok);
    assert!(stdout.contains("VERIFIED"));
    assert!(!stdout.contains("FAILED"));
    assert!(stdout.contains("Theorem 4"));
    assert!(stdout.contains("Theorem 5"));
    assert!(stdout.contains("Theorem 12"));
}

#[test]
fn quorums_reports_the_prom_table() {
    let (ok, stdout, _) = qcc(&[
        "quorums",
        "prom",
        "--sites",
        "5",
        "--relation",
        "hybrid",
        "--priority",
        "Read,Write",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Read"), "{stdout}");
    assert!(stdout.contains("availability"));
}

#[test]
fn simulate_checks_atomicity() {
    let (ok, stdout, _) = qcc(&[
        "simulate",
        "register",
        "--mode",
        "hybrid",
        "--clients",
        "2",
        "--txns",
        "2",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("atomicity check: OK"), "{stdout}");
}

#[test]
fn trace_prints_filtered_events_and_latencies() {
    let (ok, stdout, _) = qcc(&[
        "trace",
        "queue",
        "--mode",
        "hybrid",
        "--clients",
        "2",
        "--txns",
        "2",
    ]);
    assert!(ok, "{stdout}");
    for kind in ["txn-begin", "phase-start", "send", "deliver", "commit"] {
        assert!(stdout.contains(kind), "missing {kind} in:\n{stdout}");
    }
    assert!(stdout.contains("events matched"), "{stdout}");
    assert!(stdout.contains("op latency"), "{stdout}");
    assert!(stdout.contains("msgs/op"), "{stdout}");
}

#[test]
fn trace_filters_narrow_the_selection() {
    let all = qcc(&["trace", "queue", "--clients", "2", "--txns", "2"]);
    let only_sends = qcc(&[
        "trace",
        "queue",
        "--clients",
        "2",
        "--txns",
        "2",
        "--action",
        "send",
        "--site",
        "3",
    ]);
    assert!(all.0 && only_sends.0);
    let count = |s: &str| s.lines().filter(|l| l.starts_with('[')).count();
    assert!(count(&only_sends.1) > 0);
    assert!(count(&only_sends.1) < count(&all.1));
    // Every selected line is a send from site 3.
    for l in only_sends.1.lines().filter(|l| l.starts_with('[')) {
        assert!(l.contains("site=3") && l.contains("send"), "{l}");
    }
}

#[test]
fn trace_saves_the_full_capture() {
    let dir = std::env::temp_dir().join("qcc_trace_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.txt");
    let path_s = path.to_str().unwrap();
    let (ok, stdout, _) = qcc(&[
        "trace",
        "counter",
        "--clients",
        "2",
        "--txns",
        "1",
        "--limit",
        "0",
        "--save",
        path_s,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("saved to"), "{stdout}");
    let saved = std::fs::read_to_string(&path).unwrap();
    assert!(saved.lines().count() > 10);
    assert!(saved.contains("txn-begin"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn frontier_lists_pareto_points() {
    let (ok, stdout, _) = qcc(&["frontier", "prom", "--sites", "3", "--relation", "hybrid"]);
    assert!(ok);
    assert!(stdout.contains("Pareto frontier"));
    assert!(
        stdout
            .lines()
            .filter(|l| l.trim_start().starts_with('['))
            .count()
            >= 2
    );
}

#[test]
fn reconfig_replans_over_the_survivors() {
    let (ok, stdout, _) = qcc(&[
        "reconfig",
        "prom",
        "--sites",
        "5",
        "--lost",
        "4",
        "--relation",
        "hybrid",
        "--priority",
        "Read,Write",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("before the fault"), "{stdout}");
    assert!(stdout.contains("after losing {s4}"), "{stdout}");
    assert!(stdout.contains("members = {s0,s1,s2,s3}"), "{stdout}");
    assert!(stdout.contains("replanned quorum sizes"), "{stdout}");
    // Every operation line reports both the before and after sizes.
    assert!(stdout.contains("of 5 ->"), "{stdout}");
    assert!(stdout.contains("of 4 "), "{stdout}");
}

#[test]
fn reconfig_rejects_a_lost_site_outside_the_membership() {
    let (ok, _, stderr) = qcc(&["reconfig", "prom", "--sites", "3", "--lost", "7"]);
    assert!(!ok);
    assert!(stderr.contains("names site 7"), "{stderr}");
}

#[test]
fn unknown_type_fails_cleanly() {
    let (ok, _, stderr) = qcc(&["relations", "btree"]);
    assert!(!ok);
    assert!(stderr.contains("unknown type"));
}

#[test]
fn missing_args_print_usage() {
    let (ok, _, stderr) = qcc(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

/// `load` rejects unknown flags like every other subcommand (per-flag
/// tables in `allowed_opts`), including typos of the new gossip and
/// backend knobs.
#[test]
fn load_rejects_unknown_flags() {
    for bogus in ["--bogus", "--back-end", "--gcd"] {
        let (ok, _, stderr) = qcc(&["load", bogus, "x", "--clients", "4"]);
        assert!(!ok, "{bogus} accepted");
        assert!(stderr.contains("unknown option"), "{bogus}: {stderr}");
    }
    // And an unknown backend *value* fails with the candidates listed.
    let (ok, _, stderr) = qcc(&["load", "--backend", "epoll", "--clients", "4"]);
    assert!(!ok);
    assert!(stderr.contains("unknown backend"), "{stderr}");
}
