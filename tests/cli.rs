//! Integration tests for the `qcc` command line.

use std::process::Command;

fn qcc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_qcc"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn types_lists_the_battery() {
    let (ok, stdout, _) = qcc(&["types"]);
    assert!(ok);
    for t in ["queue", "prom", "flagset", "doublebuffer", "register"] {
        assert!(stdout.contains(t), "{stdout}");
    }
}

#[test]
fn relations_prints_both_tables() {
    let (ok, stdout, _) = qcc(&["relations", "queue"]);
    assert!(ok);
    assert!(stdout.contains("Theorem 6"));
    assert!(stdout.contains("Theorem 10"));
    assert!(stdout.contains("incomparable"));
}

#[test]
fn certificates_all_verified() {
    let (ok, stdout, _) = qcc(&["certificates"]);
    assert!(ok);
    assert!(stdout.contains("VERIFIED"));
    assert!(!stdout.contains("FAILED"));
    assert!(stdout.contains("Theorem 4"));
    assert!(stdout.contains("Theorem 5"));
    assert!(stdout.contains("Theorem 12"));
}

#[test]
fn quorums_reports_the_prom_table() {
    let (ok, stdout, _) = qcc(&[
        "quorums",
        "prom",
        "--sites",
        "5",
        "--relation",
        "hybrid",
        "--priority",
        "Read,Write",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Read"), "{stdout}");
    assert!(stdout.contains("availability"));
}

#[test]
fn simulate_checks_atomicity() {
    let (ok, stdout, _) = qcc(&[
        "simulate",
        "register",
        "--mode",
        "hybrid",
        "--clients",
        "2",
        "--txns",
        "2",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("atomicity check: OK"), "{stdout}");
}

#[test]
fn frontier_lists_pareto_points() {
    let (ok, stdout, _) = qcc(&["frontier", "prom", "--sites", "3", "--relation", "hybrid"]);
    assert!(ok);
    assert!(stdout.contains("Pareto frontier"));
    assert!(
        stdout
            .lines()
            .filter(|l| l.trim_start().starts_with('['))
            .count()
            >= 2
    );
}

#[test]
fn unknown_type_fails_cleanly() {
    let (ok, _, stderr) = qcc(&["relations", "btree"]);
    assert!(!ok);
    assert!(stderr.contains("unknown type"));
}

#[test]
fn missing_args_print_usage() {
    let (ok, _, stderr) = qcc(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}
