#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, tests.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "verify.sh: all gates passed"
