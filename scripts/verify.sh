#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, tests.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (deny warnings, first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p quorumcc -p quorumcc-model -p quorumcc-adts -p quorumcc-core \
  -p quorumcc-quorum -p quorumcc-sim -p quorumcc-replication -p quorumcc-bench

echo "==> qcc trace smoke run"
trace_out="$(cargo run -q --bin qcc -- trace queue --mode hybrid --clients 2 --txns 2 --action commit)"
echo "$trace_out" | grep -q "commit action=" || {
  echo "qcc trace produced no commit events:" >&2
  echo "$trace_out" >&2
  exit 1
}
echo "$trace_out" | grep -q "op latency" || {
  echo "qcc trace produced no latency summary" >&2
  exit 1
}

echo "==> qcc compact-logs smoke run (outcomes must match full shipping)"
compact_out="$(cargo run -q --bin qcc -- simulate queue --compact-logs true)"
full_out="$(cargo run -q --bin qcc -- simulate queue --delta false)"
echo "$compact_out" | grep -q "atomicity check: OK" || {
  echo "qcc simulate --compact-logs true failed the atomicity check:" >&2
  echo "$compact_out" >&2
  exit 1
}
compact_decisions="$(echo "$compact_out" | grep '^mode ')"
full_decisions="$(echo "$full_out" | grep '^mode ')"
if [ "$compact_decisions" != "$full_decisions" ]; then
  echo "compacted and full-shipping runs decided differently:" >&2
  echo "  compact: $compact_decisions" >&2
  echo "  full:    $full_decisions" >&2
  exit 1
fi

echo "==> qcc reconfig smoke run"
reconfig_out="$(cargo run -q --bin qcc -- reconfig prom --sites 5 --lost 4 --relation hybrid --priority Read,Write)"
echo "$reconfig_out" | grep -q "replanned quorum sizes" || {
  echo "qcc reconfig produced no replanned sizes:" >&2
  echo "$reconfig_out" >&2
  exit 1
}

echo "==> exp_reconfig smoke run (asserts hybrid replans beat static)"
cargo run -q --release -p quorumcc-bench --bin exp_reconfig > /dev/null
test -f BENCH_exp_reconfig.json || {
  echo "exp_reconfig wrote no BENCH_exp_reconfig.json" >&2
  exit 1
}

echo "==> log_shipping bench smoke run"
bench_out="$(cargo bench -q -p quorumcc-bench --bench log_shipping 2>&1)"
echo "$bench_out" | grep -q "log_shipping/1024/delta_reply" || {
  echo "log_shipping bench produced no delta_reply timing:" >&2
  echo "$bench_out" >&2
  exit 1
}

echo "verify.sh: all gates passed"
