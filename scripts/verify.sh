#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, tests.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (deny warnings, first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p quorumcc -p quorumcc-model -p quorumcc-adts -p quorumcc-core \
  -p quorumcc-quorum -p quorumcc-sim -p quorumcc-replication -p quorumcc-bench

echo "==> qcc trace smoke run"
trace_out="$(cargo run -q --bin qcc -- trace queue --mode hybrid --clients 2 --txns 2 --action commit)"
echo "$trace_out" | grep -q "commit action=" || {
  echo "qcc trace produced no commit events:" >&2
  echo "$trace_out" >&2
  exit 1
}
echo "$trace_out" | grep -q "op latency" || {
  echo "qcc trace produced no latency summary" >&2
  exit 1
}

echo "==> qcc reconfig smoke run"
reconfig_out="$(cargo run -q --bin qcc -- reconfig prom --sites 5 --lost 4 --relation hybrid --priority Read,Write)"
echo "$reconfig_out" | grep -q "replanned quorum sizes" || {
  echo "qcc reconfig produced no replanned sizes:" >&2
  echo "$reconfig_out" >&2
  exit 1
}

echo "==> exp_reconfig smoke run (asserts hybrid replans beat static)"
cargo run -q --release -p quorumcc-bench --bin exp_reconfig > /dev/null
test -f BENCH_exp_reconfig.json || {
  echo "exp_reconfig wrote no BENCH_exp_reconfig.json" >&2
  exit 1
}

echo "verify.sh: all gates passed"
