#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, tests.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (deny warnings, first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p quorumcc -p quorumcc-model -p quorumcc-adts -p quorumcc-core \
  -p quorumcc-quorum -p quorumcc-sim -p quorumcc-replication -p quorumcc-bench

echo "==> qcc trace smoke run"
trace_out="$(cargo run -q --bin qcc -- trace queue --mode hybrid --clients 2 --txns 2 --action commit)"
echo "$trace_out" | grep -q "commit action=" || {
  echo "qcc trace produced no commit events:" >&2
  echo "$trace_out" >&2
  exit 1
}
echo "$trace_out" | grep -q "op latency" || {
  echo "qcc trace produced no latency summary" >&2
  exit 1
}

echo "verify.sh: all gates passed"
