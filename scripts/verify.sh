#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, tests.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (deny warnings, first-party crates)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p quorumcc -p quorumcc-model -p quorumcc-adts -p quorumcc-core \
  -p quorumcc-quorum -p quorumcc-sim -p quorumcc-replication \
  -p quorumcc-net -p quorumcc-bench

echo "==> sans-I/O backend equivalence suite (DES vs channel threads)"
cargo test -q --release -p quorumcc-replication --test backends > /dev/null

echo "==> qcc trace smoke run"
trace_out="$(cargo run -q --bin qcc -- trace queue --mode hybrid --clients 2 --txns 2 --action commit)"
echo "$trace_out" | grep -q "commit action=" || {
  echo "qcc trace produced no commit events:" >&2
  echo "$trace_out" >&2
  exit 1
}
echo "$trace_out" | grep -q "op latency" || {
  echo "qcc trace produced no latency summary" >&2
  exit 1
}

echo "==> qcc compact-logs smoke run (outcomes must match full shipping)"
compact_out="$(cargo run -q --bin qcc -- simulate queue --compact-logs true)"
full_out="$(cargo run -q --bin qcc -- simulate queue --delta false)"
echo "$compact_out" | grep -q "atomicity check: OK" || {
  echo "qcc simulate --compact-logs true failed the atomicity check:" >&2
  echo "$compact_out" >&2
  exit 1
}
compact_decisions="$(echo "$compact_out" | grep '^mode ')"
full_decisions="$(echo "$full_out" | grep '^mode ')"
if [ "$compact_decisions" != "$full_decisions" ]; then
  echo "compacted and full-shipping runs decided differently:" >&2
  echo "  compact: $compact_decisions" >&2
  echo "  full:    $full_decisions" >&2
  exit 1
fi

echo "==> qcc reconfig smoke run"
reconfig_out="$(cargo run -q --bin qcc -- reconfig prom --sites 5 --lost 4 --relation hybrid --priority Read,Write)"
echo "$reconfig_out" | grep -q "replanned quorum sizes" || {
  echo "qcc reconfig produced no replanned sizes:" >&2
  echo "$reconfig_out" >&2
  exit 1
}

echo "==> exp_reconfig smoke run (asserts hybrid replans beat static)"
cargo run -q --release -p quorumcc-bench --bin exp_reconfig > /dev/null
test -f BENCH_exp_reconfig.json || {
  echo "exp_reconfig wrote no BENCH_exp_reconfig.json" >&2
  exit 1
}

echo "==> chaos smoke: 200-plan sweep must pass the safety oracle"
chaos_out="$(cargo run -q --release --bin qcc -- chaos queue --seed 7 --runs 200)"
echo "$chaos_out" | grep -q "safety oracle: OK on all 200 runs" || {
  echo "qcc chaos found a safety violation (or produced no verdict):" >&2
  echo "$chaos_out" >&2
  exit 1
}

echo "==> chaos smoke: sweep output byte-identical at --threads 1/2/4/0"
for t in 1 2 4 0; do
  cargo run -q --release --bin qcc -- chaos queue --seed 7 --runs 200 --threads "$t" \
    > "/tmp/chaos_sweep_t$t.txt"
done
for t in 2 4 0; do
  cmp -s /tmp/chaos_sweep_t1.txt "/tmp/chaos_sweep_t$t.txt" || {
    echo "chaos sweep differs between --threads 1 and --threads $t" >&2
    diff /tmp/chaos_sweep_t1.txt "/tmp/chaos_sweep_t$t.txt" >&2 || true
    exit 1
  }
done

# Golden shrunk plan from the oracle's injected-bug self-test (see
# DESIGN.md §3.12): replaying it must flag a violation with the bug
# injected, stay clean without it, and render identically at every
# thread-independent invocation.
golden_plan='seed=13553989110192001924;net=1,10,0,0.05,0;dur=stable;compact=0;ae=0;fan=n'
echo "==> chaos smoke: golden shrunk-plan replay"
replay_unsound="$(cargo run -q --release --bin qcc -- chaos queue \
  --clients 2 --txns 2 --ops 1 --unsound-weaken-read-quorum true \
  --replay "$golden_plan" || true)"
echo "$replay_unsound" | grep -q "non-atomic history" || {
  echo "golden shrunk plan no longer reproduces under the injected bug:" >&2
  echo "$replay_unsound" >&2
  exit 1
}
replay_sound="$(cargo run -q --release --bin qcc -- chaos queue \
  --clients 2 --txns 2 --ops 1 --replay "$golden_plan")"
echo "$replay_sound" | grep -q "safety oracle: OK" || {
  echo "golden plan violates safety even without the injected bug:" >&2
  echo "$replay_sound" >&2
  exit 1
}

echo "==> chaos acceptance sweep: 600 plans, zero violations"
cargo test -q --release -p quorumcc-replication --test chaos \
  chaos_sweep_600_plans_is_violation_free -- --ignored > /dev/null

echo "==> exp_chaos: BENCH_exp_chaos.json byte-identical at --threads 1/2/4/0"
cargo run -q --release -p quorumcc-bench --bin exp_chaos -- --threads 1 > /dev/null
mv BENCH_exp_chaos.json /tmp/chaos_bench_t1.json
for t in 2 4 0; do
  cargo run -q --release -p quorumcc-bench --bin exp_chaos -- --threads "$t" > /dev/null
  cmp -s /tmp/chaos_bench_t1.json BENCH_exp_chaos.json || {
    echo "BENCH_exp_chaos.json differs between --threads 1 and --threads $t" >&2
    diff /tmp/chaos_bench_t1.json BENCH_exp_chaos.json >&2 || true
    exit 1
  }
done

echo "==> chaos smoke: 200-plan sweep with sharding + batching enabled"
chaos_tp="$(cargo run -q --release --bin qcc -- chaos queue --seed 11 --runs 200 --objects 8 --shards 4 --batch 4)"
echo "$chaos_tp" | grep -q "safety oracle: OK on all 200 runs" || {
  echo "chaos sweep with shards=4 batch=4 found a safety violation (or no verdict):" >&2
  echo "$chaos_tp" >&2
  exit 1
}

echo "==> batched-vs-unbatched decision gate (structural A/B, all three modes)"
cargo test -q --release -p quorumcc-replication --test batching \
  batched_and_unbatched_decide_identically_at_low_contention > /dev/null

echo "==> exp_scale: sweep gates + BENCH_exp_scale.json byte-identical at --threads 1/2/4/0"
cargo run -q --release -p quorumcc-bench --bin exp_scale -- --threads 1 > /dev/null
test -f BENCH_exp_scale.json || {
  echo "exp_scale wrote no BENCH_exp_scale.json" >&2
  exit 1
}
mv BENCH_exp_scale.json /tmp/scale_bench_t1.json
for t in 2 4 0; do
  cargo run -q --release -p quorumcc-bench --bin exp_scale -- --threads "$t" > /dev/null
  cmp -s /tmp/scale_bench_t1.json BENCH_exp_scale.json || {
    echo "BENCH_exp_scale.json differs between --threads 1 and --threads $t" >&2
    diff /tmp/scale_bench_t1.json BENCH_exp_scale.json >&2 || true
    exit 1
  }
done

echo "==> exp_load quick smoke: real-socket fleet, bounded shape"
# Wall-clock SLOs — BENCH_exp_load.json is the one bench artifact that
# is *not* byte-stable (DESIGN.md §3.14), so the gate is the binary's
# internal asserts (zero unfinished, >=90% commits) plus JSON presence.
cargo run -q --release -p quorumcc-bench --bin exp_load -- --quick > /dev/null
test -f BENCH_exp_load.json || {
  echo "exp_load wrote no BENCH_exp_load.json" >&2
  exit 1
}

echo "==> explore smoke: sound 2x1 shape is exhaustively clean"
explore_out="$(cargo run -q --release --bin qcc -- explore queue --sites 2 --clients 1 --depth 12)"
echo "$explore_out" | grep -q "safety oracle: OK on every schedule to depth 12" || {
  echo "qcc explore did not complete the sound 2x1 shape:" >&2
  echo "$explore_out" >&2
  exit 1
}

echo "==> explore smoke: both planted bugs found with minimal replayable witnesses"
# skip-final-ack: a lost write five events deep at two sites.
skipack_out="$(cargo run -q --release --bin qcc -- explore queue \
  --sites 2 --clients 2 --depth 40 --unsound-skip-final-ack true || true)"
echo "$skipack_out" | grep -q "safety VIOLATION at depth 5: lost write" || {
  echo "explore missed the skip-final-ack planted bug (or depth changed):" >&2
  echo "$skipack_out" >&2
  exit 1
}
# weaken-read-quorum: unobservable at 2 sites (1+2 > 2); minimal shape is
# 3 sites + narrow fan-out (DESIGN.md §3.15).
weaken_out="$(cargo run -q --release --bin qcc -- explore queue \
  --sites 3 --clients 2 --fan n --depth 40 --unsound-weaken-read-quorum true || true)"
echo "$weaken_out" | grep -q "safety VIOLATION at depth 18" || {
  echo "explore missed the weaken-read-quorum planted bug (or depth changed):" >&2
  echo "$weaken_out" >&2
  exit 1
}
# The printed witness spec replays to the same verdict.
witness_spec="$(echo "$skipack_out" | sed -n "s/^witness: //p")"
replay_out="$(cargo run -q --release --bin qcc -- explore queue --replay "$witness_spec" || true)"
echo "$replay_out" | grep -q "safety VIOLATION: lost write" || {
  echo "explore witness spec did not replay to the same violation:" >&2
  echo "$replay_out" >&2
  exit 1
}

echo "==> exp_explore quick: POR gate + BENCH_exp_explore.json byte-identical at --threads 1/2/4/0"
# Quick mode sweeps a smaller cell matrix than the committed artifact, so
# run from a scratch dir instead of clobbering the repo-root json.
explore_scratch="$(mktemp -d)"
(cd "$explore_scratch" && "$OLDPWD/target/release/exp_explore" --quick --threads 1 > /dev/null)
mv "$explore_scratch/BENCH_exp_explore.json" /tmp/explore_bench_t1.json
for t in 2 4 0; do
  (cd "$explore_scratch" && "$OLDPWD/target/release/exp_explore" --quick --threads "$t" > /dev/null)
  cmp -s /tmp/explore_bench_t1.json "$explore_scratch/BENCH_exp_explore.json" || {
    echo "BENCH_exp_explore.json differs between --threads 1 and --threads $t" >&2
    diff /tmp/explore_bench_t1.json "$explore_scratch/BENCH_exp_explore.json" >&2 || true
    exit 1
  }
done
rm -rf "$explore_scratch"

echo "==> qcc load smoke: tiny fleet through the CLI"
load_out="$(cargo run -q --release --bin qcc -- load --clients 40 --cells 2 --objects 16 --ramp-ms 100)"
echo "$load_out" | grep -q '"unfinished": 0' || {
  echo "qcc load left clients unfinished:" >&2
  echo "$load_out" >&2
  exit 1
}

echo "==> qcc load smoke: event-loop backend with scoped shipping + status GC"
evl_out="$(cargo run -q --release --bin qcc -- load --clients 40 --cells 2 --objects 16 \
  --ramp-ms 100 --backend eventloop --scoped true --gc 8)"
echo "$evl_out" | grep -q '"unfinished": 0' || {
  echo "qcc load --backend eventloop left clients unfinished:" >&2
  echo "$evl_out" >&2
  exit 1
}
echo "$evl_out" | grep -q '"backend": "eventloop"' || {
  echo "qcc load --backend eventloop did not label the backend:" >&2
  echo "$evl_out" >&2
  exit 1
}

echo "==> qcc load smoke: lossy fault shims + frontier repair + scripted crash"
lossy_out="$(cargo run -q --release --bin qcc -- load --clients 24 --cells 1 --objects 256 \
  --txns 40 --backend eventloop --scoped true --gc 4 --narrow false --deq 0.0 \
  --fault-profile lossy --retransmit-ms 250 --crash 2:200:200)"
echo "$lossy_out" | grep -q '"unfinished": 0' || {
  echo "qcc load under lossy shims + crash left clients unfinished:" >&2
  echo "$lossy_out" >&2
  exit 1
}
echo "$lossy_out" | grep -q '"recoveries": 1' || {
  echo "qcc load scripted crash never recovered:" >&2
  echo "$lossy_out" >&2
  exit 1
}

echo "==> recovery property suite (frontier idempotence + backend identity under retransmit)"
cargo test -q --release -p quorumcc-replication --test recovery > /dev/null

echo "==> gossip A/B decision-identity suite (scoped+GC vs full shipping, 3 ADTs x 3 modes + GC chaos sweep)"
cargo test -q --release -p quorumcc-replication --test gossip > /dev/null

echo "==> exp_gossip: flat-curve gates + BENCH_exp_gossip.json byte-identical at --threads 1/2/4/0"
cargo run -q --release -p quorumcc-bench --bin exp_gossip -- --quick > /dev/null
cargo run -q --release -p quorumcc-bench --bin exp_gossip -- --threads 1 > /dev/null
mv BENCH_exp_gossip.json /tmp/gossip_bench_t1.json
for t in 2 4 0; do
  cargo run -q --release -p quorumcc-bench --bin exp_gossip -- --threads "$t" > /dev/null
  cmp -s /tmp/gossip_bench_t1.json BENCH_exp_gossip.json || {
    echo "BENCH_exp_gossip.json differs between --threads 1 and --threads $t" >&2
    diff /tmp/gossip_bench_t1.json BENCH_exp_gossip.json >&2 || true
    exit 1
  }
done

echo "==> exp_recovery quick: recovery gates + BENCH_exp_recovery.json byte-identical at --threads 1/2/4/0"
# DES telemetry is deterministic; the channels/eventloop phases record
# only asserted booleans, so the whole artifact is byte-stable. Quick
# mode uses a smaller event-loop shape than the committed artifact, so
# run from a scratch dir instead of clobbering the repo-root json.
recovery_scratch="$(mktemp -d)"
(cd "$recovery_scratch" && "$OLDPWD/target/release/exp_recovery" --quick --threads 1 > /dev/null)
mv "$recovery_scratch/BENCH_exp_recovery.json" /tmp/recovery_bench_t1.json
for t in 2 4 0; do
  (cd "$recovery_scratch" && "$OLDPWD/target/release/exp_recovery" --quick --threads "$t" > /dev/null)
  cmp -s /tmp/recovery_bench_t1.json "$recovery_scratch/BENCH_exp_recovery.json" || {
    echo "BENCH_exp_recovery.json differs between --threads 1 and --threads $t" >&2
    diff /tmp/recovery_bench_t1.json "$recovery_scratch/BENCH_exp_recovery.json" >&2 || true
    exit 1
  }
done
rm -rf "$recovery_scratch"

echo "==> batching bench smoke run"
batch_bench_out="$(cargo bench -q -p quorumcc-bench --bench batching 2>&1)"
echo "$batch_bench_out" | grep -q "delta_serialize/1024/zero_copy" || {
  echo "batching bench produced no zero_copy timing:" >&2
  echo "$batch_bench_out" >&2
  exit 1
}

echo "==> log_shipping bench smoke run"
bench_out="$(cargo bench -q -p quorumcc-bench --bench log_shipping 2>&1)"
echo "$bench_out" | grep -q "log_shipping/1024/delta_reply" || {
  echo "log_shipping bench produced no delta_reply timing:" >&2
  echo "$bench_out" >&2
  exit 1
}

echo "verify.sh: all gates passed"
