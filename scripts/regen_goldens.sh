#!/usr/bin/env bash
# Regenerate every byte-stable golden artifact (the committed
# BENCH_*.json files) and stamp their md5s into scripts/goldens.md5.
#
# Protocol changes that alter message bytes (e.g. scoped status
# shipping + status GC, DESIGN.md §3.16) legitimately change these
# artifacts. The rule for regenerating: the A/B decision-identity
# suite must be green FIRST — scoped+GC has to commit/abort
# identically to full shipping across Queue/PROM/FlagSet × all three
# modes before new bytes may become the golden. This script enforces
# that ordering; never hand-edit a BENCH json or the stamp file.
#
# BENCH_exp_load.json is wall-clock (not byte-stable) and is NOT
# regenerated or stamped here; refresh it with a manual full
# `exp_load` run when the harness changes (EXPERIMENTS.md §L2).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gate: A/B decision-identity suite (scoped+GC vs full shipping)"
cargo test -q --release -p quorumcc-replication --test gossip > /dev/null

echo "==> cargo build --release"
cargo build -q --release --workspace

# Every deterministic artifact, in dependency-free order. Each binary
# rewrites its own BENCH_<id>.json in the repo root and asserts its
# internal gates (including --threads byte-identity where applicable).
deterministic=(
  fig_1_1
  fig_1_2
  table_queue
  table_prom
  table_flagset
  table_doublebuffer
  table_gifford
  exp_availability
  exp_concurrency
  exp_reconfig
  exp_scale
  exp_chaos
  exp_explore
  exp_gossip
)

for bin in "${deterministic[@]}"; do
  echo "==> regen: $bin"
  "./target/release/$bin" > /dev/null
done

echo "==> stamping scripts/goldens.md5"
{
  echo "# md5s of the byte-stable golden artifacts."
  echo "# Regenerate with scripts/regen_goldens.sh; do not hand-edit."
  for bin in "${deterministic[@]}"; do
    md5sum "BENCH_${bin}.json"
  done
} > scripts/goldens.md5

echo "regen_goldens.sh: regenerated ${#deterministic[@]} artifacts"
git --no-pager diff --stat -- 'BENCH_*.json' scripts/goldens.md5 || true
