//! A replicated bank account: deposits commute, withdrawals can bounce,
//! and the final balance always audits — the motivating scenario for
//! typed (rather than read/write) concurrency control.
//!
//! ```text
//! cargo run --example replicated_bank
//! ```

use quorumcc::core::{minimal_dynamic_relation, minimal_static_relation};
use quorumcc::model::BEntry;
use quorumcc::prelude::*;
use quorumcc::replication::workload::{generate, WorkloadSpec};
use quorumcc_adts::account::{Account, AccountInv, AccountRes};
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    };

    println!("== Account dependency relations ==");
    println!("static (Theorem 6):");
    let s = minimal_static_relation::<Account>(bounds);
    println!("{}", s.relation);
    println!("dynamic (Theorem 10):");
    let d = minimal_dynamic_relation::<Account>(bounds);
    println!("{}", d.relation);

    // A teller workload: mostly deposits and withdrawals, some balance
    // checks.
    let workload = generate(
        WorkloadSpec {
            clients: 4,
            txns_per_client: 6,
            ops_per_txn: 2,
            objects: 1,
            seed: 2026,
        },
        |rng| match rng.gen_range(0..10) {
            0..=4 => AccountInv::Deposit(rng.gen_range(1..=3)),
            5..=8 => AccountInv::Withdraw(rng.gen_range(1..=3)),
            _ => AccountInv::Balance,
        },
    );

    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let rel = match mode {
            Mode::StaticTs | Mode::Hybrid => s.relation.clone(),
            Mode::Dynamic2pl => s.relation.union(&d.relation),
        };
        let run = RunBuilder::<Account>::new(5)
            .protocol(ProtocolConfig::new(Protocol::new(mode, rel)).txn_retries(5))
            .seed(11)
            .workload(workload.clone())
            .run()?;
        let t = run.stats();
        run.check_atomicity(bounds)
            .map_err(|o| format!("{mode}: non-atomic history for {o}"))?;

        // Audit: replay the committed deposits/withdrawals; the balance
        // must be non-negative and every bounced withdrawal justified.
        let h = run.history(ObjId(0));
        let mut balance: i64 = 0;
        let mut bounced = 0usize;
        for a in h.committed_actions() {
            for e in h.events_of(a) {
                match (e.inv, e.res) {
                    (AccountInv::Deposit(k), AccountRes::Ok) => balance += k as i64,
                    (AccountInv::Withdraw(k), AccountRes::Ok) => balance -= k as i64,
                    (AccountInv::Withdraw(_), AccountRes::Overdraft) => bounced += 1,
                    _ => {}
                }
            }
        }
        assert!(balance >= 0, "{mode}: negative audited balance {balance}");
        let ops = h
            .entries()
            .iter()
            .filter(|e| matches!(e, BEntry::Op { .. }))
            .count();
        println!(
            "{mode:>11}: committed={:<3} conflict-aborts={:<3} balance={balance} \
             bounced={bounced} committed-ops={ops}",
            t.committed, t.aborted_conflict
        );
    }
    println!("all audits passed");
    Ok(())
}
