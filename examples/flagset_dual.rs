//! The FlagSet's two minimal hybrid dependency relations, both run live:
//! either quorum-intersection choice — `Shift(3)` meeting `Shift(1)`
//! directly, or transitively through `Shift(2)` — yields an atomic
//! replicated object (§4's non-uniqueness, operationally).
//!
//! ```text
//! cargo run --example flagset_dual
//! ```

use quorumcc::core::certificates::{
    flagset_hybrid_relation_direct, flagset_hybrid_relation_transitive,
};
use quorumcc::prelude::*;
use quorumcc_adts::flagset::FlagSetInv;
use quorumcc_adts::FlagSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    };
    // One client drives the shift-register pipeline; a second audits with
    // Close at the end.
    let workload = || {
        vec![
            vec![Transaction {
                ops: vec![
                    (ObjId(0), FlagSetInv::Open),
                    (ObjId(0), FlagSetInv::Shift(1)),
                    (ObjId(0), FlagSetInv::Shift(2)),
                    (ObjId(0), FlagSetInv::Shift(3)),
                ],
            }],
            vec![Transaction {
                ops: vec![(ObjId(0), FlagSetInv::Close)],
            }],
        ]
    };

    for (name, rel) in [
        (
            "direct   (Shift(3) ≥ Shift(1))",
            flagset_hybrid_relation_direct(),
        ),
        (
            "transitive (Shift(2) ≥ Shift(1))",
            flagset_hybrid_relation_transitive(),
        ),
    ] {
        let report = RunBuilder::<FlagSet>::new(3)
            .protocol(ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel)).txn_retries(6))
            .seed(5)
            .workload(workload())
            .run()?;
        report
            .check_atomicity(bounds)
            .map_err(|o| format!("{name}: non-atomic history for {o}"))?;
        let h = report.history(ObjId(0));
        let close_result = h.entries().iter().find_map(|e| match e.event() {
            Some(ev) if ev.inv == FlagSetInv::Close => Some(ev.res),
            _ => None,
        });
        println!(
            "{name}: committed={} conflict-aborts={} Close observed {:?} — atomic ✓",
            report.stats().committed,
            report.stats().aborted_conflict,
            close_result
        );
    }
    println!(
        "\nBoth minimal relations work: the quorum constraints they compile to\n\
         differ (Shift(3)'s initial quorum meets Shift(1)'s final quorum directly,\n\
         or via Shift(2)'s log propagation), yet each is sufficient — the paper's\n\
         point that minimal hybrid dependency relations are not unique."
    );
    Ok(())
}
