//! Online reconfiguration, end to end: a 5-site PROM cluster loses a
//! site mid-run, the reactive policy replans quorums over the survivors,
//! a joint-then-stable epoch installs, and commits resume — the same run
//! with the policy off stays unavailable forever.
//!
//! ```text
//! cargo run --example reconfig_drill
//! ```

use quorumcc::core::certificates::prom_hybrid_relation;
use quorumcc::prelude::*;
use quorumcc::quorum::threshold;
use quorumcc_adts::prom::PromInv;
use quorumcc_adts::Prom;
use quorumcc_model::Classified;

const CRASH_AT: SimTime = 2_000;
const MAX_TIME: SimTime = 10_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rel = prom_hybrid_relation();
    let ops = Prom::op_classes();
    let evs = Prom::event_classes();
    let ta = threshold::optimize(&rel, 5, &ops, &evs, &["Read", "Write", "Seal"])?;

    println!("5-site PROM cluster, hybrid atomicity; site 4 dies at t = {CRASH_AT}.");
    println!("Each transaction writes then seals its own PROM (Seal needs every member).\n");

    for (label, policy) in [
        ("reconfiguration off", ReconfigPolicy::None),
        (
            "reactive reconfiguration",
            ReconfigPolicy::Reactive {
                detect_delay: 250,
                priority: vec!["Read", "Write", "Seal"],
            },
        ),
    ] {
        let mut faults = FaultPlan::none();
        faults.crash(4, CRASH_AT, MAX_TIME);
        let workload: Vec<Vec<Transaction<PromInv>>> = (0..2)
            .map(|c: u32| {
                (0..16)
                    .map(|j: u32| Transaction {
                        ops: vec![
                            (ObjId((c * 32 + j) as u16), PromInv::Write(j)),
                            (ObjId((c * 32 + j) as u16), PromInv::Seal),
                        ],
                    })
                    .collect()
            })
            .collect();
        let report = RunBuilder::<Prom>::new(5)
            .protocol(
                ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel.clone()))
                    .op_timeout(60)
                    .txn_retries(1),
            )
            .thresholds(ta.clone())
            .tuning(TuningConfig::default().think_time(300))
            .faults(faults)
            .max_time(MAX_TIME)
            .reconfig(policy)
            .workload(workload)
            .run()?;

        let t = report.stats();
        println!("{label}:");
        println!(
            "  committed {} / unavailable {} / stale-epoch retries {}",
            t.committed, t.aborted_unavailable, t.stale_retries
        );
        for r in report.reconfigs() {
            println!(
                "  epoch {} installed: started t = {}, committed t = {}",
                r.epoch, r.started, r.committed
            );
        }
        if report.reconfigs().is_empty() {
            println!("  (no epoch installed — the cluster never recovers)");
        }
        println!();
    }
    println!("The reactive run replans to (Read = 1, Write = 1, Seal = 4) over the");
    println!("four survivors; the frozen run keeps demanding the dead site forever.");
    Ok(())
}
