//! The §4 PROM analysis end-to-end: hybrid vs static constraints, optimal
//! quorum sizes, and what they mean for availability.
//!
//! ```text
//! cargo run --example prom_availability
//! ```

use quorumcc::core::certificates::{prom_hybrid_relation, prom_static_extra_pairs};
use quorumcc::core::minimal_static_relation;
use quorumcc::model::spec::ExploreBounds;
use quorumcc::model::Classified;
use quorumcc::quorum::{availability, threshold};
use quorumcc_adts::Prom;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = ExploreBounds::default();
    let ops = Prom::op_classes();
    let evs = Prom::event_classes();

    let hybrid = prom_hybrid_relation();
    let static_rel = minimal_static_relation::<Prom>(bounds).relation;

    println!("== PROM dependency relations (§4) ==");
    println!("hybrid ≥H:\n{hybrid}\n");
    println!("static ≥S (computed by Theorem 6):\n{static_rel}\n");
    println!(
        "extra static pairs (paper):\n{}\n",
        prom_static_extra_pairs()
    );

    println!("== Optimal quorum sizes, maximizing Read availability ==");
    println!(
        "{:>4} | {:^23} | {:^23}",
        "n", "hybrid (R, S, W)", "static (R, S, W)"
    );
    for n in [3u32, 5, 7] {
        let h = threshold::optimize(&hybrid, n, &ops, &evs, &["Read", "Write", "Seal"])?;
        let s = threshold::optimize(&static_rel, n, &ops, &evs, &["Read", "Write", "Seal"])?;
        println!(
            "{:>4} | ({:>2}, {:>2}, {:>2})          | ({:>2}, {:>2}, {:>2})",
            n,
            h.op_size_worst("Read", &evs),
            h.op_size_worst("Seal", &evs),
            h.op_size_worst("Write", &evs),
            s.op_size_worst("Read", &evs),
            s.op_size_worst("Seal", &evs),
            s.op_size_worst("Write", &evs),
        );
    }

    println!("\n== Write availability, n = 5, site-up probability sweep ==");
    let h = threshold::optimize(&hybrid, 5, &ops, &evs, &["Read", "Write", "Seal"])?;
    let s = threshold::optimize(&static_rel, 5, &ops, &evs, &["Read", "Write", "Seal"])?;
    println!("{:>6} | {:>12} | {:>12}", "p", "hybrid", "static");
    for p in [0.5, 0.7, 0.9, 0.95, 0.99, 0.999] {
        let ha = availability::op_availability_worst(&h, "Write", &evs, p)?;
        let sa = availability::op_availability_worst(&s, "Write", &evs, p)?;
        println!("{p:>6} | {ha:>12.6} | {sa:>12.6}");
    }
    println!(
        "\nHybrid atomicity keeps Write quorums at one site; static atomicity \
         forces them to all n — \"static atomicity significantly reduces the \
         availability of the Write operation\" (§4)."
    );
    Ok(())
}
