//! Quickstart: compute a data type's dependency relations, check the
//! paper's certificates, and run a small replicated cluster.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use quorumcc::core::{battery, certificates, minimal_static_relation};
use quorumcc::model::spec::ExploreBounds;
use quorumcc::replication::cluster::ClusterBuilder;
use quorumcc::replication::protocol::{Mode, Protocol};
use quorumcc::replication::types::ObjId;
use quorumcc::replication::Transaction;
use quorumcc_adts::queue::{Queue, QueueInv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    };

    // 1. The paper's theory, computed: minimal dependency relations.
    println!("== Dependency relations for the Queue (Theorems 6, 10, 11) ==");
    let report = battery::report::<Queue>(bounds);
    println!("{report}");

    // 2. The paper's certificates, re-checked.
    println!("== Paper certificates ==");
    for cert in certificates::all() {
        println!("{cert}");
    }

    // 3. A replicated queue over three repositories, hybrid atomicity.
    println!("== Replicated queue, hybrid protocol, 3 repositories ==");
    let rel = minimal_static_relation::<Queue>(bounds).relation; // Thm 4: ≥S is hybrid-valid
    let run = ClusterBuilder::<Queue>::new(3)
        .protocol(Protocol::new(Mode::Hybrid, rel))
        .seed(7)
        .workload(vec![vec![Transaction {
            ops: vec![
                (ObjId(0), QueueInv::Enq(10)),
                (ObjId(0), QueueInv::Enq(20)),
                (ObjId(0), QueueInv::Deq),
            ],
        }]])
        .run();
    let totals = run.totals();
    println!(
        "committed={} aborted={} ops={}",
        totals.committed,
        totals.aborted_conflict + totals.aborted_unavailable,
        totals.ops_completed
    );
    println!("captured history for obj0:");
    print!("{}", run.history(ObjId(0)));
    run.check_atomicity(bounds)
        .map_err(|o| format!("non-atomic history for {o}"))?;
    println!("atomicity check: OK");
    Ok(())
}
