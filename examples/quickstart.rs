//! Quickstart: compute a data type's dependency relations, check the
//! paper's certificates, and run a small replicated cluster.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use quorumcc::core::{battery, certificates, minimal_static_relation};
use quorumcc::prelude::*;
use quorumcc_adts::queue::{Queue, QueueInv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    };

    // 1. The paper's theory, computed: minimal dependency relations.
    println!("== Dependency relations for the Queue (Theorems 6, 10, 11) ==");
    let report = battery::report::<Queue>(bounds);
    println!("{report}");

    // 2. The paper's certificates, re-checked.
    println!("== Paper certificates ==");
    for cert in certificates::all() {
        println!("{cert}");
    }

    // 3. A replicated queue over three repositories, hybrid atomicity.
    println!("== Replicated queue, hybrid protocol, 3 repositories ==");
    let rel = minimal_static_relation::<Queue>(bounds).relation; // Thm 4: ≥S is hybrid-valid
    let run = RunBuilder::<Queue>::new(3)
        .protocol(ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel)))
        .seed(7)
        .trace(TraceConfig::unbounded())
        .workload(vec![vec![Transaction {
            ops: vec![
                (ObjId(0), QueueInv::Enq(10)),
                (ObjId(0), QueueInv::Enq(20)),
                (ObjId(0), QueueInv::Deq),
            ],
        }]])
        .run()?;
    let totals = run.stats();
    println!(
        "committed={} aborted={} ops={}",
        totals.committed,
        totals.aborted_conflict + totals.aborted_unavailable,
        totals.ops_completed
    );
    println!("captured history for obj0:");
    print!("{}", run.history(ObjId(0)));
    run.check_atomicity(bounds)
        .map_err(|o| format!("non-atomic history for {o}"))?;
    println!("atomicity check: OK");

    // 4. Observability: the same run, as a structured trace + telemetry.
    println!("== First ten trace events ==");
    for e in run
        .trace()
        .expect("tracing enabled")
        .events()
        .iter()
        .take(10)
    {
        println!("{e}");
    }
    let t = run.telemetry();
    println!(
        "telemetry: {} ops, {:.2} msgs/op, op latency {}",
        t.ops_completed,
        t.messages_per_op(),
        t.op_latency
    );
    Ok(())
}
