//! A partition drill: quorum consensus keeps the replicated object
//! serializable straight through a network split (unlike available-copies
//! schemes, §2), trading availability in the minority block.
//!
//! ```text
//! cargo run --example partition_drill
//! ```

use quorumcc::core::minimal_static_relation;
use quorumcc::prelude::*;
use quorumcc::replication::workload::{generate, WorkloadSpec};
use quorumcc_adts::queue::{Queue, QueueInv};
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    };
    let rel = minimal_static_relation::<Queue>(bounds).relation;

    let workload = |seed| {
        generate(
            WorkloadSpec {
                clients: 3,
                txns_per_client: 4,
                ops_per_txn: 2,
                objects: 1,
                seed,
            },
            |rng| {
                if rng.gen_bool(0.6) {
                    QueueInv::Enq(rng.gen_range(1..=9))
                } else {
                    QueueInv::Deq
                }
            },
        )
    };

    println!("5 repositories (ids 0-4), 3 clients (ids 5-7), hybrid protocol.");
    for (name, plan) in [
        ("healthy", FaultPlan::none()),
        ("repo 0 crashed for the whole run", {
            let mut p = FaultPlan::none();
            p.crash(0, 0, u64::MAX);
            p
        }),
        ("repos {0,1} partitioned away for t∈[0,400)", {
            let mut p = FaultPlan::none();
            p.partition([0, 1], 0, 400);
            p
        }),
        ("majority {0,1,2} isolated from clients for t∈[0,400)", {
            let mut p = FaultPlan::none();
            p.partition([0, 1, 2], 0, 400);
            p
        }),
    ] {
        let run = RunBuilder::<Queue>::new(5)
            .protocol(
                ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel.clone()))
                    .op_timeout(50)
                    .txn_retries(4),
            )
            .faults(plan)
            .seed(17)
            .workload(workload(17))
            .run()?;
        let t = run.stats();
        run.check_atomicity(bounds)
            .map_err(|o| format!("{name}: non-atomic history for {o}"))?;
        println!(
            "{name:>55}: committed={:<3} unavailable-aborts={:<3} messages={}",
            t.committed,
            t.aborted_unavailable,
            run.sim_stats().sent
        );
    }
    println!("\nEvery scenario stayed atomic; partitions cost availability only.");
    Ok(())
}
