//! The three atomicity mechanisms racing the same workload: commit rates,
//! conflict aborts, and wall-clock (simulated) completion times.
//!
//! ```text
//! cargo run --example atomicity_faceoff
//! ```

use quorumcc::core::{minimal_dynamic_relation, minimal_static_relation};
use quorumcc::prelude::*;
use quorumcc::replication::workload::{generate, WorkloadSpec};
use quorumcc_adts::queue::{Queue, QueueInv};
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    };
    let s_rel = minimal_static_relation::<Queue>(bounds).relation;
    let d_rel = s_rel.union(&minimal_dynamic_relation::<Queue>(bounds).relation);

    println!("Replicated queue, 3 repositories, 4 clients, enqueue-heavy.");
    println!(
        "{:>12} | {:>9} | {:>15} | {:>13} | {:>9}",
        "protocol", "committed", "conflict aborts", "unavailable", "end time"
    );

    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let rel = match mode {
            Mode::StaticTs | Mode::Hybrid => s_rel.clone(),
            Mode::Dynamic2pl => d_rel.clone(),
        };
        let mut committed = 0;
        let mut conflicts = 0;
        let mut unavailable = 0;
        let mut end = 0;
        for seed in 0..10u64 {
            let w = generate(
                WorkloadSpec {
                    clients: 4,
                    txns_per_client: 5,
                    ops_per_txn: 2,
                    objects: 1,
                    seed,
                },
                |rng| {
                    if rng.gen_bool(0.8) {
                        QueueInv::Enq(rng.gen_range(1..=100))
                    } else {
                        QueueInv::Deq
                    }
                },
            );
            let run = RunBuilder::<Queue>::new(3)
                .protocol(ProtocolConfig::new(Protocol::new(mode, rel.clone())).txn_retries(4))
                .seed(seed)
                .workload(w)
                .run()?;
            let t = run.stats();
            committed += t.committed;
            conflicts += t.aborted_conflict;
            unavailable += t.aborted_unavailable;
            end += run.sim_stats().end_time;
            run.check_atomicity(bounds)
                .map_err(|o| format!("{mode}: non-atomic history for {o}"))?;
        }
        println!(
            "{:>12} | {committed:>9} | {conflicts:>15} | {unavailable:>13} | {:>9}",
            mode.to_string(),
            end / 10
        );
    }
    println!(
        "\nHybrid allows concurrent enqueues (no Enq ≥ Enq pair); dynamic 2PL \
         must lock them (Theorem 11); static aborts latecomers. Every run's \
         history passed its atomicity check."
    );
    Ok(())
}
