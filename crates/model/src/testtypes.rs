//! Tiny reference data types used by this crate's tests and doc examples.
//!
//! The full battery of paper data types lives in `quorumcc-adts`; these
//! minimal types keep `quorumcc-model` self-contained (the ADT crate depends
//! on this one, not vice versa).

use crate::event::Event;
use crate::spec::{Classified, Enumerable, Sequential};

/// A last-writer-wins register over the domain `{0, 1, 2}` (0 is initial).
///
/// Operations: `Write(v)` returns the written value, `Read` returns the
/// current value.
#[derive(Debug)]
pub enum TestRegister {}

/// Invocations of [`TestRegister`]: `Some(v)` writes, `None` reads.
pub type RegInv = Option<u8>;

impl Sequential for TestRegister {
    type State = u8;
    type Inv = RegInv;
    type Res = u8;
    const NAME: &'static str = "TestRegister";

    fn initial() -> u8 {
        0
    }

    fn apply(s: &u8, inv: &RegInv) -> (u8, u8) {
        match inv {
            Some(v) => (*v, *v),
            None => (*s, *s),
        }
    }
}

impl Enumerable for TestRegister {
    fn invocations() -> Vec<RegInv> {
        vec![None, Some(1), Some(2)]
    }
}

impl Classified for TestRegister {
    fn op_class(inv: &RegInv) -> &'static str {
        match inv {
            Some(_) => "Write",
            None => "Read",
        }
    }

    fn res_class(_inv: &RegInv, _res: &u8) -> &'static str {
        "Ok"
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Write", "Read"]
    }

    fn event_classes() -> Vec<crate::event::EventClass> {
        vec![
            crate::event::EventClass::new("Write", "Ok"),
            crate::event::EventClass::new("Read", "Ok"),
        ]
    }
}

/// Shorthand: a `Write(v)` event.
pub fn reg_write(v: u8) -> Event<RegInv, u8> {
    Event::new(Some(v), v)
}

/// Shorthand: a `Read` event observing `v`.
pub fn reg_read(v: u8) -> Event<RegInv, u8> {
    Event::new(None, v)
}

/// An unbounded FIFO queue over items `{1, 2}` — the paper's running
/// example, truncated to a two-item alphabet (state growth is bounded by
/// exploration depth, not by the type).
#[derive(Debug, Clone, Copy)]
pub enum TestQueue {}

/// Invocations of [`TestQueue`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QInv {
    /// Enqueue an item.
    Enq(u8),
    /// Dequeue the oldest item.
    Deq,
}

/// Responses of [`TestQueue`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QRes {
    /// Normal termination of `Enq`.
    Ok,
    /// Normal termination of `Deq`, carrying the dequeued item.
    Item(u8),
    /// `Deq` on an empty queue.
    Empty,
}

impl std::fmt::Display for QInv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QInv::Enq(x) => write!(f, "Enq({x})"),
            QInv::Deq => write!(f, "Deq()"),
        }
    }
}

impl std::fmt::Display for QRes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QRes::Ok => write!(f, "Ok()"),
            QRes::Item(x) => write!(f, "Ok({x})"),
            QRes::Empty => write!(f, "Empty()"),
        }
    }
}

impl Sequential for TestQueue {
    type State = Vec<u8>;
    type Inv = QInv;
    type Res = QRes;
    const NAME: &'static str = "TestQueue";

    fn initial() -> Vec<u8> {
        Vec::new()
    }

    fn apply(s: &Vec<u8>, inv: &QInv) -> (QRes, Vec<u8>) {
        match inv {
            QInv::Enq(x) => {
                let mut t = s.clone();
                t.push(*x);
                (QRes::Ok, t)
            }
            QInv::Deq => {
                if s.is_empty() {
                    (QRes::Empty, s.clone())
                } else {
                    let mut t = s.clone();
                    let x = t.remove(0);
                    (QRes::Item(x), t)
                }
            }
        }
    }
}

impl Enumerable for TestQueue {
    fn invocations() -> Vec<QInv> {
        vec![QInv::Enq(1), QInv::Enq(2), QInv::Deq]
    }
}

impl Classified for TestQueue {
    fn op_class(inv: &QInv) -> &'static str {
        match inv {
            QInv::Enq(_) => "Enq",
            QInv::Deq => "Deq",
        }
    }

    fn res_class(_inv: &QInv, res: &QRes) -> &'static str {
        match res {
            QRes::Ok => "Ok",
            QRes::Item(_) => "Ok",
            QRes::Empty => "Empty",
        }
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Enq", "Deq"]
    }

    fn event_classes() -> Vec<crate::event::EventClass> {
        vec![
            crate::event::EventClass::new("Enq", "Ok"),
            crate::event::EventClass::new("Deq", "Ok"),
            crate::event::EventClass::new("Deq", "Empty"),
        ]
    }
}

/// Shorthand: an `Enq(x);Ok()` event.
pub fn enq(x: u8) -> Event<QInv, QRes> {
    Event::new(QInv::Enq(x), QRes::Ok)
}

/// Shorthand: a `Deq();Ok(x)` event.
pub fn deq(x: u8) -> Event<QInv, QRes> {
    Event::new(QInv::Deq, QRes::Item(x))
}

/// Shorthand: a `Deq();Empty()` event.
pub fn deq_empty() -> Event<QInv, QRes> {
    Event::new(QInv::Deq, QRes::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;

    #[test]
    fn register_semantics() {
        assert!(serial::is_legal::<TestRegister>(&[
            reg_write(1),
            reg_read(1),
            reg_write(2),
            reg_read(2),
        ]));
        assert!(!serial::is_legal::<TestRegister>(&[reg_read(1)]));
    }

    #[test]
    fn queue_semantics_fifo() {
        assert!(serial::is_legal::<TestQueue>(&[
            enq(1),
            enq(2),
            deq(1),
            deq(2),
            deq_empty(),
        ]));
        assert!(!serial::is_legal::<TestQueue>(&[enq(1), enq(2), deq(2)]));
    }
}
