//! Events — invocation/response pairs — and their schema classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An *event* is an operation execution: an invocation paired with the
/// response the object returned (§3.1 of the paper).
///
/// Exceptional outcomes are ordinary responses (`Deq(); Empty()` is an event
/// whose response is `Empty`), so every invocation yields an event in every
/// state — specifications are total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Event<I, R> {
    /// The invocation part (operation name plus arguments).
    pub inv: I,
    /// The response part (normal result or signalled exception).
    pub res: R,
}

impl<I, R> Event<I, R> {
    /// Pairs an invocation with its response.
    pub fn new(inv: I, res: R) -> Self {
        Event { inv, res }
    }
}

impl<I: fmt::Display, R: fmt::Display> fmt::Display for Event<I, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{};{}", self.inv, self.res)
    }
}

/// The *schema class* of an event: operation name plus response kind, with
/// arguments abstracted away.
///
/// Dependency relations in the paper are stated between invocation classes
/// and event classes — `Enq(x) ≥ Deq();Ok(y)` constrains *every* `Enq`
/// against *every* normal `Deq`, whatever the items involved. Quorum
/// assignments likewise assign quorums per class, not per concrete value.
///
/// # Example
///
/// ```
/// use quorumcc_model::EventClass;
/// let c = EventClass::new("Deq", "Ok");
/// assert_eq!(c.to_string(), "Deq/Ok");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventClass {
    /// Operation name, e.g. `"Enq"`.
    pub op: &'static str,
    /// Response kind, e.g. `"Ok"` or `"Empty"`.
    pub res: &'static str,
}

impl EventClass {
    /// Builds an event class from an operation name and a response kind.
    pub fn new(op: &'static str, res: &'static str) -> Self {
        EventClass { op, res }
    }
}

impl fmt::Display for EventClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.op, self.res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_display_matches_paper_notation() {
        let e = Event::new("Enq(x)", "Ok()");
        assert_eq!(e.to_string(), "Enq(x);Ok()");
    }

    #[test]
    fn event_class_equality_ignores_nothing() {
        assert_eq!(EventClass::new("Deq", "Ok"), EventClass::new("Deq", "Ok"));
        assert_ne!(
            EventClass::new("Deq", "Ok"),
            EventClass::new("Deq", "Empty")
        );
    }

    #[test]
    fn event_is_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Event::new(1, 2));
        s.insert(Event::new(1, 2));
        assert_eq!(s.len(), 1);
        assert!(Event::new(1, 2) < Event::new(2, 0));
    }
}
