//! The three local atomicity properties, decided.
//!
//! * **Static atomicity** (Definition 3): committed actions serializable in
//!   the order of their `Begin` events — the property behind timestamping
//!   mechanisms (Reed, SWALLOW).
//! * **Hybrid atomicity** (Definition 3): committed actions serializable in
//!   the order of their `Commit` events — the property behind hybrid
//!   locking/timestamp mechanisms (Avalon).
//! * **Strong dynamic atomicity** (Definition 7): serializable in *every*
//!   order consistent with the `precedes` order, with all serializations
//!   equivalent — the property behind two-phase locking (Argus, TABS).
//!
//! `Static(T)` / `Hybrid(T)` / `Dynamic(T)` — the *largest prefix-closed,
//! on-line* behavioral specifications with each property — are decided by
//! [`in_static_spec`], [`in_hybrid_spec`] and [`in_dynamic_spec`]. The
//! "on-line" closure quantifies over committing arbitrary subsets of active
//! actions at every prefix, which is exactly how the paper's
//! static/hybrid/dynamic *serializations* are defined.

use crate::action::ActionId;
use crate::behavioral::BHistory;
use crate::serial::{self, SerialHistory};
use crate::spec::{equivalent_states, Enumerable, ExploreBounds, Sequential};

/// Builds the serial history obtained by executing the actions of `order`
/// one after another (each action's events in their execution order).
///
/// Actions of `h` not listed in `order` are dropped.
pub fn serialize<S: Sequential>(
    h: &BHistory<S::Inv, S::Res>,
    order: &[ActionId],
) -> SerialHistory<S::Inv, S::Res> {
    let mut out = Vec::new();
    for a in order {
        out.extend(h.events_of(*a));
    }
    out
}

/// Enumerates the subsets of `items` (including the empty set).
fn subsets<T: Copy>(items: &[T]) -> impl Iterator<Item = Vec<T>> + '_ {
    (0u64..(1u64 << items.len())).map(move |mask| {
        items
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, x)| *x)
            .collect()
    })
}

/// Heap's algorithm: all permutations of `items`.
fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    let n = work.len();
    permute_rec(&mut work, n, &mut out);
    out
}

fn permute_rec<T: Clone>(work: &mut [T], k: usize, out: &mut Vec<Vec<T>>) {
    if k <= 1 {
        out.push(work.to_vec());
        return;
    }
    for i in 0..k {
        permute_rec(work, k - 1, out);
        if k.is_multiple_of(2) {
            work.swap(i, k - 1);
        } else {
            work.swap(0, k - 1);
        }
    }
}

// ------------------------------------------------------------------------
// Static atomicity
// ------------------------------------------------------------------------

/// The static serialization of `h` that additionally commits `extra`
/// active actions: committed ∪ extra, in Begin order.
pub fn static_serialization<S: Sequential>(
    h: &BHistory<S::Inv, S::Res>,
    extra: &[ActionId],
) -> SerialHistory<S::Inv, S::Res> {
    let order: Vec<ActionId> = h
        .actions()
        .into_iter()
        .filter(|a| h.status(*a).is_committed() || extra.contains(a))
        .collect();
    serialize::<S>(h, &order)
}

/// Whether every static serialization of `h` *itself* is legal (the single
/// on-line step; does not examine proper prefixes).
pub fn static_step_ok<S: Sequential>(h: &BHistory<S::Inv, S::Res>) -> bool {
    let active = h.active_actions();
    let ok =
        subsets(&active).all(|extra| serial::is_legal::<S>(&static_serialization::<S>(h, &extra)));
    ok
}

/// Membership in `Static(T)`: every prefix passes [`static_step_ok`].
///
/// # Example
///
/// ```
/// use quorumcc_model::{atomicity, testtypes::*, BHistory};
///
/// let mut h = BHistory::new();
/// h.begin(0);
/// h.begin(1);
/// h.op_event(1, enq(1));      // B enqueues first …
/// h.op_event(0, enq(2));      // … but A began first.
/// h.commit(0);
/// h.commit(1);
/// // Begin-order serialization is Enq(2), Enq(1) — so a Deq must see 2
/// // first under static atomicity; the raw history is nonetheless in
/// // Static(TestQueue) because both enqueues are unconditionally legal.
/// assert!(atomicity::in_static_spec::<TestQueue>(&h));
/// ```
pub fn in_static_spec<S: Sequential>(h: &BHistory<S::Inv, S::Res>) -> bool {
    (0..=h.len()).all(|n| static_step_ok::<S>(&h.prefix(n)))
}

// ------------------------------------------------------------------------
// Hybrid atomicity
// ------------------------------------------------------------------------

/// Whether every hybrid serialization of `h` is legal: committed actions in
/// Commit order, followed by each permutation of each subset of active
/// actions (the orders in which they could commit next).
pub fn hybrid_step_ok<S: Sequential>(h: &BHistory<S::Inv, S::Res>) -> bool {
    let committed = h.committed_actions();
    let base = serialize::<S>(h, &committed);
    // Every serialization below shares `base` as a literal prefix, so replay
    // it once and resume each tail from its end state — replay is a fold, so
    // replay(base ++ tail) = replay_from(replay(base), tail).
    let base_state = match serial::replay::<S>(&base) {
        Some(s) => s,
        None => return false,
    };
    let active = h.active_actions();
    let mut tail = Vec::new();
    let ok = subsets(&active).all(|extra| {
        if extra.is_empty() {
            return true; // base already checked
        }
        permutations(&extra).into_iter().all(|perm| {
            tail.clear();
            for a in &perm {
                tail.extend(h.events_of(*a));
            }
            serial::replay_from::<S>(&base_state, &tail).is_some()
        })
    });
    ok
}

/// Membership in `Hybrid(T)`: every prefix passes [`hybrid_step_ok`].
pub fn in_hybrid_spec<S: Sequential>(h: &BHistory<S::Inv, S::Res>) -> bool {
    (0..=h.len()).all(|n| hybrid_step_ok::<S>(&h.prefix(n)))
}

/// End state of `h`'s committed-base serialization (committed actions in
/// Commit order), if that serialization is legal.
///
/// Appending a `Begin` or an `Op` entry never changes the committed set,
/// so the base state of such an extension equals its parent's — the
/// verifier computes it once per view and re-checks only the active part
/// of each extension via [`hybrid_step_ok_from_base`].
pub fn hybrid_base_state<S: Sequential>(h: &BHistory<S::Inv, S::Res>) -> Option<S::State> {
    let committed = h.committed_actions();
    serial::replay::<S>(&serialize::<S>(h, &committed))
}

/// The active half of [`hybrid_step_ok`], given the committed base's end
/// state: every permutation of every subset of active actions must replay
/// legally from `base`.
///
/// Walks the partial-permutation tree depth-first, resuming each node from
/// its parent's end state — every (subset, permutation) pair of the
/// quantifier is exactly one tree node, checked without re-replaying its
/// shared prefix. Agrees with `hybrid_step_ok` whenever
/// `base = hybrid_base_state(h)`.
pub fn hybrid_step_ok_from_base<S: Sequential>(
    h: &BHistory<S::Inv, S::Res>,
    base: &S::State,
) -> bool {
    let active = h.active_actions();
    let events: Vec<Vec<crate::event::Event<S::Inv, S::Res>>> =
        active.iter().map(|a| h.events_of(*a)).collect();
    fn rec<S: Sequential>(
        events: &[Vec<crate::event::Event<S::Inv, S::Res>>],
        remaining: &mut Vec<usize>,
        state: &S::State,
    ) -> bool {
        for i in 0..remaining.len() {
            let k = remaining.remove(i);
            let ok = match serial::replay_from::<S>(state, &events[k]) {
                None => false,
                Some(next) => rec::<S>(events, remaining, &next),
            };
            remaining.insert(i, k);
            if !ok {
                return false;
            }
        }
        true
    }
    let mut remaining: Vec<usize> = (0..events.len()).collect();
    rec::<S>(&events, &mut remaining, base)
}

// ------------------------------------------------------------------------
// Strong dynamic atomicity
// ------------------------------------------------------------------------

/// Enumerates every linearization of `actions` consistent with the
/// `precedes` order of `h`, calling `f` on each; stops early (returning
/// `false`) if `f` does.
fn for_each_linearization<I: Clone, R: Clone>(
    h: &BHistory<I, R>,
    actions: &[ActionId],
    f: &mut impl FnMut(&[ActionId]) -> bool,
) -> bool {
    fn rec<I: Clone, R: Clone>(
        h: &BHistory<I, R>,
        remaining: &mut Vec<ActionId>,
        chosen: &mut Vec<ActionId>,
        f: &mut impl FnMut(&[ActionId]) -> bool,
    ) -> bool {
        if remaining.is_empty() {
            return f(chosen);
        }
        for i in 0..remaining.len() {
            let cand = remaining[i];
            // `cand` may come next iff no remaining action precedes it.
            let blocked = remaining
                .iter()
                .any(|other| *other != cand && h.precedes(*other, cand));
            if blocked {
                continue;
            }
            remaining.remove(i);
            chosen.push(cand);
            let ok = rec(h, remaining, chosen, f);
            chosen.pop();
            remaining.insert(i, cand);
            if !ok {
                return false;
            }
        }
        true
    }
    let mut remaining = actions.to_vec();
    let mut chosen = Vec::new();
    rec(h, &mut remaining, &mut chosen, f)
}

/// Whether every dynamic serialization of `h` (for every subset of active
/// actions committed, every linearization consistent with `precedes`) is
/// legal, and — per subset — all such serializations are equivalent.
pub fn dynamic_step_ok<S: Enumerable>(h: &BHistory<S::Inv, S::Res>, bounds: ExploreBounds) -> bool {
    dynamic_step_ok_with::<S>(h, &mut |a, b| equivalent_states::<S>(a, b, bounds))
}

/// [`dynamic_step_ok`] with a caller-supplied state-equivalence oracle.
///
/// The oracle must agree with [`equivalent_states`] at some bounds; callers
/// use this hook to share a memoized equivalence cache across many step
/// checks (see `quorumcc_model::memo::SpecCache`).
pub fn dynamic_step_ok_with<S: Sequential>(
    h: &BHistory<S::Inv, S::Res>,
    equiv: &mut impl FnMut(&S::State, &S::State) -> bool,
) -> bool {
    let committed = h.committed_actions();
    let active = h.active_actions();
    for extra in subsets(&active) {
        let mut all: Vec<ActionId> = committed.clone();
        all.extend(extra);
        let mut reference: Option<S::State> = None;
        let ok = for_each_linearization(h, &all, &mut |order| {
            let ser = serialize::<S>(h, order);
            match serial::replay::<S>(&ser) {
                None => false,
                Some(end) => match &reference {
                    None => {
                        reference = Some(end);
                        true
                    }
                    Some(r) => equiv(r, &end),
                },
            }
        });
        if !ok {
            return false;
        }
    }
    true
}

/// Membership in `Dynamic(T)`: every prefix passes [`dynamic_step_ok`].
///
/// Strong dynamic atomicity implies hybrid atomicity — the `precedes` order
/// is compatible with Commit order — so `Dynamic(T) ⊆ Hybrid(T)`; the
/// property tests in this crate and in `quorumcc-core` exercise that
/// containment on random histories.
pub fn in_dynamic_spec<S: Enumerable>(h: &BHistory<S::Inv, S::Res>, bounds: ExploreBounds) -> bool {
    (0..=h.len()).all(|n| dynamic_step_ok::<S>(&h.prefix(n), bounds))
}

// ------------------------------------------------------------------------
// Committed-subhistory checks (Definition 3 directly)
// ------------------------------------------------------------------------
//
// `in_*_spec` decide membership in the *idealized* behavioral
// specifications, which are on-line: every active action must remain
// committable at every prefix. Real mechanisms instead let conflicts
// proceed until detection and then *abort* — so executions of a correct
// implementation satisfy Definition 3 on their committed subhistory
// without every prefix being on-line. These checkers are what end-to-end
// tests of an implementation should use.

/// Definition 3, static half: the committed actions of `h` serialize
/// legally in Begin order.
pub fn committed_static_atomic<S: Sequential>(h: &BHistory<S::Inv, S::Res>) -> bool {
    serial::is_legal::<S>(&static_serialization::<S>(h, &[]))
}

/// Definition 3, hybrid half: the committed actions of `h` serialize
/// legally in Commit order.
pub fn committed_hybrid_atomic<S: Sequential>(h: &BHistory<S::Inv, S::Res>) -> bool {
    let committed = h.committed_actions();
    serial::is_legal::<S>(&serialize::<S>(h, &committed))
}

/// Definition 7 on the committed subhistory: every linearization of the
/// committed actions consistent with `precedes` is legal, and all such
/// serializations are equivalent.
pub fn committed_dynamic_atomic<S: Enumerable>(
    h: &BHistory<S::Inv, S::Res>,
    bounds: ExploreBounds,
) -> bool {
    let committed = h.committed_actions();
    let mut reference: Option<S::State> = None;
    for_each_linearization(h, &committed, &mut |order| {
        let ser = serialize::<S>(h, order);
        match serial::replay::<S>(&ser) {
            None => false,
            Some(end) => match &reference {
                None => {
                    reference = Some(end);
                    true
                }
                Some(r) => equivalent_states::<S>(r, &end, bounds),
            },
        }
    })
}

// ------------------------------------------------------------------------
// Plain atomicity (some serialization order exists)
// ------------------------------------------------------------------------

/// Whether the committed subhistory of `h` is serializable in *some* order
/// (the baseline notion of atomicity, §3.1).
pub fn is_atomic<S: Sequential>(h: &BHistory<S::Inv, S::Res>) -> bool {
    let committed = h.committed_actions();
    permutations(&committed)
        .into_iter()
        .any(|order| serial::is_legal::<S>(&serialize::<S>(h, &order)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testtypes::*;

    type QH = BHistory<QInv, QRes>;

    fn bounds() -> ExploreBounds {
        ExploreBounds::default()
    }

    /// The paper's §3.1 example: A enqueues x, B enqueues y, A commits, B
    /// dequeues x, B commits.
    fn paper_history() -> QH {
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1));
        h.begin(1);
        h.op_event(1, enq(2));
        h.commit(0);
        h.op_event(1, deq(1));
        h.commit(1);
        h
    }

    #[test]
    fn paper_history_is_static_and_hybrid_but_not_dynamic() {
        let h = paper_history();
        assert!(is_atomic::<TestQueue>(&h));
        assert!(in_static_spec::<TestQueue>(&h));
        assert!(in_hybrid_spec::<TestQueue>(&h));
        // The two enqueues run concurrently: strong dynamic atomicity
        // demands both serialization orders work equivalently, and queues
        // [x,y] vs [y,x] differ — exactly why locking schemes must make
        // Enq conflict with Enq (Theorem 11).
        assert!(!in_dynamic_spec::<TestQueue>(&h, bounds()));
    }

    #[test]
    fn aborted_actions_leave_no_trace() {
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1));
        h.abort(0);
        h.begin(1);
        h.op_event(1, deq_empty());
        h.commit(1);
        assert!(in_static_spec::<TestQueue>(&h));
        assert!(in_hybrid_spec::<TestQueue>(&h));
        assert!(in_dynamic_spec::<TestQueue>(&h, bounds()));
    }

    /// Commit order ≠ Begin order separates hybrid from static.
    #[test]
    fn hybrid_but_not_static_history() {
        // B dequeues Empty and commits while A (which began earlier) later
        // enqueues. Commit order B,A is legal; Begin order A,B puts the
        // enqueue before the empty dequeue — illegal.
        let mut h = QH::new();
        h.begin(0); // A
        h.begin(1); // B
        h.op_event(1, deq_empty());
        h.commit(1);
        h.op_event(0, enq(1));
        h.commit(0);
        assert!(in_hybrid_spec::<TestQueue>(&h));
        assert!(!in_static_spec::<TestQueue>(&h));
    }

    /// Begin order ≠ Commit order the other way separates static from hybrid.
    #[test]
    fn static_but_not_hybrid_history() {
        // Two concurrent enqueues commit in the order B,A (opposite to their
        // Begin order); C then dequeues item 1 — consistent with Begin
        // order A,B but not with Commit order B,A.
        let mut h = QH::new();
        h.begin(0); // A
        h.op_event(0, enq(1));
        h.begin(1); // B
        h.op_event(1, enq(2));
        h.commit(1); // B commits first!
        h.commit(0);
        h.begin(2); // C
        h.op_event(2, deq(1));
        h.commit(2);
        assert!(!in_hybrid_spec::<TestQueue>(&h));
        assert!(in_static_spec::<TestQueue>(&h));
    }

    /// Dynamic atomicity demands *all* precedes-consistent orders work.
    #[test]
    fn hybrid_but_not_dynamic_history() {
        // Two concurrent committed enqueues of different items: precedes
        // does not order them, so both serializations must be equivalent —
        // they are not (queue [1,2] vs [2,1]).
        let mut h = QH::new();
        h.begin(0);
        h.begin(1);
        h.op_event(0, enq(1));
        h.op_event(1, enq(2));
        h.commit(0);
        h.commit(1);
        assert!(in_hybrid_spec::<TestQueue>(&h));
        assert!(in_static_spec::<TestQueue>(&h));
        assert!(!in_dynamic_spec::<TestQueue>(&h, bounds()));
    }

    #[test]
    fn dynamic_accepts_precedes_ordered_enqueues() {
        // Same two enqueues, but B's op comes after A committed: precedes
        // pins the order, so dynamic atomicity holds.
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1));
        h.commit(0);
        h.begin(1);
        h.op_event(1, enq(2));
        h.commit(1);
        assert!(in_dynamic_spec::<TestQueue>(&h, bounds()));
    }

    /// The on-line requirement: an active action must be *committable* at
    /// every prefix.
    #[test]
    fn online_closure_rejects_uncommittable_active_action() {
        // A (active) dequeued an item that only B (active) enqueued; if A
        // alone commits under hybrid order, Deq();Ok(1) has no Enq before
        // it.
        let mut h = QH::new();
        h.begin(1);
        h.op_event(1, enq(1)); // B enqueues, stays active
        h.begin(0);
        h.op_event(0, deq(1)); // A dequeues B's item — dirty read
        assert!(!in_hybrid_spec::<TestQueue>(&h));
        assert!(!in_static_spec::<TestQueue>(&h));
        assert!(!in_dynamic_spec::<TestQueue>(&h, bounds()));
    }

    #[test]
    fn serialize_groups_by_action_in_given_order() {
        let h = paper_history();
        let ser = serialize::<TestQueue>(&h, &[ActionId(0), ActionId(1)]);
        assert_eq!(ser, vec![enq(1), enq(2), deq(1)]);
        let ser_rev = serialize::<TestQueue>(&h, &[ActionId(1), ActionId(0)]);
        assert_eq!(ser_rev, vec![enq(2), deq(1), enq(1)]);
    }

    #[test]
    fn empty_history_is_in_every_spec() {
        let h = QH::new();
        assert!(in_static_spec::<TestQueue>(&h));
        assert!(in_hybrid_spec::<TestQueue>(&h));
        assert!(in_dynamic_spec::<TestQueue>(&h, bounds()));
        assert!(is_atomic::<TestQueue>(&h));
    }

    #[test]
    fn committed_checks_ignore_active_and_aborted() {
        // An active action with an impossible event fails the online specs
        // but not the committed checks.
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1));
        h.commit(0);
        h.begin(1);
        h.op_event(1, deq(2)); // impossible; stays active
        assert!(committed_static_atomic::<TestQueue>(&h));
        assert!(committed_hybrid_atomic::<TestQueue>(&h));
        assert!(committed_dynamic_atomic::<TestQueue>(&h, bounds()));
        assert!(!in_static_spec::<TestQueue>(&h));
    }

    #[test]
    fn committed_checks_follow_their_orders() {
        // Begin order A,B; commit order B,A; only begin order is legal.
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1));
        h.begin(1);
        h.op_event(1, enq(2));
        h.commit(1);
        h.commit(0);
        h.begin(2);
        h.op_event(2, deq(1));
        h.commit(2);
        assert!(committed_static_atomic::<TestQueue>(&h));
        assert!(!committed_hybrid_atomic::<TestQueue>(&h));
    }

    #[test]
    fn committed_dynamic_requires_equivalent_linearizations() {
        // Two entirely concurrent committed enqueues of different items.
        let mut h = QH::new();
        h.begin(0);
        h.begin(1);
        h.op_event(0, enq(1));
        h.op_event(1, enq(2));
        h.commit(0);
        h.commit(1);
        assert!(committed_hybrid_atomic::<TestQueue>(&h));
        assert!(!committed_dynamic_atomic::<TestQueue>(&h, bounds()));
        // Same items → equivalent → fine.
        let mut h2 = QH::new();
        h2.begin(0);
        h2.begin(1);
        h2.op_event(0, enq(1));
        h2.op_event(1, enq(1));
        h2.commit(0);
        h2.commit(1);
        assert!(committed_dynamic_atomic::<TestQueue>(&h2, bounds()));
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations::<u8>(&[]).len(), 1);
    }

    #[test]
    fn subsets_count() {
        assert_eq!(subsets(&[1, 2, 3]).count(), 8);
    }

    #[test]
    fn linearizations_respect_precedes() {
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1));
        h.commit(0);
        h.begin(1);
        h.op_event(1, enq(2)); // after A's commit → A precedes B
        h.commit(1);
        let mut seen = Vec::new();
        for_each_linearization(&h, &[ActionId(0), ActionId(1)], &mut |o| {
            seen.push(o.to_vec());
            true
        });
        assert_eq!(seen, vec![vec![ActionId(0), ActionId(1)]]);
    }
}
