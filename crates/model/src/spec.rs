//! Sequential specifications as deterministic, total state machines, plus
//! the state-space utilities every decision procedure is built on.

use crate::event::{Event, EventClass};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

/// A sequential specification for a data type (§3.1).
///
/// The paper's types — Queue, PROM, FlagSet, DoubleBuffer — are all
/// *deterministic* and *total*: in every state every invocation has exactly
/// one response (exceptions are responses, not failures). A serial history
/// is **legal** exactly when replaying it from [`Sequential::initial`]
/// reproduces every recorded response.
///
/// Implementors are zero-sized marker types; all methods are associated
/// functions.
///
/// # Example
///
/// ```
/// use quorumcc_model::Sequential;
///
/// /// A saturating counter capped at 3.
/// #[derive(Debug)]
/// enum Cap3 {}
/// impl Sequential for Cap3 {
///     type State = u8;
///     type Inv = ();          // only one operation: increment
///     type Res = u8;          // returns the new value
///     const NAME: &'static str = "Cap3";
///     fn initial() -> u8 { 0 }
///     fn apply(s: &u8, _inv: &()) -> (u8, u8) {
///         let n = (*s + 1).min(3);
///         (n, n)
///     }
/// }
/// assert_eq!(Cap3::apply(&2, &()), (3, 3));
/// ```
pub trait Sequential {
    /// Abstract state of the object (`Send + Sync` so decision procedures
    /// can fan out across worker threads; `'static` so replicated-log
    /// checkpoints can carry type-erased state summaries).
    type State: Clone + Eq + Hash + std::fmt::Debug + Send + Sync + 'static;
    /// Invocations (operation name + arguments).
    type Inv: Clone + Eq + Hash + std::fmt::Debug + Send + Sync + 'static;
    /// Responses (normal results and signalled exceptions).
    type Res: Clone + Eq + Hash + std::fmt::Debug + Send + Sync + 'static;

    /// Human-readable type name, e.g. `"Queue"`.
    const NAME: &'static str;

    /// The initial state of a freshly created object.
    fn initial() -> Self::State;

    /// Executes `inv` in `state`, returning the response and successor state.
    ///
    /// Must be total and deterministic.
    fn apply(state: &Self::State, inv: &Self::Inv) -> (Self::Res, Self::State);
}

/// A sequential specification with a finite invocation alphabet.
///
/// Decision procedures enumerate histories over this alphabet; data types
/// with parameters instantiate them over a small value domain (e.g. a Queue
/// over two distinct items), which is sufficient to expose every dependency
/// the paper discusses.
pub trait Enumerable: Sequential {
    /// The (finite) invocation alphabet used for enumeration.
    fn invocations() -> Vec<Self::Inv>;
}

/// Classifies concrete invocations and events into schema classes.
///
/// Dependency relations and quorum assignments are stated per class (see
/// [`EventClass`]); this trait provides the abstraction map.
pub trait Classified: Sequential {
    /// The class (operation name) of an invocation, e.g. `"Enq"`.
    fn op_class(inv: &Self::Inv) -> &'static str;

    /// The response kind of an event, e.g. `"Ok"` or `"Empty"`.
    fn res_class(inv: &Self::Inv, res: &Self::Res) -> &'static str;

    /// The full event class of an event.
    fn event_class(inv: &Self::Inv, res: &Self::Res) -> EventClass {
        EventClass::new(Self::op_class(inv), Self::res_class(inv, res))
    }

    /// All operation classes of the type, in declaration order.
    fn op_classes() -> Vec<&'static str>;

    /// All event classes the type can produce, in declaration order.
    fn event_classes() -> Vec<EventClass>;
}

/// Exploration bounds for the state-space utilities.
///
/// All procedures in this crate and in `quorumcc-core` are exhaustive *up to
/// these bounds*; results carry the bounds so reports can state them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreBounds {
    /// Maximum BFS depth from the initial state when collecting reachable
    /// states (bounds history length for infinite-state types like Queue).
    pub depth: usize,
    /// Hard cap on the number of states collected.
    pub max_states: usize,
    /// Hard cap on product-state pairs/tuples visited by the equivalence and
    /// interference searches.
    pub budget: usize,
}

impl Default for ExploreBounds {
    fn default() -> Self {
        ExploreBounds {
            depth: 8,
            max_states: 4_096,
            budget: 2_000_000,
        }
    }
}

impl ExploreBounds {
    /// Small bounds for quick tests.
    pub fn small() -> Self {
        ExploreBounds {
            depth: 5,
            max_states: 512,
            budget: 200_000,
        }
    }
}

/// Applies the event `ev` to `state`.
///
/// Returns the successor state if the recorded response matches what the
/// specification produces (i.e. the event is *legal* in `state`), `None`
/// otherwise.
pub fn apply_event<S: Sequential>(
    state: &S::State,
    ev: &Event<S::Inv, S::Res>,
) -> Option<S::State> {
    let (res, next) = S::apply(state, &ev.inv);
    (res == ev.res).then_some(next)
}

/// Collects the states reachable from [`Sequential::initial`] within
/// `bounds.depth` steps (breadth-first, deduplicated, capped at
/// `bounds.max_states`).
pub fn reachable_states<S: Enumerable>(bounds: ExploreBounds) -> Vec<S::State> {
    let invs = S::invocations();
    let mut seen: HashSet<S::State> = HashSet::new();
    let mut order: Vec<S::State> = Vec::new();
    let mut frontier = VecDeque::new();
    let init = S::initial();
    seen.insert(init.clone());
    order.push(init.clone());
    frontier.push_back((init, 0usize));
    while let Some((s, d)) = frontier.pop_front() {
        if d >= bounds.depth {
            continue;
        }
        for inv in &invs {
            let (_, next) = S::apply(&s, inv);
            if seen.len() >= bounds.max_states {
                return order;
            }
            if seen.insert(next.clone()) {
                order.push(next.clone());
                frontier.push_back((next, d + 1));
            }
        }
    }
    order
}

/// Every event `[inv; res]` that is legal in *some* state of `states`.
pub fn all_events<S: Enumerable>(states: &[S::State]) -> Vec<Event<S::Inv, S::Res>> {
    let invs = S::invocations();
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for s in states {
        for inv in &invs {
            let (res, _) = S::apply(s, inv);
            let ev = Event::new(inv.clone(), res);
            if seen.insert(ev.clone()) {
                out.push(ev);
            }
        }
    }
    out
}

/// Decides whether two states are *equivalent* — indistinguishable by any
/// future computation (`h ≡ h'` in the paper's notation, decided on the
/// states the histories end in).
///
/// Uses Hopcroft–Karp style coinduction over the product automaton: assume
/// pairs equal, search for a distinguishing invocation. Exact whenever the
/// reachable product graph fits in `bounds.budget` pairs; falls back to
/// plain state equality (sound, possibly incomplete) if the budget is
/// exhausted.
pub fn equivalent_states<S: Enumerable>(a: &S::State, b: &S::State, bounds: ExploreBounds) -> bool {
    if a == b {
        return true;
    }
    let invs = S::invocations();
    let mut assumed: HashSet<(S::State, S::State)> = HashSet::new();
    let mut work = VecDeque::new();
    work.push_back((a.clone(), b.clone()));
    assumed.insert((a.clone(), b.clone()));
    while let Some((x, y)) = work.pop_front() {
        for inv in &invs {
            let (rx, nx) = S::apply(&x, inv);
            let (ry, ny) = S::apply(&y, inv);
            if rx != ry {
                return false;
            }
            if nx != ny {
                if assumed.len() >= bounds.budget {
                    // Budget exhausted: conservative fallback.
                    return false;
                }
                if assumed.insert((nx.clone(), ny.clone())) {
                    work.push_back((nx, ny));
                }
            }
        }
    }
    true
}

/// Decides whether two events *commute* (Definition 8 of the paper):
/// for every reachable state where both are legal, both execution orders
/// must be legal and end in equivalent states.
///
/// `states` should come from [`reachable_states`] — commutativity is
/// quantified over all serial histories `h`, i.e. over all reachable states.
pub fn events_commute<S: Enumerable>(
    e1: &Event<S::Inv, S::Res>,
    e2: &Event<S::Inv, S::Res>,
    states: &[S::State],
    bounds: ExploreBounds,
) -> bool {
    for s in states {
        let s1 = apply_event::<S>(s, e1);
        let s2 = apply_event::<S>(s, e2);
        let (Some(s1), Some(s2)) = (s1, s2) else {
            continue; // not both legal here
        };
        // Both orders must stay legal…
        let (Some(s12), Some(s21)) = (apply_event::<S>(&s1, e2), apply_event::<S>(&s2, e1)) else {
            return false;
        };
        // …and end in equivalent states.
        if !equivalent_states::<S>(&s12, &s21, bounds) {
            return false;
        }
    }
    true
}

/// Memoizing wrapper around [`events_commute`] for repeated queries.
///
/// # Example
///
/// ```
/// # use quorumcc_model::{spec::*, Event, Sequential, Enumerable};
/// # #[derive(Debug)] enum Reg {}
/// # impl Sequential for Reg {
/// #     type State = u8; type Inv = Option<u8>; type Res = u8;
/// #     const NAME: &'static str = "Reg";
/// #     fn initial() -> u8 { 0 }
/// #     fn apply(s: &u8, inv: &Option<u8>) -> (u8, u8) {
/// #         match inv { Some(v) => (*v, *v), None => (*s, *s) }
/// #     }
/// # }
/// # impl Enumerable for Reg {
/// #     fn invocations() -> Vec<Option<u8>> { vec![None, Some(1), Some(2)] }
/// # }
/// let bounds = ExploreBounds::default();
/// let mut oracle = CommuteOracle::<Reg>::new(bounds);
/// // Two writes of different values do not commute.
/// let w1 = Event::new(Some(1), 1);
/// let w2 = Event::new(Some(2), 2);
/// assert!(!oracle.commute(&w1, &w2));
/// // A write commutes with itself.
/// assert!(oracle.commute(&w1, &w1));
/// ```
#[derive(Debug)]
pub struct CommuteOracle<S: Enumerable> {
    states: Vec<S::State>,
    bounds: ExploreBounds,
    #[allow(clippy::type_complexity)]
    cache: HashMap<(Event<S::Inv, S::Res>, Event<S::Inv, S::Res>), bool>,
}

impl<S: Enumerable> CommuteOracle<S> {
    /// Builds an oracle over the reachable state space at `bounds`.
    pub fn new(bounds: ExploreBounds) -> Self {
        CommuteOracle {
            states: reachable_states::<S>(bounds),
            bounds,
            cache: HashMap::new(),
        }
    }

    /// The reachable states the oracle quantifies over.
    pub fn states(&self) -> &[S::State] {
        &self.states
    }

    /// Whether `e1` and `e2` commute (memoized; symmetric).
    pub fn commute(&mut self, e1: &Event<S::Inv, S::Res>, e2: &Event<S::Inv, S::Res>) -> bool {
        let key = if canonical_le(e1, e2) {
            (e1.clone(), e2.clone())
        } else {
            (e2.clone(), e1.clone())
        };
        if let Some(&v) = self.cache.get(&key) {
            return v;
        }
        let v = events_commute::<S>(e1, e2, &self.states, self.bounds);
        self.cache.insert(key, v);
        v
    }
}

/// Stable ordering for memo keys regardless of `Ord` on user types.
fn canonical_le<I: Hash, R: Hash>(a: &Event<I, R>, b: &Event<I, R>) -> bool {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;
    let mut ha = DefaultHasher::new();
    let mut hb = DefaultHasher::new();
    std::hash::Hash::hash(a, &mut ha);
    std::hash::Hash::hash(b, &mut hb);
    ha.finish() <= hb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded queue over items {0, 1}, capacity 3 — enough to exercise
    /// every utility without pulling in `quorumcc-adts` (which depends on
    /// this crate).
    #[derive(Debug)]
    enum MiniQueue {}

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum QInv {
        Enq(u8),
        Deq,
    }

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum QRes {
        Ok,
        Item(u8),
        Empty,
        Full,
    }

    impl Sequential for MiniQueue {
        type State = Vec<u8>;
        type Inv = QInv;
        type Res = QRes;
        const NAME: &'static str = "MiniQueue";
        fn initial() -> Vec<u8> {
            Vec::new()
        }
        fn apply(s: &Vec<u8>, inv: &QInv) -> (QRes, Vec<u8>) {
            match inv {
                QInv::Enq(x) => {
                    if s.len() >= 3 {
                        (QRes::Full, s.clone())
                    } else {
                        let mut t = s.clone();
                        t.push(*x);
                        (QRes::Ok, t)
                    }
                }
                QInv::Deq => {
                    if s.is_empty() {
                        (QRes::Empty, s.clone())
                    } else {
                        let mut t = s.clone();
                        let x = t.remove(0);
                        (QRes::Item(x), t)
                    }
                }
            }
        }
    }

    impl Enumerable for MiniQueue {
        fn invocations() -> Vec<QInv> {
            vec![QInv::Enq(0), QInv::Enq(1), QInv::Deq]
        }
    }

    fn bounds() -> ExploreBounds {
        ExploreBounds::default()
    }

    #[test]
    fn reachable_states_counts_bounded_queue() {
        // Queues over {0,1} with length ≤ 3: 1 + 2 + 4 + 8 = 15 states.
        let states = reachable_states::<MiniQueue>(bounds());
        assert_eq!(states.len(), 15);
        assert_eq!(states[0], Vec::<u8>::new());
    }

    #[test]
    fn apply_event_checks_response() {
        let ev_ok = Event::new(QInv::Enq(1), QRes::Ok);
        let ev_bad = Event::new(QInv::Enq(1), QRes::Full);
        assert_eq!(apply_event::<MiniQueue>(&vec![], &ev_ok), Some(vec![1]));
        assert_eq!(apply_event::<MiniQueue>(&vec![], &ev_bad), None);
    }

    #[test]
    fn all_events_enumerates_legal_pairs() {
        let states = reachable_states::<MiniQueue>(bounds());
        let evs = all_events::<MiniQueue>(&states);
        // Enq(0)/Ok, Enq(1)/Ok, Enq(0)/Full, Enq(1)/Full, Deq/Empty,
        // Deq/Item(0), Deq/Item(1)  → 7 events.
        assert_eq!(evs.len(), 7);
    }

    #[test]
    fn equivalence_is_state_equality_for_queue() {
        // Distinct queue contents are always distinguishable.
        assert!(!equivalent_states::<MiniQueue>(
            &vec![0],
            &vec![1],
            bounds()
        ));
        assert!(equivalent_states::<MiniQueue>(
            &vec![0, 1],
            &vec![0, 1],
            bounds()
        ));
    }

    #[test]
    fn enq_does_not_commute_with_enq_of_other_item() {
        let states = reachable_states::<MiniQueue>(bounds());
        let e0 = Event::new(QInv::Enq(0), QRes::Ok);
        let e1 = Event::new(QInv::Enq(1), QRes::Ok);
        assert!(!events_commute::<MiniQueue>(&e0, &e1, &states, bounds()));
    }

    #[test]
    fn enq_self_commutation_blocked_by_capacity() {
        let states = reachable_states::<MiniQueue>(bounds());
        let e0 = Event::new(QInv::Enq(0), QRes::Ok);
        // From a length-2 queue, Enq(0);Ok is legal, but a second Enq(0);Ok
        // then answers Full — the bounded queue's Enq does not self-commute.
        assert!(!events_commute::<MiniQueue>(&e0, &e0, &states, bounds()));
        // The Full event, by contrast, is pure and self-commutes.
        let full = Event::new(QInv::Enq(0), QRes::Full);
        assert!(events_commute::<MiniQueue>(&full, &full, &states, bounds()));
    }

    #[test]
    fn deq_empty_commutes_with_itself_and_is_pure() {
        let states = reachable_states::<MiniQueue>(bounds());
        let de = Event::new(QInv::Deq, QRes::Empty);
        assert!(events_commute::<MiniQueue>(&de, &de, &states, bounds()));
    }

    #[test]
    fn deq_item_does_not_commute_with_enq() {
        let states = reachable_states::<MiniQueue>(bounds());
        let deq = Event::new(QInv::Deq, QRes::Item(0));
        let enq = Event::new(QInv::Enq(0), QRes::Ok);
        // From state [0] with two slots free: Deq;Item(0) then Enq(0) ends
        // in [0]; Enq(0) then Deq;Item(0) ends in [0] as well — but from
        // state [0,1,?]… the orders differ in legality around capacity, and
        // from [0] the end states are [0] vs [0] — need a distinguishing
        // state: [0,1]: Deq→[1], +Enq(0)→[1,0]; Enq(0)→[0,1,0], Deq→[1,0].
        // Same! Capacity: from [0,1,1]: Enq(0) is Full → illegal, vacuous.
        // The real witness is Deq;Item(0) vs Enq where Deq;Item(0) is only
        // legal when 0 is at the head; orders agree… so check the oracle's
        // actual verdict instead of guessing: non-commutation comes from
        // states where one order is illegal.
        let verdict = events_commute::<MiniQueue>(&deq, &enq, &states, bounds());
        // From []: Deq;Item(0) illegal → vacuous. From [0,1,1] (full):
        // Enq(0);Ok illegal → vacuous. From [0,x,y] partial: both legal and
        // commute to the same queue. From [0]: same. So for the *bounded*
        // queue these commute; the interesting Enq/Deq dependency appears in
        // the unbounded queue via Deq;Empty (tested in quorumcc-core).
        assert!(verdict);
    }

    #[test]
    fn commute_oracle_memoizes_and_is_symmetric() {
        let mut o = CommuteOracle::<MiniQueue>::new(bounds());
        let e0 = Event::new(QInv::Enq(0), QRes::Ok);
        let e1 = Event::new(QInv::Enq(1), QRes::Ok);
        assert_eq!(o.commute(&e0, &e1), o.commute(&e1, &e0));
        assert!(!o.commute(&e0, &e1));
    }

    #[test]
    fn bounds_cap_state_collection() {
        let b = ExploreBounds {
            depth: 2,
            max_states: 4,
            budget: 1000,
        };
        let states = reachable_states::<MiniQueue>(b);
        assert!(states.len() <= 4);
    }
}
