//! Serial histories: legality, replay, equivalence.
//!
//! A *serial history* is a sequence of events executed with no concurrency
//! and no failures (§3.1). The serial specification of a type is the set of
//! its legal serial histories; with deterministic total specifications that
//! set is exactly "replay reproduces every recorded response".

use crate::event::Event;
use crate::spec::{apply_event, equivalent_states, Enumerable, ExploreBounds, Sequential};

/// A serial history is simply a sequence of events.
pub type SerialHistory<I, R> = Vec<Event<I, R>>;

/// Replays `h` from the initial state.
///
/// Returns the final state if every recorded response matches the
/// specification (the history is *legal*), `None` otherwise.
///
/// # Example
///
/// ```
/// # use quorumcc_model::{serial, Event, Sequential};
/// # #[derive(Debug)] enum Counter {}
/// # impl Sequential for Counter {
/// #     type State = i32; type Inv = i32; type Res = i32;
/// #     const NAME: &'static str = "Counter";
/// #     fn initial() -> i32 { 0 }
/// #     fn apply(s: &i32, inv: &i32) -> (i32, i32) { (s + inv, s + inv) }
/// # }
/// let h = vec![Event::new(2, 2), Event::new(3, 5)];
/// assert_eq!(serial::replay::<Counter>(&h), Some(5));
/// let bad = vec![Event::new(2, 7)];
/// assert_eq!(serial::replay::<Counter>(&bad), None);
/// ```
pub fn replay<S: Sequential>(h: &[Event<S::Inv, S::Res>]) -> Option<S::State> {
    replay_from::<S>(&S::initial(), h)
}

/// Replays `h` starting from `state` instead of the initial state.
pub fn replay_from<S: Sequential>(
    state: &S::State,
    h: &[Event<S::Inv, S::Res>],
) -> Option<S::State> {
    let mut s = state.clone();
    for ev in h {
        s = apply_event::<S>(&s, ev)?;
    }
    Some(s)
}

/// Whether `h` is a legal serial history of `S`.
pub fn is_legal<S: Sequential>(h: &[Event<S::Inv, S::Res>]) -> bool {
    replay::<S>(h).is_some()
}

/// Whether two legal serial histories are *equivalent* — no sequence of
/// future events can distinguish them (`h ≡ h'`, §5).
///
/// Returns `false` if either history is illegal.
pub fn equivalent<S: Enumerable>(
    h1: &[Event<S::Inv, S::Res>],
    h2: &[Event<S::Inv, S::Res>],
    bounds: ExploreBounds,
) -> bool {
    match (replay::<S>(h1), replay::<S>(h2)) {
        (Some(a), Some(b)) => equivalent_states::<S>(&a, &b, bounds),
        _ => false,
    }
}

/// The response the specification gives to `inv` after `h`, if `h` is legal.
pub fn response_after<S: Sequential>(h: &[Event<S::Inv, S::Res>], inv: &S::Inv) -> Option<S::Res> {
    let s = replay::<S>(h)?;
    Some(S::apply(&s, inv).0)
}

/// Renders a serial history in the paper's vertical notation.
pub fn display<I: std::fmt::Display, R: std::fmt::Display>(h: &[Event<I, R>]) -> String {
    h.iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Enumerable;

    /// Last-writer-wins register over {0,1,2}; `None` = read.
    #[derive(Debug)]
    enum Reg {}
    impl Sequential for Reg {
        type State = u8;
        type Inv = Option<u8>;
        type Res = u8;
        const NAME: &'static str = "Reg";
        fn initial() -> u8 {
            0
        }
        fn apply(s: &u8, inv: &Option<u8>) -> (u8, u8) {
            match inv {
                Some(v) => (*v, *v),
                None => (*s, *s),
            }
        }
    }
    impl Enumerable for Reg {
        fn invocations() -> Vec<Option<u8>> {
            vec![None, Some(1), Some(2)]
        }
    }

    fn w(v: u8) -> Event<Option<u8>, u8> {
        Event::new(Some(v), v)
    }
    fn r(v: u8) -> Event<Option<u8>, u8> {
        Event::new(None, v)
    }

    #[test]
    fn legal_history_replays() {
        assert!(is_legal::<Reg>(&[w(1), r(1), w(2), r(2)]));
    }

    #[test]
    fn illegal_history_detected_at_first_bad_response() {
        assert!(!is_legal::<Reg>(&[w(1), r(2)]));
        assert_eq!(replay::<Reg>(&[w(1), r(2), w(2)]), None);
    }

    #[test]
    fn prefix_of_legal_history_is_legal() {
        // Serial specifications are prefix-closed by construction.
        let h = [w(1), r(1), w(2)];
        for n in 0..=h.len() {
            assert!(is_legal::<Reg>(&h[..n]));
        }
    }

    #[test]
    fn equivalence_compares_futures_not_syntax() {
        let b = ExploreBounds::default();
        // Different histories, same final state → equivalent.
        assert!(equivalent::<Reg>(&[w(1), w(2)], &[w(2)], b));
        // Different final states → distinguishable by a read.
        assert!(!equivalent::<Reg>(&[w(1)], &[w(2)], b));
        // Illegal histories are never equivalent.
        assert!(!equivalent::<Reg>(&[r(9)], &[r(9)], b));
    }

    #[test]
    fn response_after_consults_final_state() {
        assert_eq!(response_after::<Reg>(&[w(2)], &None), Some(2));
        assert_eq!(response_after::<Reg>(&[w(1), r(2)], &None), None);
    }

    #[test]
    fn display_is_one_event_per_line() {
        let h = vec![Event::new("Enq(x)", "Ok()"), Event::new("Deq()", "Ok(x)")];
        assert_eq!(display(&h), "Enq(x);Ok()\nDeq();Ok(x)");
    }
}
