//! Closed subhistories and dependency queries (Definitions 1–2).
//!
//! A *dependency relation* `≥` relates invocations to events: `inv ≥ e`
//! means an execution of `inv` must observe earlier `e` events. In the
//! replicated implementation this becomes a quorum-intersection constraint:
//! every initial quorum of `inv` must intersect every final quorum of `e`,
//! so the view merged for `inv` is guaranteed to contain the `e` entries —
//! i.e. the view is a **closed subhistory**.

use crate::behavioral::{BEntry, BHistory};
use crate::event::Event;
use crate::spec::Sequential;
use std::collections::HashSet;

/// A dependency relation between invocations and events, abstractly.
///
/// Concrete representations (class-level relation tables) live in
/// `quorumcc-core`; closures work too:
///
/// ```
/// use quorumcc_model::{closed::DependsOn, testtypes::*, Event};
///
/// // "Deq depends on every normal Enq".
/// let rel = |inv: &QInv, ev: &Event<QInv, QRes>| {
///     matches!(inv, QInv::Deq) && matches!(ev.inv, QInv::Enq(_))
/// };
/// fn takes_rel<D: DependsOn<TestQueue>>(_d: &D) {}
/// takes_rel(&rel);
/// ```
pub trait DependsOn<S: Sequential> {
    /// Whether executions of `inv` depend on (must observe) event `ev`.
    fn depends(&self, inv: &S::Inv, ev: &Event<S::Inv, S::Res>) -> bool;
}

impl<S, F> DependsOn<S> for F
where
    S: Sequential,
    F: Fn(&S::Inv, &Event<S::Inv, S::Res>) -> bool,
{
    fn depends(&self, inv: &S::Inv, ev: &Event<S::Inv, S::Res>) -> bool {
        self(inv, ev)
    }
}

/// The entry indices of the events of `h` that `inv` depends on under
/// `rel`, excluding events of aborted actions (Definition 2's required set).
pub fn required_positions<S: Sequential, D: DependsOn<S>>(
    h: &BHistory<S::Inv, S::Res>,
    inv: &S::Inv,
    rel: &D,
) -> HashSet<usize> {
    h.op_entries()
        .into_iter()
        .filter(|(_, a, ev)| !h.status(*a).is_aborted() && rel.depends(inv, ev))
        .map(|(i, _, _)| i)
        .collect()
}

/// Definition 1: whether the subhistory keeping exactly the op entries in
/// `keep` is *closed* under `rel` — whenever it contains `[e A]` it also
/// contains every earlier `[e' A']` with `e.inv ≥ e'`, unless `A` or `A'`
/// aborted.
pub fn is_closed<S: Sequential, D: DependsOn<S>>(
    h: &BHistory<S::Inv, S::Res>,
    keep: &HashSet<usize>,
    rel: &D,
) -> bool {
    let ops = h.op_entries();
    for &(j, a, ev) in &ops {
        if !keep.contains(&j) || h.status(a).is_aborted() {
            continue;
        }
        for &(j2, a2, ev2) in &ops {
            if j2 >= j || h.status(a2).is_aborted() {
                continue;
            }
            if rel.depends(&ev.inv, ev2) && !keep.contains(&j2) {
                return false;
            }
        }
    }
    true
}

/// The smallest closed subset of op entries containing `seed` (transitive
/// closure of the dependency requirement, computed to fixpoint).
pub fn minimal_closed_containing<S: Sequential, D: DependsOn<S>>(
    h: &BHistory<S::Inv, S::Res>,
    seed: &HashSet<usize>,
    rel: &D,
) -> HashSet<usize> {
    let ops = h.op_entries();
    let mut keep = seed.clone();
    loop {
        let mut grew = false;
        for &(j, a, ev) in &ops {
            if !keep.contains(&j) || h.status(a).is_aborted() {
                continue;
            }
            for &(j2, a2, ev2) in &ops {
                if j2 < j
                    && !h.status(a2).is_aborted()
                    && rel.depends(&ev.inv, ev2)
                    && keep.insert(j2)
                {
                    grew = true;
                }
            }
        }
        if !grew {
            return keep;
        }
    }
}

/// Enumerates every closed subset of op-entry indices of `h` under `rel`.
///
/// Exponential in the number of op entries; intended for the paper-scale
/// histories (≤ ~12 events) used by the dependency-relation verifier.
pub fn closed_subsets<S: Sequential, D: DependsOn<S>>(
    h: &BHistory<S::Inv, S::Res>,
    rel: &D,
) -> Vec<HashSet<usize>> {
    let ops: Vec<usize> = h.op_entries().into_iter().map(|(i, _, _)| i).collect();
    assert!(
        ops.len() <= 24,
        "closed_subsets is exponential; got {} op entries",
        ops.len()
    );
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << ops.len()) {
        let keep: HashSet<usize> = ops
            .iter()
            .enumerate()
            .filter(|(k, _)| mask & (1 << k) != 0)
            .map(|(_, i)| *i)
            .collect();
        if is_closed::<S, D>(h, &keep, rel) {
            out.push(keep);
        }
    }
    out
}

/// Builds the behavioral history for the kept subset (retaining every
/// `Begin`/`Commit`/`Abort` entry, per the paper's usage in Theorems 5/12).
pub fn closed_subhistory<I: Clone, R: Clone>(
    h: &BHistory<I, R>,
    keep: &HashSet<usize>,
) -> BHistory<I, R> {
    h.subhistory(keep)
}

/// Convenience: all op-entry indices of `h` (the full subhistory, always
/// closed).
pub fn all_positions<I: Clone, R: Clone>(h: &BHistory<I, R>) -> HashSet<usize> {
    h.entries()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, BEntry::Op { .. }))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testtypes::*;

    type QH = BHistory<QInv, QRes>;

    /// Deq depends on normal Enq events; nothing else depends on anything.
    fn deq_needs_enq(inv: &QInv, ev: &Event<QInv, QRes>) -> bool {
        matches!(inv, QInv::Deq) && matches!(ev.inv, QInv::Enq(_))
    }

    fn sample() -> QH {
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1)); // idx 1
        h.commit(0);
        h.begin(1);
        h.op_event(1, enq(2)); // idx 4
        h.commit(1);
        h.begin(2);
        h.op_event(2, deq(1)); // idx 7
        h.commit(2);
        h
    }

    #[test]
    fn full_history_is_closed() {
        let h = sample();
        let all = all_positions(&h);
        assert!(is_closed::<TestQueue, _>(&h, &all, &deq_needs_enq));
    }

    #[test]
    fn dropping_an_enq_under_a_kept_deq_breaks_closure() {
        let h = sample();
        let keep: HashSet<usize> = [4, 7].into_iter().collect(); // drop idx 1
        assert!(!is_closed::<TestQueue, _>(&h, &keep, &deq_needs_enq));
        let keep2: HashSet<usize> = [1, 4, 7].into_iter().collect();
        assert!(is_closed::<TestQueue, _>(&h, &keep2, &deq_needs_enq));
    }

    #[test]
    fn dropping_the_deq_is_fine() {
        let h = sample();
        // Without the Deq, no closure obligations at all.
        let keep: HashSet<usize> = [4].into_iter().collect();
        assert!(is_closed::<TestQueue, _>(&h, &keep, &deq_needs_enq));
        let empty = HashSet::new();
        assert!(is_closed::<TestQueue, _>(&h, &empty, &deq_needs_enq));
    }

    #[test]
    fn closure_computation_reaches_fixpoint() {
        let h = sample();
        let seed: HashSet<usize> = [7].into_iter().collect();
        let closed = minimal_closed_containing::<TestQueue, _>(&h, &seed, &deq_needs_enq);
        assert_eq!(closed, [1, 4, 7].into_iter().collect());
    }

    #[test]
    fn required_positions_excludes_aborted() {
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1)); // idx 1 — will abort
        h.abort(0);
        h.begin(1);
        h.op_event(1, enq(2)); // idx 4
        h.commit(1);
        let req = required_positions::<TestQueue, _>(&h, &QInv::Deq, &deq_needs_enq);
        assert_eq!(req, [4].into_iter().collect());
    }

    #[test]
    fn closed_subsets_enumeration_counts() {
        let h = sample();
        // Ops: enq1 (1), enq2 (4), deq (7). Closed subsets: any subset not
        // containing deq (4 of them: {}, {1}, {4}, {1,4}) plus subsets
        // containing deq and both enqs ({1,4,7}) → 5 total.
        let subs = closed_subsets::<TestQueue, _>(&h, &deq_needs_enq);
        assert_eq!(subs.len(), 5);
    }

    #[test]
    fn aborted_events_do_not_generate_obligations() {
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1)); // idx 1, aborted below
        h.abort(0);
        h.begin(1);
        h.op_event(1, deq_empty()); // idx 4
        h.commit(1);
        // Keeping the Deq without the aborted Enq is closed.
        let keep: HashSet<usize> = [4].into_iter().collect();
        assert!(is_closed::<TestQueue, _>(&h, &keep, &deq_needs_enq));
    }

    #[test]
    fn subhistory_from_closed_set_is_wellformed() {
        let h = sample();
        let keep: HashSet<usize> = [1, 4, 7].into_iter().collect();
        let g = closed_subhistory(&h, &keep);
        assert_eq!(g.len(), h.len());
        let keep2: HashSet<usize> = [1].into_iter().collect();
        let g2 = closed_subhistory(&h, &keep2);
        assert_eq!(g2.op_entries().len(), 1);
    }
}
