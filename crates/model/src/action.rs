//! Actions (transactions) and their lifecycle.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an action (a sequential process, i.e. a transaction).
///
/// The paper calls these *actions*; systems people call them transactions.
/// Identifiers are plain integers; display uses the letters `A`, `B`, … for
/// small ids to match the paper's notation.
///
/// # Example
///
/// ```
/// use quorumcc_model::ActionId;
/// assert_eq!(ActionId(0).to_string(), "A");
/// assert_eq!(ActionId(3).to_string(), "D");
/// assert_eq!(ActionId(100).to_string(), "T100");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActionId(pub u32);

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0 as u8) as char)
        } else {
            write!(f, "T{}", self.0)
        }
    }
}

impl From<u32> for ActionId {
    fn from(v: u32) -> Self {
        ActionId(v)
    }
}

/// The lifecycle status of an action within a behavioral history.
///
/// An action that has begun but neither committed nor aborted is *active*;
/// only committed actions count toward the atomicity of a history, and
/// aborted actions must leave no trace (recoverability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionStatus {
    /// `Begin` has appeared, no `Commit`/`Abort` yet.
    Active,
    /// The action committed; its events are permanent.
    Committed,
    /// The action aborted; its events are expunged.
    Aborted,
}

impl ActionStatus {
    /// Whether the action is still running.
    pub fn is_active(self) -> bool {
        matches!(self, ActionStatus::Active)
    }

    /// Whether the action committed.
    pub fn is_committed(self) -> bool {
        matches!(self, ActionStatus::Committed)
    }

    /// Whether the action aborted.
    pub fn is_aborted(self) -> bool {
        matches!(self, ActionStatus::Aborted)
    }
}

impl fmt::Display for ActionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActionStatus::Active => "active",
            ActionStatus::Committed => "committed",
            ActionStatus::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_id_display_matches_paper_notation() {
        assert_eq!(ActionId(0).to_string(), "A");
        assert_eq!(ActionId(1).to_string(), "B");
        assert_eq!(ActionId(25).to_string(), "Z");
        assert_eq!(ActionId(26).to_string(), "T26");
    }

    #[test]
    fn status_predicates_are_exclusive() {
        for s in [
            ActionStatus::Active,
            ActionStatus::Committed,
            ActionStatus::Aborted,
        ] {
            let count = [s.is_active(), s.is_committed(), s.is_aborted()]
                .iter()
                .filter(|b| **b)
                .count();
            assert_eq!(count, 1);
        }
    }

    #[test]
    fn action_id_orders_by_number() {
        assert!(ActionId(1) < ActionId(2));
        assert_eq!(ActionId::from(7), ActionId(7));
    }
}
