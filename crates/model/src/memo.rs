//! Memoized spec-membership decisions — the cache layer behind the
//! parallel verification pipeline in `quorumcc-core`.
//!
//! The expensive primitives of this crate — [`crate::atomicity::in_static_spec`],
//! [`crate::atomicity::in_hybrid_spec`], [`crate::atomicity::in_dynamic_spec`] and
//! [`crate::spec::equivalent_states`] — are pure functions, and the verifier calls
//! them on heavily overlapping inputs: every membership query walks all
//! prefixes of its history, every Definition-2 test re-examines the same
//! closed subhistories under many candidate events, and the dynamic checks
//! compare the same handful of end states over and over. [`SpecCache`]
//! exploits that structure:
//!
//! * **Prefix-incremental membership.** `h ∈ Spec(T)` iff
//!   `h[..len-1] ∈ Spec(T)` and the single-step check passes at `h`; the
//!   cache stores membership per history, so a query only pays for the
//!   prefixes it has never seen. Appending one event to a cached history
//!   costs one step check instead of `len + 1`.
//! * **Interned state equivalence.** Reachable end states are interned to
//!   dense ids and `equivalent_states` verdicts are cached per unordered
//!   id pair.
//!
//! Caches are plain single-threaded values: the parallel pipeline gives
//! each worker its own `SpecCache`. Because every cached function is pure,
//! per-worker caching cannot change any result — parallel runs stay
//! bitwise-identical to sequential ones.

use crate::atomicity;
use crate::behavioral::BHistory;
use crate::spec::{equivalent_states, Enumerable, ExploreBounds};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast multiply-xor hasher (FxHash) for the cache tables.
///
/// Cache keys are hashed on every membership query, so SipHash's
/// DoS-resistance costs real throughput here for no benefit: the tables
/// are never iterated, only probed, so hash order cannot leak into any
/// result.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Hit/miss counters for one cache, reported in benchmark telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Membership queries answered from cache.
    pub membership_hits: u64,
    /// Step checks actually computed (cache misses, one per new prefix).
    pub membership_misses: u64,
    /// Equivalence queries answered from cache.
    pub equiv_hits: u64,
    /// Equivalence verdicts actually computed.
    pub equiv_misses: u64,
}

/// A memoized oracle for spec membership and state equivalence.
///
/// One cache serves all three properties (they key separate tables) at one
/// fixed [`ExploreBounds`].
///
/// # Example
///
/// ```
/// use quorumcc_model::{memo::SpecCache, spec::ExploreBounds, testtypes::*, BHistory};
///
/// let mut cache = SpecCache::<TestQueue>::new(ExploreBounds::default());
/// let mut h = BHistory::new();
/// h.begin(0);
/// h.op_event(0, enq(1));
/// h.commit(0);
/// assert!(cache.in_hybrid(&h));
/// // Re-asking is a pure cache hit.
/// assert!(cache.in_hybrid(&h));
/// assert!(cache.stats().membership_hits >= 1);
/// ```
#[derive(Debug)]
pub struct SpecCache<S: Enumerable> {
    bounds: ExploreBounds,
    static_mem: FxMap<BHistory<S::Inv, S::Res>, bool>,
    hybrid_mem: FxMap<BHistory<S::Inv, S::Res>, bool>,
    dynamic_mem: FxMap<BHistory<S::Inv, S::Res>, bool>,
    state_ids: FxMap<S::State, u32>,
    equiv: FxMap<(u32, u32), bool>,
    stats: MemoStats,
}

impl<S: Enumerable> SpecCache<S> {
    /// Builds an empty cache deciding at `bounds`.
    pub fn new(bounds: ExploreBounds) -> Self {
        SpecCache {
            bounds,
            static_mem: FxMap::default(),
            hybrid_mem: FxMap::default(),
            dynamic_mem: FxMap::default(),
            state_ids: FxMap::default(),
            equiv: FxMap::default(),
            stats: MemoStats::default(),
        }
    }

    /// The bounds every decision uses.
    pub fn bounds(&self) -> ExploreBounds {
        self.bounds
    }

    /// Cache counters so far.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Total histories with a cached membership verdict (all properties).
    pub fn entries(&self) -> usize {
        self.static_mem.len() + self.hybrid_mem.len() + self.dynamic_mem.len()
    }

    /// Memoized [`crate::atomicity::in_static_spec`].
    pub fn in_static(&mut self, h: &BHistory<S::Inv, S::Res>) -> bool {
        membership(&mut self.static_mem, &mut self.stats, h, &mut |p| {
            atomicity::static_step_ok::<S>(p)
        })
    }

    /// Memoized [`crate::atomicity::in_hybrid_spec`].
    pub fn in_hybrid(&mut self, h: &BHistory<S::Inv, S::Res>) -> bool {
        membership(&mut self.hybrid_mem, &mut self.stats, h, &mut |p| {
            atomicity::hybrid_step_ok::<S>(p)
        })
    }

    /// Memoized [`crate::atomicity::in_dynamic_spec`] (equivalence checks are
    /// cached per interned state pair).
    pub fn in_dynamic(&mut self, h: &BHistory<S::Inv, S::Res>) -> bool {
        let bounds = self.bounds;
        let state_ids = &mut self.state_ids;
        let equiv = &mut self.equiv;
        // Split the stats so the membership walk and the equivalence oracle
        // can both count without aliasing `self`.
        let mut equiv_stats = MemoStats::default();
        let verdict = membership(&mut self.dynamic_mem, &mut self.stats, h, &mut |p| {
            atomicity::dynamic_step_ok_with::<S>(p, &mut |a, b| {
                cached_equiv::<S>(state_ids, equiv, &mut equiv_stats, bounds, a, b)
            })
        });
        self.stats.equiv_hits += equiv_stats.equiv_hits;
        self.stats.equiv_misses += equiv_stats.equiv_misses;
        verdict
    }

    /// Records `h` as a known member of `Static(T)` without deciding it.
    ///
    /// For histories whose membership is guaranteed externally — corpus
    /// histories are admits-checked at generation time — this seeds the
    /// verdict so later extension queries start at the top of the prefix
    /// walk instead of re-deciding every prefix.
    pub fn assume_static_member(&mut self, h: &BHistory<S::Inv, S::Res>) {
        assume(&mut self.static_mem, h);
    }

    /// Records `h` as a known member of `Hybrid(T)` without deciding it.
    pub fn assume_hybrid_member(&mut self, h: &BHistory<S::Inv, S::Res>) {
        assume(&mut self.hybrid_mem, h);
    }

    /// Records `h` as a known member of `Dynamic(T)` without deciding it.
    pub fn assume_dynamic_member(&mut self, h: &BHistory<S::Inv, S::Res>) {
        assume(&mut self.dynamic_mem, h);
    }

    /// Membership of an extension: `h` was built by appending `new_entries`
    /// entries to a parent with known verdict `parent_ok`, so only the
    /// appended steps need deciding. Caches **nothing** — the verifier
    /// queries each Definition-2 extension exactly once, and storing
    /// verdicts that are never probed again costs a hash, two clones and a
    /// table insert per query on its hottest path.
    pub fn step_static(
        &mut self,
        parent_ok: bool,
        h: &BHistory<S::Inv, S::Res>,
        new_entries: usize,
    ) -> bool {
        step_extension(&mut self.stats, parent_ok, h, new_entries, &mut |p| {
            atomicity::static_step_ok::<S>(p)
        })
    }

    /// [`SpecCache::step_static`] for `Hybrid(T)`.
    pub fn step_hybrid(
        &mut self,
        parent_ok: bool,
        h: &BHistory<S::Inv, S::Res>,
        new_entries: usize,
    ) -> bool {
        step_extension(&mut self.stats, parent_ok, h, new_entries, &mut |p| {
            atomicity::hybrid_step_ok::<S>(p)
        })
    }

    /// [`SpecCache::step_static`] for `Dynamic(T)` (equivalence checks
    /// still go through the interned-state cache, which *is* reused).
    pub fn step_dynamic(
        &mut self,
        parent_ok: bool,
        h: &BHistory<S::Inv, S::Res>,
        new_entries: usize,
    ) -> bool {
        let bounds = self.bounds;
        let state_ids = &mut self.state_ids;
        let equiv = &mut self.equiv;
        let mut equiv_stats = MemoStats::default();
        let verdict = step_extension(&mut self.stats, parent_ok, h, new_entries, &mut |p| {
            atomicity::dynamic_step_ok_with::<S>(p, &mut |a, b| {
                cached_equiv::<S>(state_ids, equiv, &mut equiv_stats, bounds, a, b)
            })
        });
        self.stats.equiv_hits += equiv_stats.equiv_hits;
        self.stats.equiv_misses += equiv_stats.equiv_misses;
        verdict
    }

    /// Membership in `Static(T)` decided **without** touching the
    /// membership tables. For one-shot queries — validating random corpus
    /// samples, which rarely share prefixes — the table traffic (hashing,
    /// prefix clones, inserts that are never probed again) costs more than
    /// it saves.
    pub fn in_static_transient(&mut self, h: &BHistory<S::Inv, S::Res>) -> bool {
        atomicity::in_static_spec::<S>(h)
    }

    /// [`SpecCache::in_static_transient`] for `Hybrid(T)`.
    pub fn in_hybrid_transient(&mut self, h: &BHistory<S::Inv, S::Res>) -> bool {
        atomicity::in_hybrid_spec::<S>(h)
    }

    /// [`SpecCache::in_static_transient`] for `Dynamic(T)` — still routes
    /// equivalence checks through the interned-state cache, which *is*
    /// shared profitably across queries.
    pub fn in_dynamic_transient(&mut self, h: &BHistory<S::Inv, S::Res>) -> bool {
        let bounds = self.bounds;
        let state_ids = &mut self.state_ids;
        let equiv = &mut self.equiv;
        let mut equiv_stats = MemoStats::default();
        let verdict = (0..=h.len()).all(|n| {
            atomicity::dynamic_step_ok_with::<S>(&h.prefix(n), &mut |a, b| {
                cached_equiv::<S>(state_ids, equiv, &mut equiv_stats, bounds, a, b)
            })
        });
        self.stats.equiv_hits += equiv_stats.equiv_hits;
        self.stats.equiv_misses += equiv_stats.equiv_misses;
        verdict
    }

    /// Memoized [`equivalent_states`].
    pub fn equivalent(&mut self, a: &S::State, b: &S::State) -> bool {
        cached_equiv::<S>(
            &mut self.state_ids,
            &mut self.equiv,
            &mut self.stats,
            self.bounds,
            a,
            b,
        )
    }
}

/// Shared prefix-incremental membership walk: `h` is a member iff every
/// prefix passes `step_ok`. Stores a verdict for every prefix it computes,
/// so overlapping queries pay for each distinct prefix exactly once.
fn membership<I, R>(
    mem: &mut FxMap<BHistory<I, R>, bool>,
    stats: &mut MemoStats,
    h: &BHistory<I, R>,
    step_ok: &mut impl FnMut(&BHistory<I, R>) -> bool,
) -> bool
where
    I: Clone + Eq + std::hash::Hash,
    R: Clone + Eq + std::hash::Hash,
    BHistory<I, R>: Eq + std::hash::Hash,
{
    // Fast path: the query itself is cached (no prefix clone needed).
    if let Some(&v) = mem.get(h) {
        stats.membership_hits += 1;
        return v;
    }
    // Walk down to the deepest cached prefix, keeping each uncached clone
    // for the insertion pass below (each prefix is cloned exactly once).
    let mut pending = vec![h.clone()];
    let mut n = h.len();
    let mut ok = true; // vacuous anchor: the walk restarts at the empty history
    while n > 0 {
        let p = h.prefix(n - 1);
        if let Some(&v) = mem.get(&p) {
            stats.membership_hits += 1;
            ok = v;
            break;
        }
        pending.push(p);
        n -= 1;
    }
    // Extend forward (shallowest pending prefix first), caching each new
    // verdict. Once a prefix fails, all extensions fail too — record them
    // without running the step check.
    while let Some(p) = pending.pop() {
        if ok {
            stats.membership_misses += 1;
            ok = step_ok(&p);
        }
        mem.insert(p, ok);
    }
    ok
}

/// Seeds a known-true verdict (no step checks, no stat counts).
fn assume<I, R>(mem: &mut FxMap<BHistory<I, R>, bool>, h: &BHistory<I, R>)
where
    I: Clone + Eq + std::hash::Hash,
    R: Clone + Eq + std::hash::Hash,
{
    if !mem.contains_key(h) {
        mem.insert(h.clone(), true);
    }
}

/// Decides only the last `new_entries` steps of `h`, given the parent's
/// verdict. Equivalent to [`membership`] when the parent (prefix with
/// `new_entries` fewer entries) has verdict `parent_ok`, but touches no
/// cache table.
fn step_extension<I, R>(
    stats: &mut MemoStats,
    parent_ok: bool,
    h: &BHistory<I, R>,
    new_entries: usize,
    step_ok: &mut impl FnMut(&BHistory<I, R>) -> bool,
) -> bool
where
    I: Clone,
    R: Clone,
{
    if !parent_ok {
        return false;
    }
    let len = h.len();
    debug_assert!(new_entries >= 1 && new_entries <= len);
    for i in (len + 1 - new_entries)..len {
        stats.membership_misses += 1;
        if !step_ok(&h.prefix(i)) {
            return false;
        }
    }
    stats.membership_misses += 1;
    step_ok(h)
}

fn cached_equiv<S: Enumerable>(
    state_ids: &mut FxMap<S::State, u32>,
    equiv: &mut FxMap<(u32, u32), bool>,
    stats: &mut MemoStats,
    bounds: ExploreBounds,
    a: &S::State,
    b: &S::State,
) -> bool {
    if a == b {
        return true;
    }
    let ia = intern::<S>(state_ids, a);
    let ib = intern::<S>(state_ids, b);
    let key = (ia.min(ib), ia.max(ib));
    if let Some(&v) = equiv.get(&key) {
        stats.equiv_hits += 1;
        return v;
    }
    stats.equiv_misses += 1;
    let v = equivalent_states::<S>(a, b, bounds);
    equiv.insert(key, v);
    v
}

fn intern<S: Enumerable>(state_ids: &mut FxMap<S::State, u32>, s: &S::State) -> u32 {
    if let Some(&id) = state_ids.get(s) {
        return id;
    }
    let id = u32::try_from(state_ids.len()).expect("more than u32::MAX interned states");
    state_ids.insert(s.clone(), id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testtypes::*;

    type QH = BHistory<QInv, QRes>;

    fn bounds() -> ExploreBounds {
        ExploreBounds::default()
    }

    /// Every cached verdict must agree with the uncached decision
    /// procedure on a battery of hand-built histories.
    #[test]
    fn cached_agrees_with_uncached() {
        let mut cache = SpecCache::<TestQueue>::new(bounds());
        for h in sample_histories() {
            assert_eq!(
                cache.in_static(&h),
                atomicity::in_static_spec::<TestQueue>(&h),
                "static mismatch on {h:?}"
            );
            assert_eq!(
                cache.in_hybrid(&h),
                atomicity::in_hybrid_spec::<TestQueue>(&h),
                "hybrid mismatch on {h:?}"
            );
            assert_eq!(
                cache.in_dynamic(&h),
                atomicity::in_dynamic_spec::<TestQueue>(&h, bounds()),
                "dynamic mismatch on {h:?}"
            );
        }
    }

    /// Extending a cached history re-checks only the new suffix.
    #[test]
    fn extension_is_incremental() {
        let mut cache = SpecCache::<TestQueue>::new(bounds());
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1));
        assert!(cache.in_hybrid(&h));
        let misses_before = cache.stats().membership_misses;
        h.commit(0);
        assert!(cache.in_hybrid(&h));
        // One new prefix → exactly one new step check.
        assert_eq!(cache.stats().membership_misses, misses_before + 1);
    }

    /// A failing prefix poisons all extensions without re-running steps.
    #[test]
    fn failure_propagates_to_extensions() {
        let mut cache = SpecCache::<TestQueue>::new(bounds());
        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, deq(7)); // impossible dequeue: not in any spec
        assert!(!cache.in_hybrid(&h));
        let misses_before = cache.stats().membership_misses;
        h.commit(0);
        assert!(!cache.in_hybrid(&h));
        // The extension was recorded as failing without a step check.
        assert_eq!(cache.stats().membership_misses, misses_before);
    }

    #[test]
    fn equivalence_is_cached_and_symmetric() {
        let mut cache = SpecCache::<TestQueue>::new(bounds());
        let a = vec![1u8];
        let b = vec![2u8];
        let v1 = cache.equivalent(&a, &b);
        let v2 = cache.equivalent(&b, &a);
        assert_eq!(v1, v2);
        assert!(!v1);
        assert_eq!(cache.stats().equiv_misses, 1);
        assert_eq!(cache.stats().equiv_hits, 1);
    }

    fn sample_histories() -> Vec<QH> {
        let mut out = Vec::new();

        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1));
        h.begin(1);
        h.op_event(1, enq(2));
        h.commit(0);
        h.op_event(1, deq(1));
        h.commit(1);
        out.push(h);

        let mut h = QH::new();
        h.begin(0);
        h.begin(1);
        h.op_event(1, deq_empty());
        h.commit(1);
        h.op_event(0, enq(1));
        h.commit(0);
        out.push(h);

        let mut h = QH::new();
        h.begin(0);
        h.op_event(0, enq(1));
        h.abort(0);
        h.begin(1);
        h.op_event(1, deq_empty());
        h.commit(1);
        out.push(h);

        let mut h = QH::new();
        h.begin(1);
        h.op_event(1, enq(1));
        h.begin(0);
        h.op_event(0, deq(1)); // dirty read
        out.push(h);

        out.push(QH::new());
        out
    }
}
