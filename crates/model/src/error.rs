//! Error types for the model crate.

use crate::action::ActionId;
use std::error::Error;
use std::fmt;

/// A behavioral-history entry violated the action lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WellFormedError {
    /// A `Begin` entry for an action that already began.
    DuplicateBegin(ActionId),
    /// An operation/`Commit`/`Abort` entry before the action's `Begin`.
    BeforeBegin(ActionId),
    /// An entry for an action that already committed or aborted.
    AfterEnd(ActionId),
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::DuplicateBegin(a) => {
                write!(f, "action {a} has already begun")
            }
            WellFormedError::BeforeBegin(a) => {
                write!(f, "action {a} has not begun")
            }
            WellFormedError::AfterEnd(a) => {
                write!(f, "action {a} has already committed or aborted")
            }
        }
    }
}

impl Error for WellFormedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_without_punctuation() {
        for e in [
            WellFormedError::DuplicateBegin(ActionId(0)),
            WellFormedError::BeforeBegin(ActionId(1)),
            WellFormedError::AfterEnd(ActionId(2)),
        ] {
            let s = e.to_string();
            assert!(!s.ends_with('.'));
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error>() {}
        assert_error::<WellFormedError>();
    }
}
