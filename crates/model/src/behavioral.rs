//! Behavioral histories: interleaved `Begin`/operation/`Commit`/`Abort`
//! entries of multiple actions (§3.1).

use crate::action::{ActionId, ActionStatus};
use crate::error::WellFormedError;
use crate::event::Event;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// One entry of a behavioral history.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BEntry<I, R> {
    /// The action begins.
    Begin(ActionId),
    /// The action executes an operation, observing the recorded event.
    Op {
        /// Which action executed the operation.
        action: ActionId,
        /// The invocation/response pair the object returned.
        event: Event<I, R>,
    },
    /// The action commits.
    Commit(ActionId),
    /// The action aborts; its effects are undone.
    Abort(ActionId),
}

impl<I, R> BEntry<I, R> {
    /// The action this entry belongs to.
    pub fn action(&self) -> ActionId {
        match self {
            BEntry::Begin(a) | BEntry::Commit(a) | BEntry::Abort(a) => *a,
            BEntry::Op { action, .. } => *action,
        }
    }

    /// The event, if this is an operation entry.
    pub fn event(&self) -> Option<&Event<I, R>> {
        match self {
            BEntry::Op { event, .. } => Some(event),
            _ => None,
        }
    }
}

impl<I: fmt::Display, R: fmt::Display> fmt::Display for BEntry<I, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BEntry::Begin(a) => write!(f, "Begin {a}"),
            BEntry::Op { action, event } => write!(f, "{event} {action}"),
            BEntry::Commit(a) => write!(f, "Commit {a}"),
            BEntry::Abort(a) => write!(f, "Abort {a}"),
        }
    }
}

/// A behavioral history: the object's view of an interleaved, failure-prone
/// execution.
///
/// The entry order reflects the order in which the object returned
/// responses. `Begin` order induces the timestamps of static atomicity,
/// `Commit` order those of hybrid atomicity.
///
/// Push methods enforce well-formedness (see [`BHistory::try_push`]); the
/// convenience methods [`begin`](BHistory::begin) / [`op`](BHistory::op) /
/// [`commit`](BHistory::commit) / [`abort`](BHistory::abort) panic on
/// malformed pushes, which keeps test construction terse.
///
/// # Example
///
/// The paper's first behavioral Queue history (§3.1):
///
/// ```
/// use quorumcc_model::BHistory;
///
/// let mut h = BHistory::new();
/// h.begin(0); // Begin A
/// h.op(0, "Enq(x)", "Ok()");
/// h.begin(1); // Begin B
/// h.op(1, "Enq(y)", "Ok()");
/// h.commit(0); // Commit A
/// h.op(1, "Deq()", "Ok(x)");
/// h.commit(1); // Commit B
/// assert_eq!(h.len(), 7);
/// assert_eq!(h.committed_actions().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BHistory<I, R> {
    entries: Vec<BEntry<I, R>>,
}

impl<I: Clone, R: Clone> Default for BHistory<I, R> {
    fn default() -> Self {
        BHistory::new()
    }
}

impl<I: Clone, R: Clone> BHistory<I, R> {
    /// Creates an empty history.
    pub fn new() -> Self {
        BHistory {
            entries: Vec::new(),
        }
    }

    /// The entries in order.
    pub fn entries(&self) -> &[BEntry<I, R>] {
        &self.entries
    }

    /// Number of entries (of all kinds).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the history has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry, enforcing well-formedness.
    ///
    /// # Errors
    ///
    /// Returns [`WellFormedError`] if the entry violates action lifecycle
    /// rules: duplicate `Begin`, activity before `Begin`, or activity after
    /// `Commit`/`Abort`.
    pub fn try_push(&mut self, entry: BEntry<I, R>) -> Result<(), WellFormedError> {
        let a = entry.action();
        let status = self.status_opt(a);
        match (&entry, status) {
            (BEntry::Begin(_), None) => {}
            (BEntry::Begin(_), Some(_)) => return Err(WellFormedError::DuplicateBegin(a)),
            (_, None) => return Err(WellFormedError::BeforeBegin(a)),
            (_, Some(ActionStatus::Active)) => {}
            (_, Some(_)) => return Err(WellFormedError::AfterEnd(a)),
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Appends `Begin a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` already began.
    pub fn begin(&mut self, a: impl Into<ActionId>) -> &mut Self {
        self.must(BEntry::Begin(a.into()))
    }

    /// Appends an operation entry `[inv;res] a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not active.
    pub fn op(&mut self, a: impl Into<ActionId>, inv: I, res: R) -> &mut Self {
        self.must(BEntry::Op {
            action: a.into(),
            event: Event::new(inv, res),
        })
    }

    /// Appends a whole event.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not active.
    pub fn op_event(&mut self, a: impl Into<ActionId>, event: Event<I, R>) -> &mut Self {
        self.must(BEntry::Op {
            action: a.into(),
            event,
        })
    }

    /// Appends `Commit a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not active.
    pub fn commit(&mut self, a: impl Into<ActionId>) -> &mut Self {
        self.must(BEntry::Commit(a.into()))
    }

    /// Appends `Abort a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not active.
    pub fn abort(&mut self, a: impl Into<ActionId>) -> &mut Self {
        self.must(BEntry::Abort(a.into()))
    }

    fn must(&mut self, entry: BEntry<I, R>) -> &mut Self {
        if let Err(e) = self.try_push(entry) {
            panic!("malformed behavioral history: {e}");
        }
        self
    }

    /// Status of `a`, or `None` if it never began.
    pub fn status_opt(&self, a: ActionId) -> Option<ActionStatus> {
        let mut st = None;
        for e in &self.entries {
            match e {
                BEntry::Begin(b) if *b == a => st = Some(ActionStatus::Active),
                BEntry::Commit(b) if *b == a => st = Some(ActionStatus::Committed),
                BEntry::Abort(b) if *b == a => st = Some(ActionStatus::Aborted),
                _ => {}
            }
        }
        st
    }

    /// Status of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` never began.
    pub fn status(&self, a: ActionId) -> ActionStatus {
        self.status_opt(a)
            .unwrap_or_else(|| panic!("action {a} does not appear in the history"))
    }

    /// All actions, in order of their `Begin` entries.
    pub fn actions(&self) -> Vec<ActionId> {
        let mut out = Vec::new();
        for e in &self.entries {
            if let BEntry::Begin(a) = e {
                out.push(*a);
            }
        }
        out
    }

    /// Committed actions, in **Commit order** (hybrid timestamp order).
    pub fn committed_actions(&self) -> Vec<ActionId> {
        let mut out = Vec::new();
        for e in &self.entries {
            if let BEntry::Commit(a) = e {
                out.push(*a);
            }
        }
        out
    }

    /// Committed actions in **Begin order** (static timestamp order).
    pub fn committed_in_begin_order(&self) -> Vec<ActionId> {
        self.actions()
            .into_iter()
            .filter(|a| self.status(*a).is_committed())
            .collect()
    }

    /// Active (begun, unterminated) actions in Begin order.
    pub fn active_actions(&self) -> Vec<ActionId> {
        self.actions()
            .into_iter()
            .filter(|a| self.status(*a).is_active())
            .collect()
    }

    /// Aborted actions in Begin order.
    pub fn aborted_actions(&self) -> Vec<ActionId> {
        self.actions()
            .into_iter()
            .filter(|a| self.status(*a).is_aborted())
            .collect()
    }

    /// The events executed by `a`, in execution order.
    pub fn events_of(&self, a: ActionId) -> Vec<Event<I, R>> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                BEntry::Op { action, event } if *action == a => Some(event.clone()),
                _ => None,
            })
            .collect()
    }

    /// All operation entries as `(entry_index, action, event)`, in order.
    pub fn op_entries(&self) -> Vec<(usize, ActionId, &Event<I, R>)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                BEntry::Op { action, event } => Some((i, *action, event)),
                _ => None,
            })
            .collect()
    }

    /// Whether `a` **precedes** `b` (§5): `b` executes an operation after
    /// `a`'s `Commit` entry.
    pub fn precedes(&self, a: ActionId, b: ActionId) -> bool {
        if a == b {
            return false;
        }
        let mut committed = false;
        for e in &self.entries {
            match e {
                BEntry::Commit(x) if *x == a => committed = true,
                BEntry::Op { action, .. } if *action == b && committed => return true,
                _ => {}
            }
        }
        false
    }

    /// The prefix consisting of the first `n` entries.
    pub fn prefix(&self, n: usize) -> BHistory<I, R> {
        BHistory {
            entries: self.entries[..n.min(self.entries.len())].to_vec(),
        }
    }

    /// The subhistory that keeps exactly the operation entries whose indices
    /// are in `keep` (all `Begin`/`Commit`/`Abort` entries are retained).
    ///
    /// This is the history form used by the closed-subhistory machinery of
    /// Definition 1: subhistories drop operation events only.
    pub fn subhistory(&self, keep: &HashSet<usize>) -> BHistory<I, R> {
        let entries = self
            .entries
            .iter()
            .enumerate()
            .filter(|(i, e)| !matches!(e, BEntry::Op { .. }) || keep.contains(i))
            .map(|(_, e)| e.clone())
            .collect();
        BHistory { entries }
    }

    /// Appends all entries of `other` (unchecked concatenation used by
    /// enumeration internals).
    pub fn extended_with(&self, entry: BEntry<I, R>) -> BHistory<I, R> {
        let mut h = self.clone();
        h.entries.push(entry);
        h
    }
}

impl<I: fmt::Display, R: fmt::Display> fmt::Display for BHistory<I, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type H = BHistory<&'static str, &'static str>;

    fn paper_queue_history() -> H {
        let mut h = H::new();
        h.begin(0);
        h.op(0, "Enq(x)", "Ok()");
        h.begin(1);
        h.op(1, "Enq(y)", "Ok()");
        h.commit(0);
        h.op(1, "Deq()", "Ok(x)");
        h.commit(1);
        h
    }

    #[test]
    fn statuses_follow_lifecycle() {
        let h = paper_queue_history();
        assert!(h.status(ActionId(0)).is_committed());
        assert!(h.status(ActionId(1)).is_committed());
        assert_eq!(h.status_opt(ActionId(9)), None);
    }

    #[test]
    fn begin_and_commit_orders_differ() {
        let mut h = H::new();
        h.begin(0).begin(1).commit(1).commit(0);
        assert_eq!(h.actions(), vec![ActionId(0), ActionId(1)]);
        assert_eq!(h.committed_actions(), vec![ActionId(1), ActionId(0)]);
        assert_eq!(h.committed_in_begin_order(), vec![ActionId(0), ActionId(1)]);
    }

    #[test]
    fn precedes_requires_an_op_after_commit() {
        let h = paper_queue_history();
        // A committed before B's Deq → A precedes B.
        assert!(h.precedes(ActionId(0), ActionId(1)));
        assert!(!h.precedes(ActionId(1), ActionId(0)));
        assert!(!h.precedes(ActionId(0), ActionId(0)));

        // Commit with no subsequent op does not order actions.
        let mut h2 = H::new();
        h2.begin(0).begin(1).op(1, "x", "y").commit(0).commit(1);
        assert!(!h2.precedes(ActionId(0), ActionId(1)));
    }

    #[test]
    fn well_formedness_rejected_pushes() {
        let mut h = H::new();
        assert!(matches!(
            h.try_push(BEntry::Commit(ActionId(0))),
            Err(WellFormedError::BeforeBegin(_))
        ));
        h.begin(0);
        assert!(matches!(
            h.try_push(BEntry::Begin(ActionId(0))),
            Err(WellFormedError::DuplicateBegin(_))
        ));
        h.commit(0);
        assert!(matches!(
            h.try_push(BEntry::Op {
                action: ActionId(0),
                event: Event::new("a", "b"),
            }),
            Err(WellFormedError::AfterEnd(_))
        ));
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn convenience_methods_panic_on_misuse() {
        let mut h = H::new();
        h.commit(3);
    }

    #[test]
    fn subhistory_keeps_structure_drops_ops() {
        let h = paper_queue_history();
        let ops = h.op_entries();
        assert_eq!(ops.len(), 3);
        // Keep only B's Deq (entry index of the third op).
        let keep: HashSet<usize> = [ops[2].0].into_iter().collect();
        let g = h.subhistory(&keep);
        assert_eq!(g.len(), 5); // 2 begins + 2 commits + 1 op
        assert_eq!(g.events_of(ActionId(1)).len(), 1);
        assert_eq!(g.events_of(ActionId(0)).len(), 0);
    }

    #[test]
    fn prefix_truncates() {
        let h = paper_queue_history();
        let p = h.prefix(5);
        assert_eq!(p.len(), 5);
        assert!(p.status(ActionId(1)).is_active());
        assert_eq!(h.prefix(99).len(), h.len());
    }

    #[test]
    fn display_matches_paper_layout() {
        let h = paper_queue_history();
        let text = h.to_string();
        assert!(text.starts_with("Begin A\nEnq(x);Ok() A\nBegin B\n"));
        assert!(text.contains("Deq();Ok(x) B"));
    }

    #[test]
    fn events_of_preserves_order() {
        let mut h = H::new();
        h.begin(0).op(0, "1", "a").op(0, "2", "b");
        let evs = h.events_of(ActionId(0));
        assert_eq!(evs[0].inv, "1");
        assert_eq!(evs[1].inv, "2");
    }
}
