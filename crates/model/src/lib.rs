//! Weihl-style model of atomic objects, mechanized.
//!
//! This crate implements the formal framework of Herlihy's *"Comparing How
//! Atomicity Mechanisms Support Replication"* (PODC 1985, §3), which in turn
//! builds on Weihl's model of atomic data types:
//!
//! * **Sequential specifications** ([`Sequential`]) describe a data type as a
//!   deterministic, total state machine whose responses include exceptional
//!   outcomes (`Deq(); Empty()`, `Read(); Disabled()`).
//! * **Serial histories** ([`serial`]) are sequences of events
//!   (invocation/response pairs); a history is *legal* when replaying it
//!   reproduces every recorded response.
//! * **Behavioral histories** ([`behavioral`]) interleave `Begin`, operation,
//!   `Commit` and `Abort` entries of multiple actions (transactions).
//! * **Local atomicity properties** ([`atomicity`]) decide membership in
//!   `Static(T)`, `Hybrid(T)` and `Dynamic(T)` — the largest prefix-closed,
//!   on-line behavioral specifications for static, hybrid, and strong dynamic
//!   atomicity.
//! * **Closed subhistories** ([`closed`]) implement Definitions 1–2 of the
//!   paper, which connect dependency relations between invocations and events
//!   to the quorum-intersection constraints of replicated objects.
//!
//! Everything is bounded-exhaustive and deterministic: the decision
//! procedures in `quorumcc-core` are built directly on these primitives.
//!
//! # Example
//!
//! ```
//! use quorumcc_model::{behavioral::BHistory, atomicity, Sequential};
//!
//! // A one-shot flag: `Set` flips it, `Get` reads it.
//! #[derive(Debug)]
//! enum Flag {}
//! impl Sequential for Flag {
//!     type State = bool;
//!     type Inv = &'static str;
//!     type Res = bool;
//!     const NAME: &'static str = "Flag";
//!     fn initial() -> bool { false }
//!     fn apply(s: &bool, inv: &&'static str) -> (bool, bool) {
//!         match *inv {
//!             "set" => (true, true),
//!             _ => (*s, *s),
//!         }
//!     }
//! }
//!
//! let mut h = BHistory::new();
//! h.begin(1);
//! h.op(1, "set", true);
//! h.commit(1);
//! h.begin(2);
//! h.op(2, "get", true);
//! assert!(atomicity::in_hybrid_spec::<Flag>(&h));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod atomicity;
pub mod behavioral;
pub mod closed;
pub mod error;
pub mod event;
pub mod memo;
pub mod serial;
pub mod spec;
pub mod testtypes;

pub use action::{ActionId, ActionStatus};
pub use behavioral::{BEntry, BHistory};
pub use closed::DependsOn;
pub use error::WellFormedError;
pub use event::{Event, EventClass};
pub use memo::SpecCache;
pub use spec::{Classified, Enumerable, Sequential};
