//! Property-based tests for the model crate's foundations.

use proptest::prelude::*;
use quorumcc_model::atomicity::{
    committed_hybrid_atomic, committed_static_atomic, hybrid_step_ok, in_hybrid_spec,
    in_static_spec, is_atomic, serialize, static_step_ok,
};
use quorumcc_model::spec::{
    apply_event, equivalent_states, events_commute, reachable_states, ExploreBounds,
};
use quorumcc_model::testtypes::*;
use quorumcc_model::{serial, ActionId, BEntry, BHistory, Event};

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 5,
        ..ExploreBounds::default()
    }
}

/// A structured random behavioral history: a sequence of small commands
/// interpreted against action lifecycle rules (skipping invalid ones), so
/// every generated history is well-formed.
#[derive(Debug, Clone)]
enum Cmd {
    Op(u8, u8),
    Commit(u8),
    Abort(u8),
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0u8..3, 0u8..5).prop_map(|(a, e)| Cmd::Op(a, e)),
        (0u8..3).prop_map(Cmd::Commit),
        (0u8..3).prop_map(Cmd::Abort),
    ]
}

fn build(cmds: &[Cmd]) -> BHistory<QInv, QRes> {
    let mut h = BHistory::new();
    for c in cmds {
        let (a, entry) = match c {
            Cmd::Op(a, e) => {
                let ev = match e {
                    0 => enq(1),
                    1 => enq(2),
                    2 => deq(1),
                    3 => deq(2),
                    _ => deq_empty(),
                };
                (
                    *a,
                    BEntry::Op {
                        action: ActionId(u32::from(*a)),
                        event: ev,
                    },
                )
            }
            Cmd::Commit(a) => (*a, BEntry::Commit(ActionId(u32::from(*a)))),
            Cmd::Abort(a) => (*a, BEntry::Abort(ActionId(u32::from(*a)))),
        };
        let aid = ActionId(u32::from(a));
        if h.status_opt(aid).is_none() {
            if matches!(entry, BEntry::Op { .. }) {
                h.begin(aid.0);
            } else {
                continue; // commit/abort before begin: skip
            }
        }
        let _ = h.try_push(entry); // skip entries after commit/abort
    }
    h
}

proptest! {
    /// Well-formedness of the generator itself: statuses follow lifecycle.
    #[test]
    fn generated_histories_are_wellformed(cmds in proptest::collection::vec(cmd(), 0..20)) {
        let h = build(&cmds);
        for a in h.actions() {
            let evs = h.events_of(a);
            // Every event belongs to a begun action; counts are sane.
            prop_assert!(evs.len() <= cmds.len());
        }
        prop_assert!(h.len() <= 2 * cmds.len());
    }

    /// Prefix closure: membership in each online spec is prefix-closed by
    /// construction — check it holds on random histories.
    #[test]
    fn online_specs_are_prefix_closed(cmds in proptest::collection::vec(cmd(), 0..14)) {
        let h = build(&cmds);
        if in_static_spec::<TestQueue>(&h) {
            for n in 0..=h.len() {
                prop_assert!(static_step_ok::<TestQueue>(&h.prefix(n)));
            }
        }
        if in_hybrid_spec::<TestQueue>(&h) {
            for n in 0..=h.len() {
                prop_assert!(hybrid_step_ok::<TestQueue>(&h.prefix(n)));
            }
        }
    }

    /// Online membership implies the committed-subhistory property, and
    /// both imply plain atomicity.
    #[test]
    fn spec_implication_chain(cmds in proptest::collection::vec(cmd(), 0..14)) {
        let h = build(&cmds);
        if in_static_spec::<TestQueue>(&h) {
            prop_assert!(committed_static_atomic::<TestQueue>(&h));
            prop_assert!(is_atomic::<TestQueue>(&h));
        }
        if in_hybrid_spec::<TestQueue>(&h) {
            prop_assert!(committed_hybrid_atomic::<TestQueue>(&h));
            prop_assert!(is_atomic::<TestQueue>(&h));
        }
    }

    /// Deleting aborted actions preserves spec membership (one direction
    /// only: a history whose aborted action executed an impossible event
    /// was never admissible, while its cleaned-up version may be).
    #[test]
    fn removing_aborted_actions_preserves_membership(
        cmds in proptest::collection::vec(cmd(), 0..14)
    ) {
        let h = build(&cmds);
        let aborted: Vec<ActionId> = h.aborted_actions();
        if aborted.is_empty() {
            return Ok(());
        }
        // Rebuild without the aborted actions' entries.
        let mut g: BHistory<QInv, QRes> = BHistory::new();
        for e in h.entries() {
            if !aborted.contains(&e.action()) {
                g.try_push(e.clone()).unwrap();
            }
        }
        if in_static_spec::<TestQueue>(&h) {
            prop_assert!(in_static_spec::<TestQueue>(&g));
        }
        if in_hybrid_spec::<TestQueue>(&h) {
            prop_assert!(in_hybrid_spec::<TestQueue>(&g));
        }
        // The committed-subhistory checks, by contrast, are exactly
        // abort-insensitive.
        prop_assert_eq!(
            committed_static_atomic::<TestQueue>(&h),
            committed_static_atomic::<TestQueue>(&g)
        );
        prop_assert_eq!(
            committed_hybrid_atomic::<TestQueue>(&h),
            committed_hybrid_atomic::<TestQueue>(&g)
        );
    }

    /// serialize() output length equals the sum of the actions' events.
    #[test]
    fn serialize_is_a_grouping(cmds in proptest::collection::vec(cmd(), 0..14)) {
        let h = build(&cmds);
        let committed = h.committed_actions();
        let ser = serialize::<TestQueue>(&h, &committed);
        let expect: usize = committed.iter().map(|a| h.events_of(*a).len()).sum();
        prop_assert_eq!(ser.len(), expect);
    }

    /// Commuting events can be swapped at the end of any legal history
    /// without changing legality.
    #[test]
    fn commutation_licenses_swaps(
        prefix in proptest::collection::vec(0u8..5, 0..6),
        e1 in 0u8..5,
        e2 in 0u8..5,
    ) {
        let to_event = |e: u8| match e {
            0 => enq(1),
            1 => enq(2),
            2 => deq(1),
            3 => deq(2),
            _ => deq_empty(),
        };
        let h: Vec<Event<QInv, QRes>> = prefix.iter().copied().map(to_event).collect();
        let (a, b) = (to_event(e1), to_event(e2));
        let states = reachable_states::<TestQueue>(bounds());
        if events_commute::<TestQueue>(&a, &b, &states, bounds()) {
            let mut ab = h.clone();
            ab.push(a.clone());
            ab.push(b.clone());
            let mut ba = h.clone();
            ba.push(b);
            ba.push(a);
            // If both single extensions are legal, both orders are legal
            // and end equivalent.
            if let Some(s) = serial::replay::<TestQueue>(&h) {
                let a_ok = apply_event::<TestQueue>(&s, &ab[ab.len() - 2]).is_some();
                let b_ok = apply_event::<TestQueue>(&s, &ba[ba.len() - 2]).is_some();
                if a_ok && b_ok {
                    let ra = serial::replay::<TestQueue>(&ab);
                    let rb = serial::replay::<TestQueue>(&ba);
                    prop_assert!(ra.is_some());
                    prop_assert!(rb.is_some());
                    prop_assert!(equivalent_states::<TestQueue>(
                        &ra.unwrap(),
                        &rb.unwrap(),
                        bounds()
                    ));
                }
            }
        }
    }
}
