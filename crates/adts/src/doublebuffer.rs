//! The DoubleBuffer (§5): the paper's witness that a dynamic dependency
//! relation need not be a hybrid dependency relation (Theorem 12).

use quorumcc_model::{Classified, Enumerable, EventClass, Sequential};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A producer buffer and a consumer buffer, each holding a single item.
///
/// Both buffers start holding a default item (`0`). Three operations (§5):
///
/// * `Produce(item)` — copies `item` into the producer buffer.
/// * `Transfer()` — copies the producer buffer into the consumer buffer.
/// * `Consume()` — returns a copy of the consumer buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoubleBuffer {}

/// Items are plain integers; `0` is the default.
pub type Item = u32;

/// The abstract state of a [`DoubleBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DoubleBufferState {
    /// Contents of the producer buffer.
    pub producer: Item,
    /// Contents of the consumer buffer.
    pub consumer: Item,
}

/// Invocations of [`DoubleBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DoubleBufferInv {
    /// Copy an item into the producer buffer.
    Produce(Item),
    /// Copy the producer buffer into the consumer buffer.
    Transfer,
    /// Read the consumer buffer.
    Consume,
}

/// Responses of [`DoubleBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DoubleBufferRes {
    /// Normal termination of `Produce` or `Transfer`.
    Ok,
    /// Normal termination of `Consume`: the item read.
    Item(Item),
}

impl fmt::Display for DoubleBufferInv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoubleBufferInv::Produce(x) => write!(f, "Produce({x})"),
            DoubleBufferInv::Transfer => write!(f, "Transfer()"),
            DoubleBufferInv::Consume => write!(f, "Consume()"),
        }
    }
}

impl fmt::Display for DoubleBufferRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoubleBufferRes::Ok => write!(f, "Ok()"),
            DoubleBufferRes::Item(x) => write!(f, "Ok({x})"),
        }
    }
}

impl Sequential for DoubleBuffer {
    type State = DoubleBufferState;
    type Inv = DoubleBufferInv;
    type Res = DoubleBufferRes;
    const NAME: &'static str = "DoubleBuffer";

    fn initial() -> DoubleBufferState {
        DoubleBufferState {
            producer: 0,
            consumer: 0,
        }
    }

    fn apply(s: &DoubleBufferState, inv: &DoubleBufferInv) -> (DoubleBufferRes, DoubleBufferState) {
        match inv {
            DoubleBufferInv::Produce(x) => (
                DoubleBufferRes::Ok,
                DoubleBufferState {
                    producer: *x,
                    consumer: s.consumer,
                },
            ),
            DoubleBufferInv::Transfer => (
                DoubleBufferRes::Ok,
                DoubleBufferState {
                    producer: s.producer,
                    consumer: s.producer,
                },
            ),
            DoubleBufferInv::Consume => (DoubleBufferRes::Item(s.consumer), *s),
        }
    }
}

impl Enumerable for DoubleBuffer {
    fn invocations() -> Vec<DoubleBufferInv> {
        vec![
            DoubleBufferInv::Produce(1),
            DoubleBufferInv::Produce(2),
            DoubleBufferInv::Transfer,
            DoubleBufferInv::Consume,
        ]
    }
}

impl Classified for DoubleBuffer {
    fn op_class(inv: &DoubleBufferInv) -> &'static str {
        match inv {
            DoubleBufferInv::Produce(_) => "Produce",
            DoubleBufferInv::Transfer => "Transfer",
            DoubleBufferInv::Consume => "Consume",
        }
    }

    fn res_class(_inv: &DoubleBufferInv, _res: &DoubleBufferRes) -> &'static str {
        "Ok"
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Produce", "Transfer", "Consume"]
    }

    fn event_classes() -> Vec<EventClass> {
        vec![
            EventClass::new("Produce", "Ok"),
            EventClass::new("Transfer", "Ok"),
            EventClass::new("Consume", "Ok"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::{serial, spec, Event};

    type E = Event<DoubleBufferInv, DoubleBufferRes>;

    fn produce(x: Item) -> E {
        Event::new(DoubleBufferInv::Produce(x), DoubleBufferRes::Ok)
    }
    fn transfer() -> E {
        Event::new(DoubleBufferInv::Transfer, DoubleBufferRes::Ok)
    }
    fn consume(x: Item) -> E {
        Event::new(DoubleBufferInv::Consume, DoubleBufferRes::Item(x))
    }

    #[test]
    fn produce_transfer_consume_pipeline() {
        assert!(serial::is_legal::<DoubleBuffer>(&[
            produce(7),
            transfer(),
            consume(7),
        ]));
    }

    #[test]
    fn consume_without_transfer_sees_default() {
        assert!(serial::is_legal::<DoubleBuffer>(&[produce(7), consume(0)]));
        assert!(!serial::is_legal::<DoubleBuffer>(&[produce(7), consume(7)]));
    }

    #[test]
    fn transfer_overwrites_consumer_buffer() {
        assert!(serial::is_legal::<DoubleBuffer>(&[
            produce(1),
            transfer(),
            produce(2),
            transfer(),
            consume(2),
        ]));
    }

    #[test]
    fn produce_overwrites_producer_buffer() {
        assert!(serial::is_legal::<DoubleBuffer>(&[
            produce(1),
            produce(2),
            transfer(),
            consume(2),
        ]));
    }

    #[test]
    fn paper_theorem12_history_events_are_legal_serially() {
        // Produce(x);Ok  Transfer();Ok  Transfer();Ok  Consume();Ok(x)
        assert!(serial::is_legal::<DoubleBuffer>(&[
            produce(1),
            transfer(),
            transfer(),
            consume(1),
        ]));
    }

    #[test]
    fn state_space_is_product_of_domains() {
        // producer, consumer ∈ {0,1,2} → at most 9 reachable states.
        let states = spec::reachable_states::<DoubleBuffer>(spec::ExploreBounds::default());
        assert!(states.len() <= 9);
        assert!(states.len() >= 7);
    }
}
