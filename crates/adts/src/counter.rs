//! A counter with commuting increments — the friendliest type for both
//! concurrency and availability.

use quorumcc_model::{Classified, Enumerable, EventClass, Sequential};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An unbounded integer counter (initially `0`).
///
/// `Add(k)` adds `k` (possibly negative); `Get()` returns the current
/// value. All `Add` events commute with one another, so locking schemes
/// need no Add/Add conflicts and quorum schemes need no Add/Add
/// intersections — only `Get` must observe the `Add`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {}

/// Invocations of [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CounterInv {
    /// Add an amount (may be negative).
    Add(i64),
    /// Read the current value.
    Get,
}

/// Responses of [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CounterRes {
    /// Normal termination of `Add`.
    Ok,
    /// Normal termination of `Get`: the current value.
    Val(i64),
}

impl fmt::Display for CounterInv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterInv::Add(k) => write!(f, "Add({k})"),
            CounterInv::Get => write!(f, "Get()"),
        }
    }
}

impl fmt::Display for CounterRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterRes::Ok => write!(f, "Ok()"),
            CounterRes::Val(v) => write!(f, "Ok({v})"),
        }
    }
}

impl Sequential for Counter {
    type State = i64;
    type Inv = CounterInv;
    type Res = CounterRes;
    const NAME: &'static str = "Counter";

    fn initial() -> i64 {
        0
    }

    fn apply(s: &i64, inv: &CounterInv) -> (CounterRes, i64) {
        match inv {
            CounterInv::Add(k) => (CounterRes::Ok, s + k),
            CounterInv::Get => (CounterRes::Val(*s), *s),
        }
    }
}

impl Enumerable for Counter {
    fn invocations() -> Vec<CounterInv> {
        vec![CounterInv::Add(1), CounterInv::Add(-1), CounterInv::Get]
    }
}

impl Classified for Counter {
    fn op_class(inv: &CounterInv) -> &'static str {
        match inv {
            CounterInv::Add(_) => "Add",
            CounterInv::Get => "Get",
        }
    }

    fn res_class(_inv: &CounterInv, _res: &CounterRes) -> &'static str {
        "Ok"
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Add", "Get"]
    }

    fn event_classes() -> Vec<EventClass> {
        vec![EventClass::new("Add", "Ok"), EventClass::new("Get", "Ok")]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::{
        serial,
        spec::{self, ExploreBounds},
        Event,
    };

    #[test]
    fn adds_accumulate() {
        assert!(serial::is_legal::<Counter>(&[
            Event::new(CounterInv::Add(1), CounterRes::Ok),
            Event::new(CounterInv::Add(-1), CounterRes::Ok),
            Event::new(CounterInv::Get, CounterRes::Val(0)),
        ]));
    }

    #[test]
    fn adds_commute() {
        let b = ExploreBounds::default();
        let states = spec::reachable_states::<Counter>(b);
        let a1 = Event::new(CounterInv::Add(1), CounterRes::Ok);
        let a2 = Event::new(CounterInv::Add(-1), CounterRes::Ok);
        assert!(spec::events_commute::<Counter>(&a1, &a2, &states, b));
    }

    #[test]
    fn get_does_not_commute_with_add() {
        let b = ExploreBounds::default();
        let states = spec::reachable_states::<Counter>(b);
        let add = Event::new(CounterInv::Add(1), CounterRes::Ok);
        let get = Event::new(CounterInv::Get, CounterRes::Val(0));
        assert!(!spec::events_commute::<Counter>(&add, &get, &states, b));
    }
}
// (additional coverage)
#[cfg(test)]
mod display_tests {
    use super::*;
    use quorumcc_model::Classified;

    #[test]
    fn display_and_classes() {
        assert_eq!(CounterInv::Add(-2).to_string(), "Add(-2)");
        assert_eq!(CounterRes::Val(7).to_string(), "Ok(7)");
        assert_eq!(Counter::op_class(&CounterInv::Get), "Get");
        assert_eq!(Counter::event_classes().len(), 2);
    }
}
