//! The paper's running example: an unbounded FIFO queue (§3).

use quorumcc_model::{Classified, Enumerable, EventClass, Sequential};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An unbounded first-in-first-out queue of items.
///
/// Two operations (§3): `Enq` places an item in the queue, and `Deq`
/// removes the least recently enqueued item, signalling `Empty` if the
/// queue is empty.
///
/// # Example
///
/// ```
/// use quorumcc_adts::queue::{Queue, QueueInv, QueueRes};
/// use quorumcc_model::{serial, Event};
///
/// let h = vec![
///     Event::new(QueueInv::Enq(7), QueueRes::Ok),
///     Event::new(QueueInv::Deq, QueueRes::Item(7)),
///     Event::new(QueueInv::Deq, QueueRes::Empty),
/// ];
/// assert!(serial::is_legal::<Queue>(&h));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Queue {}

/// Items are plain integers.
pub type Item = u32;

/// Invocations of [`Queue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QueueInv {
    /// Place `item` at the back of the queue.
    Enq(Item),
    /// Remove the item at the front of the queue.
    Deq,
}

/// Responses of [`Queue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QueueRes {
    /// Normal termination of `Enq`.
    Ok,
    /// Normal termination of `Deq`: the dequeued item.
    Item(Item),
    /// `Deq` found the queue empty.
    Empty,
}

impl fmt::Display for QueueInv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueInv::Enq(x) => write!(f, "Enq({x})"),
            QueueInv::Deq => write!(f, "Deq()"),
        }
    }
}

impl fmt::Display for QueueRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueRes::Ok => write!(f, "Ok()"),
            QueueRes::Item(x) => write!(f, "Ok({x})"),
            QueueRes::Empty => write!(f, "Empty()"),
        }
    }
}

impl Sequential for Queue {
    type State = Vec<Item>;
    type Inv = QueueInv;
    type Res = QueueRes;
    const NAME: &'static str = "Queue";

    fn initial() -> Vec<Item> {
        Vec::new()
    }

    fn apply(s: &Vec<Item>, inv: &QueueInv) -> (QueueRes, Vec<Item>) {
        match inv {
            QueueInv::Enq(x) => {
                let mut t = s.clone();
                t.push(*x);
                (QueueRes::Ok, t)
            }
            QueueInv::Deq => {
                if s.is_empty() {
                    (QueueRes::Empty, s.clone())
                } else {
                    let mut t = s.clone();
                    let x = t.remove(0);
                    (QueueRes::Item(x), t)
                }
            }
        }
    }
}

impl Enumerable for Queue {
    /// Two distinct items suffice to expose every Queue dependency.
    fn invocations() -> Vec<QueueInv> {
        vec![QueueInv::Enq(1), QueueInv::Enq(2), QueueInv::Deq]
    }
}

impl Classified for Queue {
    fn op_class(inv: &QueueInv) -> &'static str {
        match inv {
            QueueInv::Enq(_) => "Enq",
            QueueInv::Deq => "Deq",
        }
    }

    fn res_class(_inv: &QueueInv, res: &QueueRes) -> &'static str {
        match res {
            QueueRes::Ok | QueueRes::Item(_) => "Ok",
            QueueRes::Empty => "Empty",
        }
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Enq", "Deq"]
    }

    fn event_classes() -> Vec<EventClass> {
        vec![
            EventClass::new("Enq", "Ok"),
            EventClass::new("Deq", "Ok"),
            EventClass::new("Deq", "Empty"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::{serial, spec, Event};

    fn enq(x: Item) -> Event<QueueInv, QueueRes> {
        Event::new(QueueInv::Enq(x), QueueRes::Ok)
    }
    fn deq(x: Item) -> Event<QueueInv, QueueRes> {
        Event::new(QueueInv::Deq, QueueRes::Item(x))
    }
    fn deq_empty() -> Event<QueueInv, QueueRes> {
        Event::new(QueueInv::Deq, QueueRes::Empty)
    }

    #[test]
    fn fifo_order_enforced() {
        assert!(serial::is_legal::<Queue>(&[enq(1), enq(2), deq(1), deq(2)]));
        assert!(!serial::is_legal::<Queue>(&[enq(1), enq(2), deq(2)]));
    }

    #[test]
    fn paper_serial_history_is_legal() {
        // Enq(x);Ok Enq(y);Ok Deq();Ok(x) Deq();Empty — §3.1.
        assert!(serial::is_legal::<Queue>(&[
            enq(1),
            enq(2),
            deq(1),
            deq(2),
            deq_empty(),
        ]));
    }

    #[test]
    fn empty_exception_only_on_empty_queue() {
        assert!(serial::is_legal::<Queue>(&[deq_empty()]));
        assert!(!serial::is_legal::<Queue>(&[enq(1), deq_empty()]));
    }

    #[test]
    fn classification() {
        assert_eq!(Queue::op_class(&QueueInv::Deq), "Deq");
        assert_eq!(
            Queue::event_class(&QueueInv::Deq, &QueueRes::Item(5)).to_string(),
            "Deq/Ok"
        );
        assert_eq!(
            Queue::event_class(&QueueInv::Deq, &QueueRes::Empty).to_string(),
            "Deq/Empty"
        );
        assert_eq!(Queue::event_classes().len(), 3);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(enq(1).to_string(), "Enq(1);Ok()");
        assert_eq!(deq(1).to_string(), "Deq();Ok(1)");
        assert_eq!(deq_empty().to_string(), "Deq();Empty()");
    }

    #[test]
    fn state_space_grows_with_depth() {
        let small = spec::reachable_states::<Queue>(spec::ExploreBounds {
            depth: 2,
            max_states: 1000,
            budget: 1000,
        });
        let big = spec::reachable_states::<Queue>(spec::ExploreBounds {
            depth: 4,
            max_states: 1000,
            budget: 1000,
        });
        assert!(big.len() > small.len());
    }
}
