//! The FlagSet (§4): an object with **two distinct minimal hybrid
//! dependency relations**.

use quorumcc_model::{Classified, Enumerable, EventClass, Sequential};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The FlagSet of §4, verbatim.
///
/// State: `opened` and `closed` booleans plus a four-element boolean array
/// `flags`, all initially false.
///
/// * `Open()` — if not already opened, sets `opened` and `flags[1]`;
///   otherwise signals `Disabled` with no effect.
/// * `Shift(n)` (for `n ∈ {1,2,3}`) — if opened and not closed, assigns
///   `flags[n+1] := flags[n]`; otherwise signals `Disabled`.
/// * `Close()` — sets `closed := opened` and returns `flags[4]`.
///
/// `Shift(1)` events affect later `Shift(3)` events only through an
/// intermediate `Shift(2)` — which is why the minimal hybrid dependency
/// relation is not unique (`Shift(3)` may learn about `Shift(1)` either
/// directly or transitively through `Shift(2)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagSet {}

/// The abstract state of a [`FlagSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlagSetState {
    /// Whether `Open` has taken effect.
    pub opened: bool,
    /// Whether `Close` has disabled shifting.
    pub closed: bool,
    /// `flags[0]` is unused padding so indices match the paper (1-based).
    pub flags: [bool; 5],
}

/// Invocations of [`FlagSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FlagSetInv {
    /// Enable shifting; set `flags[1]`.
    Open,
    /// Assign `flags[n+1] := flags[n]`; `n` must be 1, 2, or 3.
    Shift(u8),
    /// Return `flags[4]` and disable shifting (if opened).
    Close,
}

/// Responses of [`FlagSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FlagSetRes {
    /// Normal termination of `Open` or `Shift`.
    Ok,
    /// Normal termination of `Close`: the value of `flags[4]`.
    Val(bool),
    /// The operation is disabled in the current phase.
    Disabled,
}

impl fmt::Display for FlagSetInv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagSetInv::Open => write!(f, "Open()"),
            FlagSetInv::Shift(n) => write!(f, "Shift({n})"),
            FlagSetInv::Close => write!(f, "Close()"),
        }
    }
}

impl fmt::Display for FlagSetRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlagSetRes::Ok => write!(f, "Ok()"),
            FlagSetRes::Val(b) => write!(f, "Ok({b})"),
            FlagSetRes::Disabled => write!(f, "Disabled()"),
        }
    }
}

impl Sequential for FlagSet {
    type State = FlagSetState;
    type Inv = FlagSetInv;
    type Res = FlagSetRes;
    const NAME: &'static str = "FlagSet";

    fn initial() -> FlagSetState {
        FlagSetState {
            opened: false,
            closed: false,
            flags: [false; 5],
        }
    }

    fn apply(s: &FlagSetState, inv: &FlagSetInv) -> (FlagSetRes, FlagSetState) {
        match inv {
            FlagSetInv::Open => {
                if s.opened {
                    (FlagSetRes::Disabled, *s)
                } else {
                    let mut t = *s;
                    t.opened = true;
                    t.flags[1] = true;
                    (FlagSetRes::Ok, t)
                }
            }
            FlagSetInv::Shift(n) => {
                debug_assert!((1..=3).contains(n), "Shift defined only for 0 < n < 4");
                if s.opened && !s.closed {
                    let mut t = *s;
                    t.flags[*n as usize + 1] = t.flags[*n as usize];
                    (FlagSetRes::Ok, t)
                } else {
                    (FlagSetRes::Disabled, *s)
                }
            }
            FlagSetInv::Close => {
                let mut t = *s;
                t.closed = s.opened;
                (FlagSetRes::Val(s.flags[4]), t)
            }
        }
    }
}

impl Enumerable for FlagSet {
    fn invocations() -> Vec<FlagSetInv> {
        vec![
            FlagSetInv::Open,
            FlagSetInv::Shift(1),
            FlagSetInv::Shift(2),
            FlagSetInv::Shift(3),
            FlagSetInv::Close,
        ]
    }
}

impl Classified for FlagSet {
    fn op_class(inv: &FlagSetInv) -> &'static str {
        match inv {
            FlagSetInv::Open => "Open",
            FlagSetInv::Shift(1) => "Shift(1)",
            FlagSetInv::Shift(2) => "Shift(2)",
            FlagSetInv::Shift(3) => "Shift(3)",
            FlagSetInv::Shift(_) => "Shift(?)",
            FlagSetInv::Close => "Close",
        }
    }

    fn res_class(_inv: &FlagSetInv, res: &FlagSetRes) -> &'static str {
        match res {
            FlagSetRes::Ok | FlagSetRes::Val(_) => "Ok",
            FlagSetRes::Disabled => "Disabled",
        }
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Open", "Shift(1)", "Shift(2)", "Shift(3)", "Close"]
    }

    fn event_classes() -> Vec<EventClass> {
        vec![
            EventClass::new("Open", "Ok"),
            EventClass::new("Open", "Disabled"),
            EventClass::new("Shift(1)", "Ok"),
            EventClass::new("Shift(1)", "Disabled"),
            EventClass::new("Shift(2)", "Ok"),
            EventClass::new("Shift(2)", "Disabled"),
            EventClass::new("Shift(3)", "Ok"),
            EventClass::new("Shift(3)", "Disabled"),
            EventClass::new("Close", "Ok"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::{serial, spec, Event};

    type E = Event<FlagSetInv, FlagSetRes>;

    fn open() -> E {
        Event::new(FlagSetInv::Open, FlagSetRes::Ok)
    }
    fn shift(n: u8) -> E {
        Event::new(FlagSetInv::Shift(n), FlagSetRes::Ok)
    }
    fn close(v: bool) -> E {
        Event::new(FlagSetInv::Close, FlagSetRes::Val(v))
    }

    #[test]
    fn open_shift_chain_propagates_flag() {
        // Open sets flags[1]; Shift 1,2,3 carries it to flags[4].
        assert!(serial::is_legal::<FlagSet>(&[
            open(),
            shift(1),
            shift(2),
            shift(3),
            close(true),
        ]));
    }

    #[test]
    fn skipping_a_shift_leaves_flag4_false() {
        assert!(serial::is_legal::<FlagSet>(&[
            open(),
            shift(1),
            shift(3), // flags[3] is still false
            close(false),
        ]));
        assert!(!serial::is_legal::<FlagSet>(&[
            open(),
            shift(1),
            shift(3),
            close(true)
        ]));
    }

    #[test]
    fn shift_before_open_is_disabled() {
        assert!(serial::is_legal::<FlagSet>(&[Event::new(
            FlagSetInv::Shift(2),
            FlagSetRes::Disabled
        )]));
        assert!(!serial::is_legal::<FlagSet>(&[shift(2)]));
    }

    #[test]
    fn close_before_open_reports_false_and_does_not_close() {
        // Close with opened == false leaves closed == false.
        assert!(serial::is_legal::<FlagSet>(&[
            close(false),
            open(),
            shift(1),
            shift(2),
            shift(3),
            close(true),
        ]));
    }

    #[test]
    fn shift_after_close_is_disabled() {
        assert!(serial::is_legal::<FlagSet>(&[
            open(),
            close(false),
            Event::new(FlagSetInv::Shift(1), FlagSetRes::Disabled),
        ]));
    }

    #[test]
    fn double_open_is_disabled() {
        assert!(serial::is_legal::<FlagSet>(&[
            open(),
            Event::new(FlagSetInv::Open, FlagSetRes::Disabled),
        ]));
    }

    #[test]
    fn shift_order_matters_one_two_vs_two_one() {
        // Open, Shift(1), Shift(2): flags[3] = true.
        // Open, Shift(2), Shift(1): flags[3] stays false.
        assert!(serial::is_legal::<FlagSet>(&[
            open(),
            shift(1),
            shift(2),
            shift(3),
            close(true)
        ]));
        assert!(serial::is_legal::<FlagSet>(&[
            open(),
            shift(2),
            shift(1),
            shift(3),
            close(false)
        ]));
    }

    #[test]
    fn state_space_is_finite() {
        let states = spec::reachable_states::<FlagSet>(spec::ExploreBounds::default());
        // Far fewer than the 2×2×32 raw combinations are reachable.
        assert!(states.len() <= 128);
        assert!(states.len() > 5);
    }
}
