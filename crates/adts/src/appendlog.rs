//! An append-only log with full scans — the "event-sourcing" primitive.

use quorumcc_model::{Classified, Enumerable, EventClass, Sequential};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An append-only sequence of records (initially empty).
///
/// * `Append(x)` — adds `x` at the end.
/// * `Scan()` — returns the whole sequence.
///
/// Unlike the queue, `Append` does **not** commute with `Append` (scans
/// observe order), and `Scan` observes everything — the worst case for
/// quorum availability, a useful upper-bound comparison point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendLog {}

/// Invocations of [`AppendLog`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppendLogInv {
    /// Append a record.
    Append(u32),
    /// Read the whole log.
    Scan,
}

/// Responses of [`AppendLog`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppendLogRes {
    /// Normal termination of `Append`.
    Ok,
    /// Normal termination of `Scan`: the records in order.
    Records(Vec<u32>),
}

impl fmt::Display for AppendLogInv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppendLogInv::Append(x) => write!(f, "Append({x})"),
            AppendLogInv::Scan => write!(f, "Scan()"),
        }
    }
}

impl fmt::Display for AppendLogRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppendLogRes::Ok => write!(f, "Ok()"),
            AppendLogRes::Records(rs) => write!(f, "Ok({rs:?})"),
        }
    }
}

impl Sequential for AppendLog {
    type State = Vec<u32>;
    type Inv = AppendLogInv;
    type Res = AppendLogRes;
    const NAME: &'static str = "AppendLog";

    fn initial() -> Vec<u32> {
        Vec::new()
    }

    fn apply(s: &Vec<u32>, inv: &AppendLogInv) -> (AppendLogRes, Vec<u32>) {
        match inv {
            AppendLogInv::Append(x) => {
                let mut t = s.clone();
                t.push(*x);
                (AppendLogRes::Ok, t)
            }
            AppendLogInv::Scan => (AppendLogRes::Records(s.clone()), s.clone()),
        }
    }
}

impl Enumerable for AppendLog {
    fn invocations() -> Vec<AppendLogInv> {
        vec![
            AppendLogInv::Append(1),
            AppendLogInv::Append(2),
            AppendLogInv::Scan,
        ]
    }
}

impl Classified for AppendLog {
    fn op_class(inv: &AppendLogInv) -> &'static str {
        match inv {
            AppendLogInv::Append(_) => "Append",
            AppendLogInv::Scan => "Scan",
        }
    }

    fn res_class(_inv: &AppendLogInv, _res: &AppendLogRes) -> &'static str {
        "Ok"
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Append", "Scan"]
    }

    fn event_classes() -> Vec<EventClass> {
        vec![
            EventClass::new("Append", "Ok"),
            EventClass::new("Scan", "Ok"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::{
        serial,
        spec::{self, ExploreBounds},
        Event,
    };

    #[test]
    fn scan_sees_appends_in_order() {
        assert!(serial::is_legal::<AppendLog>(&[
            Event::new(AppendLogInv::Append(1), AppendLogRes::Ok),
            Event::new(AppendLogInv::Append(2), AppendLogRes::Ok),
            Event::new(AppendLogInv::Scan, AppendLogRes::Records(vec![1, 2])),
        ]));
        assert!(!serial::is_legal::<AppendLog>(&[
            Event::new(AppendLogInv::Append(1), AppendLogRes::Ok),
            Event::new(AppendLogInv::Scan, AppendLogRes::Records(vec![])),
        ]));
    }

    #[test]
    fn appends_do_not_commute() {
        let b = ExploreBounds::default();
        let states = spec::reachable_states::<AppendLog>(b);
        let a1 = Event::new(AppendLogInv::Append(1), AppendLogRes::Ok);
        let a2 = Event::new(AppendLogInv::Append(2), AppendLogRes::Ok);
        assert!(!spec::events_commute::<AppendLog>(&a1, &a2, &states, b));
    }
}
// (additional coverage)
#[cfg(test)]
mod display_tests {
    use super::*;
    use quorumcc_model::Classified;

    #[test]
    fn display_and_classes() {
        assert_eq!(AppendLogInv::Append(4).to_string(), "Append(4)");
        assert_eq!(AppendLogRes::Records(vec![1, 2]).to_string(), "Ok([1, 2])");
        assert_eq!(AppendLog::op_class(&AppendLogInv::Scan), "Scan");
        assert_eq!(AppendLog::event_classes().len(), 2);
    }
}
