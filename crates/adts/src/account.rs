//! A bank account whose withdrawals can bounce — deposits commute, but
//! `Withdraw` must observe enough of the balance to justify its response.

use quorumcc_model::{Classified, Enumerable, EventClass, Sequential};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A non-negative-balance bank account (initially `0`).
///
/// * `Deposit(k)` — adds `k > 0` to the balance.
/// * `Withdraw(k)` — subtracts `k > 0` if the balance covers it, otherwise
///   signals `Overdraft` with no effect.
/// * `Balance()` — returns the current balance.
///
/// The `Overdraft` exception makes `Withdraw` semantically richer than a
/// blind decrement: a successful withdrawal must be serialized after
/// deposits that fund it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Account {}

/// Invocations of [`Account`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccountInv {
    /// Add to the balance (`k > 0`).
    Deposit(u64),
    /// Subtract from the balance if covered (`k > 0`).
    Withdraw(u64),
    /// Read the balance.
    Balance,
}

/// Responses of [`Account`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccountRes {
    /// Normal termination of `Deposit` or `Withdraw`.
    Ok,
    /// Normal termination of `Balance`: the current balance.
    Val(u64),
    /// `Withdraw` exceeded the balance; no effect.
    Overdraft,
}

impl fmt::Display for AccountInv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccountInv::Deposit(k) => write!(f, "Deposit({k})"),
            AccountInv::Withdraw(k) => write!(f, "Withdraw({k})"),
            AccountInv::Balance => write!(f, "Balance()"),
        }
    }
}

impl fmt::Display for AccountRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccountRes::Ok => write!(f, "Ok()"),
            AccountRes::Val(v) => write!(f, "Ok({v})"),
            AccountRes::Overdraft => write!(f, "Overdraft()"),
        }
    }
}

impl Sequential for Account {
    type State = u64;
    type Inv = AccountInv;
    type Res = AccountRes;
    const NAME: &'static str = "Account";

    fn initial() -> u64 {
        0
    }

    fn apply(s: &u64, inv: &AccountInv) -> (AccountRes, u64) {
        match inv {
            AccountInv::Deposit(k) => (AccountRes::Ok, s + k),
            AccountInv::Withdraw(k) => {
                if *s >= *k {
                    (AccountRes::Ok, s - k)
                } else {
                    (AccountRes::Overdraft, *s)
                }
            }
            AccountInv::Balance => (AccountRes::Val(*s), *s),
        }
    }
}

impl Enumerable for Account {
    fn invocations() -> Vec<AccountInv> {
        vec![
            AccountInv::Deposit(1),
            AccountInv::Deposit(2),
            AccountInv::Withdraw(1),
            AccountInv::Withdraw(2),
            AccountInv::Balance,
        ]
    }
}

impl Classified for Account {
    fn op_class(inv: &AccountInv) -> &'static str {
        match inv {
            AccountInv::Deposit(_) => "Deposit",
            AccountInv::Withdraw(_) => "Withdraw",
            AccountInv::Balance => "Balance",
        }
    }

    fn res_class(_inv: &AccountInv, res: &AccountRes) -> &'static str {
        match res {
            AccountRes::Ok | AccountRes::Val(_) => "Ok",
            AccountRes::Overdraft => "Overdraft",
        }
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Deposit", "Withdraw", "Balance"]
    }

    fn event_classes() -> Vec<EventClass> {
        vec![
            EventClass::new("Deposit", "Ok"),
            EventClass::new("Withdraw", "Ok"),
            EventClass::new("Withdraw", "Overdraft"),
            EventClass::new("Balance", "Ok"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::{serial, Event};

    fn dep(k: u64) -> Event<AccountInv, AccountRes> {
        Event::new(AccountInv::Deposit(k), AccountRes::Ok)
    }
    fn wdr(k: u64) -> Event<AccountInv, AccountRes> {
        Event::new(AccountInv::Withdraw(k), AccountRes::Ok)
    }
    fn bounce(k: u64) -> Event<AccountInv, AccountRes> {
        Event::new(AccountInv::Withdraw(k), AccountRes::Overdraft)
    }
    fn bal(v: u64) -> Event<AccountInv, AccountRes> {
        Event::new(AccountInv::Balance, AccountRes::Val(v))
    }

    #[test]
    fn covered_withdrawals_succeed() {
        assert!(serial::is_legal::<Account>(&[dep(2), wdr(1), bal(1)]));
    }

    #[test]
    fn uncovered_withdrawals_bounce_without_effect() {
        assert!(serial::is_legal::<Account>(&[dep(1), bounce(2), bal(1)]));
        assert!(!serial::is_legal::<Account>(&[dep(1), wdr(2)]));
        assert!(!serial::is_legal::<Account>(&[dep(2), bounce(2)]));
    }

    #[test]
    fn balance_reads_exact_value() {
        assert!(serial::is_legal::<Account>(&[
            bal(0),
            dep(2),
            dep(1),
            bal(3)
        ]));
    }
}
// (additional coverage)
#[cfg(test)]
mod display_tests {
    use super::*;
    use quorumcc_model::Classified;

    #[test]
    fn display_and_classes() {
        assert_eq!(AccountInv::Withdraw(5).to_string(), "Withdraw(5)");
        assert_eq!(AccountRes::Overdraft.to_string(), "Overdraft()");
        assert_eq!(
            Account::event_class(&AccountInv::Withdraw(5), &AccountRes::Overdraft).to_string(),
            "Withdraw/Overdraft"
        );
        assert_eq!(Account::event_classes().len(), 4);
    }
}
