//! A read/write register — Gifford's weighted-voting baseline, where every
//! operation is classified only as a read or a write.

use quorumcc_model::{Classified, Enumerable, EventClass, Sequential};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A last-writer-wins register holding a single integer (initially `0`).
///
/// `Write(v)` stores `v`; `Read()` returns the current value. This is the
/// file abstraction of Gifford's weighted voting; comparing its dependency
/// relations against the typed objects shows what type-specific analysis
/// buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Register {}

/// Values are plain integers.
pub type Value = i64;

/// Invocations of [`Register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegisterInv {
    /// Store a value.
    Write(Value),
    /// Read the current value.
    Read,
}

/// Responses of [`Register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegisterRes {
    /// Normal termination of `Write`.
    Ok,
    /// Normal termination of `Read`: the current value.
    Val(Value),
}

impl fmt::Display for RegisterInv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterInv::Write(v) => write!(f, "Write({v})"),
            RegisterInv::Read => write!(f, "Read()"),
        }
    }
}

impl fmt::Display for RegisterRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterRes::Ok => write!(f, "Ok()"),
            RegisterRes::Val(v) => write!(f, "Ok({v})"),
        }
    }
}

impl Sequential for Register {
    type State = Value;
    type Inv = RegisterInv;
    type Res = RegisterRes;
    const NAME: &'static str = "Register";

    fn initial() -> Value {
        0
    }

    fn apply(s: &Value, inv: &RegisterInv) -> (RegisterRes, Value) {
        match inv {
            RegisterInv::Write(v) => (RegisterRes::Ok, *v),
            RegisterInv::Read => (RegisterRes::Val(*s), *s),
        }
    }
}

impl Enumerable for Register {
    fn invocations() -> Vec<RegisterInv> {
        vec![
            RegisterInv::Write(1),
            RegisterInv::Write(2),
            RegisterInv::Read,
        ]
    }
}

impl Classified for Register {
    fn op_class(inv: &RegisterInv) -> &'static str {
        match inv {
            RegisterInv::Write(_) => "Write",
            RegisterInv::Read => "Read",
        }
    }

    fn res_class(_inv: &RegisterInv, _res: &RegisterRes) -> &'static str {
        "Ok"
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Write", "Read"]
    }

    fn event_classes() -> Vec<EventClass> {
        vec![
            EventClass::new("Write", "Ok"),
            EventClass::new("Read", "Ok"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::{serial, Event};

    #[test]
    fn last_writer_wins() {
        assert!(serial::is_legal::<Register>(&[
            Event::new(RegisterInv::Write(1), RegisterRes::Ok),
            Event::new(RegisterInv::Write(2), RegisterRes::Ok),
            Event::new(RegisterInv::Read, RegisterRes::Val(2)),
        ]));
        assert!(!serial::is_legal::<Register>(&[
            Event::new(RegisterInv::Write(1), RegisterRes::Ok),
            Event::new(RegisterInv::Read, RegisterRes::Val(0)),
        ]));
    }

    #[test]
    fn initial_value_is_zero() {
        assert!(serial::is_legal::<Register>(&[Event::new(
            RegisterInv::Read,
            RegisterRes::Val(0)
        )]));
    }
}
// (additional coverage)
#[cfg(test)]
mod display_tests {
    use super::*;
    use quorumcc_model::Classified;

    #[test]
    fn display_and_classes() {
        assert_eq!(RegisterInv::Write(9).to_string(), "Write(9)");
        assert_eq!(RegisterRes::Val(9).to_string(), "Ok(9)");
        assert_eq!(Register::op_class(&RegisterInv::Read), "Read");
        assert_eq!(Register::event_classes().len(), 2);
    }
}
