//! A directory (key → value map) in the style of Bloch–Daniels–Spector's
//! weighted voting for directories.

use quorumcc_model::{Classified, Enumerable, EventClass, Sequential};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A map from integer keys to integer values (initially empty).
///
/// * `Insert(k, v)` — binds `k` to `v`; signals `Exists` if `k` is bound.
/// * `Update(k, v)` — rebinds `k`; signals `Missing` if `k` is unbound.
/// * `Delete(k)` — removes `k`; signals `Missing` if unbound.
/// * `Lookup(k)` — returns the binding or signals `Missing`.
///
/// Operations on *different keys* commute, which a per-key (rather than
/// whole-object) quorum analysis can exploit; the sample alphabet uses two
/// keys to expose both same-key and cross-key behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directory {}

/// Invocations of [`Directory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DirectoryInv {
    /// Bind a fresh key.
    Insert(u32, u32),
    /// Rebind an existing key.
    Update(u32, u32),
    /// Remove a binding.
    Delete(u32),
    /// Look a binding up.
    Lookup(u32),
}

/// Responses of [`Directory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DirectoryRes {
    /// Normal termination of `Insert`/`Update`/`Delete`.
    Ok,
    /// Normal termination of `Lookup`: the bound value.
    Val(u32),
    /// The key was not bound.
    Missing,
    /// `Insert` on an already-bound key.
    Exists,
}

impl fmt::Display for DirectoryInv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryInv::Insert(k, v) => write!(f, "Insert({k},{v})"),
            DirectoryInv::Update(k, v) => write!(f, "Update({k},{v})"),
            DirectoryInv::Delete(k) => write!(f, "Delete({k})"),
            DirectoryInv::Lookup(k) => write!(f, "Lookup({k})"),
        }
    }
}

impl fmt::Display for DirectoryRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectoryRes::Ok => write!(f, "Ok()"),
            DirectoryRes::Val(v) => write!(f, "Ok({v})"),
            DirectoryRes::Missing => write!(f, "Missing()"),
            DirectoryRes::Exists => write!(f, "Exists()"),
        }
    }
}

impl Sequential for Directory {
    type State = BTreeMap<u32, u32>;
    type Inv = DirectoryInv;
    type Res = DirectoryRes;
    const NAME: &'static str = "Directory";

    fn initial() -> BTreeMap<u32, u32> {
        BTreeMap::new()
    }

    fn apply(s: &BTreeMap<u32, u32>, inv: &DirectoryInv) -> (DirectoryRes, BTreeMap<u32, u32>) {
        match inv {
            DirectoryInv::Insert(k, v) => {
                if s.contains_key(k) {
                    (DirectoryRes::Exists, s.clone())
                } else {
                    let mut t = s.clone();
                    t.insert(*k, *v);
                    (DirectoryRes::Ok, t)
                }
            }
            DirectoryInv::Update(k, v) => {
                if s.contains_key(k) {
                    let mut t = s.clone();
                    t.insert(*k, *v);
                    (DirectoryRes::Ok, t)
                } else {
                    (DirectoryRes::Missing, s.clone())
                }
            }
            DirectoryInv::Delete(k) => {
                if s.contains_key(k) {
                    let mut t = s.clone();
                    t.remove(k);
                    (DirectoryRes::Ok, t)
                } else {
                    (DirectoryRes::Missing, s.clone())
                }
            }
            DirectoryInv::Lookup(k) => match s.get(k) {
                Some(v) => (DirectoryRes::Val(*v), s.clone()),
                None => (DirectoryRes::Missing, s.clone()),
            },
        }
    }
}

impl Enumerable for Directory {
    fn invocations() -> Vec<DirectoryInv> {
        vec![
            DirectoryInv::Insert(1, 1),
            DirectoryInv::Insert(2, 1),
            DirectoryInv::Update(1, 2),
            DirectoryInv::Delete(1),
            DirectoryInv::Lookup(1),
            DirectoryInv::Lookup(2),
        ]
    }
}

impl Classified for Directory {
    fn op_class(inv: &DirectoryInv) -> &'static str {
        match inv {
            DirectoryInv::Insert(..) => "Insert",
            DirectoryInv::Update(..) => "Update",
            DirectoryInv::Delete(_) => "Delete",
            DirectoryInv::Lookup(_) => "Lookup",
        }
    }

    fn res_class(_inv: &DirectoryInv, res: &DirectoryRes) -> &'static str {
        match res {
            DirectoryRes::Ok | DirectoryRes::Val(_) => "Ok",
            DirectoryRes::Missing => "Missing",
            DirectoryRes::Exists => "Exists",
        }
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Insert", "Update", "Delete", "Lookup"]
    }

    fn event_classes() -> Vec<EventClass> {
        vec![
            EventClass::new("Insert", "Ok"),
            EventClass::new("Insert", "Exists"),
            EventClass::new("Update", "Ok"),
            EventClass::new("Update", "Missing"),
            EventClass::new("Delete", "Ok"),
            EventClass::new("Delete", "Missing"),
            EventClass::new("Lookup", "Ok"),
            EventClass::new("Lookup", "Missing"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::{serial, Event};

    type E = Event<DirectoryInv, DirectoryRes>;

    fn ev(inv: DirectoryInv, res: DirectoryRes) -> E {
        Event::new(inv, res)
    }

    #[test]
    fn insert_update_delete_lookup_lifecycle() {
        assert!(serial::is_legal::<Directory>(&[
            ev(DirectoryInv::Lookup(1), DirectoryRes::Missing),
            ev(DirectoryInv::Insert(1, 1), DirectoryRes::Ok),
            ev(DirectoryInv::Lookup(1), DirectoryRes::Val(1)),
            ev(DirectoryInv::Update(1, 2), DirectoryRes::Ok),
            ev(DirectoryInv::Lookup(1), DirectoryRes::Val(2)),
            ev(DirectoryInv::Delete(1), DirectoryRes::Ok),
            ev(DirectoryInv::Lookup(1), DirectoryRes::Missing),
        ]));
    }

    #[test]
    fn double_insert_signals_exists() {
        assert!(serial::is_legal::<Directory>(&[
            ev(DirectoryInv::Insert(1, 1), DirectoryRes::Ok),
            ev(DirectoryInv::Insert(1, 2), DirectoryRes::Exists),
            ev(DirectoryInv::Lookup(1), DirectoryRes::Val(1)),
        ]));
    }

    #[test]
    fn update_and_delete_on_missing_key_signal_missing() {
        assert!(serial::is_legal::<Directory>(&[
            ev(DirectoryInv::Update(1, 2), DirectoryRes::Missing),
            ev(DirectoryInv::Delete(1), DirectoryRes::Missing),
        ]));
        assert!(!serial::is_legal::<Directory>(&[ev(
            DirectoryInv::Delete(1),
            DirectoryRes::Ok
        )]));
    }

    #[test]
    fn keys_are_independent() {
        assert!(serial::is_legal::<Directory>(&[
            ev(DirectoryInv::Insert(1, 1), DirectoryRes::Ok),
            ev(DirectoryInv::Lookup(2), DirectoryRes::Missing),
            ev(DirectoryInv::Insert(2, 1), DirectoryRes::Ok),
            ev(DirectoryInv::Delete(1), DirectoryRes::Ok),
            ev(DirectoryInv::Lookup(2), DirectoryRes::Val(1)),
        ]));
    }
}
// (additional coverage)
#[cfg(test)]
mod display_tests {
    use super::*;
    use quorumcc_model::Classified;

    #[test]
    fn display_and_classes() {
        assert_eq!(DirectoryInv::Insert(1, 2).to_string(), "Insert(1,2)");
        assert_eq!(DirectoryRes::Exists.to_string(), "Exists()");
        assert_eq!(
            Directory::event_class(&DirectoryInv::Lookup(1), &DirectoryRes::Missing).to_string(),
            "Lookup/Missing"
        );
        assert_eq!(Directory::op_classes().len(), 4);
        assert_eq!(Directory::event_classes().len(), 8);
    }
}
