//! The paper's atomic data types, plus a battery of companions.
//!
//! Each type implements [`Sequential`] (deterministic, total state machine),
//! [`Enumerable`] (a small sample invocation alphabet for the decision
//! procedures), and [`Classified`] (the schema classes that dependency
//! relations and quorum assignments are stated over).
//!
//! From the paper (Herlihy, PODC 1985):
//!
//! * [`Queue`] — the running example (§3): FIFO with `Enq`, `Deq`.
//! * [`Prom`] — §4: write-then-seal-then-read container separating hybrid
//!   from static atomicity (Theorem 5).
//! * [`FlagSet`] — §4: the type whose minimal *hybrid* dependency relation
//!   is not unique.
//! * [`DoubleBuffer`] — §5: producer/consumer buffers separating dynamic
//!   from hybrid dependency (Theorem 12).
//!
//! Companions used by the availability battery and the replication
//! examples:
//!
//! * [`Register`] — read/write file, the Gifford weighted-voting baseline.
//! * [`Counter`] — commuting increments/decrements plus reads.
//! * [`Account`] — bank account whose `Withdraw` can signal `Overdraft`.
//! * [`GSet`] — grow-only set with idempotent, commuting inserts.
//! * [`Directory`] — insert/update/delete/lookup map (Bloch–Daniels–Spector).
//! * [`AppendLog`] — append-only log with full scans.
//!
//! Invocations carry real (unbounded) argument values so the replication
//! layer can run realistic workloads; [`Enumerable::invocations`] returns a
//! small *sample alphabet* chosen to expose every dependency of the type
//! (two distinct items is always enough for the paper's types).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod appendlog;
pub mod counter;
pub mod directory;
pub mod doublebuffer;
pub mod flagset;
pub mod gset;
pub mod prom;
pub mod queue;
pub mod register;

pub use account::Account;
pub use appendlog::AppendLog;
pub use counter::Counter;
pub use directory::Directory;
pub use doublebuffer::DoubleBuffer;
pub use flagset::FlagSet;
pub use gset::GSet;
pub use prom::Prom;
pub use queue::Queue;
pub use register::Register;

pub use quorumcc_model::{Classified, Enumerable, Sequential};
