//! The PROM (§4): the paper's witness that hybrid atomicity places weaker
//! constraints on availability than static atomicity.

use quorumcc_model::{Classified, Enumerable, EventClass, Sequential};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A PROM is a container for an item.
///
/// When created it holds a default value (`0`); its contents can be
/// overwritten but not read. Once **sealed**, its contents can be read but
/// not written (§4):
///
/// * `Write(item)` — stores `item`, or signals `Disabled` if sealed.
/// * `Read()` — returns the item, or signals `Disabled` if not yet sealed.
/// * `Seal()` — enables reads and disables writes; idempotent.
///
/// # Example
///
/// ```
/// use quorumcc_adts::prom::{Prom, PromInv, PromRes};
/// use quorumcc_model::{serial, Event};
///
/// let h = vec![
///     Event::new(PromInv::Write(9), PromRes::Ok),
///     Event::new(PromInv::Seal, PromRes::Ok),
///     Event::new(PromInv::Read, PromRes::Item(9)),
///     Event::new(PromInv::Write(1), PromRes::Disabled),
/// ];
/// assert!(serial::is_legal::<Prom>(&h));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prom {}

/// Items are plain integers; `0` is the creation default.
pub type Item = u32;

/// The abstract state of a [`Prom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PromState {
    /// Whether `Seal` has taken effect.
    pub sealed: bool,
    /// Current contents (default `0`).
    pub contents: Item,
}

/// Invocations of [`Prom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PromInv {
    /// Store a new item (fails with `Disabled` once sealed).
    Write(Item),
    /// Read the item (fails with `Disabled` until sealed).
    Read,
    /// Seal the PROM: enable reads, disable writes.
    Seal,
}

/// Responses of [`Prom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PromRes {
    /// Normal termination of `Write` or `Seal`.
    Ok,
    /// Normal termination of `Read`: the stored item.
    Item(Item),
    /// The operation is disabled in the current phase.
    Disabled,
}

impl fmt::Display for PromInv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromInv::Write(x) => write!(f, "Write({x})"),
            PromInv::Read => write!(f, "Read()"),
            PromInv::Seal => write!(f, "Seal()"),
        }
    }
}

impl fmt::Display for PromRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromRes::Ok => write!(f, "Ok()"),
            PromRes::Item(x) => write!(f, "Ok({x})"),
            PromRes::Disabled => write!(f, "Disabled()"),
        }
    }
}

impl Sequential for Prom {
    type State = PromState;
    type Inv = PromInv;
    type Res = PromRes;
    const NAME: &'static str = "PROM";

    fn initial() -> PromState {
        PromState {
            sealed: false,
            contents: 0,
        }
    }

    fn apply(s: &PromState, inv: &PromInv) -> (PromRes, PromState) {
        match inv {
            PromInv::Write(x) => {
                if s.sealed {
                    (PromRes::Disabled, *s)
                } else {
                    (
                        PromRes::Ok,
                        PromState {
                            sealed: false,
                            contents: *x,
                        },
                    )
                }
            }
            PromInv::Read => {
                if s.sealed {
                    (PromRes::Item(s.contents), *s)
                } else {
                    (PromRes::Disabled, *s)
                }
            }
            PromInv::Seal => (
                PromRes::Ok,
                PromState {
                    sealed: true,
                    contents: s.contents,
                },
            ),
        }
    }
}

impl Enumerable for Prom {
    fn invocations() -> Vec<PromInv> {
        vec![
            PromInv::Write(1),
            PromInv::Write(2),
            PromInv::Read,
            PromInv::Seal,
        ]
    }
}

impl Classified for Prom {
    fn op_class(inv: &PromInv) -> &'static str {
        match inv {
            PromInv::Write(_) => "Write",
            PromInv::Read => "Read",
            PromInv::Seal => "Seal",
        }
    }

    fn res_class(_inv: &PromInv, res: &PromRes) -> &'static str {
        match res {
            PromRes::Ok | PromRes::Item(_) => "Ok",
            PromRes::Disabled => "Disabled",
        }
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Write", "Read", "Seal"]
    }

    fn event_classes() -> Vec<EventClass> {
        vec![
            EventClass::new("Write", "Ok"),
            EventClass::new("Write", "Disabled"),
            EventClass::new("Read", "Ok"),
            EventClass::new("Read", "Disabled"),
            EventClass::new("Seal", "Ok"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::{serial, spec, Event};

    fn write(x: Item) -> Event<PromInv, PromRes> {
        Event::new(PromInv::Write(x), PromRes::Ok)
    }
    fn seal() -> Event<PromInv, PromRes> {
        Event::new(PromInv::Seal, PromRes::Ok)
    }
    fn read(x: Item) -> Event<PromInv, PromRes> {
        Event::new(PromInv::Read, PromRes::Item(x))
    }

    #[test]
    fn write_seal_read_lifecycle() {
        assert!(serial::is_legal::<Prom>(&[
            write(1),
            write(2),
            seal(),
            read(2),
            read(2),
        ]));
    }

    #[test]
    fn read_before_seal_is_disabled() {
        assert!(serial::is_legal::<Prom>(&[Event::new(
            PromInv::Read,
            PromRes::Disabled
        )]));
        assert!(!serial::is_legal::<Prom>(&[read(0)]));
    }

    #[test]
    fn write_after_seal_is_disabled() {
        assert!(serial::is_legal::<Prom>(&[
            seal(),
            Event::new(PromInv::Write(1), PromRes::Disabled),
            read(0), // default contents survive
        ]));
        assert!(!serial::is_legal::<Prom>(&[seal(), write(1)]));
    }

    #[test]
    fn seal_is_idempotent() {
        assert!(serial::is_legal::<Prom>(&[
            write(2),
            seal(),
            seal(),
            read(2)
        ]));
    }

    #[test]
    fn read_returns_last_value_written_before_seal() {
        assert!(!serial::is_legal::<Prom>(&[
            write(1),
            write(2),
            seal(),
            read(1)
        ]));
    }

    #[test]
    fn state_space_is_tiny() {
        // {sealed} × {0,1,2} — with sample domain {1,2}: 6 states.
        let states = spec::reachable_states::<Prom>(spec::ExploreBounds::default());
        assert_eq!(states.len(), 6);
    }

    #[test]
    fn classification_covers_all_events() {
        assert_eq!(Prom::event_classes().len(), 5);
        assert_eq!(
            Prom::event_class(&PromInv::Read, &PromRes::Disabled).to_string(),
            "Read/Disabled"
        );
        assert_eq!(
            Prom::event_class(&PromInv::Seal, &PromRes::Ok).to_string(),
            "Seal/Ok"
        );
    }
}
