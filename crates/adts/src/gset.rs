//! A grow-only set: idempotent, commuting inserts.

use quorumcc_model::{Classified, Enumerable, EventClass, Sequential};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A grow-only set of integers (initially empty).
///
/// * `Insert(x)` — adds `x` (idempotent; always `Ok`).
/// * `Contains(x)` — returns whether `x` is present.
///
/// Inserts commute with each other *and with themselves*, so strong dynamic
/// atomicity permits fully concurrent inserts; only membership queries
/// constrain quorum intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GSet {}

/// Invocations of [`GSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GSetInv {
    /// Add an element.
    Insert(u32),
    /// Query membership of an element.
    Contains(u32),
}

/// Responses of [`GSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GSetRes {
    /// Normal termination of `Insert`.
    Ok,
    /// `Contains` verdict.
    Bool(bool),
}

impl fmt::Display for GSetInv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GSetInv::Insert(x) => write!(f, "Insert({x})"),
            GSetInv::Contains(x) => write!(f, "Contains({x})"),
        }
    }
}

impl fmt::Display for GSetRes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GSetRes::Ok => write!(f, "Ok()"),
            GSetRes::Bool(b) => write!(f, "Ok({b})"),
        }
    }
}

impl Sequential for GSet {
    type State = BTreeSet<u32>;
    type Inv = GSetInv;
    type Res = GSetRes;
    const NAME: &'static str = "GSet";

    fn initial() -> BTreeSet<u32> {
        BTreeSet::new()
    }

    fn apply(s: &BTreeSet<u32>, inv: &GSetInv) -> (GSetRes, BTreeSet<u32>) {
        match inv {
            GSetInv::Insert(x) => {
                let mut t = s.clone();
                t.insert(*x);
                (GSetRes::Ok, t)
            }
            GSetInv::Contains(x) => (GSetRes::Bool(s.contains(x)), s.clone()),
        }
    }
}

impl Enumerable for GSet {
    fn invocations() -> Vec<GSetInv> {
        vec![
            GSetInv::Insert(1),
            GSetInv::Insert(2),
            GSetInv::Contains(1),
            GSetInv::Contains(2),
        ]
    }
}

impl Classified for GSet {
    fn op_class(inv: &GSetInv) -> &'static str {
        match inv {
            GSetInv::Insert(_) => "Insert",
            GSetInv::Contains(_) => "Contains",
        }
    }

    fn res_class(_inv: &GSetInv, res: &GSetRes) -> &'static str {
        match res {
            GSetRes::Ok => "Ok",
            GSetRes::Bool(true) => "True",
            GSetRes::Bool(false) => "False",
        }
    }

    fn op_classes() -> Vec<&'static str> {
        vec!["Insert", "Contains"]
    }

    fn event_classes() -> Vec<EventClass> {
        vec![
            EventClass::new("Insert", "Ok"),
            EventClass::new("Contains", "True"),
            EventClass::new("Contains", "False"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::{
        serial,
        spec::{self, ExploreBounds},
        Event,
    };

    #[test]
    fn insert_then_contains() {
        assert!(serial::is_legal::<GSet>(&[
            Event::new(GSetInv::Contains(1), GSetRes::Bool(false)),
            Event::new(GSetInv::Insert(1), GSetRes::Ok),
            Event::new(GSetInv::Contains(1), GSetRes::Bool(true)),
            Event::new(GSetInv::Contains(2), GSetRes::Bool(false)),
        ]));
    }

    #[test]
    fn inserts_commute_even_for_same_element() {
        let b = ExploreBounds::default();
        let states = spec::reachable_states::<GSet>(b);
        let i1 = Event::new(GSetInv::Insert(1), GSetRes::Ok);
        let i2 = Event::new(GSetInv::Insert(2), GSetRes::Ok);
        assert!(spec::events_commute::<GSet>(&i1, &i2, &states, b));
        assert!(spec::events_commute::<GSet>(&i1, &i1, &states, b));
    }

    #[test]
    fn insert_does_not_commute_with_negative_contains() {
        let b = ExploreBounds::default();
        let states = spec::reachable_states::<GSet>(b);
        let ins = Event::new(GSetInv::Insert(1), GSetRes::Ok);
        let c_false = Event::new(GSetInv::Contains(1), GSetRes::Bool(false));
        assert!(!spec::events_commute::<GSet>(&ins, &c_false, &states, b));
    }

    #[test]
    fn insert_commutes_with_unrelated_contains() {
        let b = ExploreBounds::default();
        let states = spec::reachable_states::<GSet>(b);
        let ins = Event::new(GSetInv::Insert(1), GSetRes::Ok);
        let c2 = Event::new(GSetInv::Contains(2), GSetRes::Bool(false));
        assert!(spec::events_commute::<GSet>(&ins, &c2, &states, b));
    }
}
// (additional coverage)
#[cfg(test)]
mod display_tests {
    use super::*;
    use quorumcc_model::Classified;

    #[test]
    fn display_and_classes() {
        assert_eq!(GSetInv::Insert(3).to_string(), "Insert(3)");
        assert_eq!(GSetRes::Bool(true).to_string(), "Ok(true)");
        assert_eq!(
            GSet::event_class(&GSetInv::Contains(1), &GSetRes::Bool(false)).to_string(),
            "Contains/False"
        );
        assert_eq!(GSet::op_classes().len(), 2);
        assert_eq!(GSet::event_classes().len(), 3);
    }
}
