//! Parallel determinism: every result produced by the work-stealing
//! pipeline — corpus enumeration, clause extraction, hitting-set search —
//! must be bitwise-identical at every thread count, and identical to the
//! retained unmemoized reference extractor.
//!
//! These tests are the contract that makes `--threads` safe to vary in
//! the experiment binaries: timings move, outputs do not.

use quorumcc_adts::{FlagSet, Prom, Queue};
use quorumcc_core::enumerate::{histories, CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{Classified, Enumerable};

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

fn cfg(seed: u64, threads: usize) -> CorpusConfig {
    CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 1_500,
        sample_ops: 4,
        seed,
        bounds: bounds(),
        threads,
    }
}

/// Thread counts exercised against the sequential baseline (0 = all
/// available parallelism, so the suite covers whatever the host has).
const THREADS: [usize; 3] = [2, 4, 0];

fn corpus_is_thread_invariant<S: Enumerable + Classified>(prop: Property, seed: u64) {
    let seq = histories::<S>(prop, &cfg(seed, 1));
    assert!(!seq.is_empty(), "{}: empty corpus", S::NAME);
    for threads in THREADS {
        let par = histories::<S>(prop, &cfg(seed, threads));
        assert_eq!(
            seq,
            par,
            "{}: {prop:?} corpus differs at {threads} threads",
            S::NAME
        );
    }
}

fn extraction_is_thread_invariant<S: Enumerable + Classified>(prop: Property, seed: u64) {
    let reference = ClauseSet::extract_reference::<S>(prop, &cfg(seed, 1), &[]);
    let seq = ClauseSet::extract::<S>(prop, &cfg(seed, 1), &[]);
    assert_eq!(
        reference,
        seq,
        "{}: memoized sequential extraction diverged from the reference path",
        S::NAME
    );
    let seq_minimal = seq.minimal_relations(8);
    for threads in THREADS {
        let par = ClauseSet::extract::<S>(prop, &cfg(seed, threads), &[]);
        assert_eq!(
            seq,
            par,
            "{}: {prop:?} clause set differs at {threads} threads",
            S::NAME
        );
        assert_eq!(
            seq_minimal,
            par.minimal_relations_par(8, threads),
            "{}: {prop:?} minimal relations differ at {threads} threads",
            S::NAME
        );
    }
}

#[test]
fn queue_corpus_deterministic() {
    corpus_is_thread_invariant::<Queue>(Property::Hybrid, 41);
}

#[test]
fn prom_corpus_deterministic() {
    corpus_is_thread_invariant::<Prom>(Property::Static, 42);
}

#[test]
fn flagset_corpus_deterministic() {
    corpus_is_thread_invariant::<FlagSet>(Property::Hybrid, 43);
}

#[test]
fn queue_extraction_deterministic() {
    extraction_is_thread_invariant::<Queue>(Property::Hybrid, 44);
}

#[test]
fn prom_extraction_deterministic() {
    extraction_is_thread_invariant::<Prom>(Property::Hybrid, 45);
}

#[test]
fn flagset_extraction_deterministic() {
    extraction_is_thread_invariant::<FlagSet>(Property::Hybrid, 46);
}

/// Seeded witness histories ride along identically at every thread count
/// (the FlagSet's published dual-minimality result depends on this).
#[test]
fn seeded_extraction_deterministic() {
    let witness = quorumcc_core::certificates::flagset_dual_witness();
    let seq = ClauseSet::extract::<FlagSet>(
        Property::Hybrid,
        &cfg(17, 1),
        std::slice::from_ref(&witness),
    );
    for threads in THREADS {
        let par = ClauseSet::extract::<FlagSet>(
            Property::Hybrid,
            &cfg(17, threads),
            std::slice::from_ref(&witness),
        );
        assert_eq!(seq, par, "seeded clause set differs at {threads} threads");
    }
}
