//! Cross-machinery consistency checks: the closed-form searches, the
//! clause extraction, and the witness reconstruction must all agree.

use quorumcc_adts::{DoubleBuffer, Prom};
use quorumcc_core::enumerate::{CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;
use quorumcc_core::{find_witness, minimal_dynamic_relation, minimal_static_relation};
use quorumcc_model::spec::{all_events, reachable_states, ExploreBounds};
use quorumcc_model::Classified;

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

fn cfg(seed: u64) -> CorpusConfig {
    CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 2_000,
        sample_ops: 4,
        seed,
        bounds: bounds(),
        threads: 1,
    }
}

/// The static clause machinery recovers Theorem 6's unique minimal
/// relation for the PROM.
#[test]
fn prom_static_clauses_recover_theorem_6() {
    let clauses = ClauseSet::extract::<Prom>(Property::Static, &cfg(3), &[]);
    let closed_form = minimal_static_relation::<Prom>(bounds());
    assert!(closed_form.exhaustive);
    let minimal = clauses.minimal_relations(8);
    assert_eq!(minimal.len(), 1, "≥S must be unique");
    assert_eq!(minimal[0], closed_form.relation);
}

/// Every pair of the PROM's `≥S` is backed by a self-checking
/// Theorem-6 witness in at least one insertion direction.
#[test]
fn prom_static_pairs_have_witnesses() {
    let rel = minimal_static_relation::<Prom>(bounds()).relation;
    let states = reachable_states::<Prom>(bounds());
    let events = all_events::<Prom>(&states);
    for (inv_class, ev_class) in rel.iter() {
        let found = events.iter().any(|f| {
            if Prom::op_class(&f.inv) != *inv_class {
                return false;
            }
            events.iter().any(|g| {
                Prom::event_class(&g.inv, &g.res) == *ev_class
                    && (find_witness::<Prom>(f, g, bounds()).is_some_and(|w| w.check())
                        || find_witness::<Prom>(g, f, bounds()).is_some_and(|w| w.check()))
            })
        });
        assert!(found, "no witness for {inv_class} ≥ {ev_class}");
    }
}

/// The DoubleBuffer's minimal *hybrid* relation is incomparable with its
/// minimal dynamic relation — in **both** directions:
/// `≥D` contains `Produce ≥ Produce/Ok` (hybrid does not need it), and
/// the hybrid relation needs `Consume ≥ Produce/Ok` (absent from `≥D`,
/// which is Theorem 12).
#[test]
fn doublebuffer_hybrid_and_dynamic_incomparable() {
    let d = minimal_dynamic_relation::<DoubleBuffer>(bounds()).relation;
    let clauses = ClauseSet::extract::<DoubleBuffer>(Property::Hybrid, &cfg(7), &[]);
    let minimal = clauses.minimal_relations(4);
    assert_eq!(minimal.len(), 1, "DoubleBuffer's minimal hybrid is unique");
    let h = &minimal[0];
    assert!(!h.is_subset(&d), "hybrid ⊄ dynamic");
    assert!(!d.is_subset(h), "dynamic ⊄ hybrid (Theorem 12)");
    use quorumcc_model::EventClass;
    assert!(h.contains("Consume", EventClass::new("Produce", "Ok")));
    assert!(!h.contains("Produce", EventClass::new("Produce", "Ok")));
    assert!(d.contains("Produce", EventClass::new("Produce", "Ok")));
    assert!(!d.contains("Consume", EventClass::new("Produce", "Ok")));
}

/// Verified relations stay verified under union (monotonicity of
/// Definition 2 in the relation).
#[test]
fn verification_is_monotone_in_the_relation() {
    let clauses = ClauseSet::extract::<Prom>(Property::Hybrid, &cfg(11), &[]);
    let small = quorumcc_core::certificates::prom_hybrid_relation();
    let big = small.union(&minimal_static_relation::<Prom>(bounds()).relation);
    assert!(clauses.verify(&small).is_ok());
    assert!(clauses.verify(&big).is_ok());
}

/// The forced pairs of a clause set are contained in every verified
/// relation the paper names.
#[test]
fn forced_pairs_lower_bound_all_named_relations() {
    let clauses = ClauseSet::extract::<Prom>(Property::Hybrid, &cfg(13), &[]);
    let forced = clauses.forced_pairs();
    assert!(forced.is_subset(&quorumcc_core::certificates::prom_hybrid_relation()));
    assert!(forced.is_subset(&minimal_static_relation::<Prom>(bounds()).relation));
}
