//! Whole-type analysis reports — the machinery behind Figures 1-1 and 1-2.

use crate::dynamic_rel::minimal_dynamic_relation;
use crate::relation::DependencyRelation;
use crate::static_rel::minimal_static_relation;
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{Classified, Enumerable};
use std::fmt;

/// Everything the comparison needs to know about one data type.
#[derive(Debug, Clone)]
pub struct TypeReport {
    /// The type's name.
    pub name: &'static str,
    /// The unique minimal static dependency relation `≥S` (Theorem 6).
    pub static_rel: DependencyRelation,
    /// The unique minimal dynamic dependency relation `≥D` (Theorem 10).
    pub dynamic_rel: DependencyRelation,
    /// Whether both computations were exhaustive within bounds.
    pub exhaustive: bool,
    /// The bounds used.
    pub bounds: ExploreBounds,
}

impl TypeReport {
    /// How `≥S` compares to `≥D` — Figure 1-2's static-vs-dynamic edge for
    /// this type.
    pub fn static_vs_dynamic(&self) -> RelOrder {
        RelOrder::compare(&self.static_rel, &self.dynamic_rel)
    }
}

impl fmt::Display for TypeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.name)?;
        writeln!(f, "minimal static relation (Theorem 6):")?;
        for line in self.static_rel.table().lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "minimal dynamic relation (Theorem 10):")?;
        for line in self.dynamic_rel.table().lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "static vs dynamic: {}", self.static_vs_dynamic())
    }
}

/// How two relations compare as sets of constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOrder {
    /// Identical constraint sets.
    Equal,
    /// The left relation is a strict subset (weaker constraints → more
    /// availability freedom).
    LeftWeaker,
    /// The right relation is a strict subset.
    RightWeaker,
    /// Neither contains the other.
    Incomparable,
}

impl RelOrder {
    /// Compares `a` and `b` by inclusion.
    pub fn compare(a: &DependencyRelation, b: &DependencyRelation) -> RelOrder {
        match (a.is_subset(b), b.is_subset(a)) {
            (true, true) => RelOrder::Equal,
            (true, false) => RelOrder::LeftWeaker,
            (false, true) => RelOrder::RightWeaker,
            (false, false) => RelOrder::Incomparable,
        }
    }
}

impl fmt::Display for RelOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelOrder::Equal => "equal",
            RelOrder::LeftWeaker => "left strictly weaker",
            RelOrder::RightWeaker => "right strictly weaker",
            RelOrder::Incomparable => "incomparable",
        };
        f.write_str(s)
    }
}

/// Computes the [`TypeReport`] for `S`.
pub fn report<S: Enumerable + Classified>(bounds: ExploreBounds) -> TypeReport {
    let s = minimal_static_relation::<S>(bounds);
    let d = minimal_dynamic_relation::<S>(bounds);
    TypeReport {
        name: S::NAME,
        static_rel: s.relation,
        dynamic_rel: d.relation,
        exhaustive: s.exhaustive && d.exhaustive,
        bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::testtypes::{TestQueue, TestRegister};

    fn bounds() -> ExploreBounds {
        ExploreBounds {
            depth: 4,
            max_states: 4096,
            budget: 5_000_000,
        }
    }

    #[test]
    fn queue_report_static_incomparable_with_dynamic() {
        // Enq ≥S Deq/Ok but not ≥D; Enq ≥D Enq/Ok but not ≥S — the Queue
        // witnesses the abstract's static/dynamic incomparability.
        let r = report::<TestQueue>(bounds());
        assert!(r.exhaustive);
        assert_eq!(r.static_vs_dynamic(), RelOrder::Incomparable);
    }

    #[test]
    fn register_report_static_weaker() {
        let r = report::<TestRegister>(bounds());
        assert_eq!(r.static_vs_dynamic(), RelOrder::LeftWeaker);
    }

    #[test]
    fn display_contains_both_tables() {
        let r = report::<TestRegister>(bounds());
        let s = r.to_string();
        assert!(s.contains("Theorem 6"));
        assert!(s.contains("Theorem 10"));
    }

    #[test]
    fn rel_order_cases() {
        let a = DependencyRelation::from_pairs([("X", quorumcc_model::EventClass::new("Y", "Ok"))]);
        let b = DependencyRelation::from_pairs([("Z", quorumcc_model::EventClass::new("Y", "Ok"))]);
        assert_eq!(RelOrder::compare(&a, &a), RelOrder::Equal);
        assert_eq!(RelOrder::compare(&a, &a.union(&b)), RelOrder::LeftWeaker);
        assert_eq!(RelOrder::compare(&a.union(&b), &a), RelOrder::RightWeaker);
        assert_eq!(RelOrder::compare(&a, &b), RelOrder::Incomparable);
    }
}
