//! Class-level dependency relations between invocations and events.

use quorumcc_model::{Classified, DependsOn, Event, EventClass};
use serde::Serialize;
use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;

/// One dependency pair: the invocation class on the left **depends on**
/// (must observe) events of the class on the right — `Inv ≥ Event` in the
/// paper's notation.
pub type Pair = (&'static str, EventClass);

/// A dependency relation at the schema level: a set of
/// (invocation class, event class) pairs.
///
/// In the replicated implementation, `inv ≥ e` compiles to the constraint
/// that every *initial* quorum of `inv` intersects every *final* quorum of
/// `e` (§3.2); the fewer the pairs, the wider the realizable availability
/// trade-offs.
///
/// # Example
///
/// The paper's hybrid dependency relation for the PROM (§4):
///
/// ```
/// use quorumcc_core::relation::DependencyRelation;
/// use quorumcc_model::EventClass;
///
/// let rel = DependencyRelation::from_pairs([
///     ("Seal", EventClass::new("Write", "Ok")),
///     ("Seal", EventClass::new("Read", "Disabled")),
///     ("Read", EventClass::new("Seal", "Ok")),
///     ("Write", EventClass::new("Seal", "Ok")),
/// ]);
/// assert_eq!(rel.len(), 4);
/// assert!(rel.contains("Read", EventClass::new("Seal", "Ok")));
/// ```
// `Deserialize` is omitted: pairs intern `&'static str` class names, which
// can be serialized for reports but not deserialized.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default, Serialize)]
pub struct DependencyRelation {
    pairs: BTreeSet<Pair>,
}

impl DependencyRelation {
    /// The empty relation.
    pub fn new() -> Self {
        DependencyRelation::default()
    }

    /// Builds a relation from `(invocation class, event class)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = Pair>) -> Self {
        DependencyRelation {
            pairs: pairs.into_iter().collect(),
        }
    }

    /// The complete relation for type `S`: every invocation class depends
    /// on every event class. Always a dependency relation (for every
    /// property), and the top of the lattice the searches descend from.
    pub fn full<S: Classified>() -> Self {
        let mut pairs = BTreeSet::new();
        for op in S::op_classes() {
            for ev in S::event_classes() {
                pairs.insert((op, ev));
            }
        }
        DependencyRelation { pairs }
    }

    /// Adds a pair; returns whether it was new.
    pub fn insert(&mut self, inv: &'static str, ev: EventClass) -> bool {
        self.pairs.insert((inv, ev))
    }

    /// Removes a pair; returns whether it was present.
    pub fn remove(&mut self, inv: &'static str, ev: EventClass) -> bool {
        self.pairs.remove(&(inv, ev))
    }

    /// Whether `inv ≥ ev` is in the relation.
    pub fn contains(&self, inv: &str, ev: EventClass) -> bool {
        // `&'static str` keys compare by content.
        self.pairs.iter().any(|(i, e)| *i == inv && *e == ev)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &Pair> {
        self.pairs.iter()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &DependencyRelation) -> bool {
        self.pairs.is_subset(&other.pairs)
    }

    /// Set union.
    pub fn union(&self, other: &DependencyRelation) -> DependencyRelation {
        DependencyRelation {
            pairs: self.pairs.union(&other.pairs).cloned().collect(),
        }
    }

    /// Pairs in `self` but not in `other`.
    pub fn difference(&self, other: &DependencyRelation) -> DependencyRelation {
        DependencyRelation {
            pairs: self.pairs.difference(&other.pairs).cloned().collect(),
        }
    }

    /// The relation without `pair`.
    pub fn without(&self, pair: &Pair) -> DependencyRelation {
        let mut pairs = self.pairs.clone();
        pairs.remove(pair);
        DependencyRelation { pairs }
    }

    /// Binds the class-level relation to a concrete type so it can answer
    /// concrete [`DependsOn`] queries (used by the closed-subhistory
    /// machinery and the replication layer).
    pub fn bind<S: Classified>(&self) -> BoundRelation<'_, S> {
        BoundRelation {
            rel: self,
            _marker: PhantomData,
        }
    }

    /// Renders the relation as the paper's list of `Inv ≥ Event` lines.
    pub fn table(&self) -> String {
        self.pairs
            .iter()
            .map(|(inv, ev)| format!("{inv} \u{2265} {ev}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for DependencyRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

impl FromIterator<Pair> for DependencyRelation {
    fn from_iter<T: IntoIterator<Item = Pair>>(iter: T) -> Self {
        DependencyRelation::from_pairs(iter)
    }
}

impl Extend<Pair> for DependencyRelation {
    fn extend<T: IntoIterator<Item = Pair>>(&mut self, iter: T) {
        self.pairs.extend(iter);
    }
}

/// A [`DependencyRelation`] bound to a concrete type `S`, answering
/// concrete invocation/event dependency queries by classifying them.
#[derive(Debug)]
pub struct BoundRelation<'a, S> {
    rel: &'a DependencyRelation,
    _marker: PhantomData<S>,
}

impl<S: Classified> DependsOn<S> for BoundRelation<'_, S> {
    fn depends(&self, inv: &S::Inv, ev: &Event<S::Inv, S::Res>) -> bool {
        self.rel
            .contains(S::op_class(inv), S::event_class(&ev.inv, &ev.res))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::testtypes::{deq, enq, QInv, TestQueue};

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    #[test]
    fn set_operations() {
        let a = DependencyRelation::from_pairs([("Deq", ec("Enq", "Ok"))]);
        let b =
            DependencyRelation::from_pairs([("Deq", ec("Enq", "Ok")), ("Enq", ec("Deq", "Ok"))]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert_eq!(a.union(&b), b);
        assert_eq!(b.difference(&a).len(), 1);
        assert_eq!(b.without(&("Enq", ec("Deq", "Ok"))), a);
    }

    #[test]
    fn full_relation_is_complete() {
        let full = DependencyRelation::full::<TestQueue>();
        // 2 op classes × 3 event classes.
        assert_eq!(full.len(), 6);
        assert!(full.contains("Enq", ec("Deq", "Empty")));
    }

    #[test]
    fn bound_relation_classifies_concrete_events() {
        let rel = DependencyRelation::from_pairs([("Deq", ec("Enq", "Ok"))]);
        let bound = rel.bind::<TestQueue>();
        assert!(bound.depends(&QInv::Deq, &enq(2)));
        assert!(!bound.depends(&QInv::Deq, &deq(1)));
        assert!(!bound.depends(&QInv::Enq(1), &enq(2)));
    }

    #[test]
    fn table_renders_paper_notation() {
        let rel = DependencyRelation::from_pairs([("Deq", ec("Enq", "Ok"))]);
        assert_eq!(rel.table(), "Deq \u{2265} Enq/Ok");
    }

    #[test]
    fn mutation() {
        let mut rel = DependencyRelation::new();
        assert!(rel.is_empty());
        assert!(rel.insert("Deq", ec("Enq", "Ok")));
        assert!(!rel.insert("Deq", ec("Enq", "Ok")));
        assert!(rel.remove("Deq", ec("Enq", "Ok")));
        assert!(rel.is_empty());
    }
}
