//! Theorem 10: the **unique minimal dynamic dependency relation** `≥D` is
//! non-commutativity — `inv ≥D e` iff some `[inv;res]` fails to commute
//! with `e` (Definition 8).

use crate::relation::DependencyRelation;
use crate::static_rel::RelationResult;
use quorumcc_model::spec::{all_events, reachable_states, CommuteOracle, ExploreBounds};
use quorumcc_model::{Classified, Enumerable};

/// Computes the unique minimal **dynamic** dependency relation `≥D` of
/// Theorem 10, lifted to schema classes.
///
/// This is also the conflict relation a generalized two-phase-locking
/// scheduler must enforce: operations lock in modes that conflict exactly
/// when they fail to commute.
///
/// # Example
///
/// ```
/// use quorumcc_core::dynamic_rel::minimal_dynamic_relation;
/// use quorumcc_model::{spec::ExploreBounds, testtypes::TestQueue, EventClass};
///
/// let r = minimal_dynamic_relation::<TestQueue>(ExploreBounds {
///     depth: 4,
///     ..ExploreBounds::default()
/// });
/// // Theorem 11: strong dynamic atomicity adds Enq ≥D Enq/Ok.
/// assert!(r.relation.contains("Enq", EventClass::new("Enq", "Ok")));
/// ```
pub fn minimal_dynamic_relation<S: Enumerable + Classified>(
    bounds: ExploreBounds,
) -> RelationResult {
    let states = reachable_states::<S>(bounds);
    let events = all_events::<S>(&states);
    let mut oracle = CommuteOracle::<S>::new(bounds);
    let mut relation = DependencyRelation::new();

    for inv in S::invocations() {
        let inv_class = S::op_class(&inv);
        let f_candidates: Vec<_> = events.iter().filter(|e| e.inv == inv).cloned().collect();
        for g in &events {
            let g_class = S::event_class(&g.inv, &g.res);
            if relation.contains(inv_class, g_class) {
                continue;
            }
            if f_candidates.iter().any(|f| !oracle.commute(f, g)) {
                relation.insert(inv_class, g_class);
            }
        }
    }
    RelationResult {
        relation,
        exhaustive: true,
        bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_rel::minimal_static_relation;
    use quorumcc_model::testtypes::{TestQueue, TestRegister};
    use quorumcc_model::EventClass;

    fn bounds() -> ExploreBounds {
        ExploreBounds {
            depth: 4,
            max_states: 4096,
            budget: 5_000_000,
        }
    }

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    /// Theorem 11 (strict reading): applying Theorem 10 literally, `≥D`
    /// adds `Enq ≥D Enq/Ok` (two enqueues of different items do not
    /// commute) **and drops** `Enq ≥ Deq/Ok` — enqueue-at-the-back commutes
    /// with dequeue-at-the-front on an unbounded queue, so the Queue is a
    /// direct witness that `≥S` and `≥D` are *incomparable* (the abstract's
    /// third bullet). The paper's prose presents `≥D` as "`≥S` plus
    /// `Enq ≥ Enq`"; the strict Definition-8 computation (cross-validated
    /// against the Definition-2 clause machinery in `verifier`) yields the
    /// relation below. See EXPERIMENTS.md for the discrepancy note.
    #[test]
    fn queue_dynamic_relation_theorem_11_strict() {
        let d = minimal_dynamic_relation::<TestQueue>(bounds());
        let expect = DependencyRelation::from_pairs([
            ("Enq", ec("Enq", "Ok")),
            ("Enq", ec("Deq", "Empty")),
            ("Deq", ec("Enq", "Ok")),
            ("Deq", ec("Deq", "Ok")),
        ]);
        assert_eq!(d.relation, expect, "got:\n{}", d.relation);
        // ≥S and ≥D are incomparable: each holds a pair the other lacks.
        let s = minimal_static_relation::<TestQueue>(bounds());
        assert!(!s.relation.is_subset(&d.relation));
        assert!(!d.relation.is_subset(&s.relation));
        assert!(s.relation.contains("Enq", ec("Deq", "Ok")));
        assert!(!d.relation.contains("Enq", ec("Deq", "Ok")));
        assert!(d.relation.contains("Enq", ec("Enq", "Ok")));
        assert!(!s.relation.contains("Enq", ec("Enq", "Ok")));
    }

    /// For the Register, ≥D adds Write ≥ Write (two writes of different
    /// values do not commute) on top of the static pairs.
    #[test]
    fn register_dynamic_relation() {
        let d = minimal_dynamic_relation::<TestRegister>(bounds());
        let expect = DependencyRelation::from_pairs([
            ("Read", ec("Write", "Ok")),
            ("Write", ec("Read", "Ok")),
            ("Write", ec("Write", "Ok")),
        ]);
        assert_eq!(d.relation, expect, "got:\n{}", d.relation);
    }

    /// The relation is symmetric-ish at class level for conflict purposes:
    /// if Read doesn't commute with Write, both (Read ≥ Write/Ok) and
    /// (Write ≥ Read/Ok) appear.
    #[test]
    fn non_commuting_classes_appear_in_both_directions() {
        let d = minimal_dynamic_relation::<TestRegister>(bounds());
        assert_eq!(
            d.relation.contains("Read", ec("Write", "Ok")),
            d.relation.contains("Write", ec("Read", "Ok")),
        );
    }
}
