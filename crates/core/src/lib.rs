//! The paper's contribution, mechanized: **atomic dependency relations**
//! and the comparison of static, hybrid, and strong dynamic atomicity by
//! the constraints they impose on quorum assignment.
//!
//! * [`relation`] — class-level dependency relations (`Inv ≥ Event`).
//! * [`static_rel`] — Theorem 6: the unique minimal static relation `≥S`,
//!   computed by synchronized product-automaton search.
//! * [`dynamic_rel`] — Theorem 10: the unique minimal dynamic relation
//!   `≥D` = non-commutativity.
//! * [`enumerate`] — bounded corpora of behavioral histories inside
//!   `Static(T)` / `Hybrid(T)` / `Dynamic(T)`.
//! * [`parallel`] — the deterministic work-stealing layer: enumeration,
//!   clause extraction and hitting-set search run on `CorpusConfig::threads`
//!   workers with bitwise-identical results at every thread count.
//! * [`verifier`] — Definition 2 as clause extraction; minimal dependency
//!   relations as minimal hitting sets (unique for static/dynamic,
//!   possibly multiple for hybrid — §4's FlagSet).
//! * [`certificates`] — the paper's theorems re-checked on its verbatim
//!   witness histories.
//! * [`battery`] — per-type comparison reports (Figures 1-1/1-2).
//!
//! # Example
//!
//! ```
//! use quorumcc_core::battery;
//! use quorumcc_adts::Queue;
//! use quorumcc_model::spec::ExploreBounds;
//!
//! let bounds = ExploreBounds { depth: 4, ..ExploreBounds::default() };
//! let report = battery::report::<Queue>(bounds);
//! // Theorem 11: the queue's static and dynamic relations are
//! // incomparable — Enq ≥S Deq/Ok only, Enq ≥D Enq/Ok only.
//! assert_eq!(report.static_vs_dynamic(), battery::RelOrder::Incomparable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod certificates;
pub mod dynamic_rel;
pub mod enumerate;
pub mod parallel;
pub mod relation;
pub mod static_rel;
pub mod verifier;
pub mod witness;

pub use battery::{report, RelOrder, TypeReport};
pub use dynamic_rel::minimal_dynamic_relation;
pub use enumerate::{CorpusConfig, Property};
pub use relation::{DependencyRelation, Pair};
pub use static_rel::{minimal_static_relation, RelationResult};
pub use verifier::{ClauseSet, Counterexample};
pub use witness::{find_witness, Witness};
