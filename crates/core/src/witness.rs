//! Witness extraction for Theorem 6: for any interfering pair, reconstruct
//! concrete serial histories `(h1, h2, h3)` such that
//!
//! * `h1·h2·h3`, `h1·f·h2·h3`, and `h1·h2·g·h3` are legal, but
//! * `h1·f·h2·g·h3` is illegal
//!
//! — the exact existential of Theorem 6, made printable and re-checkable.

use quorumcc_model::serial::{self, SerialHistory};
use quorumcc_model::spec::{apply_event, ExploreBounds, Sequential};
use quorumcc_model::{Enumerable, Event};
use std::collections::{HashMap, VecDeque};

/// A concrete interference witness.
#[derive(Debug, Clone)]
pub struct Witness<S: Sequential> {
    /// The prefix history.
    pub h1: SerialHistory<S::Inv, S::Res>,
    /// The infix between the two inserted events.
    pub h2: SerialHistory<S::Inv, S::Res>,
    /// The suffix after the second event.
    pub h3: SerialHistory<S::Inv, S::Res>,
    /// The first inserted event.
    pub first: Event<S::Inv, S::Res>,
    /// The second inserted event.
    pub second: Event<S::Inv, S::Res>,
}

impl<S: Sequential> Witness<S> {
    /// Re-checks the four legality conditions of Theorem 6 against the
    /// specification — the witness certifies itself.
    pub fn check(&self) -> bool {
        let cat = |parts: &[&[Event<S::Inv, S::Res>]]| -> SerialHistory<S::Inv, S::Res> {
            parts.iter().flat_map(|p| p.iter().cloned()).collect()
        };
        let f = std::slice::from_ref(&self.first);
        let g = std::slice::from_ref(&self.second);
        serial::is_legal::<S>(&cat(&[&self.h1, &self.h2, &self.h3]))
            && serial::is_legal::<S>(&cat(&[&self.h1, f, &self.h2, &self.h3]))
            && serial::is_legal::<S>(&cat(&[&self.h1, &self.h2, g, &self.h3]))
            && !serial::is_legal::<S>(&cat(&[&self.h1, f, &self.h2, g, &self.h3]))
    }
}

type Path<S> = Vec<Event<<S as Sequential>::Inv, <S as Sequential>::Res>>;

/// Finds a witness that inserting `first` before `second` interferes, or
/// `None` if no witness exists within bounds (mirrors
/// [`interferes`](crate::static_rel::interferes) but tracks paths).
pub fn find_witness<S: Enumerable>(
    first: &Event<S::Inv, S::Res>,
    second: &Event<S::Inv, S::Res>,
    bounds: ExploreBounds,
) -> Option<Witness<S>> {
    let invs = S::invocations();

    // Base BFS from the initial state, recording h1 paths.
    let mut h1_path: HashMap<S::State, Path<S>> = HashMap::new();
    {
        let mut q = VecDeque::new();
        h1_path.insert(S::initial(), Vec::new());
        q.push_back((S::initial(), 0usize));
        while let Some((s, d)) = q.pop_front() {
            if d >= bounds.depth {
                continue;
            }
            for inv in &invs {
                let (res, next) = S::apply(&s, inv);
                if !h1_path.contains_key(&next) {
                    let mut p = h1_path[&s].clone();
                    p.push(Event::new(inv.clone(), res));
                    h1_path.insert(next.clone(), p);
                    q.push_back((next, d + 1));
                }
            }
        }
    }

    // Pair BFS over (s-context, t-context) recording h2 paths.
    #[allow(clippy::type_complexity)]
    let mut h2_info: HashMap<(S::State, S::State), (S::State, Path<S>)> = HashMap::new();
    let mut pq = VecDeque::new();
    for (s1, _) in h1_path.iter() {
        if let Some(t1) = apply_event::<S>(s1, first) {
            let key = (s1.clone(), t1);
            if !h2_info.contains_key(&key) {
                h2_info.insert(key.clone(), (s1.clone(), Vec::new()));
                pq.push_back((key, 0usize));
            }
        }
    }
    let mut pairs: Vec<(S::State, S::State)> = h2_info.keys().cloned().collect();
    let mut budget = bounds.budget;
    while let Some(((a, b), d)) = pq.pop_front() {
        if d >= bounds.depth {
            continue;
        }
        for inv in &invs {
            let (ra, na) = S::apply(&a, inv);
            let (rb, nb) = S::apply(&b, inv);
            if ra != rb {
                continue;
            }
            budget = budget.checked_sub(1)?;
            let key = (na, nb);
            if !h2_info.contains_key(&key) {
                let (origin, mut p) = h2_info[&(a.clone(), b.clone())].clone();
                p.push(Event::new(inv.clone(), ra));
                h2_info.insert(key.clone(), (origin, p));
                pairs.push(key.clone());
                pq.push_back((key, d + 1));
            }
        }
    }

    // Quad phase with h3 paths.
    type Quad<S> = (
        <S as Sequential>::State,
        <S as Sequential>::State,
        <S as Sequential>::State,
        <S as Sequential>::State,
    );
    #[allow(clippy::type_complexity)]
    let mut h3_info: HashMap<Quad<S>, ((S::State, S::State), Path<S>)> = HashMap::new();
    let mut qq = VecDeque::new();
    for (s2, t2) in &pairs {
        let Some(s3) = apply_event::<S>(s2, second) else {
            continue;
        };
        match apply_event::<S>(t2, second) {
            None => {
                // Immediate witness: h3 = ε.
                let (s1, h2) = h2_info[&(s2.clone(), t2.clone())].clone();
                return Some(Witness {
                    h1: h1_path[&s1].clone(),
                    h2,
                    h3: Vec::new(),
                    first: first.clone(),
                    second: second.clone(),
                });
            }
            Some(t3) => {
                let quad = (s2.clone(), t2.clone(), s3, t3);
                if !h3_info.contains_key(&quad) {
                    h3_info.insert(quad.clone(), ((s2.clone(), t2.clone()), Vec::new()));
                    qq.push_back((quad, 0usize));
                }
            }
        }
    }
    while let Some(((base, a_ctx, b_ctx, c_ctx), d)) = qq.pop_front() {
        if d >= bounds.depth {
            continue;
        }
        for inv in &invs {
            let (r0, n0) = S::apply(&base, inv);
            let (ra, na) = S::apply(&a_ctx, inv);
            let (rb, nb) = S::apply(&b_ctx, inv);
            if r0 != ra || r0 != rb {
                continue;
            }
            let (rc, nc) = S::apply(&c_ctx, inv);
            let key = (base.clone(), a_ctx.clone(), b_ctx.clone(), c_ctx.clone());
            if rc != r0 {
                // Witness found: h3 = path + the distinguishing event.
                let (pair, mut h3) = h3_info[&key].clone();
                h3.push(Event::new(inv.clone(), r0));
                let (s1, h2) = h2_info[&pair].clone();
                return Some(Witness {
                    h1: h1_path[&s1].clone(),
                    h2,
                    h3,
                    first: first.clone(),
                    second: second.clone(),
                });
            }
            budget = budget.checked_sub(1)?;
            let next = (n0, na, nb, nc);
            if !h3_info.contains_key(&next) {
                let (pair, mut p) = h3_info[&key].clone();
                p.push(Event::new(inv.clone(), r0));
                h3_info.insert(next.clone(), (pair, p));
                qq.push_back((next, d + 1));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_rel::{interferes, Interference};
    use quorumcc_model::spec::reachable_states;
    use quorumcc_model::testtypes::*;

    fn bounds() -> ExploreBounds {
        ExploreBounds {
            depth: 4,
            max_states: 4_096,
            budget: 5_000_000,
        }
    }

    #[test]
    fn witness_for_enq_before_deq() {
        let w = find_witness::<TestQueue>(&enq(1), &deq(2), bounds()).expect("witness");
        assert!(w.check(), "{w:?}");
    }

    #[test]
    fn witness_for_enq_before_deq_empty() {
        let w = find_witness::<TestQueue>(&enq(1), &deq_empty(), bounds()).expect("witness");
        assert!(w.check(), "{w:?}");
        // That one is immediate: no suffix needed.
        assert!(w.h3.is_empty());
    }

    #[test]
    fn no_witness_for_commuting_enqueues() {
        assert!(find_witness::<TestQueue>(&enq(1), &enq(2), bounds()).is_none());
    }

    /// Agreement with the decision procedure: a witness exists exactly
    /// when `interferes` says `Found`, across the whole event alphabet.
    #[test]
    fn witness_search_agrees_with_interference_search() {
        let states = reachable_states::<TestQueue>(bounds());
        let events = quorumcc_model::spec::all_events::<TestQueue>(&states);
        for f in &events {
            for g in &events {
                let verdict = interferes::<TestQueue>(f, g, &states, bounds());
                let witness = find_witness::<TestQueue>(f, g, bounds());
                match verdict {
                    Interference::Found => {
                        let w = witness.unwrap_or_else(|| panic!("no witness for {f:?} {g:?}"));
                        assert!(w.check(), "bogus witness for {f:?} {g:?}");
                    }
                    Interference::NotFound => {
                        assert!(witness.is_none(), "spurious witness for {f:?} {g:?}");
                    }
                    Interference::BudgetExceeded => panic!("budget too small"),
                }
            }
        }
    }

    /// Every pair of the computed ≥S for the register has a self-checking
    /// witness in at least one direction.
    #[test]
    fn every_static_pair_has_a_witness_for_register() {
        use quorumcc_model::testtypes::TestRegister;
        let rel = crate::minimal_static_relation::<TestRegister>(bounds()).relation;
        let states = reachable_states::<TestRegister>(bounds());
        let events = quorumcc_model::spec::all_events::<TestRegister>(&states);
        for (inv_class, ev_class) in rel.iter() {
            let found = events.iter().any(|f| {
                use quorumcc_model::Classified;
                if TestRegister::op_class(&f.inv) != *inv_class {
                    return false;
                }
                events.iter().any(|g| {
                    TestRegister::event_class(&g.inv, &g.res) == *ev_class
                        && (find_witness::<TestRegister>(f, g, bounds()).is_some_and(|w| w.check())
                            || find_witness::<TestRegister>(g, f, bounds())
                                .is_some_and(|w| w.check()))
                })
            });
            assert!(found, "no witness for {inv_class} ≥ {ev_class}");
        }
    }
}
