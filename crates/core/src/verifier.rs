//! Bounded verification of atomic dependency relations (Definition 2) and
//! exact computation of **all minimal relations** via clause extraction.
//!
//! # The reduction
//!
//! Fix a property `P` (static / hybrid / dynamic) and a corpus of histories
//! `H ∈ P(T)`. A relation `≥` fails Definition 2 iff there is a *test*
//! `(H, [e A])` with `H·[e A] ∉ P(T)` and a closed subhistory `G ⊆ H`
//! containing every event `e'` with `e.inv ≥ e'` such that
//! `G·[e A] ∈ P(T)`.
//!
//! For a candidate violating subset `B` (the op entries `G` keeps), whether
//! `B` is closed and contains the required events depends **only** on which
//! pairs the relation contains:
//!
//! * `B` misses a required event `j ∉ B` iff `(cls(e.inv), cls(ev_j)) ∈ ≥`;
//! * `B` is non-closed at `j ∈ B, j' < j, j' ∉ B` iff
//!   `(cls(inv_j), cls(ev_j')) ∈ ≥`.
//!
//! So every test/subset combination with the membership signature
//! `G·[e] ∈ P(T) ∧ H·[e] ∉ P(T)` contributes a **clause** — a disjunction
//! of pairs, at least one of which every valid relation must contain. A
//! relation is a dependency relation (w.r.t. the corpus) iff it hits every
//! clause, and the minimal dependency relations are exactly the **minimal
//! hitting sets** of the clause set. Uniqueness of `≥S` (Theorem 6) and
//! non-uniqueness of minimal hybrid relations (§4, FlagSet) both fall out
//! of this computation.

use crate::enumerate::{alphabet, histories, CorpusConfig, Property};
use crate::parallel;
use crate::relation::{DependencyRelation, Pair};
use quorumcc_model::memo::SpecCache;
use quorumcc_model::{ActionId, BEntry, BHistory, Classified, Enumerable, Event};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A concrete counterexample to Definition 2: with relation `rel`, the view
/// `G` (subhistory of `history` keeping `kept` op entries) admits `event`
/// while the full history does not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The full history `H`, rendered.
    pub history: String,
    /// The event `[e A]` being appended, rendered.
    pub event: String,
    /// The appending action.
    pub action: ActionId,
    /// Rendered events of the violating closed subhistory `G`.
    pub kept: Vec<String>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "appending {} {} to H =", self.event, self.action)?;
        write!(f, "{}", self.history)?;
        writeln!(f, "is illegal, yet legal for the closed view keeping:")?;
        for k in &self.kept {
            writeln!(f, "  {k}")?;
        }
        Ok(())
    }
}

/// Statistics from clause extraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Histories examined.
    pub histories: usize,
    /// (history, event, action) tests whose full extension was illegal.
    pub failing_tests: usize,
    /// Violating subsets found (before clause dedup).
    pub violations: usize,
    /// Distinct minimized clauses.
    pub clauses: usize,
}

/// The clause set extracted from a corpus: the complete Definition-2
/// obligations for one (type, property) at the corpus bounds.
///
/// `PartialEq` compares every component — property, pair universe, clause
/// masks, witnesses and statistics — so the determinism tests can assert
/// bitwise-identical extraction across thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClauseSet {
    property: Property,
    universe: Vec<Pair>,
    index: BTreeMap<Pair, usize>,
    clauses: Vec<u64>,
    witnesses: Vec<Counterexample>,
    stats: CorpusStats,
}

impl ClauseSet {
    /// Extracts the clause set for type `S` and property `prop`, fanning
    /// per-history work out over `cfg.threads` workers (each with its own
    /// [`SpecCache`]).
    ///
    /// `seeds` are extra histories (e.g. the paper's verbatim witnesses)
    /// added to the generated corpus; they make the published clauses
    /// deterministic regardless of sampling. Results are merged in corpus
    /// order, so extraction is bitwise-identical at every thread count and
    /// to [`ClauseSet::extract_reference`].
    pub fn extract<S: Enumerable + Classified>(
        prop: Property,
        cfg: &CorpusConfig,
        seeds: &[BHistory<S::Inv, S::Res>],
    ) -> ClauseSet {
        let mut corpus = histories::<S>(prop, cfg);
        for s in seeds {
            if prop.admits::<S>(s, cfg.bounds) {
                corpus.push(s.clone());
            }
        }
        let events = alphabet::<S>(cfg.bounds);

        let mut stats = CorpusStats {
            histories: corpus.len(),
            ..CorpusStats::default()
        };

        let per_history = parallel::map_indexed_with(
            cfg.threads,
            &corpus,
            || SpecCache::<S>::new(cfg.bounds),
            |cache, _, h| history_clauses::<S>(prop, &events, h, cache),
        );

        // Merge in corpus order: first witness per clause wins, exactly as
        // the sequential loop inserted them.
        let mut raw: BTreeMap<BTreeSet<Pair>, Counterexample> = BTreeMap::new();
        for part in per_history {
            stats.failing_tests += part.failing_tests;
            stats.violations += part.violations;
            for (clause, witness) in part.found {
                raw.entry(clause).or_insert(witness);
            }
        }
        ClauseSet::finish(prop, stats, raw)
    }

    /// The pre-parallel, unmemoized extraction path, retained verbatim as a
    /// correctness oracle and benchmark baseline.
    ///
    /// Runs the whole pipeline sequentially and decides every membership
    /// query from scratch via [`Property::admits`]. `extract` must produce
    /// an equal `ClauseSet` (asserted by the determinism tests); benchmarks
    /// report the speedup of `extract` over this function.
    pub fn extract_reference<S: Enumerable + Classified>(
        prop: Property,
        cfg: &CorpusConfig,
        seeds: &[BHistory<S::Inv, S::Res>],
    ) -> ClauseSet {
        let sequential = CorpusConfig { threads: 1, ..*cfg };
        let mut corpus = histories::<S>(prop, &sequential);
        for s in seeds {
            if prop.admits::<S>(s, cfg.bounds) {
                corpus.push(s.clone());
            }
        }
        let events = alphabet::<S>(cfg.bounds);

        let mut stats = CorpusStats {
            histories: corpus.len(),
            ..CorpusStats::default()
        };
        let mut raw: BTreeMap<BTreeSet<Pair>, Counterexample> = BTreeMap::new();

        for h in &corpus {
            let ops = h.op_entries();
            let n = ops.len();
            if n > 16 {
                continue; // subset enumeration is exponential; corpus keeps n small
            }
            let mut candidates: Vec<(ActionId, bool)> =
                h.active_actions().into_iter().map(|a| (a, false)).collect();
            let fresh = ActionId(h.actions().len() as u32 + 100);
            candidates.push((fresh, true));

            for (a, is_fresh) in candidates {
                for ev in &events {
                    let h_ext = extend::<S>(h, a, is_fresh, ev);
                    if prop.admits::<S>(&h_ext, cfg.bounds) {
                        continue; // implication trivially satisfied
                    }
                    stats.failing_tests += 1;
                    for mask in 0..(1u32 << n) {
                        if mask == (1u32 << n) - 1 {
                            continue; // B = all ops → G ≡ H, never violating
                        }
                        let keep: std::collections::HashSet<usize> = ops
                            .iter()
                            .enumerate()
                            .filter(|(k, _)| mask & (1 << *k) != 0)
                            .map(|(_, (i, _, _))| *i)
                            .collect();
                        let g = h.subhistory(&keep);
                        let g_ext = extend::<S>(&g, a, is_fresh, ev);
                        if !prop.admits::<S>(&g_ext, cfg.bounds) {
                            continue;
                        }
                        stats.violations += 1;
                        let clause = clause_for::<S>(&ops, mask, ev);
                        debug_assert!(
                            !clause.is_empty(),
                            "empty clause: corpus membership inconsistent"
                        );
                        raw.entry(clause)
                            .or_insert_with(|| witness_for::<S>(h, &ops, mask, a, ev));
                    }
                }
            }
        }
        ClauseSet::finish(prop, stats, raw)
    }

    /// Interns pairs, builds masks, minimizes (drops superset clauses) and
    /// assembles the final `ClauseSet`. Shared by every extraction path.
    fn finish(
        prop: Property,
        mut stats: CorpusStats,
        raw: BTreeMap<BTreeSet<Pair>, Counterexample>,
    ) -> ClauseSet {
        let mut universe: Vec<Pair> = raw
            .keys()
            .flat_map(|c| c.iter().cloned())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        universe.sort();
        assert!(universe.len() <= 64, "pair universe exceeds 64 pairs");
        let index: BTreeMap<Pair, usize> =
            universe.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let mut masked: Vec<(u64, Counterexample)> = raw
            .into_iter()
            .map(|(c, w)| {
                let m = c.iter().fold(0u64, |acc, p| acc | (1 << index[p]));
                (m, w)
            })
            .collect();
        // Keep only minimal clauses (a superset clause is implied).
        masked.sort_by_key(|(m, _)| m.count_ones());
        let mut clauses: Vec<u64> = Vec::new();
        let mut witnesses: Vec<Counterexample> = Vec::new();
        for (m, w) in masked {
            if !clauses.iter().any(|c| c & m == *c) {
                clauses.push(m);
                witnesses.push(w);
            }
        }
        stats.clauses = clauses.len();
        ClauseSet {
            property: prop,
            universe,
            index,
            clauses,
            witnesses,
            stats,
        }
    }

    /// The property this clause set certifies.
    pub fn property(&self) -> Property {
        self.property
    }

    /// Extraction statistics.
    pub fn stats(&self) -> CorpusStats {
        self.stats
    }

    /// The pairs that occur in at least one clause.
    pub fn pair_universe(&self) -> &[Pair] {
        &self.universe
    }

    /// The minimized clauses, as sets of pairs.
    pub fn clauses(&self) -> Vec<Vec<Pair>> {
        self.clauses
            .iter()
            .map(|m| {
                self.universe
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| m & (1 << *i) != 0)
                    .map(|(_, p)| *p)
                    .collect()
            })
            .collect()
    }

    fn rel_mask(&self, rel: &DependencyRelation) -> u64 {
        rel.iter()
            .filter_map(|p| self.index.get(p))
            .fold(0u64, |acc, i| acc | (1 << i))
    }

    /// Checks whether `rel` is a dependency relation with respect to every
    /// obligation in the corpus.
    ///
    /// # Errors
    ///
    /// Returns the stored [`Counterexample`] of the first clause `rel`
    /// fails to hit.
    pub fn verify(&self, rel: &DependencyRelation) -> Result<(), Counterexample> {
        let mask = self.rel_mask(rel);
        for (c, w) in self.clauses.iter().zip(&self.witnesses) {
            if c & mask == 0 {
                return Err(w.clone());
            }
        }
        Ok(())
    }

    /// Pairs forced into **every** dependency relation: the singleton
    /// clauses.
    pub fn forced_pairs(&self) -> DependencyRelation {
        self.clauses
            .iter()
            .filter(|c| c.count_ones() == 1)
            .map(|c| self.universe[c.trailing_zeros() as usize])
            .collect()
    }

    /// All **minimal** dependency relations (minimal hitting sets of the
    /// clause set), up to `cap` results.
    ///
    /// For static and dynamic atomicity this returns exactly one relation
    /// (Theorems 6 and 10 prove uniqueness); for hybrid atomicity it may
    /// return several (§4's FlagSet returns two).
    pub fn minimal_relations(&self, cap: usize) -> Vec<DependencyRelation> {
        self.minimal_relations_par(cap, 1)
    }

    /// [`ClauseSet::minimal_relations`] on `threads` workers (0 = all
    /// available parallelism).
    ///
    /// The DFS fans out over the first clause's branch choices; branch
    /// outputs are concatenated in bit order and truncated to the search
    /// budget — exactly the prefix the sequential DFS would have produced,
    /// so results are identical at every thread count.
    pub fn minimal_relations_par(&self, cap: usize, threads: usize) -> Vec<DependencyRelation> {
        let budget = cap.saturating_mul(64);
        let mut sets: Vec<u64> = Vec::new();
        if budget == 0 {
            // Nothing requested; keep the sequential DFS's empty answer.
        } else if self.clauses.is_empty() {
            sets.push(0);
        } else {
            // Root clause: with `current = 0`, the first unhit clause is
            // always `clauses[0]`; its set bits are the root branches.
            let root = self.clauses[0];
            let branches: Vec<usize> = (0..self.universe.len())
                .filter(|i| root & (1 << i) != 0)
                .collect();
            let per_branch = parallel::map_indexed(threads, &branches, |_, &bit| {
                let mut current = 1u64 << bit;
                let mut out = Vec::new();
                self.hit(&mut current, 1, &mut out, budget);
                out
            });
            for branch in per_branch {
                sets.extend(branch);
            }
            sets.truncate(budget);
        }
        // Filter to inclusion-minimal, dedup.
        sets.sort_by_key(|s| s.count_ones());
        let mut minimal: Vec<u64> = Vec::new();
        for s in sets {
            if !minimal.iter().any(|m| s & m == *m) && !minimal.contains(&s) {
                minimal.push(s);
            }
        }
        minimal.truncate(cap);
        minimal
            .into_iter()
            .map(|m| {
                self.universe
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| m & (1 << *i) != 0)
                    .map(|(_, p)| *p)
                    .collect()
            })
            .collect()
    }

    fn hit(&self, current: &mut u64, from: usize, out: &mut Vec<u64>, budget: usize) {
        if out.len() >= budget {
            return;
        }
        // First clause not yet hit.
        let unhit = self.clauses[from..].iter().position(|c| c & *current == 0);
        match unhit {
            None => out.push(*current),
            Some(off) => {
                let clause = self.clauses[from + off];
                for i in 0..self.universe.len() {
                    if clause & (1 << i) != 0 {
                        *current |= 1 << i;
                        self.hit(current, from + off + 1, out, budget);
                        *current &= !(1 << i);
                    }
                }
            }
        }
    }
}

/// Renders a behavioral history via `Debug` (user `Inv`/`Res` types need
/// not implement `Display`).
fn render_history<I: std::fmt::Debug + Clone, R: std::fmt::Debug + Clone>(
    h: &BHistory<I, R>,
) -> String {
    let mut s = String::new();
    for e in h.entries() {
        match e {
            BEntry::Begin(a) => s.push_str(&format!("Begin {a}\n")),
            BEntry::Commit(a) => s.push_str(&format!("Commit {a}\n")),
            BEntry::Abort(a) => s.push_str(&format!("Abort {a}\n")),
            BEntry::Op { action, event } => {
                s.push_str(&format!("{:?};{:?} {action}\n", event.inv, event.res))
            }
        }
    }
    s
}

/// One history's contribution to clause extraction. `found` keeps the
/// first witness per clause in (candidate, event, mask) discovery order —
/// the same first-wins rule the sequential merge applies globally.
struct HistoryClauses {
    failing_tests: usize,
    violations: usize,
    found: BTreeMap<BTreeSet<Pair>, Counterexample>,
}

/// Runs every Definition-2 test rooted at `h` — each candidate appending
/// action × alphabet event × kept-subset — answering membership queries
/// through `cache`. This is the unit of parallel work in
/// [`ClauseSet::extract`]; it is a pure function of `(prop, events, h)`.
fn history_clauses<S: Enumerable + Classified>(
    prop: Property,
    events: &[Event<S::Inv, S::Res>],
    h: &BHistory<S::Inv, S::Res>,
    cache: &mut SpecCache<S>,
) -> HistoryClauses {
    let mut out = HistoryClauses {
        failing_tests: 0,
        violations: 0,
        found: BTreeMap::new(),
    };
    let ops = h.op_entries();
    let n = ops.len();
    if n > 16 {
        return out; // subset enumeration is exponential; corpus keeps n small
    }
    // Candidate appending actions: each active action, plus one fresh one.
    let mut candidates: Vec<(ActionId, bool)> =
        h.active_actions().into_iter().map(|a| (a, false)).collect();
    let fresh = ActionId(h.actions().len() as u32 + 100);
    candidates.push((fresh, true));

    // Per-candidate bitmask of the op entries the candidate owns: bit `k`
    // set iff `ops[k]` belongs to the candidate action.
    let owned_ops: Vec<u32> = candidates
        .iter()
        .map(|(a, _)| {
            ops.iter()
                .enumerate()
                .filter(|(_, (_, aid, _))| aid == a)
                .fold(0u32, |bits, (k, _)| bits | (1 << k))
        })
        .collect();

    // The kept-subset view depends only on the mask, not on the candidate
    // or event under test — build each lazily, once per history, together
    // with its own membership verdict and (hybrid) committed-base end
    // state. Membership is prefix-closed, so a view outside the spec has
    // no admitted extension: those masks skip the extension entirely.
    #[allow(clippy::type_complexity)]
    let mut subviews: Vec<Option<(BHistory<S::Inv, S::Res>, bool, Option<S::State>)>> =
        (0..(1usize << n)).map(|_| None).collect();

    // Corpus histories are admits-checked at generation time, so seed the
    // verdict `h ∈ P(T)`: every extension test below then decides only its
    // appended steps instead of re-walking all of `h`'s prefixes.
    prop.assume_member_cached::<S>(h, cache);

    // Hybrid fast path. Two facts make extensions cheap:
    //
    // * An appended `Begin`/`Op` entry never commits anything, so the
    //   extension's committed-base serialization — and its end state — is
    //   its parent's. Computing that state once per view lets every
    //   extension check run only the active-subset permutation tree
    //   ([`atomicity::hybrid_step_ok_from_base`]). The intermediate
    //   `Begin`-only step of a fresh extension adds an event-free active
    //   action, whose every serialization duplicates one of the parent's —
    //   it can never fail and is skipped.
    // * When the candidate owns no kept op, `g·[e a]` differs from
    //   `g·[e fresh]` solely by the id and Begin position of an action that
    //   is otherwise event-free in `g`, and hybrid serializations are
    //   insensitive to both — all such candidates share one verdict per
    //   (mask, event).
    //
    // Static (Begin-order serialization) and dynamic (`precedes`) depend on
    // Begin positions and commit structure; they keep the generic path.
    let is_hybrid = matches!(prop, Property::Hybrid);
    let h_base: Option<S::State> = if is_hybrid {
        quorumcc_model::atomicity::hybrid_base_state::<S>(h)
    } else {
        None
    };
    let mut detached: std::collections::HashMap<
        (u32, usize),
        bool,
        std::hash::BuildHasherDefault<quorumcc_model::memo::FxHasher>,
    > = std::collections::HashMap::default();

    for (ci, (a, is_fresh)) in candidates.into_iter().enumerate() {
        // A fresh candidate appends Begin(a) and the op; an active one
        // appends only the op.
        let added = if is_fresh { 2 } else { 1 };
        for (ei, ev) in events.iter().enumerate() {
            let h_ext = extend::<S>(h, a, is_fresh, ev);
            let h_ext_ok = match &h_base {
                Some(base) => {
                    quorumcc_model::atomicity::hybrid_step_ok_from_base::<S>(&h_ext, base)
                }
                None => prop.admits_extension_cached::<S>(true, &h_ext, added, cache),
            };
            if h_ext_ok {
                continue; // implication trivially satisfied
            }
            out.failing_tests += 1;
            // Search for violating subsets B ⊂ ops.
            for mask in 0..(1u32 << n) {
                if mask == (1u32 << n) - 1 {
                    continue; // B = all ops → G ≡ H, never violating
                }
                let (g, g_ok, g_base) = subviews[mask as usize].get_or_insert_with(|| {
                    let keep: std::collections::HashSet<usize> = ops
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| mask & (1 << *k) != 0)
                        .map(|(_, (i, _, _))| *i)
                        .collect();
                    let g = h.subhistory(&keep);
                    let ok = prop.admits_cached::<S>(&g, cache);
                    let base = if is_hybrid && ok {
                        quorumcc_model::atomicity::hybrid_base_state::<S>(&g)
                    } else {
                        None
                    };
                    (g, ok, base)
                });
                if !*g_ok {
                    continue; // g ∉ P(T) ⇒ g·[e] ∉ P(T): not a violation
                }
                let ext_ok = if is_hybrid && (is_fresh || mask & owned_ops[ci] == 0) {
                    match detached.get(&(mask, ei)) {
                        Some(&v) => v,
                        None => {
                            let g_ext = extend::<S>(g, a, is_fresh, ev);
                            let v = match g_base {
                                Some(base) => {
                                    quorumcc_model::atomicity::hybrid_step_ok_from_base::<S>(
                                        &g_ext, base,
                                    )
                                }
                                None => {
                                    prop.admits_extension_cached::<S>(true, &g_ext, added, cache)
                                }
                            };
                            detached.insert((mask, ei), v);
                            v
                        }
                    }
                } else {
                    let g_ext = extend::<S>(g, a, is_fresh, ev);
                    match (is_hybrid, &g_base) {
                        (true, Some(base)) => {
                            quorumcc_model::atomicity::hybrid_step_ok_from_base::<S>(&g_ext, base)
                        }
                        _ => prop.admits_extension_cached::<S>(true, &g_ext, added, cache),
                    }
                };
                if !ext_ok {
                    continue;
                }
                out.violations += 1;
                let clause = clause_for::<S>(&ops, mask, ev);
                debug_assert!(
                    !clause.is_empty(),
                    "empty clause: corpus membership inconsistent"
                );
                out.found
                    .entry(clause)
                    .or_insert_with(|| witness_for::<S>(h, &ops, mask, a, ev));
            }
        }
    }
    out
}

/// Renders the [`Counterexample`] for one violating (history, event,
/// subset) triple.
#[allow(clippy::type_complexity)]
fn witness_for<S: Enumerable>(
    h: &BHistory<S::Inv, S::Res>,
    ops: &[(usize, ActionId, &Event<S::Inv, S::Res>)],
    mask: u32,
    a: ActionId,
    ev: &Event<S::Inv, S::Res>,
) -> Counterexample {
    Counterexample {
        history: render_history(h),
        event: format!("{:?};{:?}", ev.inv, ev.res),
        action: a,
        kept: ops
            .iter()
            .enumerate()
            .filter(|(k, _)| mask & (1 << *k) != 0)
            .map(|(_, (_, act, e))| format!("{:?};{:?} {act}", e.inv, e.res))
            .collect(),
    }
}

/// Appends `[ev a]` to `h` (with a `Begin a` first if `fresh`).
fn extend<S: Enumerable>(
    h: &BHistory<S::Inv, S::Res>,
    a: ActionId,
    fresh: bool,
    ev: &Event<S::Inv, S::Res>,
) -> BHistory<S::Inv, S::Res> {
    let mut out = h.clone();
    if fresh {
        out = out.extended_with(BEntry::Begin(a));
    }
    out.extended_with(BEntry::Op {
        action: a,
        event: ev.clone(),
    })
}

/// The clause for test event `ev` and kept-subset `mask` over `ops`:
/// pairs whose presence disqualifies the subset as a legal view.
#[allow(clippy::type_complexity)]
fn clause_for<S: Classified>(
    ops: &[(usize, ActionId, &Event<S::Inv, S::Res>)],
    mask: u32,
    ev: &Event<S::Inv, S::Res>,
) -> BTreeSet<Pair> {
    let mut clause = BTreeSet::new();
    let inv_class = S::op_class(&ev.inv);
    for (j, &(_, _, e_j)) in ops.iter().enumerate() {
        if mask & (1 << j) == 0 {
            // Dropped event: making it *required* for `ev` disqualifies B.
            clause.insert((inv_class, S::event_class(&e_j.inv, &e_j.res)));
            // Breaking closedness: a *kept later* event depending on it.
            for (k, &(_, _, e_k)) in ops.iter().enumerate().skip(j + 1) {
                if mask & (1 << k) != 0 {
                    clause.insert((S::op_class(&e_k.inv), S::event_class(&e_j.inv, &e_j.res)));
                }
            }
        }
    }
    clause
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic_rel::minimal_dynamic_relation;
    use crate::static_rel::minimal_static_relation;
    use quorumcc_model::spec::ExploreBounds;
    use quorumcc_model::testtypes::TestRegister;
    use quorumcc_model::EventClass;

    fn cfg() -> CorpusConfig {
        CorpusConfig {
            exhaustive_ops: 3,
            max_actions: 3,
            samples: 1_000,
            sample_ops: 4,
            seed: 7,
            bounds: ExploreBounds {
                depth: 5,
                ..ExploreBounds::default()
            },
            threads: 1,
        }
    }

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    /// The full relation always verifies, the empty one never does (for a
    /// type with real dependencies).
    #[test]
    fn full_passes_empty_fails() {
        let cs = ClauseSet::extract::<TestRegister>(Property::Hybrid, &cfg(), &[]);
        assert!(cs.stats().clauses > 0);
        assert!(cs
            .verify(&DependencyRelation::full::<TestRegister>())
            .is_ok());
        let err = cs.verify(&DependencyRelation::new()).unwrap_err();
        assert!(!err.history.is_empty());
    }

    /// Cross-validation of Theorem 6: the clause machinery over Static(T)
    /// recovers exactly the minimal static relation computed by the
    /// interference search, and it is unique.
    #[test]
    fn static_clauses_recover_theorem_6_for_register() {
        let cs = ClauseSet::extract::<TestRegister>(Property::Static, &cfg(), &[]);
        let closed_form = minimal_static_relation::<TestRegister>(ExploreBounds {
            depth: 5,
            ..ExploreBounds::default()
        });
        let minimal = cs.minimal_relations(8);
        assert_eq!(minimal.len(), 1, "static minimal relation must be unique");
        assert_eq!(minimal[0], closed_form.relation);
        cs.verify(&closed_form.relation).expect("≥S must verify");
    }

    /// Cross-validation of Theorem 10 for the register.
    #[test]
    fn dynamic_clauses_recover_theorem_10_for_register() {
        let cs = ClauseSet::extract::<TestRegister>(Property::Dynamic, &cfg(), &[]);
        let closed_form = minimal_dynamic_relation::<TestRegister>(ExploreBounds {
            depth: 5,
            ..ExploreBounds::default()
        });
        let minimal = cs.minimal_relations(8);
        assert_eq!(minimal.len(), 1, "dynamic minimal relation must be unique");
        assert_eq!(minimal[0], closed_form.relation);
    }

    /// Theorem 4 on the register: the minimal static relation verifies as a
    /// hybrid dependency relation.
    #[test]
    fn static_relation_is_hybrid_relation_for_register() {
        let hybrid = ClauseSet::extract::<TestRegister>(Property::Hybrid, &cfg(), &[]);
        let s = minimal_static_relation::<TestRegister>(ExploreBounds {
            depth: 5,
            ..ExploreBounds::default()
        });
        hybrid.verify(&s.relation).expect("Theorem 4");
    }

    /// Removing Read ≥ Write from the register's relation must break both
    /// static and hybrid verification.
    #[test]
    fn dropping_read_write_dependency_fails() {
        let rel = DependencyRelation::from_pairs([("Write", ec("Read", "Ok"))]);
        for prop in [Property::Static, Property::Hybrid] {
            let cs = ClauseSet::extract::<TestRegister>(prop, &cfg(), &[]);
            assert!(cs.verify(&rel).is_err(), "{prop:?} should fail");
        }
    }

    #[test]
    fn forced_pairs_are_in_every_minimal_relation() {
        let cs = ClauseSet::extract::<TestRegister>(Property::Hybrid, &cfg(), &[]);
        let forced = cs.forced_pairs();
        for m in cs.minimal_relations(8) {
            assert!(forced.is_subset(&m));
        }
    }

    /// Cross-validation of the strict Theorem-11 reading on the Queue: the
    /// Definition-2 clause machinery over Dynamic(T) agrees with the
    /// commutativity-based `≥D` — including that `Enq ≥ Deq/Ok` is *not*
    /// required — while `≥S` fails as a dynamic relation.
    #[test]
    fn queue_dynamic_clauses_agree_with_commutativity() {
        use quorumcc_model::testtypes::TestQueue;
        let cfg = CorpusConfig {
            exhaustive_ops: 2,
            max_actions: 3,
            samples: 500,
            sample_ops: 3,
            seed: 11,
            bounds: ExploreBounds {
                depth: 5,
                ..ExploreBounds::default()
            },
            threads: 1,
        };
        let cs = ClauseSet::extract::<TestQueue>(Property::Dynamic, &cfg, &[]);
        let d = minimal_dynamic_relation::<TestQueue>(ExploreBounds {
            depth: 5,
            ..ExploreBounds::default()
        });
        cs.verify(&d.relation)
            .expect("≥D must satisfy the dynamic clauses");
        // Dropping Enq ≥ Enq/Ok (the pair ≥S lacks) must fail…
        let weakened = d.relation.without(&("Enq", ec("Enq", "Ok")));
        assert!(cs.verify(&weakened).is_err());
        // …and ≥S itself fails as a dynamic dependency relation (Thm 11).
        let s = minimal_static_relation::<TestQueue>(ExploreBounds {
            depth: 5,
            ..ExploreBounds::default()
        });
        assert!(cs.verify(&s.relation).is_err());
    }

    #[test]
    fn stats_are_populated() {
        let cs = ClauseSet::extract::<TestRegister>(Property::Hybrid, &cfg(), &[]);
        let st = cs.stats();
        assert!(st.histories > 10);
        assert!(st.failing_tests > 0);
        assert!(st.violations >= st.clauses);
    }
}
