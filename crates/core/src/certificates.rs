//! The paper's theorems as machine-checked certificates, using the
//! verbatim witness histories from the text.
//!
//! Each `thm*` function rebuilds the paper's construction and checks every
//! claimed membership with the model checkers from `quorumcc-model`,
//! returning a [`Certificate`] that the experiment binaries print and the
//! test suite asserts.

use crate::relation::DependencyRelation;
use quorumcc_adts::doublebuffer::{DoubleBuffer, DoubleBufferInv as DbI, DoubleBufferRes as DbR};
use quorumcc_adts::flagset::{FlagSetInv as FsI, FlagSetRes as FsR};
use quorumcc_adts::prom::{PromInv, PromRes};
use quorumcc_model::atomicity::{in_hybrid_spec, in_static_spec};
use quorumcc_model::closed::{is_closed, required_positions};
use quorumcc_model::{BHistory, EventClass};
use std::collections::HashSet;
use std::fmt;

/// The verdict of re-checking one of the paper's claims.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Which claim (e.g. `"Theorem 5"`).
    pub claim: &'static str,
    /// Whether every step of the construction checked out.
    pub holds: bool,
    /// Step-by-step record.
    pub detail: Vec<(String, bool)>,
}

impl Certificate {
    fn new(claim: &'static str) -> Self {
        Certificate {
            claim,
            holds: true,
            detail: Vec::new(),
        }
    }

    fn check(&mut self, what: impl Into<String>, ok: bool) -> &mut Self {
        self.holds &= ok;
        self.detail.push((what.into(), ok));
        self
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {}",
            self.claim,
            if self.holds { "VERIFIED" } else { "FAILED" }
        )?;
        for (what, ok) in &self.detail {
            writeln!(f, "  [{}] {}", if *ok { "ok" } else { "XX" }, what)?;
        }
        Ok(())
    }
}

fn ec(op: &'static str, res: &'static str) -> EventClass {
    EventClass::new(op, res)
}

/// The paper's hybrid dependency relation `≥H` for the PROM (§4).
pub fn prom_hybrid_relation() -> DependencyRelation {
    DependencyRelation::from_pairs([
        ("Seal", ec("Write", "Ok")),
        ("Seal", ec("Read", "Disabled")),
        ("Read", ec("Seal", "Ok")),
        ("Write", ec("Seal", "Ok")),
    ])
}

/// The two extra pairs static atomicity forces on the PROM (§4).
pub fn prom_static_extra_pairs() -> DependencyRelation {
    DependencyRelation::from_pairs([("Read", ec("Write", "Ok")), ("Write", ec("Read", "Ok"))])
}

/// **Theorem 5**: `≥H` is *not* a static dependency relation for PROM.
///
/// The paper's witness: `H` ends with `Read();Ok(x) D` (active), `G` drops
/// that read; appending `Write(y);Ok() B` is fine for `G` but invalidates
/// `H` under Begin-order serialization.
pub fn thm5() -> Certificate {
    let mut cert = Certificate::new("Theorem 5 (hybrid ⇏ static, PROM)");
    // Begin A; Begin B; Begin C; Begin D;
    // Write(x);Ok A; Commit A; Seal;Ok C; Commit C; Read;Ok(x) D
    let mut h: BHistory<PromInv, PromRes> = BHistory::new();
    h.begin(0).begin(1).begin(2).begin(3);
    h.op(0, PromInv::Write(7), PromRes::Ok);
    h.commit(0);
    h.op(2, PromInv::Seal, PromRes::Ok);
    h.commit(2);
    h.op(3, PromInv::Read, PromRes::Item(7));

    cert.check(
        "H ∈ Static(PROM)",
        in_static_spec::<quorumcc_adts::Prom>(&h),
    );

    // G = H minus the final Read (op entry indices: 4 = Write, 6 = Seal,
    // 8 = Read).
    let ops = h.op_entries();
    let keep: HashSet<usize> = ops[..2].iter().map(|(i, _, _)| *i).collect();
    let g = h.subhistory(&keep);
    cert.check(
        "G ∈ Static(PROM)",
        in_static_spec::<quorumcc_adts::Prom>(&g),
    );

    // G is closed under ≥H and contains every event Write depends on.
    let rel = prom_hybrid_relation();
    let bound = rel.bind::<quorumcc_adts::Prom>();
    cert.check(
        "G closed under ≥H",
        is_closed::<quorumcc_adts::Prom, _>(&h, &keep, &bound),
    );
    let required = required_positions::<quorumcc_adts::Prom, _>(&h, &PromInv::Write(9), &bound);
    cert.check("G ⊇ events Write depends on", required.is_subset(&keep));

    // G·[Write(y);Ok B] ∈ Static(PROM) but H·[Write(y);Ok B] ∉ Static(PROM).
    let mut g_ext = g.clone();
    g_ext.op(1, PromInv::Write(9), PromRes::Ok);
    cert.check(
        "G·[Write(y);Ok B] ∈ Static(PROM)",
        in_static_spec::<quorumcc_adts::Prom>(&g_ext),
    );
    let mut h_ext = h.clone();
    h_ext.op(1, PromInv::Write(9), PromRes::Ok);
    cert.check(
        "H·[Write(y);Ok B] ∉ Static(PROM)",
        !in_static_spec::<quorumcc_adts::Prom>(&h_ext),
    );
    cert
}

/// The companion claim of §4: `≥H` **is** a hybrid dependency relation for
/// PROM — checked here on the Theorem-5 witness (the bounded corpus check
/// lives in the verifier tests).
pub fn prom_hybrid_ok_on_thm5_history() -> Certificate {
    let mut cert = Certificate::new("§4 (≥H admits the Theorem-5 history under hybrid)");
    let mut h: BHistory<PromInv, PromRes> = BHistory::new();
    h.begin(0).begin(1).begin(2).begin(3);
    h.op(0, PromInv::Write(7), PromRes::Ok);
    h.commit(0);
    h.op(2, PromInv::Seal, PromRes::Ok);
    h.commit(2);
    h.op(3, PromInv::Read, PromRes::Item(7));
    cert.check(
        "H ∈ Hybrid(PROM)",
        in_hybrid_spec::<quorumcc_adts::Prom>(&h),
    );
    // Under hybrid atomicity the late Write(y) by B is *also* illegal on
    // the full history — but the Write invocation's view (which contains
    // the Seal, by Write ≥H Seal/Ok) already predicts Disabled/blocks: the
    // closed view Seal-only yields Write;Disabled, so a correct
    // implementation never produces the bad extension.
    let mut h_ext = h.clone();
    h_ext.op(1, PromInv::Write(9), PromRes::Ok);
    cert.check(
        "H·[Write(y);Ok B] ∉ Hybrid(PROM)",
        !in_hybrid_spec::<quorumcc_adts::Prom>(&h_ext),
    );
    // The view for B's Write — closed under ≥H, containing the Seal —
    // makes Write answer Disabled, which *is* admissible for H.
    let mut h_dis = h.clone();
    h_dis.op(1, PromInv::Write(9), PromRes::Disabled);
    cert.check(
        "H·[Write(y);Disabled B] ∈ Hybrid(PROM)",
        in_hybrid_spec::<quorumcc_adts::Prom>(&h_dis),
    );
    cert
}

/// The minimal dynamic dependency relation the paper states for
/// DoubleBuffer (Theorem 12's preamble).
pub fn doublebuffer_dynamic_relation() -> DependencyRelation {
    DependencyRelation::from_pairs([
        ("Produce", ec("Produce", "Ok")),
        ("Produce", ec("Transfer", "Ok")),
        ("Transfer", ec("Produce", "Ok")),
        ("Consume", ec("Transfer", "Ok")),
        ("Transfer", ec("Consume", "Ok")),
    ])
}

/// **Theorem 12**: `≥D` for DoubleBuffer is not a hybrid dependency
/// relation. Witness (verbatim):
///
/// ```text
/// Produce(x);Ok() A
/// Transfer();Ok() A
/// Commit A
/// Transfer();Ok() C
/// Produce(y);Ok() B
/// ```
///
/// `G` drops `Produce(y)`; appending `Consume();Ok(x) D` is legal for `G`
/// but not for `H` (commit order B, C, D re-transfers `y`).
pub fn thm12() -> Certificate {
    let mut cert = Certificate::new("Theorem 12 (dynamic ⇏ hybrid, DoubleBuffer)");
    let mut h: BHistory<DbI, DbR> = BHistory::new();
    h.begin(0).begin(1).begin(2).begin(3); // A, B, C, D
    h.op(0, DbI::Produce(7), DbR::Ok);
    h.op(0, DbI::Transfer, DbR::Ok);
    h.commit(0);
    h.op(2, DbI::Transfer, DbR::Ok); // C
    h.op(1, DbI::Produce(9), DbR::Ok); // B

    cert.check(
        "H ∈ Hybrid(DoubleBuffer)",
        in_hybrid_spec::<DoubleBuffer>(&h),
    );

    let ops = h.op_entries();
    let keep: HashSet<usize> = ops[..3].iter().map(|(i, _, _)| *i).collect();
    let g = h.subhistory(&keep);
    cert.check(
        "G ∈ Hybrid(DoubleBuffer)",
        in_hybrid_spec::<DoubleBuffer>(&g),
    );

    let rel = doublebuffer_dynamic_relation();
    let bound = rel.bind::<DoubleBuffer>();
    cert.check(
        "G closed under ≥D",
        is_closed::<DoubleBuffer, _>(&h, &keep, &bound),
    );
    let required = required_positions::<DoubleBuffer, _>(&h, &DbI::Consume, &bound);
    cert.check("G ⊇ events Consume depends on", required.is_subset(&keep));

    let mut g_ext = g.clone();
    g_ext.op(3, DbI::Consume, DbR::Item(7));
    cert.check(
        "G·[Consume();Ok(x) D] ∈ Hybrid(DoubleBuffer)",
        in_hybrid_spec::<DoubleBuffer>(&g_ext),
    );
    let mut h_ext = h.clone();
    h_ext.op(3, DbI::Consume, DbR::Item(7));
    cert.check(
        "H·[Consume();Ok(x) D] ∉ Hybrid(DoubleBuffer)",
        !in_hybrid_spec::<DoubleBuffer>(&h_ext),
    );
    cert
}

/// The base (necessary) hybrid pairs for the FlagSet (§4).
pub fn flagset_base_relation() -> DependencyRelation {
    let mut rel = DependencyRelation::from_pairs([
        ("Open", ec("Open", "Ok")),
        ("Close", ec("Open", "Ok")),
        ("Shift(3)", ec("Shift(2)", "Ok")),
    ]);
    for n in ["Shift(1)", "Shift(2)", "Shift(3)"] {
        rel.insert("Open", ec(n, "Disabled"));
        rel.insert("Close", ec(n, "Ok"));
        rel.insert(n, ec("Open", "Ok"));
        rel.insert(n, ec("Close", "Ok"));
    }
    rel
}

/// The first minimal extension: `Shift(3) ≥ Shift(1);Ok()` (direct
/// intersection).
pub fn flagset_hybrid_relation_direct() -> DependencyRelation {
    let mut rel = flagset_base_relation();
    rel.insert("Shift(3)", ec("Shift(1)", "Ok"));
    rel
}

/// The second minimal extension: `Shift(2) ≥ Shift(1);Ok()` (transitive
/// intersection through `Shift(2)`).
pub fn flagset_hybrid_relation_transitive() -> DependencyRelation {
    let mut rel = flagset_base_relation();
    rel.insert("Shift(2)", ec("Shift(1)", "Ok"));
    rel
}

/// The witness history behind the FlagSet's dual minimal relations: an
/// uncommitted `Close();Ok(false)` observed before `A`'s `Open`,
/// `Shift(1)`, `Shift(2)` chain; appending `Shift(3);Ok() A` is illegal for
/// the full history (it would set `flags[4]`, invalidating the recorded
/// `Close` result) but legal for the view that misses `Shift(1)`.
pub fn flagset_dual_witness() -> BHistory<FsI, FsR> {
    let mut h: BHistory<FsI, FsR> = BHistory::new();
    h.begin(1); // D in the discussion; id 1 here
    h.op(1, FsI::Close, FsR::Val(false));
    h.begin(0); // A
    h.op(0, FsI::Open, FsR::Ok);
    h.op(0, FsI::Shift(1), FsR::Ok);
    h.op(0, FsI::Shift(2), FsR::Ok);
    h
}

/// **§4 (FlagSet)**: the dual-minimality witness checks out — dropping
/// `Shift(1)` from the view flips the verdict on `Shift(3)`.
pub fn flagset_dual_certificate() -> Certificate {
    use quorumcc_adts::FlagSet;
    let mut cert = Certificate::new("§4 (FlagSet dual minimal hybrid relations)");
    let h = flagset_dual_witness();
    cert.check("H ∈ Hybrid(FlagSet)", in_hybrid_spec::<FlagSet>(&h));

    let mut h_ext = h.clone();
    h_ext.op(0, FsI::Shift(3), FsR::Ok);
    cert.check(
        "H·[Shift(3);Ok A] ∉ Hybrid(FlagSet)",
        !in_hybrid_spec::<FlagSet>(&h_ext),
    );

    // The view missing Shift(1): ops are Close(0), Open(1), Shift1(2),
    // Shift2(3) — keep all but Shift(1).
    let ops = h.op_entries();
    let keep: HashSet<usize> = ops
        .iter()
        .filter(|(_, _, e)| e.inv != FsI::Shift(1))
        .map(|(i, _, _)| *i)
        .collect();
    let g = h.subhistory(&keep);
    let mut g_ext = g.clone();
    g_ext.op(0, FsI::Shift(3), FsR::Ok);
    cert.check(
        "G (missing Shift(1)) · [Shift(3);Ok A] ∈ Hybrid(FlagSet)",
        in_hybrid_spec::<FlagSet>(&g_ext),
    );

    // Under either paper relation, that violating view is disqualified.
    for (name, rel) in [
        (
            "direct Shift(3) ≥ Shift(1)",
            flagset_hybrid_relation_direct(),
        ),
        (
            "transitive Shift(2) ≥ Shift(1)",
            flagset_hybrid_relation_transitive(),
        ),
    ] {
        let bound = rel.bind::<FlagSet>();
        let required = required_positions::<FlagSet, _>(&h, &FsI::Shift(3), &bound);
        let disqualified =
            !required.is_subset(&keep) || !is_closed::<FlagSet, _>(&h, &keep, &bound);
        cert.check(format!("{name} disqualifies the bad view"), disqualified);
    }

    // Under the base relation alone, the bad view *is* admissible — the
    // extra pair is genuinely needed.
    let base = flagset_base_relation();
    let bound = base.bind::<FlagSet>();
    let required = required_positions::<FlagSet, _>(&h, &FsI::Shift(3), &bound);
    let admissible = required.is_subset(&keep) && is_closed::<FlagSet, _>(&h, &keep, &bound);
    cert.check("base relation alone admits the bad view", admissible);
    cert
}

/// **Theorem 4's proof construction**: given a behavioral history, rebuild
/// it with every `Begin` moved to the front in the order of a chosen
/// serialization `≫` of committed-then-active actions.
///
/// The paper's argument: if `H·[e A]` has an illegal *hybrid*
/// serialization in order `≫`, then the rebuilt `H'·[e A]` has the same
/// sequence as an illegal *static* serialization — so any relation failing
/// hybrid verification also fails static verification (hybrid dependency
/// relations ⊆ static dependency relations, i.e. every static relation is
/// a hybrid relation).
pub fn begins_reordered<I: Clone, R: Clone>(
    h: &BHistory<I, R>,
    order: &[quorumcc_model::ActionId],
) -> BHistory<I, R> {
    let mut out: BHistory<I, R> = BHistory::new();
    // Begins first, in the serialization order; any actions not listed
    // keep their relative begin order afterwards.
    for a in order {
        out.begin(a.0);
    }
    for a in h.actions() {
        if !order.contains(&a) {
            out.begin(a.0);
        }
    }
    for e in h.entries() {
        if !matches!(e, quorumcc_model::BEntry::Begin(_)) {
            out.try_push(e.clone())
                .expect("reordered history well-formed");
        }
    }
    out
}

/// Finds a hybrid serialization order (committed in commit order, then a
/// permutation of a subset of active actions) whose serialization of `h`
/// is illegal, if any — the `≫` of Theorem 4's proof.
pub fn illegal_hybrid_order<S: quorumcc_model::Sequential>(
    h: &BHistory<S::Inv, S::Res>,
) -> Option<Vec<quorumcc_model::ActionId>> {
    use quorumcc_model::atomicity::serialize;
    let committed = h.committed_actions();
    let active = h.active_actions();
    // Enumerate subsets of active actions and their permutations.
    let m = active.len();
    for mask in 0u32..(1 << m) {
        let subset: Vec<_> = active
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << *i) != 0)
            .map(|(_, a)| *a)
            .collect();
        let mut perm = subset.clone();
        let mut perms = vec![perm.clone()];
        permute_collect(&mut perm, subset.len(), &mut perms);
        for p in perms {
            let mut order = committed.clone();
            order.extend(p.iter().copied());
            let ser = serialize::<S>(h, &order);
            if quorumcc_model::serial::replay::<S>(&ser).is_none() {
                return Some(order);
            }
        }
    }
    None
}

fn permute_collect(
    work: &mut Vec<quorumcc_model::ActionId>,
    k: usize,
    out: &mut Vec<Vec<quorumcc_model::ActionId>>,
) {
    if k <= 1 {
        return;
    }
    for i in 0..k {
        permute_collect(work, k - 1, out);
        if k.is_multiple_of(2) {
            work.swap(i, k - 1);
        } else {
            work.swap(0, k - 1);
        }
        out.push(work.clone());
    }
}

/// **Theorem 4** as a checkable certificate on the DoubleBuffer's
/// Theorem-12 witness: the history whose hybrid extension is illegal maps,
/// under the Begin reordering, to one whose static extension is illegal.
pub fn thm4() -> Certificate {
    let mut cert = Certificate::new("Theorem 4 (static ⇒ hybrid, via Begin reordering)");
    // The Theorem-12 witness extension H·[Consume;Ok(x) D] ∉ Hybrid.
    let mut h: BHistory<DbI, DbR> = BHistory::new();
    h.begin(0).begin(1).begin(2).begin(3);
    h.op(0, DbI::Produce(7), DbR::Ok);
    h.op(0, DbI::Transfer, DbR::Ok);
    h.commit(0);
    h.op(2, DbI::Transfer, DbR::Ok);
    h.op(1, DbI::Produce(9), DbR::Ok);
    let mut h_ext = h.clone();
    h_ext.op(3, DbI::Consume, DbR::Item(7));
    cert.check(
        "H·[e] ∉ Hybrid(DoubleBuffer)",
        !in_hybrid_spec::<DoubleBuffer>(&h_ext),
    );
    let order = illegal_hybrid_order::<DoubleBuffer>(&h_ext);
    cert.check("an illegal hybrid order ≫ exists", order.is_some());
    if let Some(order) = order {
        let h_prime = begins_reordered(&h_ext, &order);
        cert.check(
            "H'·[e] ∉ Static(DoubleBuffer)",
            !in_static_spec::<DoubleBuffer>(&h_prime),
        );
        // And the un-extended H' stays inside Static — the construction
        // breaks exactly the extension, as the proof requires.
        let h_prime_base = begins_reordered(&h, &order);
        cert.check(
            "H' ∈ Static(DoubleBuffer)",
            in_static_spec::<DoubleBuffer>(&h_prime_base),
        );
    }
    cert
}

/// All certificates, for the experiment binaries.
pub fn all() -> Vec<Certificate> {
    vec![
        thm4(),
        thm5(),
        prom_hybrid_ok_on_thm5_history(),
        thm12(),
        flagset_dual_certificate(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_4_certificate_holds() {
        let c = thm4();
        assert!(c.holds, "{c}");
    }

    /// The Begin-reordering construction, property-checked on a corpus:
    /// every hybrid-spec member stays a static-spec member after reordering
    /// begins into any hybrid serialization order (here: commit order +
    /// active in begin order).
    #[test]
    fn begin_reordering_preserves_membership_on_corpus() {
        use crate::enumerate::{histories, CorpusConfig, Property};
        use quorumcc_model::testtypes::TestQueue;
        let cfg = CorpusConfig {
            exhaustive_ops: 2,
            max_actions: 3,
            samples: 300,
            sample_ops: 3,
            seed: 9,
            bounds: quorumcc_model::spec::ExploreBounds::default(),
            threads: 1,
        };
        for h in histories::<TestQueue>(Property::Hybrid, &cfg) {
            let mut order = h.committed_actions();
            order.extend(h.active_actions());
            let reordered = begins_reordered(&h, &order);
            assert!(
                quorumcc_model::atomicity::in_static_spec::<TestQueue>(&reordered),
                "reordering left Static(T):\n{h:?}"
            );
        }
    }

    #[test]
    fn theorem_5_certificate_holds() {
        let c = thm5();
        assert!(c.holds, "{c}");
    }

    #[test]
    fn prom_hybrid_companion_holds() {
        let c = prom_hybrid_ok_on_thm5_history();
        assert!(c.holds, "{c}");
    }

    #[test]
    fn theorem_12_certificate_holds() {
        let c = thm12();
        assert!(c.holds, "{c}");
    }

    #[test]
    fn flagset_dual_certificate_holds() {
        let c = flagset_dual_certificate();
        assert!(c.holds, "{c}");
    }

    #[test]
    fn certificate_display_lists_steps() {
        let c = thm5();
        let s = c.to_string();
        assert!(s.contains("VERIFIED"));
        assert!(s.contains("[ok]"));
    }

    #[test]
    fn flagset_relations_differ_by_exactly_one_pair() {
        let a = flagset_hybrid_relation_direct();
        let b = flagset_hybrid_relation_transitive();
        assert_eq!(a.difference(&b).len(), 1);
        assert_eq!(b.difference(&a).len(), 1);
        assert_eq!(a.len(), b.len());
    }
}
