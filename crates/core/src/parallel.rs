//! Deterministic work-stealing execution for the verification pipeline.
//!
//! The container is offline (no crossbeam), so this module builds the
//! parallel layer on `std::thread::scope` plus an atomic chunk counter:
//! workers *steal* the next unclaimed item index, compute, and stash
//! `(index, result)` locally; the caller merges all buckets **in index
//! order**. Scheduling therefore never leaks into results — for any pure
//! `f`, [`map_indexed`] returns exactly what the sequential loop would,
//! at every thread count. Every parallel entry point in `quorumcc-core`
//! and `quorumcc-quorum` reduces to this function, which is how the
//! pipeline keeps its bitwise-determinism guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a user-facing thread count: `0` means all available
/// parallelism, anything else is taken literally.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Maps `f` over `items` on `threads` workers, returning results in item
/// order — indistinguishable from `items.iter().enumerate().map(f)` for
/// pure `f`.
///
/// `threads == 0` uses all available parallelism; `threads == 1` (or a
/// single item) runs inline with no thread overhead.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins every worker).
pub fn map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed_with(threads, items, || (), move |(), i, t| f(i, t))
}

/// [`map_indexed`] with per-worker mutable context (e.g. a memo cache):
/// each worker builds one context with `init` and threads it through every
/// item it steals.
///
/// Determinism contract: `f` must be pure given `(index, item)` — the
/// context may only memoize pure computations, never change results.
pub fn map_indexed_with<T, R, C, F, I>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    let threads = effective_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        let mut ctx = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut ctx, i, t))
            .collect();
    }
    // Steal contiguous blocks, not single items: corpus order places a
    // history right after its relatives, so block-granular stealing keeps
    // each worker's memo cache warm (and cuts counter contention). Results
    // stay index-keyed, so the merge below is identical either way.
    let block = (items.len() / (threads * 4)).clamp(1, 1024);
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut ctx = init();
                    let mut local = Vec::new();
                    loop {
                        let start = next.fetch_add(block, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + block).min(items.len());
                        for (off, item) in items[start..end].iter().enumerate() {
                            let i = start + off;
                            local.push((i, f(&mut ctx, i, item)));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            buckets.push(h.join().expect("verification worker panicked"));
        }
    });
    let mut all: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    all.sort_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, r)| r).collect()
}

/// Derives the RNG seed for chunk `chunk` of a run seeded with `seed`
/// (SplitMix64-style mixing, so neighbouring chunks get unrelated streams).
///
/// Both the sequential and the parallel sampling paths derive their
/// per-chunk seeds through this function — chunk streams, and therefore
/// results, are identical at every thread count.
pub fn derive_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 4, 8] {
            let got = map_indexed(threads, &items, |_, x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn per_worker_context_is_isolated() {
        // The context counts calls; results must not depend on it.
        let items: Vec<usize> = (0..100).collect();
        let got = map_indexed_with(
            4,
            &items,
            || 0usize,
            |calls, i, x| {
                *calls += 1;
                i + *x
            },
        );
        assert_eq!(got, (0..100).map(|i| 2 * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_indexed(4, &empty, |_, x| *x).is_empty());
        assert_eq!(map_indexed(4, &[7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn derived_seeds_differ_and_are_stable() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed(42, 0));
    }

    #[test]
    #[should_panic(expected = "verification worker panicked")]
    fn worker_panics_propagate() {
        let items = vec![0u8, 1, 2, 3, 4, 5, 6, 7];
        map_indexed(2, &items, |_, x| {
            assert!(*x < 7, "boom");
            *x
        });
    }
}
