//! Theorem 6: computing the **unique minimal static dependency relation**
//! `≥S` directly from the serial specification.
//!
//! `inv ≥S e` iff there exist a response `res` and serial histories
//! `h1, h2, h3` with `h1·h2·h3` legal and either
//!
//! 1. `h1·[inv;res]·h2·h3` and `h1·h2·e·h3` legal but
//!    `h1·[inv;res]·h2·e·h3` illegal, or
//! 2. `h1·e·h2·h3` and `h1·h2·[inv;res]·h3` legal but
//!    `h1·e·h2·[inv;res]·h3` illegal.
//!
//! Because specifications are deterministic state machines, the existential
//! over histories becomes reachability in synchronized product automata:
//! `h2` must produce identical responses with and without the first
//! inserted event, and `h3` must produce identical responses in three
//! contexts while differing in the fourth. The search below explores
//! exactly those product states — sound and complete up to the
//! [`ExploreBounds`].

use crate::relation::DependencyRelation;
use quorumcc_model::spec::{all_events, apply_event, reachable_states, ExploreBounds};
use quorumcc_model::{Classified, Enumerable, Event};
use std::collections::{HashSet, VecDeque};

/// Outcome of a bounded interference query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interference {
    /// A witness `(h1, h2, h3)` exists within bounds.
    Found,
    /// No witness exists within bounds.
    NotFound,
    /// The product-state budget was exhausted before the search finished.
    BudgetExceeded,
}

/// Decides whether inserting `first` before `second` can *interfere*: there
/// exist `h1, h2, h3` with `h1·h2·h3`, `h1·first·h2·h3` and
/// `h1·h2·second·h3` legal but `h1·first·h2·second·h3` illegal.
pub fn interferes<S: Enumerable>(
    first: &Event<S::Inv, S::Res>,
    second: &Event<S::Inv, S::Res>,
    states: &[S::State],
    bounds: ExploreBounds,
) -> Interference {
    let invs = S::invocations();
    let mut budget = bounds.budget;

    // Phase 1: all (s2, t2) with s2 = δ*(s1, h2), t2 = δ*(δ(s1, first), h2)
    // for some reachable s1 and some h2 (of length ≤ bounds.depth) legal
    // with equal responses in both contexts. The h2/h3 searches are
    // depth-bounded because infinite-state types (Queue) generate fresh
    // states forever.
    let mut pair_seen: HashSet<(S::State, S::State)> = HashSet::new();
    let mut pair_queue: VecDeque<(S::State, S::State, usize)> = VecDeque::new();
    for s1 in states {
        if let Some(t1) = apply_event::<S>(s1, first) {
            let p = (s1.clone(), t1);
            if pair_seen.insert(p.clone()) {
                pair_queue.push_back((p.0, p.1, 0));
            }
        }
    }
    let mut pairs: Vec<(S::State, S::State)> = pair_seen.iter().cloned().collect();
    while let Some((a, b, d)) = pair_queue.pop_front() {
        if d >= bounds.depth {
            continue;
        }
        for inv in &invs {
            let (ra, na) = S::apply(&a, inv);
            let (rb, nb) = S::apply(&b, inv);
            if ra != rb {
                continue; // h2 must be legal (same responses) in both contexts
            }
            if budget == 0 {
                return Interference::BudgetExceeded;
            }
            budget -= 1;
            let p = (na, nb);
            if pair_seen.insert(p.clone()) {
                pairs.push(p.clone());
                pair_queue.push_back((p.0, p.1, d + 1));
            }
        }
    }

    // Phase 2: apply `second` at each pair; an immediate response mismatch
    // is already a witness (h3 = ε).
    type Quad<S> = (
        <S as quorumcc_model::Sequential>::State,
        <S as quorumcc_model::Sequential>::State,
        <S as quorumcc_model::Sequential>::State,
        <S as quorumcc_model::Sequential>::State,
    );
    let mut quad_seen: HashSet<Quad<S>> = HashSet::new();
    let mut quad_queue: VecDeque<(Quad<S>, usize)> = VecDeque::new();
    for (s2, t2) in &pairs {
        let Some(s3) = apply_event::<S>(s2, second) else {
            continue; // `second` must be legal after h1·h2
        };
        match apply_event::<S>(t2, second) {
            None => return Interference::Found,
            Some(t3) => {
                let q = (s2.clone(), t2.clone(), s3, t3);
                if quad_seen.insert(q.clone()) {
                    quad_queue.push_back((q, 0));
                }
            }
        }
    }

    // Phase 3: search for an h3 (length ≤ bounds.depth) whose responses
    // agree in the base, A and B contexts but differ in C.
    while let Some(((base, a_ctx, b_ctx, c_ctx), d)) = quad_queue.pop_front() {
        if d >= bounds.depth {
            continue;
        }
        for inv in &invs {
            let (r0, n0) = S::apply(&base, inv);
            let (ra, na) = S::apply(&a_ctx, inv);
            let (rb, nb) = S::apply(&b_ctx, inv);
            if r0 != ra || r0 != rb {
                continue; // h3 must be legal in base, A and B alike
            }
            let (rc, nc) = S::apply(&c_ctx, inv);
            if rc != r0 {
                return Interference::Found; // C diverges: witness
            }
            if budget == 0 {
                return Interference::BudgetExceeded;
            }
            budget -= 1;
            let q = (n0, na, nb, nc);
            if quad_seen.insert(q.clone()) {
                quad_queue.push_back((q, d + 1));
            }
        }
    }
    Interference::NotFound
}

/// The result of computing a minimal relation, carrying the bounds used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationResult {
    /// The computed relation.
    pub relation: DependencyRelation,
    /// Whether every query completed within budget (if `false`, pairs whose
    /// queries were cut off were conservatively *included*).
    pub exhaustive: bool,
    /// The exploration bounds used.
    pub bounds: ExploreBounds,
}

/// Computes the unique minimal **static** dependency relation `≥S` of
/// Theorem 6, lifted to schema classes.
///
/// A class pair is included as soon as one concrete instantiation
/// interferes. Sound and complete up to `bounds` (the reachable-state depth
/// limits witness length for infinite-state types like Queue; the paper's
/// witnesses all fit comfortably).
///
/// # Example
///
/// ```
/// use quorumcc_core::static_rel::minimal_static_relation;
/// use quorumcc_model::{spec::ExploreBounds, testtypes::TestQueue, EventClass};
///
/// let r = minimal_static_relation::<TestQueue>(ExploreBounds {
///     depth: 4,
///     ..ExploreBounds::default()
/// });
/// assert!(r.exhaustive);
/// // Theorem 11: Enq ≥S Deq/Ok but not Enq ≥S Enq/Ok.
/// assert!(r.relation.contains("Enq", EventClass::new("Deq", "Ok")));
/// assert!(!r.relation.contains("Enq", EventClass::new("Enq", "Ok")));
/// ```
pub fn minimal_static_relation<S: Enumerable + Classified>(
    bounds: ExploreBounds,
) -> RelationResult {
    let states = reachable_states::<S>(bounds);
    let events = all_events::<S>(&states);
    let mut relation = DependencyRelation::new();
    let mut exhaustive = true;

    for inv in S::invocations() {
        let inv_class = S::op_class(&inv);
        // Candidate [inv;res] events: responses `inv` produces somewhere.
        let f_candidates: Vec<_> = events.iter().filter(|e| e.inv == inv).cloned().collect();
        for g in &events {
            let g_class = S::event_class(&g.inv, &g.res);
            if relation.contains(inv_class, g_class) {
                continue; // class pair already established
            }
            for f in &f_candidates {
                let verdicts = [
                    interferes::<S>(f, g, &states, bounds), // condition 1
                    interferes::<S>(g, f, &states, bounds), // condition 2
                ];
                if verdicts.contains(&Interference::Found) {
                    relation.insert(inv_class, g_class);
                    break;
                }
                if verdicts.contains(&Interference::BudgetExceeded) {
                    // Conservative: include the pair, flag inexhaustiveness.
                    exhaustive = false;
                    relation.insert(inv_class, g_class);
                    break;
                }
            }
        }
    }
    RelationResult {
        relation,
        exhaustive,
        bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::testtypes::{deq, deq_empty, enq, TestQueue, TestRegister};
    use quorumcc_model::EventClass;

    fn bounds() -> ExploreBounds {
        ExploreBounds {
            depth: 4,
            max_states: 4096,
            budget: 5_000_000,
        }
    }

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    /// Theorem 11's table: the unique minimal static dependency relation
    /// for Queue is exactly {Enq ≥ Deq/Ok, Enq ≥ Deq/Empty, Deq ≥ Enq/Ok,
    /// Deq ≥ Deq/Ok}.
    #[test]
    fn queue_static_relation_matches_theorem_11() {
        let r = minimal_static_relation::<TestQueue>(bounds());
        assert!(r.exhaustive, "budget too small for exhaustive answer");
        let expect = DependencyRelation::from_pairs([
            ("Enq", ec("Deq", "Ok")),
            ("Enq", ec("Deq", "Empty")),
            ("Deq", ec("Enq", "Ok")),
            ("Deq", ec("Deq", "Ok")),
        ]);
        assert_eq!(r.relation, expect, "got:\n{}", r.relation);
    }

    /// Register: reads must observe writes, and writes must observe reads
    /// (a write serialized before an already-executed later read would
    /// invalidate it). Writes need *not* observe writes — timestamped logs
    /// order them without quorum intersection (Herlihy's improvement over
    /// Gifford's `w > n/2`) — and reads are pure.
    #[test]
    fn register_static_relation() {
        let r = minimal_static_relation::<TestRegister>(bounds());
        assert!(r.exhaustive);
        let expect = DependencyRelation::from_pairs([
            ("Read", ec("Write", "Ok")),
            ("Write", ec("Read", "Ok")),
        ]);
        assert_eq!(r.relation, expect, "got:\n{}", r.relation);
    }

    #[test]
    fn interference_witnesses_for_queue() {
        let states = quorumcc_model::spec::reachable_states::<TestQueue>(bounds());
        // Inserting Enq(1) before a Deq();Ok(2) can interfere (condition 1):
        // h1 = ε, h2 = Enq(2), g = Deq;Ok(2).
        assert_eq!(
            interferes::<TestQueue>(&enq(1), &deq(2), &states, bounds()),
            Interference::Found
        );
        // Inserting an Enq before a Deq;Empty interferes trivially.
        assert_eq!(
            interferes::<TestQueue>(&enq(1), &deq_empty(), &states, bounds()),
            Interference::Found
        );
        // Inserting an Enq before another Enq never interferes.
        assert_eq!(
            interferes::<TestQueue>(&enq(1), &enq(2), &states, bounds()),
            Interference::NotFound
        );
        // Inserting Deq;Empty anywhere is harmless (state-preserving and
        // legal only where it changes nothing).
        assert_eq!(
            interferes::<TestQueue>(&deq_empty(), &deq(1), &states, bounds()),
            Interference::NotFound
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let tight = ExploreBounds {
            depth: 4,
            max_states: 4096,
            budget: 3,
        };
        let states = quorumcc_model::spec::reachable_states::<TestQueue>(ExploreBounds {
            depth: 4,
            max_states: 4096,
            budget: 1000,
        });
        assert_eq!(
            interferes::<TestQueue>(&enq(1), &enq(2), &states, tight),
            Interference::BudgetExceeded
        );
    }
}
