//! Bounded enumeration of behavioral histories inside `Static(T)` /
//! `Hybrid(T)` / `Dynamic(T)` — the test corpus for the dependency-relation
//! verifier.
//!
//! Histories are generated in factored form — an operation-event sequence,
//! a canonical assignment of events to actions, a commit placement, and
//! (for static atomicity, where `Begin` order is the serialization order) a
//! begin-order permutation — then filtered by spec membership. Exhaustive
//! up to `exhaustive_ops` events, randomized above that, and always
//! augmented with caller-supplied *seed* histories (the paper's verbatim
//! witnesses), so the clause extraction is deterministic on the published
//! results and exploratory beyond them.

use crate::parallel::{self, derive_seed};
use quorumcc_model::atomicity;
use quorumcc_model::memo::SpecCache;
use quorumcc_model::spec::{all_events, reachable_states, ExploreBounds};
use quorumcc_model::{ActionId, BHistory, Enumerable, Event};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which local atomicity property a corpus targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// `Static(T)` — serializable in Begin order.
    Static,
    /// `Hybrid(T)` — serializable in Commit order.
    Hybrid,
    /// `Dynamic(T)` — serializable in every precedes-consistent order.
    Dynamic,
}

impl Property {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Property::Static => "static",
            Property::Hybrid => "hybrid",
            Property::Dynamic => "dynamic",
        }
    }

    /// Whether Begin order affects membership (only for static atomicity).
    pub fn begin_order_matters(self) -> bool {
        matches!(self, Property::Static)
    }

    /// Decides membership of `h` in the property's largest prefix-closed
    /// on-line behavioral specification.
    pub fn admits<S: Enumerable>(
        self,
        h: &BHistory<S::Inv, S::Res>,
        bounds: ExploreBounds,
    ) -> bool {
        match self {
            Property::Static => atomicity::in_static_spec::<S>(h),
            Property::Hybrid => atomicity::in_hybrid_spec::<S>(h),
            Property::Dynamic => atomicity::in_dynamic_spec::<S>(h, bounds),
        }
    }

    /// [`Property::admits`] through a [`SpecCache`] (the cache's bounds
    /// apply). Agrees with `admits` on every input — the cache memoizes a
    /// pure function — while sharing prefix work across queries.
    pub fn admits_cached<S: Enumerable>(
        self,
        h: &BHistory<S::Inv, S::Res>,
        cache: &mut SpecCache<S>,
    ) -> bool {
        match self {
            Property::Static => cache.in_static(h),
            Property::Hybrid => cache.in_hybrid(h),
            Property::Dynamic => cache.in_dynamic(h),
        }
    }

    /// Seeds `cache` with the externally-guaranteed fact `h ∈ self(T)`
    /// (corpus histories are admits-checked at generation time).
    pub fn assume_member_cached<S: Enumerable>(
        self,
        h: &BHistory<S::Inv, S::Res>,
        cache: &mut SpecCache<S>,
    ) {
        match self {
            Property::Static => cache.assume_static_member(h),
            Property::Hybrid => cache.assume_hybrid_member(h),
            Property::Dynamic => cache.assume_dynamic_member(h),
        }
    }

    /// [`Property::admits_cached`] without membership-table traffic (the
    /// dynamic variant still shares the equivalence cache). Right for
    /// one-shot queries on histories unlikely to share prefixes with
    /// anything else — random corpus samples.
    pub fn admits_transient_cached<S: Enumerable>(
        self,
        h: &BHistory<S::Inv, S::Res>,
        cache: &mut SpecCache<S>,
    ) -> bool {
        match self {
            Property::Static => cache.in_static_transient(h),
            Property::Hybrid => cache.in_hybrid_transient(h),
            Property::Dynamic => cache.in_dynamic_transient(h),
        }
    }

    /// Membership of a history built by appending `new_entries` entries to
    /// a parent with known verdict `parent_ok`: decides only the appended
    /// steps, caching nothing. Agrees with [`Property::admits_cached`]
    /// whenever `parent_ok` is the parent's true verdict.
    pub fn admits_extension_cached<S: Enumerable>(
        self,
        parent_ok: bool,
        h: &BHistory<S::Inv, S::Res>,
        new_entries: usize,
        cache: &mut SpecCache<S>,
    ) -> bool {
        match self {
            Property::Static => cache.step_static(parent_ok, h, new_entries),
            Property::Hybrid => cache.step_hybrid(parent_ok, h, new_entries),
            Property::Dynamic => cache.step_dynamic(parent_ok, h, new_entries),
        }
    }
}

/// Configuration for corpus generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusConfig {
    /// Enumerate *every* history with at most this many operation events.
    pub exhaustive_ops: usize,
    /// Maximum number of distinct actions inside a history.
    pub max_actions: usize,
    /// Number of additional randomly sampled histories.
    pub samples: usize,
    /// Maximum operation events in sampled histories.
    pub sample_ops: usize,
    /// RNG seed for the sampled portion (corpora are deterministic).
    pub seed: u64,
    /// State-space bounds for membership checks.
    pub bounds: ExploreBounds,
    /// Worker threads for enumeration and clause extraction
    /// (`0` = all available parallelism). Results are bitwise-identical at
    /// every thread count.
    pub threads: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            exhaustive_ops: 3,
            max_actions: 3,
            samples: 20_000,
            sample_ops: 5,
            seed: 0xC0FFEE,
            bounds: ExploreBounds {
                depth: 5,
                ..ExploreBounds::default()
            },
            threads: 1,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        CorpusConfig {
            exhaustive_ops: 2,
            samples: 2_000,
            sample_ops: 4,
            ..CorpusConfig::default()
        }
    }
}

/// The alphabet of events used for enumeration: every `[inv;res]` legal in
/// some reachable state.
pub fn alphabet<S: Enumerable>(bounds: ExploreBounds) -> Vec<Event<S::Inv, S::Res>> {
    let states = reachable_states::<S>(bounds);
    all_events::<S>(&states)
}

/// Target accepted histories per sampling chunk. Chunks, not individual
/// trials, are the unit of work distribution: each chunk derives its own
/// RNG stream from `(cfg.seed, chunk index)`, so the corpus is a pure
/// function of the configuration at every thread count.
const SAMPLE_CHUNK: usize = 256;

/// Generates the history corpus for `prop` under `cfg`, on `cfg.threads`
/// workers.
///
/// All returned histories are members of the property's spec. Exhaustive
/// over ≤ `cfg.exhaustive_ops` events; sampled above. The exhaustive part
/// is partitioned by operation-event skeleton and the sampled part by
/// fixed-size chunks with derived seeds; both merge in deterministic
/// order, so the corpus is bitwise-identical at every thread count.
pub fn histories<S: Enumerable>(
    prop: Property,
    cfg: &CorpusConfig,
) -> Vec<BHistory<S::Inv, S::Res>> {
    let events = alphabet::<S>(cfg.bounds);
    let mut out = Vec::new();

    // --- Exhaustive part: one work item per event skeleton ----------------
    let skeletons = exhaustive_skeletons(cfg.exhaustive_ops, events.len());
    let expanded = parallel::map_indexed_with(
        cfg.threads,
        &skeletons,
        || SpecCache::<S>::new(cfg.bounds),
        |cache, _, seq| {
            let ops: Vec<_> = seq.iter().map(|&i| events[i].clone()).collect();
            let mut bucket = Vec::new();
            for assignment in canonical_assignments(seq.len(), cfg.max_actions) {
                emit_commit_variants::<S>(prop, &ops, &assignment, cache, &mut bucket);
            }
            bucket
        },
    );
    for bucket in expanded {
        out.extend(bucket);
    }

    // --- Sampled part: fixed-size chunks with derived seeds ---------------
    if !events.is_empty() && cfg.exhaustive_ops < cfg.sample_ops {
        let chunks = sample_chunk_targets(cfg.samples);
        let sampled = parallel::map_indexed_with(
            cfg.threads,
            &chunks,
            || SpecCache::<S>::new(cfg.bounds),
            |cache, idx, &target| {
                sample_chunk::<S>(
                    prop,
                    cfg,
                    &events,
                    derive_seed(cfg.seed, idx as u64),
                    target,
                    cache,
                )
            },
        );
        for bucket in sampled {
            out.extend(bucket);
        }
    }
    out
}

/// All event-index sequences of length `0..=max_ops` over an alphabet of
/// `n_events` events, in multi-index order (the historical sequential
/// enumeration order).
fn exhaustive_skeletons(max_ops: usize, n_events: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for len in 0..=max_ops {
        let mut seq = vec![0usize; len];
        loop {
            out.push(seq.clone());
            if !advance(&mut seq, n_events) {
                break;
            }
        }
    }
    out
}

/// Splits `samples` into `SAMPLE_CHUNK`-sized targets (last chunk smaller).
fn sample_chunk_targets(samples: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut rem = samples;
    while rem > 0 {
        let c = rem.min(SAMPLE_CHUNK);
        out.push(c);
        rem -= c;
    }
    out
}

/// Draws up to `target` spec members from one chunk's derived RNG stream
/// (rejection sampling, bounded at 20 attempts per target).
fn sample_chunk<S: Enumerable>(
    prop: Property,
    cfg: &CorpusConfig,
    events: &[Event<S::Inv, S::Res>],
    seed: u64,
    target: usize,
    cache: &mut SpecCache<S>,
) -> Vec<BHistory<S::Inv, S::Res>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(20);
    let lo = cfg.exhaustive_ops + 1;
    while out.len() < target && attempts < max_attempts {
        attempts += 1;
        let len = rng.gen_range(lo..=cfg.sample_ops);
        let ops: Vec<_> = (0..len)
            .map(|_| events[rng.gen_range(0..events.len())].clone())
            .collect();
        let assignment = random_assignment(len, cfg.max_actions, &mut rng);
        if let Some(h) = random_history::<S>(prop, &ops, &assignment, &mut rng, cache) {
            out.push(h);
        }
    }
    out
}

/// Advances `seq` as a little-endian multi-index over base `base`.
fn advance(seq: &mut [usize], base: usize) -> bool {
    for digit in seq.iter_mut() {
        *digit += 1;
        if *digit < base {
            return true;
        }
        *digit = 0;
    }
    false
}

/// All canonical assignments of `len` positions to actions: action indices
/// appear in first-occurrence order (0 first, then 1, …), at most
/// `max_actions` distinct.
fn canonical_assignments(len: usize, max_actions: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = vec![0usize; len];
    fn rec(cur: &mut Vec<usize>, pos: usize, used: usize, max: usize, out: &mut Vec<Vec<usize>>) {
        if pos == cur.len() {
            out.push(cur.clone());
            return;
        }
        for a in 0..=used.min(max - 1) {
            cur[pos] = a;
            let next_used = used.max(a + 1);
            rec(cur, pos + 1, next_used, max, out);
        }
    }
    if len == 0 {
        return vec![Vec::new()];
    }
    rec(&mut cur, 0, 0, max_actions, &mut out);
    out
}

fn random_assignment(len: usize, max_actions: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut used = 0usize;
    (0..len)
        .map(|_| {
            let a = rng.gen_range(0..=used.min(max_actions - 1));
            used = used.max(a + 1);
            a
        })
        .collect()
}

/// Builds every commit/begin variant of one (ops, assignment) skeleton and
/// pushes the spec members into `out`.
fn emit_commit_variants<S: Enumerable>(
    prop: Property,
    ops: &[Event<S::Inv, S::Res>],
    assignment: &[usize],
    cache: &mut SpecCache<S>,
    out: &mut Vec<BHistory<S::Inv, S::Res>>,
) {
    let n_actions = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let len = ops.len();
    // Last op position of each action.
    let mut last = vec![0usize; n_actions];
    for (i, &a) in assignment.iter().enumerate() {
        last[a] = i;
    }
    // Commit gap per action: None (stays active) or g ∈ last+1 ..= len.
    let mut choice = vec![0usize; n_actions]; // 0 = active, k = gap last+k
    loop {
        let commits: Vec<Option<usize>> = (0..n_actions)
            .map(|a| (choice[a] > 0).then(|| last[a] + choice[a]))
            .collect();
        let begin_perms: Vec<Vec<usize>> = if prop.begin_order_matters() {
            permutations_of(n_actions)
        } else {
            vec![(0..n_actions).collect()]
        };
        for begin_order in begin_perms {
            if let Some(h) = build_history::<S>(ops, assignment, &commits, &begin_order) {
                if prop.admits_cached::<S>(&h, cache) {
                    out.push(h);
                }
            }
        }
        // Advance commit choices (mixed-radix: action a has len-last[a]+1
        // choices: 0 = stays active, k = commit at gap last[a]+k).
        let mut done = true;
        for a in 0..n_actions {
            let radix = len - last[a] + 1;
            choice[a] += 1;
            if choice[a] < radix {
                done = false;
                break;
            }
            choice[a] = 0;
        }
        if done || n_actions == 0 {
            break;
        }
    }
}

fn permutations_of(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    fn rec(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            rec(items, k - 1, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    rec(&mut items, n, &mut out);
    out
}

/// Assembles a history: Begins (in `begin_order`, all up front), then ops
/// with commits inserted at their gaps. Returns `None` if the construction
/// is malformed (commit before an op of the same action — excluded by the
/// gap constraint, so this is defensive).
fn build_history<S: Enumerable>(
    ops: &[Event<S::Inv, S::Res>],
    assignment: &[usize],
    commits: &[Option<usize>],
    begin_order: &[usize],
) -> Option<BHistory<S::Inv, S::Res>> {
    let mut h = BHistory::new();
    for &a in begin_order {
        h.try_push(quorumcc_model::BEntry::Begin(ActionId(a as u32)))
            .ok()?;
    }
    for gap in 0..=ops.len() {
        for (a, c) in commits.iter().enumerate() {
            if *c == Some(gap) {
                h.try_push(quorumcc_model::BEntry::Commit(ActionId(a as u32)))
                    .ok()?;
            }
        }
        if gap < ops.len() {
            h.try_push(quorumcc_model::BEntry::Op {
                action: ActionId(assignment[gap] as u32),
                event: ops[gap].clone(),
            })
            .ok()?;
        }
    }
    Some(h)
}

fn random_history<S: Enumerable>(
    prop: Property,
    ops: &[Event<S::Inv, S::Res>],
    assignment: &[usize],
    rng: &mut StdRng,
    cache: &mut SpecCache<S>,
) -> Option<BHistory<S::Inv, S::Res>> {
    let n_actions = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let len = ops.len();
    let mut last = vec![0usize; n_actions];
    for (i, &a) in assignment.iter().enumerate() {
        last[a] = i;
    }
    let commits: Vec<Option<usize>> = (0..n_actions)
        .map(|a| {
            if rng.gen_bool(0.5) {
                Some(rng.gen_range(last[a] + 1..=len))
            } else {
                None
            }
        })
        .collect();
    let mut begin_order: Vec<usize> = (0..n_actions).collect();
    if prop.begin_order_matters() {
        for i in (1..begin_order.len()).rev() {
            begin_order.swap(i, rng.gen_range(0..=i));
        }
    }
    let h = build_history::<S>(ops, assignment, &commits, &begin_order)?;
    // Samples rarely share prefixes with each other or the exhaustive
    // tier, so skip the membership tables (early-abort walk, no inserts).
    prop.admits_transient_cached::<S>(&h, cache).then_some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::testtypes::TestRegister;

    #[test]
    fn canonical_assignments_are_restricted_growth_strings() {
        // Bell-number prefixes: len 3, up to 3 actions → 5 assignments.
        assert_eq!(canonical_assignments(3, 3).len(), 5);
        assert_eq!(canonical_assignments(3, 1).len(), 1);
        assert_eq!(canonical_assignments(0, 3), vec![Vec::<usize>::new()]);
        // Every assignment starts with action 0.
        for a in canonical_assignments(4, 3) {
            assert_eq!(a[0], 0);
        }
    }

    #[test]
    fn advance_covers_all_indices() {
        let mut seq = vec![0usize; 2];
        let mut count = 1;
        while advance(&mut seq, 3) {
            count += 1;
        }
        assert_eq!(count, 9);
    }

    #[test]
    fn corpus_members_are_in_spec() {
        let cfg = CorpusConfig {
            exhaustive_ops: 2,
            samples: 100,
            sample_ops: 3,
            ..CorpusConfig::default()
        };
        for prop in [Property::Static, Property::Hybrid, Property::Dynamic] {
            let hs = histories::<TestRegister>(prop, &cfg);
            assert!(!hs.is_empty());
            for h in hs.iter().take(200) {
                assert!(
                    prop.admits::<TestRegister>(h, cfg.bounds),
                    "{prop:?}:\n{h:?}"
                );
            }
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let cfg = CorpusConfig {
            exhaustive_ops: 1,
            samples: 50,
            sample_ops: 3,
            ..CorpusConfig::default()
        };
        let a = histories::<TestRegister>(Property::Hybrid, &cfg);
        let b = histories::<TestRegister>(Property::Hybrid, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn static_corpus_varies_begin_order() {
        let cfg = CorpusConfig {
            exhaustive_ops: 2,
            samples: 0,
            ..CorpusConfig::default()
        };
        let hs = histories::<TestRegister>(Property::Static, &cfg);
        // Some history should have Begin order differing from first-op order.
        let mixed = hs.iter().any(|h| {
            let acts = h.actions();
            acts.len() == 2 && acts[0] == quorumcc_model::ActionId(1)
        });
        assert!(mixed);
    }

    #[test]
    fn alphabet_is_nonempty() {
        let evs = alphabet::<TestRegister>(ExploreBounds::default());
        // Write(1);Ok, Write(2);Ok, Read;Ok(0/1/2) → 5 events.
        assert_eq!(evs.len(), 5);
    }
}
