//! Criterion benches for the log-shipping transport: what one `LogReply`
//! costs to produce and absorb at log lengths 16 / 128 / 1024, under
//! full-clone shipping, delta shipping, and committed-prefix compaction.
//!
//! Four scenarios per length:
//!
//! * `full_bootstrap`   — a fresh mirror receives the whole uncompacted
//!   log (what every reply costs without delta shipping, and what a new
//!   member's state transfer costs without compaction);
//! * `compacted_bootstrap` — the same transfer after the committed
//!   prefix folded into a checkpoint (checkpoint + short tail);
//! * `full_reply`       — steady state without deltas: a synced mirror
//!   still receives and re-merges the entire log on every reply;
//! * `delta_reply`      — steady state with deltas: the repository
//!   serves only the journal suffix past the client's frontier.

use criterion::{criterion_group, criterion_main, Criterion};
use quorumcc_model::{ActionId, Event};
use quorumcc_replication::types::{ActionOutcome, Checkpoint, LogEntry, VersionedLog};
use quorumcc_sim::Timestamp;
use std::collections::BTreeMap;

type Log = VersionedLog<u64, u64>;

fn ts(c: u64, n: u32) -> Timestamp {
    Timestamp {
        counter: c,
        node: n,
    }
}

/// A log of `n` committed entries (entry i stamped i+1, committed at
/// i+2 so every commit timestamp exceeds its entry timestamp, as the
/// protocol guarantees).
fn filled(n: usize) -> Log {
    let mut log = Log::new();
    for i in 0..n {
        let i64 = i as u64;
        log.insert(LogEntry {
            ts: ts(i64 + 1, 0),
            action: ActionId(i as u32),
            begin_ts: ts(i64 + 1, 0),
            event: Event::new(i64, i64),
        });
        log.resolve(ActionId(i as u32), ActionOutcome::Committed(ts(i64 + 2, 0)));
    }
    log
}

/// `filled(n)` with all but the youngest `tail` commits folded into a
/// checkpoint, the way `Repository::maybe_compact` folds a resolved
/// prefix.
fn compacted(n: usize, tail: usize) -> Log {
    let mut log = filled(n);
    let fold = n.saturating_sub(tail);
    if fold > 0 {
        let covered: BTreeMap<ActionId, Timestamp> = (0..fold)
            .map(|i| (ActionId(i as u32), ts(i as u64 + 2, 0)))
            .collect();
        log.install_checkpoint(Checkpoint::new((), covered, fold as u64));
    }
    log
}

fn bench_log_shipping(c: &mut Criterion) {
    for n in [16usize, 128, 1024] {
        let src = filled(n);
        let folded = compacted(n, 16.min(n));
        // A mirror already holding everything (the steady-state client).
        let mut synced = Log::new();
        synced.apply_delta(&src.delta_since(0));
        // The frontier just before the newest entry's insert + resolve.
        let frontier = src.version().saturating_sub(2);

        let mut g = c.benchmark_group(format!("log_shipping/{n}"));
        g.bench_function("full_bootstrap", |b| {
            b.iter(|| {
                let mut mirror = Log::new();
                mirror.apply_delta(&src.delta_since(0));
                mirror.version()
            })
        });
        g.bench_function("compacted_bootstrap", |b| {
            b.iter(|| {
                let mut mirror = Log::new();
                mirror.apply_delta(&folded.delta_since(0));
                mirror.version()
            })
        });
        g.bench_function("full_reply", |b| {
            // apply_delta is an idempotent join, so re-absorbing the
            // full log leaves the mirror unchanged while costing the
            // full clone + merge scan — exactly the per-reply price of
            // shipping without deltas.
            b.iter(|| {
                let d = src.delta_since(0);
                synced.apply_delta(&d);
                d.payload_entries()
            })
        });
        let mut synced2 = synced.clone();
        g.bench_function("delta_reply", |b| {
            b.iter(|| {
                let d = src.delta_since(frontier);
                synced2.apply_delta(&d);
                d.payload_entries()
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_log_shipping);
criterion_main!(benches);
