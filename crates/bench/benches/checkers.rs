//! Criterion benches: the atomicity checkers on representative histories.

use criterion::{criterion_group, criterion_main, Criterion};
use quorumcc_model::atomicity::{
    committed_hybrid_atomic, in_dynamic_spec, in_hybrid_spec, in_static_spec,
};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::testtypes::*;
use quorumcc_model::BHistory;

/// A moderately concurrent committed history: `actions` actions, two ops
/// each, interleaved round-robin.
fn sample_history(actions: u32) -> BHistory<QInv, QRes> {
    let mut h = BHistory::new();
    for a in 0..actions {
        h.begin(a);
    }
    for a in 0..actions {
        h.op_event(a, enq(1));
    }
    for a in 0..actions {
        h.op_event(a, enq(2));
    }
    for a in 0..actions {
        h.commit(a);
    }
    h
}

fn bench_checkers(c: &mut Criterion) {
    let bounds = ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    };
    let mut g = c.benchmark_group("atomicity_checkers");
    for actions in [2u32, 4] {
        let h = sample_history(actions);
        g.bench_function(format!("in_static_spec/{actions}"), |b| {
            b.iter(|| in_static_spec::<TestQueue>(&h))
        });
        g.bench_function(format!("in_hybrid_spec/{actions}"), |b| {
            b.iter(|| in_hybrid_spec::<TestQueue>(&h))
        });
        g.bench_function(format!("in_dynamic_spec/{actions}"), |b| {
            b.iter(|| in_dynamic_spec::<TestQueue>(&h, bounds))
        });
        g.bench_function(format!("committed_hybrid/{actions}"), |b| {
            b.iter(|| committed_hybrid_atomic::<TestQueue>(&h))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
