//! Criterion benches: the dependency-relation decision procedures
//! (Theorem 6 interference search, Theorem 10 commutativity, Definition-2
//! clause extraction).

use criterion::{criterion_group, criterion_main, Criterion};
use quorumcc_adts::{DoubleBuffer, Prom, Register};
use quorumcc_core::enumerate::{CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::testtypes::TestQueue;

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

fn bench_static(c: &mut Criterion) {
    let mut g = c.benchmark_group("minimal_static_relation");
    g.bench_function("register", |b| {
        b.iter(|| minimal_static_relation::<Register>(bounds()))
    });
    g.bench_function("queue", |b| {
        b.iter(|| minimal_static_relation::<TestQueue>(bounds()))
    });
    g.bench_function("prom", |b| {
        b.iter(|| minimal_static_relation::<Prom>(bounds()))
    });
    g.bench_function("doublebuffer", |b| {
        b.iter(|| minimal_static_relation::<DoubleBuffer>(bounds()))
    });
    g.finish();
}

fn bench_dynamic(c: &mut Criterion) {
    let mut g = c.benchmark_group("minimal_dynamic_relation");
    g.bench_function("register", |b| {
        b.iter(|| minimal_dynamic_relation::<Register>(bounds()))
    });
    g.bench_function("queue", |b| {
        b.iter(|| minimal_dynamic_relation::<TestQueue>(bounds()))
    });
    g.finish();
}

fn bench_clauses(c: &mut Criterion) {
    let cfg = CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 500,
        sample_ops: 3,
        seed: 1,
        bounds: bounds(),
        threads: 1,
    };
    let mut g = c.benchmark_group("clause_extraction");
    g.sample_size(10);
    g.bench_function("register_hybrid", |b| {
        b.iter(|| ClauseSet::extract::<Register>(Property::Hybrid, &cfg, &[]))
    });
    g.bench_function("queue_hybrid", |b| {
        b.iter(|| ClauseSet::extract::<TestQueue>(Property::Hybrid, &cfg, &[]))
    });
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let cfg = CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 500,
        sample_ops: 3,
        seed: 1,
        bounds: bounds(),
        threads: 1,
    };
    let clauses = ClauseSet::extract::<TestQueue>(Property::Hybrid, &cfg, &[]);
    let rel = minimal_static_relation::<TestQueue>(bounds()).relation;
    c.bench_function("clause_verify_queue", |b| {
        b.iter(|| clauses.verify(&rel).is_ok())
    });
}

criterion_group!(
    benches,
    bench_static,
    bench_dynamic,
    bench_clauses,
    bench_verify
);
criterion_main!(benches);
