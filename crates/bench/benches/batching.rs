//! Criterion benches for the throughput engine: what op batching saves
//! on a full quorum round, and what zero-copy delta-reply serialization
//! saves on the `ReadLog` hot path.
//!
//! Two groups:
//!
//! * `quorum_round` — a whole seeded cluster run, per-message
//!   (`batch = 1`) vs batched + pipelined (`batch = 8` over 8 shards):
//!   the end-to-end cost of delivering the same committed workload, so
//!   the measured difference is exactly the envelope coalescing and the
//!   read/write overlap;
//! * `delta_serialize` — producing one wire-ready `LogReply` from a
//!   1024-entry journal, cloned (`delta_since` materializes owned
//!   entries, then encodes) vs zero-copy (`delta_since_ref` borrows
//!   slices into the journal and encodes straight from them). Both paths
//!   share `encode_delta_wire`, so the byte output is identical — the
//!   delta is the clone.

use criterion::{criterion_group, criterion_main, Criterion};
use quorumcc_adts::Queue;
use quorumcc_core::DependencyRelation;
use quorumcc_model::{ActionId, Enumerable as _, Event, Sequential};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder, TuningConfig};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::types::{ActionOutcome, LogEntry, VersionedLog};
use quorumcc_replication::{ObjId, Transaction};
use quorumcc_sim::Timestamp;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// A contention-free workload (each transaction owns a disjoint object
/// range, ops round-robin across it) — both engines commit everything,
/// so the bench compares transport cost, not abort handling.
fn workload(
    clients: usize,
    txns: usize,
    ops: usize,
    per_txn: u16,
) -> Vec<Vec<Transaction<<Queue as Sequential>::Inv>>> {
    let alphabet = Queue::invocations();
    let mut rng = StdRng::seed_from_u64(7);
    (0..clients)
        .map(|c| {
            (0..txns)
                .map(|t| Transaction {
                    ops: (0..ops)
                        .map(|k| {
                            let obj = ObjId((c * txns + t) as u16 * per_txn + k as u16 % per_txn);
                            (obj, alphabet[rng.gen_range(0..alphabet.len())])
                        })
                        .collect(),
                })
                .collect()
        })
        .collect()
}

fn bench_quorum_round(c: &mut Criterion) {
    let protocol = Protocol::new(Mode::Hybrid, DependencyRelation::full::<Queue>());
    let w = workload(8, 2, 8, 8);
    let mut g = c.benchmark_group("quorum_round");
    for (name, shards, batch) in [("per_message", 1u16, 1u32), ("batched", 8, 8)] {
        let protocol = protocol.clone();
        let w = w.clone();
        g.bench_function(name, |b| {
            b.iter(|| {
                let report = RunBuilder::<Queue>::new(5)
                    .protocol(ProtocolConfig::new(protocol.clone()).txn_retries(3))
                    .tuning(TuningConfig::default().shards(shards).batch(batch))
                    .seed(11)
                    .workload(w.clone())
                    .run()
                    .expect("bench run");
                report.stats().committed
            })
        });
    }
    g.finish();
}

type Log = VersionedLog<u64, u64>;

fn ts(c: u64, n: u32) -> Timestamp {
    Timestamp {
        counter: c,
        node: n,
    }
}

/// A journal-resident log of `n` committed entries.
fn filled(n: usize) -> Log {
    let mut log = Log::new();
    for i in 0..n {
        let i64 = i as u64;
        log.insert(LogEntry {
            ts: ts(i64 + 1, 0),
            action: ActionId(i as u32),
            begin_ts: ts(i64 + 1, 0),
            event: Event::new(i64, i64),
        });
        log.resolve(ActionId(i as u32), ActionOutcome::Committed(ts(i64 + 2, 0)));
    }
    log
}

fn bench_delta_serialize(c: &mut Criterion) {
    let n = 1024;
    let src = filled(n);
    // A frontier low enough that the reply carries most of the journal.
    let frontier = 16;
    // Sanity: both paths frame the same bytes.
    assert_eq!(
        src.delta_since(frontier).encode_wire(),
        src.delta_since_ref(frontier).encode_wire()
    );
    let mut g = c.benchmark_group(format!("delta_serialize/{n}"));
    g.bench_function("cloned", |b| {
        b.iter(|| {
            let d = src.delta_since(frontier);
            d.encode_wire().len()
        })
    });
    g.bench_function("zero_copy", |b| {
        b.iter(|| {
            let d = src.delta_since_ref(frontier);
            d.encode_wire().len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_quorum_round, bench_delta_serialize);
criterion_main!(benches);
