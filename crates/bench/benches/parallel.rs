//! Sequential-vs-parallel benchmarks for the theorem-verification
//! pipeline: the unmemoized reference extractor vs the memoized one, and
//! thread scaling of corpus enumeration, clause extraction, hitting-set
//! search, and Monte-Carlo availability at 1/2/4/8 workers.
//!
//! Outputs are bitwise-identical at every thread count (see
//! `crates/core/tests/determinism.rs`); these benches measure the only
//! thing `--threads` changes — wall-clock time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use quorumcc_adts::FlagSet;
use quorumcc_core::enumerate::{histories, CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;
use quorumcc_model::spec::ExploreBounds;
use quorumcc_quorum::montecarlo::{estimate_threaded, FaultModel};
use quorumcc_quorum::ThresholdAssignment;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

fn cfg(threads: usize) -> CorpusConfig {
    CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 1_000,
        sample_ops: 4,
        seed: 17,
        bounds: bounds(),
        threads,
    }
}

fn extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("extract/flagset");
    g.sample_size(10);
    g.bench_function("reference_seq", |b| {
        b.iter(|| ClauseSet::extract_reference::<FlagSet>(Property::Hybrid, &cfg(1), &[]))
    });
    for threads in THREAD_COUNTS {
        g.bench_function(format!("memoized_t{threads}"), |b| {
            b.iter(|| ClauseSet::extract::<FlagSet>(Property::Hybrid, &cfg(threads), &[]))
        });
    }
    g.finish();
}

fn corpus(c: &mut Criterion) {
    let mut g = c.benchmark_group("corpus/flagset");
    g.sample_size(10);
    for threads in THREAD_COUNTS {
        g.bench_function(format!("t{threads}"), |b| {
            b.iter(|| histories::<FlagSet>(Property::Hybrid, &cfg(threads)))
        });
    }
    g.finish();
}

fn hitting_sets(c: &mut Criterion) {
    let clauses = ClauseSet::extract::<FlagSet>(Property::Hybrid, &cfg(1), &[]);
    let mut g = c.benchmark_group("minimal_relations/flagset");
    g.sample_size(10);
    for threads in THREAD_COUNTS {
        g.bench_function(format!("t{threads}"), |b| {
            b.iter(|| black_box(&clauses).minimal_relations_par(16, threads))
        });
    }
    g.finish();
}

fn montecarlo(c: &mut Criterion) {
    let mut ta = ThresholdAssignment::new(5);
    ta.set_initial("Read", 2);
    ta.set_initial("Write", 4);
    let evs = [
        quorumcc_model::EventClass::new("Read", "Ok"),
        quorumcc_model::EventClass::new("Write", "Ok"),
    ];
    let model = FaultModel {
        site_up: 0.9,
        partition_prob: 0.3,
        same_block_prob: 0.5,
    };
    let mut g = c.benchmark_group("montecarlo/100k_trials");
    g.sample_size(10);
    for threads in THREAD_COUNTS {
        g.bench_function(format!("t{threads}"), |b| {
            b.iter(|| {
                estimate_threaded(&ta, &["Read", "Write"], &evs, model, 100_000, 7, threads)
                    .expect("valid model")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, extraction, corpus, hitting_sets, montecarlo);
criterion_main!(benches);
