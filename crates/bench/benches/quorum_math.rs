//! Criterion benches: quorum availability math and the threshold
//! optimizer.

use criterion::{criterion_group, criterion_main, Criterion};
use quorumcc_adts::Prom;
use quorumcc_core::certificates::prom_hybrid_relation;
use quorumcc_model::Classified;
use quorumcc_quorum::montecarlo::{estimate, FaultModel};
use quorumcc_quorum::{availability, threshold, QuorumSet, ThresholdAssignment};

fn bench_quorum(c: &mut Criterion) {
    let ops = Prom::op_classes();
    let evs = Prom::event_classes();
    let rel = prom_hybrid_relation();

    c.bench_function("threshold_optimize_prom_n7", |b| {
        b.iter(|| threshold::optimize(&rel, 7, &ops, &evs, &["Read", "Write", "Seal"]).unwrap())
    });

    c.bench_function("binomial_tail_n64", |b| {
        b.iter(|| availability::binomial_tail(64, 33, 0.95).unwrap())
    });

    let ta = {
        let mut t = ThresholdAssignment::new(7);
        t.set_initial("Read", 1);
        t.set_initial("Seal", 7);
        t
    };
    c.bench_function("montecarlo_10k_trials", |b| {
        b.iter(|| {
            estimate(
                &ta,
                &ops,
                &evs,
                FaultModel {
                    site_up: 0.9,
                    partition_prob: 0.3,
                    same_block_prob: 0.5,
                },
                10_000,
                7,
            )
            .unwrap()
        })
    });

    c.bench_function("quorumset_threshold_intersection_n12", |b| {
        let a = QuorumSet::threshold(12, 7);
        let q = QuorumSet::threshold(12, 6);
        b.iter(|| a.always_intersects(&q))
    });
}

criterion_group!(benches, bench_quorum);
criterion_main!(benches);
