//! Criterion benches: full replicated-cluster runs under each protocol
//! (simulated operations per wall-clock second).

use criterion::{criterion_group, criterion_main, Criterion};
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::testtypes::{QInv, TestQueue};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::workload::{generate, WorkloadSpec};
use quorumcc_sim::trace::TraceConfig;
use rand::Rng;

fn bench_cluster(c: &mut Criterion) {
    let bounds = ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    };
    let s_rel = minimal_static_relation::<TestQueue>(bounds).relation;
    let d_rel = s_rel.union(&minimal_dynamic_relation::<TestQueue>(bounds).relation);

    let mut g = c.benchmark_group("cluster_run_3repos_3clients_5txns");
    g.sample_size(20);
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let rel = match mode {
            Mode::StaticTs | Mode::Hybrid => s_rel.clone(),
            Mode::Dynamic2pl => d_rel.clone(),
        };
        g.bench_function(mode.name(), |b| {
            b.iter(|| {
                let w = generate(
                    WorkloadSpec {
                        clients: 3,
                        txns_per_client: 5,
                        ops_per_txn: 2,
                        objects: 1,
                        seed: 7,
                    },
                    |rng| {
                        if rng.gen_bool(0.7) {
                            QInv::Enq(rng.gen_range(1..=2))
                        } else {
                            QInv::Deq
                        }
                    },
                );
                RunBuilder::<TestQueue>::new(3)
                    .protocol(ProtocolConfig::new(Protocol::new(mode, rel.clone())).txn_retries(2))
                    .seed(7)
                    .workload(w)
                    .run()
                    .unwrap()
                    .stats()
            })
        });
    }
    g.finish();

    // The acceptance gate for the trace layer: a disabled TraceConfig must
    // cost nothing measurable vs the plain run above (compare the two
    // hybrid groups; delta must stay within noise).
    let mut g = c.benchmark_group("cluster_run_trace_overhead");
    g.sample_size(20);
    for (label, cfg) in [
        ("disabled", TraceConfig::disabled()),
        ("ring4096", TraceConfig::ring(4096)),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let w = generate(
                    WorkloadSpec {
                        clients: 3,
                        txns_per_client: 5,
                        ops_per_txn: 2,
                        objects: 1,
                        seed: 7,
                    },
                    |rng| {
                        if rng.gen_bool(0.7) {
                            QInv::Enq(rng.gen_range(1..=2))
                        } else {
                            QInv::Deq
                        }
                    },
                );
                RunBuilder::<TestQueue>::new(3)
                    .protocol(
                        ProtocolConfig::new(Protocol::new(Mode::Hybrid, s_rel.clone()))
                            .txn_retries(2),
                    )
                    .trace(cfg)
                    .seed(7)
                    .workload(w)
                    .run()
                    .unwrap()
                    .stats()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
