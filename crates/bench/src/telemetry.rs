//! Machine-readable run telemetry for the experiment binaries.
//!
//! Every binary in `src/bin/` records wall-clock time per phase plus a
//! few scalar metrics (corpus size, clause count, speedup, …) and writes
//! them to `BENCH_<id>.json` in the working directory on exit, so perf
//! regressions across PRs are diffable without scraping stdout.
//!
//! The JSON is emitted by hand: the vendored `serde` is a marker-only
//! stub (the build environment has no crates.io access), and the schema
//! here is flat enough that a tiny escaping-aware writer is clearer than
//! a generic one.

use quorumcc_model::spec::ExploreBounds;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Parses `--threads N` / `--threads=N` from the process arguments.
///
/// Returns `0` (all available parallelism) when the flag is absent, so
/// experiment runs use the whole machine by default; determinism
/// guarantees the *outputs* are identical at every thread count, only
/// the recorded timings vary.
///
/// # Panics
///
/// Panics with a usage message when the flag is present but its value is
/// missing or not a number — a bad CLI invocation should fail loudly,
/// not silently fall back to a default.
#[must_use]
pub fn threads_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = if a == "--threads" {
            args.next()
        } else if let Some(v) = a.strip_prefix("--threads=") {
            Some(v.to_string())
        } else {
            continue;
        };
        let val = val.unwrap_or_else(|| panic!("--threads requires a value"));
        return val
            .parse()
            .unwrap_or_else(|e| panic!("--threads {val}: {e} (expected a count, 0 = all cores)"));
    }
    0
}

/// Collects per-phase wall-clock timings and scalar metrics for one
/// experiment run, then serializes them to `BENCH_<id>.json`.
pub struct BenchRecorder {
    id: String,
    threads_requested: usize,
    threads_effective: usize,
    bounds: ExploreBounds,
    phases: Vec<(String, f64)>,
    metrics: Vec<(String, f64)>,
    sections: Vec<(String, String)>,
}

impl BenchRecorder {
    /// Starts a recorder for the experiment `id` (the `BENCH_<id>.json`
    /// stem) running with `threads` workers (`0` = all available).
    #[must_use]
    pub fn new(id: &str, threads: usize, bounds: ExploreBounds) -> Self {
        BenchRecorder {
            id: id.to_string(),
            threads_requested: threads,
            threads_effective: quorumcc_core::parallel::effective_threads(threads),
            bounds,
            phases: Vec::new(),
            metrics: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// The resolved worker count (`0` requests mapped to the machine).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads_effective
    }

    /// Overrides the recorded effective thread count with the pool size
    /// the dominant phase actually used.
    ///
    /// The constructor's default only clamps the request to the machine
    /// (`0` → all cores); a phase that fans out over fewer items than
    /// that runs a smaller pool, and the telemetry should say so rather
    /// than advertise parallelism that never existed.
    pub fn set_threads_effective(&mut self, n: usize) {
        self.threads_effective = n.max(1);
    }

    /// Runs `f`, recording its wall-clock time under `name`.
    pub fn phase<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        self.phases.push((name.to_string(), ms));
        out
    }

    /// Records a phase timed externally (e.g. accumulated across a loop).
    pub fn record_phase(&mut self, name: &str, millis: f64) {
        self.phases.push((name.to_string(), millis));
    }

    /// Wall-clock milliseconds recorded for `name`, if that phase ran.
    #[must_use]
    pub fn phase_millis(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ms)| *ms)
    }

    /// Records a scalar metric (corpus size, clause count, speedup, …).
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Attaches a pre-rendered JSON value as a top-level key of the
    /// record — the hook the experiment binaries use to embed a run's
    /// [`RunTelemetry`](quorumcc_replication::RunTelemetry) document.
    ///
    /// `value` must be a complete JSON value; it is emitted verbatim.
    pub fn raw_json(&mut self, name: &str, value: String) {
        self.sections.push((name.to_string(), value));
    }

    /// Renders the record as a JSON document.
    #[must_use]
    pub fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"id\": {},", json_str(&self.id));
        let _ = writeln!(s, "  \"threads_requested\": {},", self.threads_requested);
        let _ = writeln!(s, "  \"threads_effective\": {},", self.threads_effective);
        let _ = writeln!(
            s,
            "  \"bounds\": {{ \"depth\": {}, \"max_states\": {}, \"budget\": {} }},",
            self.bounds.depth, self.bounds.max_states, self.bounds.budget
        );
        s.push_str("  \"phases_ms\": {");
        for (i, (name, ms)) in self.phases.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    {}: {}", json_str(name), json_f64(*ms));
        }
        s.push_str(if self.phases.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"metrics\": {");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    {}: {}", json_str(name), json_f64(*v));
        }
        s.push_str(if self.metrics.is_empty() {
            "}"
        } else {
            "\n  }"
        });
        for (name, value) in &self.sections {
            let _ = write!(s, ",\n  {}: {}", json_str(name), value.trim_end());
        }
        s.push_str("\n}\n");
        s
    }

    /// Writes `BENCH_<id>.json` to the working directory and returns its
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(format!("BENCH_{}.json", self.id));
        std::fs::write(&path, self.json())?;
        Ok(path)
    }

    /// [`Self::write`], then prints the path — the standard last line of
    /// every experiment binary.
    pub fn finish(&self) {
        match self.write() {
            Ok(path) => println!("\ntelemetry: {}", path.display()),
            Err(e) => eprintln!("\ntelemetry: could not write BENCH_{}.json: {e}", self.id),
        }
    }
}

/// Escapes a string for a JSON document (the subset our names need).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Inf; clamp to null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip representation; integers print bare.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> ExploreBounds {
        ExploreBounds {
            depth: 4,
            max_states: 4_096,
            budget: 5_000_000,
        }
    }

    #[test]
    fn phases_and_metrics_appear_in_json() {
        let mut r = BenchRecorder::new("unit", 2, bounds());
        let v = r.phase("work", || 42);
        assert_eq!(v, 42);
        r.metric("clauses", 19.0);
        let j = r.json();
        assert!(j.contains("\"id\": \"unit\""));
        assert!(j.contains("\"threads_requested\": 2"));
        assert!(j.contains("\"work\":"));
        assert!(j.contains("\"clauses\": 19"));
        assert!(r.phase_millis("work").is_some());
        assert!(r.phase_millis("absent").is_none());
    }

    #[test]
    fn empty_record_is_valid_shape() {
        let r = BenchRecorder::new("empty", 0, bounds());
        let j = r.json();
        assert!(j.contains("\"phases_ms\": {}"));
        assert!(j.contains("\"metrics\": {}"));
        assert!(r.threads() >= 1);
    }

    #[test]
    fn effective_threads_can_be_overridden_to_the_phase_pool() {
        let mut r = BenchRecorder::new("pool", 0, bounds());
        r.set_threads_effective(3);
        assert_eq!(r.threads(), 3);
        assert!(r.json().contains("\"threads_effective\": 3"));
        r.set_threads_effective(0);
        assert_eq!(r.threads(), 1);
    }

    #[test]
    fn raw_sections_are_embedded_verbatim() {
        let mut r = BenchRecorder::new("raw", 1, bounds());
        r.metric("k", 1.0);
        r.raw_json(
            "telemetry",
            "{\n      \"mode\": \"hybrid\"\n    }\n".to_string(),
        );
        let j = r.json();
        assert!(j.contains("\"telemetry\": {\n      \"mode\": \"hybrid\"\n    }"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
