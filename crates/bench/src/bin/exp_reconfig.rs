//! **Experiment R1** — online quorum reconfiguration after a site loss.
//!
//! A 5-site PROM cluster loses site 4 permanently mid-run. Four scenarios
//! — {hybrid, static} × {reconfiguration off, `ReconfigPolicy::Reactive`}
//! — run the *same* workload (each transaction writes then seals its own
//! PROM, so every transaction needs a full-membership Seal/Write quorum),
//! and the committed-transaction counts are windowed into before / during
//! / after the loss:
//!
//! * with reconfiguration **off**, availability never comes back — the
//!   pre-fault thresholds keep demanding the dead site;
//! * with the **reactive** policy, the planner replans over the four
//!   survivors, a joint-then-stable epoch installs, and commits resume.
//!
//! The planner section makes the paper's §4 comparison explicit: over the
//! survivors, hybrid atomicity replans PROM to (Read = 1, Write = 1,
//! Seal = 4) while static atomicity's extra constraints force Write to
//! cover the whole surviving membership — so hybrid's recovered Write
//! availability strictly beats the best static can do.

use quorumcc_adts::prom::PromInv;
use quorumcc_adts::Prom;
use quorumcc_bench::{experiment_bounds, section, threads_from_args, BenchRecorder};
use quorumcc_core::certificates::{prom_hybrid_relation, prom_static_extra_pairs};
use quorumcc_core::parallel::{effective_threads, map_indexed};
use quorumcc_model::Classified;
use quorumcc_quorum::{planner, threshold, SiteSet};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::types::ObjId;
use quorumcc_replication::{ReconfigPolicy, Transaction, TuningConfig};
use quorumcc_sim::FaultPlan;

const N: u32 = 5;
const CRASH_AT: u64 = 3_000;
const DETECT_DELAY: u64 = 300;
const MAX_TIME: u64 = 12_000;
/// Window boundary separating "during the outage" from "after the
/// reconfiguration had time to commit" (fixed, so the off/on scenarios
/// are windowed identically).
const RECOVER_AT: u64 = 4_000;

fn workload(clients: u32, txns: u32) -> Vec<Vec<Transaction<PromInv>>> {
    (0..clients)
        .map(|c| {
            (0..txns)
                .map(|j| {
                    // Each transaction owns one PROM: write it, then seal
                    // it. The Seal is the full-membership quorum that
                    // makes the site loss bite under *both* mechanisms.
                    let obj = ObjId((c * 64 + j) as u16);
                    Transaction {
                        ops: vec![(obj, PromInv::Write(j)), (obj, PromInv::Seal)],
                    }
                })
                .collect()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = experiment_bounds();
    let threads = threads_from_args();
    let mut rec = BenchRecorder::new("exp_reconfig", threads, bounds);
    let ops = Prom::op_classes();
    let evs = Prom::event_classes();
    let priority = ["Read", "Write", "Seal"];

    let hybrid_rel = prom_hybrid_relation();
    let static_rel = hybrid_rel.union(&prom_static_extra_pairs());
    let ta_h = threshold::optimize(&hybrid_rel, N, &ops, &evs, &priority)?;
    let ta_s = threshold::optimize(&static_rel, N, &ops, &evs, &priority)?;

    section("1. Replanning over the survivors (site 4 lost, p = 0.9)");
    let survivors = SiteSet::from_ids([0, 1, 2, 3]);
    let up = [0.9, 0.9, 0.9, 0.9, 0.0];
    let plan_h = planner::plan(&hybrid_rel, survivors, &up, &ops, &evs, &priority)?;
    let plan_s = planner::plan(&static_rel, survivors, &up, &ops, &evs, &priority)?;
    println!(
        "  {:>9} | {:>13} | {:>13} | {:>20}",
        "mechanism", "Read/Write/Seal", "quorum of", "Write availability"
    );
    for (name, plan) in [("hybrid", &plan_h), ("static", &plan_s)] {
        println!(
            "  {:>9} | {:>5}/{}/{:>5} | {:>13} | {:>20.6}",
            name,
            plan.thresholds.op_size_worst("Read", &evs),
            plan.thresholds.op_size_worst("Write", &evs),
            plan.thresholds.op_size_worst("Seal", &evs),
            survivors.len(),
            plan.availability_of("Write").unwrap_or(0.0),
        );
    }
    // The acceptance shape: hybrid replans to (Read = 1, Seal = n-1,
    // Write = 1); static cannot follow — its Write must cover the whole
    // surviving membership, so its availability stays strictly behind.
    assert_eq!(plan_h.thresholds.op_size_worst("Read", &evs), 1);
    assert_eq!(plan_h.thresholds.op_size_worst("Write", &evs), 1);
    assert_eq!(plan_h.thresholds.op_size_worst("Seal", &evs), (N - 1));
    assert_eq!(plan_s.thresholds.op_size_worst("Write", &evs), (N - 1));
    let (hw, sw) = (
        plan_h.availability_of("Write").unwrap_or(0.0),
        plan_s.availability_of("Write").unwrap_or(0.0),
    );
    assert!(hw > sw, "hybrid Write availability must beat static");
    rec.metric("replanned_write_avail_hybrid", hw);
    rec.metric("replanned_write_avail_static", sw);

    section("2. Operational: committed transactions per window");
    // The four scenarios are independent simulations; they fan out over
    // `quorumcc_core::parallel` and report in item order, so the table,
    // metrics, and telemetry are byte-identical at every `--threads`
    // count.
    let mechs = [
        ("hybrid", Mode::Hybrid, &hybrid_rel, &ta_h),
        ("static", Mode::StaticTs, &static_rel, &ta_s),
    ];
    let pols = ["off", "on"];
    let items: Vec<(usize, usize)> = (0..mechs.len())
        .flat_map(|m| (0..pols.len()).map(move |p| (m, p)))
        .collect();
    rec.set_threads_effective(effective_threads(threads).min(items.len()));
    let sim_t0 = std::time::Instant::now();
    let results = map_indexed(threads, &items, |_, &(m, p)| {
        let (mech, mode, rel, ta) = &mechs[m];
        let policy = if pols[p] == "off" {
            ReconfigPolicy::None
        } else {
            ReconfigPolicy::Reactive {
                detect_delay: DETECT_DELAY,
                priority: vec!["Read", "Write", "Seal"],
            }
        };
        let name = format!("{mech}_{}", pols[p]);
        let mut faults = FaultPlan::none();
        faults.crash(4, CRASH_AT, MAX_TIME);
        let report = RunBuilder::<Prom>::new(N)
            .protocol(
                ProtocolConfig::new(Protocol::new(*mode, (*rel).clone()))
                    .op_timeout(60)
                    .txn_retries(1),
            )
            .thresholds((*ta).clone())
            .tuning(TuningConfig::default().think_time(250))
            .faults(faults)
            .max_time(MAX_TIME)
            .reconfig(policy)
            .workload(workload(2, 24))
            .run()
            .map_err(|e| format!("{name}: {e}"))?;
        report
            .check_atomicity(bounds)
            .map_err(|o| format!("{name}: non-atomic history {o}"))?;

        // Window the committed transactions by commit-record time.
        let (mut before, mut during, mut after) = (0u64, 0u64, 0u64);
        for (_, records, _) in report.clients() {
            for r in records {
                if let quorumcc_replication::client::Record::Commit { t, .. } = r {
                    match *t {
                        t if t < CRASH_AT => before += 1,
                        t if t < RECOVER_AT => during += 1,
                        _ => after += 1,
                    }
                }
            }
        }
        let t = report.stats();
        Ok::<_, String>((
            name,
            before,
            during,
            after,
            t.aborted_unavailable,
            t.stale_retries,
            report.reconfigs().last().map(|r| r.committed),
            report.telemetry().clone(),
        ))
    });
    rec.record_phase("cluster_sim_ms", sim_t0.elapsed().as_secs_f64() * 1e3);
    println!(
        "  {:>10} | {:>8} | {:>8} | {:>8} | {:>7} | {:>6} | {:>11}",
        "scenario", "before", "during", "after", "unavail", "stale", "reconfig@t"
    );
    let mut after_counts = std::collections::HashMap::new();
    for res in results {
        let (name, before, during, after, unavail, stale, reconfig_t, telemetry) = res?;
        let commit_t = reconfig_t.map_or("-".to_string(), |t| t.to_string());
        println!(
            "  {:>10} | {:>8} | {:>8} | {:>8} | {:>7} | {:>6} | {:>11}",
            name, before, during, after, unavail, stale, commit_t
        );
        after_counts.insert(name.clone(), after);
        rec.metric(&format!("{name}_committed_before"), before as f64);
        rec.metric(&format!("{name}_committed_during"), during as f64);
        rec.metric(&format!("{name}_committed_after"), after as f64);
        rec.metric(&format!("{name}_aborted_unavailable"), unavail as f64);
        rec.metric(&format!("{name}_stale_retries"), stale as f64);
        if let Some(t) = reconfig_t {
            rec.metric(&format!("{name}_reconfig_committed_t"), t as f64);
        }
        rec.raw_json(&format!("telemetry_{name}"), telemetry.to_json());
    }

    // Availability comes back only through reconfiguration: with the
    // policy off, no transaction commits after the loss under either
    // mechanism; with it on, both resume — and hybrid resumes onto
    // strictly cheaper Write quorums (section 1).
    for mech in ["hybrid", "static"] {
        assert_eq!(
            after_counts[&format!("{mech}_off")],
            0,
            "{mech} without reconfiguration must stay unavailable"
        );
        assert!(
            after_counts[&format!("{mech}_on")] > 0,
            "{mech} with reactive reconfiguration must recover"
        );
    }
    println!(
        "\n  Shape check: with reconfiguration off, commits stop at the site\n\
         \x20 loss and never resume; the reactive policy installs epoch 1 over\n\
         \x20 the survivors and commits resume — onto (Read=1, Write=1, Seal=4)\n\
         \x20 under hybrid, while static is forced to Write=4 of 4."
    );
    rec.finish();
    Ok(())
}
