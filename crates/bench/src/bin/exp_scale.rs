//! **Experiment S1** — the throughput-engine scale sweep: sharded object
//! spaces, op batching, and pipelined quorum rounds.
//!
//! Three cluster shapes (sites × shards × objects × clients, growing into
//! the thousands of ops per run) each sweep the batch size through
//! `BATCHES`. Every transaction owns a disjoint object range, so the
//! workload is contention-free *by construction* — the regime where
//! commit/abort decisions must be a pure function of the workload,
//! making the A/B decision-identity gate structural rather than
//! empirically lucky.
//!
//! The acceptance claims this binary checks and records:
//!
//! * **decision identity**: at every scale, the batched, pipelined engine
//!   reaches exactly the same (committed, conflict, unavailable) triple
//!   as the unbatched engine — coalescing changes *when* messages travel,
//!   never what the quorum arithmetic concludes;
//! * **msgs/op falls monotonically with batch size** on every shape
//!   (strictly, end to end);
//! * **throughput at the largest shape improves ≥ 2×** from batch 1 to
//!   the deepest pipeline, measured in ops per kilotick of simulated
//!   time — a deterministic stand-in for ops/sec (wall-clock goes to
//!   stdout only);
//! * `BENCH_exp_scale.json` is **byte-identical at every `--threads`
//!   count** — the file carries decisions, message counts, and simulated
//!   times only, never wall-clock or pool sizes.

use quorumcc_adts::Queue;
use quorumcc_bench::{experiment_bounds, section, threads_from_args};
use quorumcc_core::{minimal_static_relation, parallel};
use quorumcc_model::{Enumerable as _, Sequential};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder, TuningConfig};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::{ObjId, Transaction};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::fmt::Write as _;

const BASE_SEED: u64 = 4_242;
const BATCHES: &[u32] = &[1, 2, 4, 8];

/// One cluster shape in the sweep. Objects are `clients × txns ×
/// per_txn`: every *transaction* draws its operations from its own
/// disjoint range, so no object is ever touched by two actions — not
/// across clients, and not across a client's own consecutive
/// transactions (whose resolutions gossip asynchronously). Conflicts are
/// therefore impossible for any message timing, which is what makes the
/// decision-identity gate structural. Consecutive object ids land on
/// consecutive shards, so a transaction's ops span shards and the
/// pipeline has overlap to exploit.
struct Shape {
    name: &'static str,
    sites: u32,
    shards: u16,
    clients: usize,
    per_txn: u16,
    txns: usize,
    ops: usize,
}

impl Shape {
    fn objects(&self) -> u32 {
        self.clients as u32 * self.txns as u32 * u32::from(self.per_txn)
    }
    fn total_ops(&self) -> usize {
        self.clients * self.txns * self.ops
    }
}

const SHAPES: &[Shape] = &[
    Shape {
        name: "small",
        sites: 3,
        shards: 2,
        clients: 4,
        per_txn: 2,
        txns: 3,
        ops: 4,
    },
    Shape {
        name: "medium",
        sites: 5,
        shards: 4,
        clients: 16,
        per_txn: 4,
        txns: 4,
        ops: 6,
    },
    Shape {
        name: "large",
        sites: 7,
        shards: 8,
        clients: 32,
        per_txn: 8,
        txns: 4,
        ops: 8,
    },
];

/// The disjoint-range workload for one shape (seeded, deterministic).
fn workload(shape: &Shape, seed: u64) -> Vec<Vec<Transaction<<Queue as Sequential>::Inv>>> {
    let alphabet = Queue::invocations();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..shape.clients)
        .map(|c| {
            (0..shape.txns)
                .map(|t| {
                    let base = (c * shape.txns + t) as u16 * shape.per_txn;
                    Transaction {
                        // Ops cycle round-robin over the range, so a
                        // transaction's consecutive ops land on distinct
                        // shards — the access pattern pipelining is for.
                        ops: (0..shape.ops)
                            .map(|k| {
                                let obj = ObjId(base + k as u16 % shape.per_txn);
                                (obj, alphabet[rng.gen_range(0..alphabet.len())])
                            })
                            .collect(),
                    }
                })
                .collect()
        })
        .collect()
}

/// The deterministic record for one (shape, batch) cell.
#[derive(Clone)]
struct Cell {
    batch: u32,
    committed: usize,
    aborted_conflict: usize,
    aborted_unavailable: usize,
    ops: usize,
    msgs_sent: u64,
    payload_msgs: u64,
    batches_flushed: u64,
    end_time: u64,
}

impl Cell {
    fn msgs_per_op(&self) -> f64 {
        self.msgs_sent as f64 / self.ops.max(1) as f64
    }
    /// Ops per 1000 ticks of simulated time — the deterministic
    /// throughput proxy (the simulator's clock, not the host's).
    fn ops_per_ktick(&self) -> f64 {
        self.ops as f64 * 1_000.0 / self.end_time.max(1) as f64
    }
    fn json(&self) -> String {
        format!(
            "{{\"batch\": {}, \"committed\": {}, \"aborted_conflict\": {}, \
             \"aborted_unavailable\": {}, \"ops\": {}, \"msgs_sent\": {}, \
             \"payload_msgs\": {}, \"batches_flushed\": {}, \"sim_ticks\": {}, \
             \"msgs_per_op\": {:.3}, \"ops_per_ktick\": {:.3}}}",
            self.batch,
            self.committed,
            self.aborted_conflict,
            self.aborted_unavailable,
            self.ops,
            self.msgs_sent,
            self.payload_msgs,
            self.batches_flushed,
            self.end_time,
            self.msgs_per_op(),
            self.ops_per_ktick()
        )
    }
}

fn run_cell(shape: &Shape, batch: u32, protocol: &Protocol) -> Cell {
    let seed = BASE_SEED ^ shape.sites as u64;
    let report = RunBuilder::<Queue>::new(shape.sites)
        .protocol(ProtocolConfig::new(protocol.clone()).txn_retries(3))
        .tuning(TuningConfig::default().shards(shape.shards).batch(batch))
        .seed(seed)
        .workload(workload(shape, seed))
        .run()
        .expect("scale sweep cell");
    let s = report.stats();
    let sim = report.sim_stats();
    let t = report.telemetry();
    Cell {
        batch,
        committed: s.committed,
        aborted_conflict: s.aborted_conflict,
        aborted_unavailable: s.aborted_unavailable,
        ops: s.ops_completed,
        msgs_sent: t.msgs_sent,
        payload_msgs: t.payload_msgs,
        batches_flushed: t.batches_flushed,
        end_time: sim.end_time,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = experiment_bounds();
    let threads = threads_from_args();
    let protocol = Protocol::new(
        Mode::Hybrid,
        minimal_static_relation::<Queue>(bounds).relation,
    );

    // Flatten the sweep into independent (shape, batch) cells and run
    // them over the worker pool; results come back in item order, so the
    // record below is a pure function of the sweep definition.
    let cells: Vec<(usize, u32)> = SHAPES
        .iter()
        .enumerate()
        .flat_map(|(i, _)| BATCHES.iter().map(move |&b| (i, b)))
        .collect();
    let t0 = std::time::Instant::now();
    let results = parallel::map_indexed(threads, &cells, |_, &(i, b)| {
        run_cell(&SHAPES[i], b, &protocol)
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut json = String::new();
    json.push_str("{\n  \"id\": \"exp_scale\",\n");
    let _ = writeln!(json, "  \"base_seed\": {BASE_SEED},");
    let _ = writeln!(
        json,
        "  \"batches\": [{}],",
        BATCHES
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  \"shapes\": {\n");

    section("Scale sweep: msgs/op and throughput vs batch size");
    println!("  ({} cells, {wall_ms:.1} ms wall)", cells.len());
    for (i, shape) in SHAPES.iter().enumerate() {
        let rows: Vec<&Cell> = results
            .iter()
            .zip(&cells)
            .filter(|(_, &(j, _))| j == i)
            .map(|(c, _)| c)
            .collect();
        println!(
            "\n  {}: {} sites, {} shards, {} objects, {} clients, {} ops",
            shape.name,
            shape.sites,
            shape.shards,
            shape.objects(),
            shape.clients,
            shape.total_ops()
        );
        println!(
            "  {:>5} | {:>9} | {:>8} | {:>9} | {:>9} | {:>8} | {:>9}",
            "batch", "committed", "msgs", "payload", "sim ticks", "msgs/op", "ops/ktick"
        );
        for c in &rows {
            println!(
                "  {:>5} | {:>9} | {:>8} | {:>9} | {:>9} | {:>8.2} | {:>9.2}",
                c.batch,
                c.committed,
                c.msgs_sent,
                c.payload_msgs,
                c.end_time,
                c.msgs_per_op(),
                c.ops_per_ktick()
            );
        }

        // Gate 1 — decision identity: every batched cell agrees with the
        // batch-1 cell of the same shape, and the disjoint workload's
        // premise holds (no conflict aborts anywhere).
        let base = rows[0];
        assert_eq!(base.batch, 1, "sweep rows start at batch 1");
        for c in &rows {
            assert_eq!(
                (c.committed, c.aborted_conflict, c.aborted_unavailable),
                (
                    base.committed,
                    base.aborted_conflict,
                    base.aborted_unavailable
                ),
                "{} batch {}: decision drift vs unbatched",
                shape.name,
                c.batch
            );
            assert_eq!(
                c.aborted_conflict, 0,
                "{} batch {}: conflicts in a disjoint workload",
                shape.name, c.batch
            );
        }
        // Gate 2 — msgs/op falls monotonically with batch size, strictly
        // end to end.
        for pair in rows.windows(2) {
            assert!(
                pair[1].msgs_per_op() <= pair[0].msgs_per_op(),
                "{}: msgs/op rose from batch {} to {}",
                shape.name,
                pair[0].batch,
                pair[1].batch
            );
        }
        let last = rows[rows.len() - 1];
        assert!(
            last.msgs_per_op() < base.msgs_per_op(),
            "{}: batching saved no messages",
            shape.name
        );

        let _ = writeln!(json, "    \"{}\": {{", shape.name);
        let _ = writeln!(
            json,
            "      \"sites\": {}, \"shards\": {}, \"objects\": {}, \"clients\": {}, \"total_ops\": {},",
            shape.sites,
            shape.shards,
            shape.objects(),
            shape.clients,
            shape.total_ops()
        );
        json.push_str("      \"cells\": [\n");
        for (j, c) in rows.iter().enumerate() {
            let comma = if j + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(json, "        {}{comma}", c.json());
        }
        json.push_str("      ]\n");
        let comma = if i + 1 < SHAPES.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  },\n");

    // Gate 3 — the pipelined engine at the largest shape is at least 2×
    // the unbatched engine's throughput (simulated clock).
    let large: Vec<&Cell> = results
        .iter()
        .zip(&cells)
        .filter(|(_, &(j, _))| j == SHAPES.len() - 1)
        .map(|(c, _)| c)
        .collect();
    let speedup = large[large.len() - 1].ops_per_ktick() / large[0].ops_per_ktick();
    section("Largest shape: pipelined vs sequential throughput");
    println!(
        "  batch {} -> {}: {:.2} -> {:.2} ops/ktick ({speedup:.2}x)",
        large[0].batch,
        large[large.len() - 1].batch,
        large[0].ops_per_ktick(),
        large[large.len() - 1].ops_per_ktick()
    );
    assert!(
        speedup >= 2.0,
        "pipelining must at least double throughput at the largest shape (got {speedup:.2}x)"
    );
    let _ = writeln!(json, "  \"large_shape_speedup\": {speedup:.3}\n}}");

    std::fs::write("BENCH_exp_scale.json", &json)?;
    println!("\ntelemetry written to BENCH_exp_scale.json");
    Ok(())
}
