//! **Experiment C1** — quantitative Figure 1-1: committed transactions and
//! conflict aborts of the three mechanisms as contention grows.

use quorumcc_bench::{experiment_bounds, section, threads_from_args, BenchRecorder};
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation};
use quorumcc_model::testtypes::{QInv, TestQueue};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::workload::{generate, WorkloadSpec};
use quorumcc_replication::RunTelemetry;
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = experiment_bounds();
    let mut rec = BenchRecorder::new("exp_concurrency", threads_from_args(), bounds);
    let s_rel = rec.phase("relations_ms", || {
        minimal_static_relation::<TestQueue>(bounds).relation
    });
    let d_rel = s_rel.union(&minimal_dynamic_relation::<TestQueue>(bounds).relation);
    let sim_t0 = std::time::Instant::now();

    println!("Replicated queue, 3 repositories, enqueue-heavy (80% Enq), 10 seeds each.");
    section("Committed transactions / conflict aborts vs number of clients");
    println!(
        "  {:>8} | {:>15} | {:>15} | {:>15}",
        "clients", "static", "hybrid", "dynamic-2pl"
    );
    let mut merged: Vec<(Mode, RunTelemetry)> = Vec::new();
    for clients in [2usize, 4, 6] {
        let mut cells = Vec::new();
        for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
            let rel = match mode {
                Mode::StaticTs | Mode::Hybrid => s_rel.clone(),
                Mode::Dynamic2pl => d_rel.clone(),
            };
            let mut committed = 0usize;
            let mut conflicts = 0usize;
            for seed in 0..10u64 {
                let w = generate(
                    WorkloadSpec {
                        clients,
                        txns_per_client: 5,
                        ops_per_txn: 2,
                        objects: 1,
                        seed,
                    },
                    |rng| {
                        if rng.gen_bool(0.8) {
                            QInv::Enq(rng.gen_range(1..=2))
                        } else {
                            QInv::Deq
                        }
                    },
                );
                let run = RunBuilder::<TestQueue>::new(3)
                    .protocol(ProtocolConfig::new(Protocol::new(mode, rel.clone())).txn_retries(4))
                    .seed(seed)
                    .workload(w)
                    .run()?;
                run.check_atomicity(bounds)
                    .map_err(|o| format!("{mode}: non-atomic history {o}"))?;
                let t = run.stats();
                committed += t.committed;
                conflicts += t.aborted_conflict;
                match merged.iter_mut().find(|(m, _)| *m == mode) {
                    Some((_, acc)) => acc.merge(run.telemetry()),
                    None => merged.push((mode, run.telemetry().clone())),
                }
            }
            cells.push(format!("{committed:>6} / {conflicts:<6}"));
        }
        println!(
            "  {:>8} | {} | {} | {}",
            clients, cells[0], cells[1], cells[2]
        );
    }
    rec.record_phase("cluster_sim_ms", sim_t0.elapsed().as_secs_f64() * 1e3);
    for (_, t) in &merged {
        rec.raw_json(&format!("telemetry_{}", t.mode), t.to_json());
    }
    println!(
        "\n  Shape check (Figure 1-1): hybrid always commits at least as much as\n\
         \x20 dynamic 2PL (Enq/Enq never conflicts under a hybrid relation, always\n\
         \x20 under non-commutation), and the gap grows with contention. Static is\n\
         \x20 incomparable: late-timestamp aborts replace lock conflicts."
    );
    rec.finish();
    Ok(())
}
