//! **Experiment C1** — quantitative Figure 1-1: committed transactions and
//! conflict aborts of the three mechanisms as contention grows.
//!
//! Every (clients, mode, seed) combination runs the *same* workload twice
//! — once with full-log `LogReply` payloads (the shipping baseline) and
//! once with delta shipping + committed-prefix compaction — and the two
//! runs must decide every transaction identically; the only thing allowed
//! to change is how many log entries cross the wire. The independent
//! combinations fan out over `quorumcc_core::parallel` with an
//! index-ordered merge, so tables and telemetry are byte-identical at
//! every `--threads` count.

use quorumcc_bench::{experiment_bounds, section, threads_from_args, BenchRecorder};
use quorumcc_core::parallel::{effective_threads, map_indexed};
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation, DependencyRelation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::testtypes::{QInv, TestQueue};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::workload::{generate, WorkloadSpec};
use quorumcc_replication::{RunTelemetry, TuningConfig};
use rand::Rng;

const REPOS: u32 = 3;
const CLIENT_COUNTS: [usize; 3] = [2, 4, 6];
const MODES: [Mode; 3] = [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl];
const SEEDS: u64 = 10;

/// Outcome of one (clients, mode, seed) combination: identical decision
/// counts from both shipping configurations, plus both telemetries.
struct Cell {
    committed: usize,
    conflicts: usize,
    full: RunTelemetry,
    delta: RunTelemetry,
}

fn run_cell(
    clients: usize,
    mode: Mode,
    seed: u64,
    rel: &DependencyRelation,
    bounds: ExploreBounds,
) -> Result<Cell, String> {
    let w = generate(
        WorkloadSpec {
            clients,
            txns_per_client: 5,
            ops_per_txn: 2,
            objects: 1,
            seed,
        },
        |rng| {
            if rng.gen_bool(0.8) {
                QInv::Enq(rng.gen_range(1..=2))
            } else {
                QInv::Deq
            }
        },
    );
    let run_one = |tuning: TuningConfig| {
        let run = RunBuilder::<TestQueue>::new(REPOS)
            .protocol(ProtocolConfig::new(Protocol::new(mode, rel.clone())).txn_retries(4))
            .tuning(tuning)
            .seed(seed)
            .workload(w.clone())
            .run()
            .map_err(|e| format!("{mode}/{clients}c/seed {seed}: {e}"))?;
        run.check_atomicity(bounds)
            .map_err(|o| format!("{mode}: non-atomic history {o}"))?;
        Ok::<_, String>(run)
    };
    let full = run_one(TuningConfig::default().full_log_shipping())?;
    let delta = run_one(TuningConfig::default().compact_logs())?;
    let (fs, ds) = (full.stats(), delta.stats());
    if (fs.committed, fs.aborted_conflict, fs.aborted_unavailable)
        != (ds.committed, ds.aborted_conflict, ds.aborted_unavailable)
    {
        return Err(format!(
            "{mode}/{clients}c/seed {seed}: shipping config changed outcomes \
             (full {}/{}/{} vs delta+compact {}/{}/{})",
            fs.committed,
            fs.aborted_conflict,
            fs.aborted_unavailable,
            ds.committed,
            ds.aborted_conflict,
            ds.aborted_unavailable,
        ));
    }
    Ok(Cell {
        committed: ds.committed,
        conflicts: ds.aborted_conflict,
        full: full.telemetry().clone(),
        delta: delta.telemetry().clone(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = experiment_bounds();
    let threads = threads_from_args();
    let mut rec = BenchRecorder::new("exp_concurrency", threads, bounds);
    let s_rel = rec.phase("relations_ms", || {
        minimal_static_relation::<TestQueue>(bounds).relation
    });
    let d_rel = s_rel.union(&minimal_dynamic_relation::<TestQueue>(bounds).relation);

    // One item per (clients, mode, seed); each is an independent seeded
    // cluster simulation, so they parallelize freely.
    let combos: Vec<(usize, Mode, u64)> = CLIENT_COUNTS
        .iter()
        .flat_map(|&c| {
            MODES
                .iter()
                .flat_map(move |&m| (0..SEEDS).map(move |s| (c, m, s)))
        })
        .collect();
    rec.set_threads_effective(effective_threads(threads).min(combos.len()));

    println!("Replicated queue, 3 repositories, enqueue-heavy (80% Enq), 10 seeds each.");
    println!("Each combination A/B-runs full log shipping vs delta + compaction.");

    let sim_t0 = std::time::Instant::now();
    let results = map_indexed(threads, &combos, |_, &(clients, mode, seed)| {
        run_cell(clients, mode, seed, rel_for(mode, &s_rel, &d_rel), bounds)
    });
    rec.record_phase("cluster_sim_ms", sim_t0.elapsed().as_secs_f64() * 1e3);

    // Index-ordered merge: results come back in combo order regardless of
    // thread count, so every aggregate below is deterministic.
    let mut table: Vec<(usize, Mode, usize, usize)> = Vec::new();
    let mut merged_full: Vec<(Mode, RunTelemetry)> = Vec::new();
    let mut merged_delta: Vec<(Mode, RunTelemetry)> = Vec::new();
    for (i, res) in results.into_iter().enumerate() {
        let (clients, mode, _seed) = combos[i];
        let cell = res?;
        match table
            .iter_mut()
            .find(|(c, m, ..)| *c == clients && *m == mode)
        {
            Some((.., com, con)) => {
                *com += cell.committed;
                *con += cell.conflicts;
            }
            None => table.push((clients, mode, cell.committed, cell.conflicts)),
        }
        merge_into(&mut merged_full, mode, &cell.full);
        merge_into(&mut merged_delta, mode, &cell.delta);
    }

    section("Committed transactions / conflict aborts vs number of clients");
    println!(
        "  {:>8} | {:>15} | {:>15} | {:>15}",
        "clients", "static", "hybrid", "dynamic-2pl"
    );
    for clients in CLIENT_COUNTS {
        let cells: Vec<String> = MODES
            .iter()
            .map(|&m| {
                let (.., com, con) = table
                    .iter()
                    .find(|(c, mode, ..)| *c == clients && *mode == m)
                    .expect("every combination ran");
                format!("{com:>6} / {con:<6}")
            })
            .collect();
        println!(
            "  {:>8} | {} | {} | {}",
            clients, cells[0], cells[1], cells[2]
        );
    }

    section("Log entries shipped per completed operation (full vs delta+compact)");
    let mut full_total = RunTelemetry::default();
    let mut delta_total = RunTelemetry::default();
    println!(
        "  {:>12} | {:>10} | {:>13} | {:>9}",
        "mechanism", "full ship", "delta+compact", "reduction"
    );
    for (mode, f) in &merged_full {
        let d = &merged_delta
            .iter()
            .find(|(m, _)| m == mode)
            .expect("same modes on both sides")
            .1;
        println!(
            "  {:>12} | {:>10.2} | {:>13.2} | {:>8.1}x",
            mode.name(),
            f.entries_shipped_per_op(),
            d.entries_shipped_per_op(),
            f.entries_shipped_per_op() / d.entries_shipped_per_op().max(f64::MIN_POSITIVE),
        );
        full_total.merge(f);
        delta_total.merge(d);
    }
    let (per_op_full, per_op_delta) = (
        full_total.entries_shipped_per_op(),
        delta_total.entries_shipped_per_op(),
    );
    let reduction = per_op_full / per_op_delta.max(f64::MIN_POSITIVE);
    println!(
        "  {:>12} | {:>10.2} | {:>13.2} | {:>8.1}x",
        "overall", per_op_full, per_op_delta, reduction
    );
    rec.metric("entries_per_op_full", per_op_full);
    rec.metric("entries_per_op_delta_compact", per_op_delta);
    rec.metric("entries_shipped_reduction", reduction);
    assert!(
        reduction >= 5.0,
        "delta shipping + compaction must cut entries shipped per op \
         at least 5x (got {reduction:.2}x)"
    );

    for (_, t) in &merged_delta {
        rec.raw_json(&format!("telemetry_{}", t.mode), t.to_json());
    }
    for (_, t) in &merged_full {
        rec.raw_json(&format!("telemetry_{}_fullship", t.mode), t.to_json());
    }
    println!(
        "\n  Shape check (Figure 1-1): hybrid always commits at least as much as\n\
         \x20 dynamic 2PL (Enq/Enq never conflicts under a hybrid relation, always\n\
         \x20 under non-commutation), and the gap grows with contention. Static is\n\
         \x20 incomparable: late-timestamp aborts replace lock conflicts. Delta\n\
         \x20 shipping + compaction change none of the decisions — only the bytes."
    );
    rec.finish();
    Ok(())
}

fn rel_for<'a>(
    mode: Mode,
    s_rel: &'a DependencyRelation,
    d_rel: &'a DependencyRelation,
) -> &'a DependencyRelation {
    match mode {
        Mode::StaticTs | Mode::Hybrid => s_rel,
        Mode::Dynamic2pl => d_rel,
    }
}

fn merge_into(acc: &mut Vec<(Mode, RunTelemetry)>, mode: Mode, t: &RunTelemetry) {
    match acc.iter_mut().find(|(m, _)| *m == mode) {
        Some((_, existing)) => existing.merge(t),
        None => acc.push((mode, t.clone())),
    }
}
