//! **Experiment R2** — self-healing under crashes: kill a repository
//! under load on every backend, and gate that the run *recovers* rather
//! than merely survives.
//!
//! Three phases, one per hosting substrate, strongest oracle first:
//!
//! 1. **DES** — a 5-site Queue cluster per mode with a volatile (WAL)
//!    repository crashed mid-run, the self-healing reconfiguration
//!    policy, and the frontier-repair retransmitter on. Gates: the
//!    safety oracle, a grow-epoch rejoin, at least one recovery, a
//!    stalled-then-repaired durable-GC frontier (`statuses_gcd > 0`
//!    despite the crash swallowing `ResolveAck`s), and retransmits
//!    actually firing. Full [`RunTelemetry`] per mode is embedded in the
//!    JSON — the runs are deterministic, so the artifact is
//!    byte-identical at every `--threads` count.
//! 2. **Channels** — the same protocol core on real OS threads with a
//!    scripted crash window. Wall-clock scheduling makes counters
//!    nondeterministic, so the JSON records only the asserted booleans
//!    (oracle clean, commits happened, the site recovered).
//! 3. **Event loop** — the real-socket harness ([`run_load`]) with a
//!    lossy fault profile, supervised reconnecting links, and a scripted
//!    kill/restart of one repository per cell. Gates: every client
//!    finishes, the durable frontier repairs (`statuses_gcd > 0`,
//!    retransmits and stall detections nonzero), the victim recovers,
//!    and post-recovery goodput reaches ≥ 80% of a matched no-crash
//!    control run over the same wall-clock window (or the workload
//!    drains entirely right after recovery — the stronger outcome).
//!    Rates are printed to stdout only; the JSON keeps the asserted
//!    booleans so it stays byte-stable.
//!
//! [`RunTelemetry`]: quorumcc_replication::RunTelemetry

use quorumcc_adts::queue::QueueInv;
use quorumcc_adts::Queue;
use quorumcc_bench::{experiment_bounds, section, threads_from_args};
use quorumcc_core::parallel::map_indexed;
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation, DependencyRelation};
use quorumcc_net::{run_load, CrashSpec, LoadBackend, LoadConfig, LoadReport, NetFaultProfile};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::{
    BackendKind, Durability, ObjId, ReconfigPolicy, Transaction, TuningConfig,
};
use quorumcc_sim::{FaultPlan, SimTime};
use std::fmt::Write as _;
use std::time::Duration;

const BASE_SEED: u64 = 20_260;
const N_SITES: u32 = 5;
/// Crashed repository (DES / channels phases).
const VICTIM: u32 = 1;

/// A dependency relation valid for `mode` (majority thresholds satisfy
/// any well-formed relation — same convention as the backend tests).
fn relation(mode: Mode) -> DependencyRelation {
    let bounds = experiment_bounds();
    match mode {
        Mode::StaticTs | Mode::Hybrid => minimal_static_relation::<Queue>(bounds).relation,
        Mode::Dynamic2pl => minimal_static_relation::<Queue>(bounds)
            .relation
            .union(&minimal_dynamic_relation::<Queue>(bounds).relation),
    }
}

/// Enq-only, one private object per client: commutative *and*
/// conflict-free (dynamic-2pl takes per-object locks, so shared objects
/// would measure lock churn, not crash handling). Long enough (txns x
/// think time) that clients are still running after the rejoin installs
/// — the frontier piggyback and the retransmit timer both need live
/// traffic to finish the repair.
fn workload(clients: u16, txns: usize) -> Vec<Vec<Transaction<QueueInv>>> {
    (0..clients)
        .map(|c| {
            (0..txns)
                .map(|k| Transaction {
                    ops: vec![(ObjId(c), QueueInv::Enq(k as u32))],
                })
                .collect()
        })
        .collect()
}

fn des_phase(threads: usize, json: &mut String) {
    section("1. DES: crash + self-healing rejoin + frontier repair, all modes");
    let modes = [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl];
    let items: Vec<Mode> = modes.to_vec();
    let results = map_indexed(threads, &items, |_, &mode| {
        let mut faults = FaultPlan::none();
        // Down for 800 ticks mid-run: long enough that the 150-tick
        // retransmitter observes a stalled frontier several times.
        faults.crash(VICTIM, 400, 1_200);
        let w = workload(4, 40);
        let total: usize = w.iter().map(Vec::len).sum();
        let report = RunBuilder::<Queue>::new(N_SITES)
            .protocol(ProtocolConfig::new(Protocol::new(mode, relation(mode))).op_timeout(60))
            .faults(faults)
            .seed(BASE_SEED)
            .workload(w)
            .tuning(
                TuningConfig::default()
                    .think_time(30)
                    .anti_entropy(200)
                    .durability(Durability::Volatile { wal: true })
                    .scoped_statuses()
                    .status_gc(2)
                    .resolve_retransmit(150),
            )
            .reconfig(ReconfigPolicy::SelfHealing {
                detect_delay: 100,
                heartbeat: 100,
                clean_heartbeats: 3,
                priority: vec!["Enq", "Deq"],
            })
            .max_time(20_000)
            .backend(BackendKind::Des)
            .run()
            .unwrap_or_else(|e| panic!("{mode:?}: DES run failed: {e}"));
        report
            .check_atomicity(experiment_bounds())
            .unwrap_or_else(|o| panic!("{mode:?}: non-atomic history on {o}"));
        (total, report.stats().committed, report.telemetry().clone())
    });
    println!(
        "  {:>11} | {:>9} | {:>6} | {:>7} | {:>9} | {:>7} | {:>7}",
        "mode", "committed", "recov", "rejoins", "gc'd", "retrans", "stalls"
    );
    json.push_str("  \"des\": {\n");
    for (i, (mode, (total, committed, t))) in modes.iter().zip(&results).enumerate() {
        println!(
            "  {:>11} | {:>5}/{:<3} | {:>6} | {:>7} | {:>9} | {:>7} | {:>7}",
            mode.name(),
            committed,
            total,
            t.recoveries,
            t.rejoins,
            t.statuses_gcd,
            t.resolve_ack_retransmits,
            t.frontier_stalls,
        );
        let name = mode.name();
        assert!(
            *committed * 10 >= *total * 8,
            "{name}: only {committed}/{total} committed with 4/5 sites up"
        );
        assert!(t.recoveries >= 1, "{name}: the victim never recovered");
        assert!(t.rejoins >= 1, "{name}: no grow-epoch rejoin installed");
        assert!(
            t.statuses_gcd > 0,
            "{name}: durable-GC frontier never advanced (repair failed)"
        );
        assert!(
            t.resolve_ack_retransmits >= 1,
            "{name}: frontier repair never retransmitted"
        );
        assert!(
            t.frontier_stalls >= 1,
            "{name}: crash never stalled the frontier (shape too easy)"
        );
        let comma = if i + 1 < modes.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {}{comma}", t.to_json().trim_end());
    }
    json.push_str("  },\n");
    println!("  safety oracle: OK in every mode; rejoin + frontier repair observed");
}

fn channels_phase(json: &mut String) {
    section("2. Channels: scripted crash window on real threads");
    // Ticks are microseconds of wall clock on this backend: the victim
    // is dark from 50 ms to 150 ms of a <=400 ms run.
    let mut faults = FaultPlan::none();
    faults.crash(VICTIM, 50_000, 150_000);
    let mode = Mode::Hybrid;
    // 40 txns x 5 ms think time keeps every client busy past the window
    // end, so the victim's thread is still alive to owe the recovery
    // (the run stops as soon as clients drain).
    let w = workload(3, 40);
    let report = RunBuilder::<Queue>::new(N_SITES)
        .protocol(ProtocolConfig::new(Protocol::new(mode, relation(mode))).op_timeout(30_000))
        .faults(faults)
        .seed(BASE_SEED + 1)
        .workload(w)
        .tuning(
            TuningConfig::default()
                .think_time(5_000)
                .anti_entropy(20_000)
                .durability(Durability::Volatile { wal: true })
                .scoped_statuses()
                .status_gc(2)
                .resolve_retransmit(25_000),
        )
        .max_time(400_000)
        .backend(BackendKind::Channels)
        .run()
        .unwrap_or_else(|e| panic!("channels run failed: {e}"));
    report
        .check_atomicity(experiment_bounds())
        .unwrap_or_else(|o| panic!("channels: non-atomic history on {o}"));
    let committed = report.stats().committed;
    let t = report.telemetry();
    println!(
        "  hybrid: {committed} committed, {} recoveries, {} retransmits, {} statuses gc'd",
        t.recoveries, t.resolve_ack_retransmits, t.statuses_gcd
    );
    assert!(committed > 0, "channels: nothing committed");
    assert!(t.recoveries >= 1, "channels: the crash window never fired");
    // Wall-clock scheduling decides how many retransmit rounds and GC
    // sweeps land inside the window, so only the asserted booleans are
    // serialized.
    json.push_str(
        "  \"channels\": {\"atomicity_ok\": true, \"committed_nonzero\": true, \
         \"recovered\": true},\n",
    );
}

struct LoadShape {
    clients: usize,
    clusters: usize,
    txns_per_client: usize,
    // Per-op cost in the harness grows with per-object log length
    // (compaction is off), so the object count is sized to keep logs
    // short rather than to create contention — the workload is
    // conflict-free either way.
    objects: u16,
    crash_at_ms: u64,
    crash_down_ms: u64,
}

fn load_shape(quick: bool) -> LoadShape {
    if quick {
        LoadShape {
            clients: 24,
            clusters: 1,
            txns_per_client: 240,
            objects: 256,
            crash_at_ms: 400,
            crash_down_ms: 400,
        }
    } else {
        LoadShape {
            clients: 96,
            clusters: 4,
            txns_per_client: 480,
            objects: 256,
            crash_at_ms: 800,
            crash_down_ms: 800,
        }
    }
}

/// Commits per tick over `[from, to)` of the sorted commit series.
fn rate(ticks: &[SimTime], from: SimTime, to: SimTime) -> f64 {
    if to <= from {
        return 0.0;
    }
    let n = ticks.partition_point(|&t| t < to) - ticks.partition_point(|&t| t < from);
    n as f64 / (to - from) as f64
}

fn eventloop_phase(quick: bool, json: &mut String) {
    section("3. Event loop: lossy sockets + kill/restart under load");
    let sh = load_shape(quick);
    let mode = Mode::Hybrid;
    let report: LoadReport = run_load(&LoadConfig {
        mode,
        relation: relation(mode),
        clusters: sh.clusters,
        n_repos: 3,
        clients: sh.clients,
        txns_per_client: sh.txns_per_client,
        ops_per_txn: 1,
        objects: sh.objects,
        workers: 2,
        seed: BASE_SEED + 2,
        op_timeout_ticks: 2_000_000,
        narrow: false,
        deq_fraction: 0.0,
        ramp: Duration::from_millis(0),
        deadline: Duration::from_secs(if quick { 120 } else { 300 }),
        scoped_statuses: true,
        status_gc: Some(4),
        backend: LoadBackend::EventLoop,
        fault_profile: NetFaultProfile::lossy(BASE_SEED + 2),
        // Paced well above per-op service latency: an aggressive period
        // (50 ms here) re-sends the whole dark-window backlog every
        // sweep and congests the event loop into a retransmission storm
        // that outlives the crash (DESIGN §3.17).
        resolve_retransmit: Some(250_000),
        crash: Some(CrashSpec {
            repo: 2,
            at_ms: sh.crash_at_ms,
            down_ms: sh.crash_down_ms,
        }),
        ..LoadConfig::default()
    });
    let total = sh.clients * sh.txns_per_client;
    println!(
        "  {} committed {}/{} ({} unfinished)  reconnects {}  replayed {}  \
         retransmits {}  stalls {}  gc'd {}  recoveries {}",
        report.mode,
        report.committed,
        total,
        report.unfinished,
        report.reconnects,
        report.retransmit_frames,
        report.resolve_ack_retransmits,
        report.frontier_stalls,
        report.statuses_gcd,
        report.recoveries,
    );
    assert_eq!(report.unfinished, 0, "clients abandoned at the deadline");
    assert!(
        report.committed * 10 >= total * 9,
        "only {}/{total} committed (Enq-only leaves no conflicts)",
        report.committed
    );
    assert!(
        report.recoveries >= sh.clusters as u64,
        "scripted crash never recovered in some cell"
    );
    assert!(
        report.frontier_stalls >= 1,
        "the crash never stalled the durable frontier"
    );
    assert!(
        report.resolve_ack_retransmits >= 1,
        "frontier repair never retransmitted"
    );
    assert!(
        report.statuses_gcd > 0,
        "durable GC never ran — the frontier repair failed"
    );

    // Goodput recovery: commits/tick after the victim is back and the
    // links have resettled, against a matched control run (same shape,
    // same lossy profile, no crash) over the same wall-clock window.
    // The harness's absolute rate decays with total actions applied, so
    // comparing against the run's own pre-crash burst would conflate
    // that drift with the crash; the control isolates the crash cost.
    // Draining the whole workload right after recovery is the stronger
    // outcome and also passes. Wall-clock rates go to stdout only.
    let control: LoadReport = run_load(&LoadConfig {
        mode,
        relation: relation(mode),
        clusters: sh.clusters,
        n_repos: 3,
        clients: sh.clients,
        txns_per_client: sh.txns_per_client,
        ops_per_txn: 1,
        objects: sh.objects,
        workers: 2,
        seed: BASE_SEED + 2,
        op_timeout_ticks: 2_000_000,
        narrow: false,
        deq_fraction: 0.0,
        ramp: Duration::from_millis(0),
        deadline: Duration::from_secs(if quick { 120 } else { 300 }),
        scoped_statuses: true,
        status_gc: Some(4),
        backend: LoadBackend::EventLoop,
        fault_profile: NetFaultProfile::lossy(BASE_SEED + 2),
        resolve_retransmit: Some(250_000),
        crash: None,
        ..LoadConfig::default()
    });
    assert_eq!(control.unfinished, 0, "control run abandoned clients");
    let crash_end = (sh.crash_at_ms + sh.crash_down_ms) * 1_000;
    let settle = crash_end + 150_000;
    // Average each run's rate over its whole post-settle tail (settle
    // until that run drains) rather than a fixed window: a short window
    // leaves the ratio hostage to one scheduling burst, while the full
    // tail averages over every remaining commit.
    let tail = |ticks: &[SimTime]| -> Option<f64> {
        let last = *ticks.last()?;
        (last > settle).then(|| rate(ticks, settle, last))
    };
    let post = tail(&report.commit_ticks);
    let post_ctl = tail(&control.commit_ticks);
    let (drained, ratio) = match (post, post_ctl) {
        // Either run finishing before the settle point is the strongest
        // outcome on its side: crashed-drained passes outright, and a
        // drained control leaves nothing to normalize against.
        (None, _) | (_, None) => (true, 1.0),
        (Some(p), Some(c)) => (false, p / c),
    };
    println!(
        "  goodput from {}ms to drain: crashed {:.1} txn/ms vs control {:.1} txn/ms ({})",
        settle / 1_000,
        post.unwrap_or(0.0) * 1_000.0,
        post_ctl.unwrap_or(0.0) * 1_000.0,
        if drained {
            "workload drained post-recovery".to_string()
        } else {
            format!("ratio {ratio:.2}")
        }
    );
    assert!(
        drained || ratio >= 0.8,
        "goodput after recovery fell to {ratio:.2} of the no-crash control"
    );
    let _ = writeln!(
        json,
        "  \"eventloop\": {{\"shape\": {{\"clients\": {}, \"cells\": {}, \"txns_per_client\": {}}}, \
         \"unfinished_zero\": true, \"recovered\": true, \"frontier_repaired\": true, \
         \"goodput_recovered\": true}}",
        sh.clients, sh.clusters, sh.txns_per_client
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_from_args();

    let mut json = String::from("{\n  \"experiment\": \"exp_recovery\",\n");
    des_phase(threads, &mut json);
    channels_phase(&mut json);
    eventloop_phase(quick, &mut json);
    json.push_str("}\n");
    std::fs::write("BENCH_exp_recovery.json", &json)?;
    println!("\ntelemetry written to BENCH_exp_recovery.json");
    Ok(())
}
