//! **Experiment L1** — the real-concurrency load harness: the same
//! sans-I/O protocol drivers that power the simulator, hosted over
//! loopback TCP, serving a hundred thousand concurrent lightweight
//! clients per mode.
//!
//! The client fleet is partitioned across independent cells (each a
//! 3-repository cluster with its own listeners and worker pool); all
//! cells run concurrently and latency percentiles are merged across the
//! whole fleet. Cells originally existed to outrun the quadratic
//! status-tombstone gossip (DESIGN §3.14); with scoped status shipping
//! and status GC (DESIGN §3.16) per-cell work is linear in the cell's
//! action count, and this harness runs with both on — the cell split
//! remains as the unit of *hosting*: each cell's entire repository side
//! is one [`LoadBackend::EventLoop`] thread multiplexing nonblocking
//! sockets, so the fleet runs on one OS thread per cell group instead of
//! one per repository plus one per accepted connection.
//!
//! Unlike every other `BENCH_*.json`, this file records wall-clock
//! throughput and latency SLOs of a real-socket deployment, so it is
//! **not** byte-stable across runs and is excluded from the
//! determinism gates. The workload is Enq-only (`Enq`s commute, so
//! every transaction can commit and the numbers measure the transport
//! and quorum machinery, not conflict-retry storms — those live in
//! `exp_chaos` where the DES can replay them deterministically).
//!
//! `--quick` runs a bounded smoke shape (hundreds of clients, seconds of
//! wall clock) for CI; the default shape is the full 100k-client fleet.

use quorumcc_adts::Queue;
use quorumcc_bench::{experiment_bounds, section};
use quorumcc_core::minimal_static_relation;
use quorumcc_net::{run_load, LoadBackend, LoadConfig, LoadReport};
use quorumcc_replication::protocol::Mode;
use std::fmt::Write as _;
use std::time::Duration;

const BASE_SEED: u64 = 7_171;

struct Shape {
    clients: usize,
    clusters: usize,
    objects: u16,
    ramp: Duration,
    op_timeout_ticks: u64,
    deadline: Duration,
}

fn shape(quick: bool) -> Shape {
    if quick {
        Shape {
            clients: 600,
            clusters: 4,
            objects: 32,
            ramp: Duration::from_secs(1),
            op_timeout_ticks: 10_000_000,
            deadline: Duration::from_secs(60),
        }
    } else {
        Shape {
            clients: 100_000,
            clusters: 160,
            objects: 32,
            ramp: Duration::from_secs(30),
            op_timeout_ticks: 30_000_000,
            deadline: Duration::from_secs(600),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let sh = shape(quick);
    let relation = minimal_static_relation::<Queue>(experiment_bounds()).relation;

    section(&format!(
        "exp_load: {} clients x 1 txn across {} cells ({})",
        sh.clients,
        sh.clusters,
        if quick { "quick" } else { "full" }
    ));

    let mut reports: Vec<LoadReport> = Vec::new();
    for (i, mode) in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl]
        .into_iter()
        .enumerate()
    {
        let report = run_load(&LoadConfig {
            mode,
            relation: relation.clone(),
            clusters: sh.clusters,
            n_repos: 3,
            clients: sh.clients,
            txns_per_client: 1,
            ops_per_txn: 1,
            objects: sh.objects,
            workers: 1,
            seed: BASE_SEED + i as u64,
            op_timeout_ticks: sh.op_timeout_ticks,
            narrow: true,
            deq_fraction: 0.0,
            ramp: sh.ramp,
            deadline: sh.deadline,
            scoped_statuses: true,
            status_gc: Some(64),
            backend: LoadBackend::EventLoop,
            ..LoadConfig::default()
        });
        println!(
            "  {:<12} committed {}/{} ({} unfinished)  {:>8.0} txn/s  p50 {:.1}ms  p99 {:.1}ms",
            report.mode,
            report.committed,
            sh.clients,
            report.unfinished,
            report.txns_per_sec,
            report.p50_us as f64 / 1000.0,
            report.p99_us as f64 / 1000.0,
        );
        // Gate: the harness must actually serve the fleet — every client
        // finishes inside the deadline and the overwhelming majority
        // commit (Enq-only leaves no conflicts; a stray unavailability
        // abort under overload is tolerated, mass aborts are not).
        assert_eq!(report.unfinished, 0, "{mode:?}: clients abandoned");
        assert!(
            report.committed * 10 >= sh.clients * 9,
            "{mode:?}: only {}/{} committed",
            report.committed,
            sh.clients
        );
        assert!(report.p50_us > 0 && report.p99_us >= report.p50_us);
        reports.push(report);
    }

    let mut json = String::from("{\n  \"experiment\": \"exp_load\",\n");
    let _ = writeln!(
        json,
        "  \"shape\": {{\"clients\": {}, \"clusters\": {}, \"repos_per_cell\": 3, \"objects_per_cell\": {}}},",
        sh.clients, sh.clusters, sh.objects
    );
    json.push_str("  \"modes\": [\n");
    for (j, r) in reports.iter().enumerate() {
        let comma = if j + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{comma}", r.to_json());
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_exp_load.json", &json)?;
    println!("\ntelemetry written to BENCH_exp_load.json");
    Ok(())
}
