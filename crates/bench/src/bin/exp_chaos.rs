//! **Experiment F1** — the chaos sweep: deterministic fault fuzzing with
//! the online safety oracle.
//!
//! For each concurrency-control mode, `RUNS_PER_MODE` fault plans are
//! sampled from a fixed base seed — network profile (clean / lossy /
//! dup / reorder / stormy), crash and partition schedules, durability
//! (stable vs. volatile-with-WAL vs. amnesiac-with-peers), compaction,
//! anti-entropy cadence, and fan-out — and a replicated Queue cluster
//! runs the same seeded workload under each plan. Every run is audited
//! by the safety oracle (serializability, no-committed-write-lost,
//! version/epoch monotonicity, checkpoint nesting).
//!
//! The acceptance claims this binary checks and records:
//!
//! * **zero violations** across the whole sound sweep, in every mode;
//! * the oracle is not vacuous: with the test-only weakened-read-quorum
//!   bug injected, the sweep flags a violation and shrinks it to a
//!   minimal reproducing plan;
//! * `BENCH_exp_chaos.json` is **byte-identical at every `--threads`
//!   count** — the file carries counts and plan specs only, never
//!   wall-clock or pool sizes (those go to stdout).

use quorumcc_adts::Queue;
use quorumcc_bench::{experiment_bounds, section, threads_from_args};
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation};
use quorumcc_replication::chaos::{self, ChaosConfig, ChaosPlan, ProfileStats};
use quorumcc_replication::protocol::{Mode, Protocol};
use std::fmt::Write as _;

const BASE_SEED: u64 = 2_026;
const RUNS_PER_MODE: u64 = 60;
/// Self-test scan bound: plans sampled from the unsound configuration
/// until one is flagged (the fixed seed flags well inside this bound).
const SELFTEST_SCAN: u64 = 100;
const SELFTEST_SEED: u64 = 77;

fn profile_row(p: &ProfileStats) -> String {
    format!(
        "  {:>8} | {:>4} | {:>9} | {:>6} | {:>7} | {:>6} | {:>6} | {:>6} | {:>5} | {:>9} | {:>10}",
        p.profile,
        p.runs,
        p.committed,
        p.aborted_conflict + p.aborted_unavailable,
        format!("{:.4}", p.abort_rate()),
        p.msgs_dropped,
        p.msgs_duplicated,
        p.msgs_reordered,
        p.recoveries,
        p.full_log_fallbacks,
        p.violations
    )
}

fn profile_json(p: &ProfileStats) -> String {
    format!(
        "{{\"profile\": \"{}\", \"runs\": {}, \"committed\": {}, \"aborted_conflict\": {}, \
         \"aborted_unavailable\": {}, \"abort_rate\": {:.4}, \"msgs_dropped\": {}, \
         \"msgs_duplicated\": {}, \"msgs_reordered\": {}, \"recoveries\": {}, \
         \"full_log_fallbacks\": {}, \"violations\": {}}}",
        p.profile,
        p.runs,
        p.committed,
        p.aborted_conflict,
        p.aborted_unavailable,
        p.abort_rate(),
        p.msgs_dropped,
        p.msgs_duplicated,
        p.msgs_reordered,
        p.recoveries,
        p.full_log_fallbacks,
        p.violations
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = experiment_bounds();
    let threads = threads_from_args();
    let cfg = ChaosConfig::default();

    let static_rel = minimal_static_relation::<Queue>(bounds).relation;
    let dynamic_rel = static_rel.union(&minimal_dynamic_relation::<Queue>(bounds).relation);
    let modes = [
        ("hybrid", Protocol::new(Mode::Hybrid, static_rel.clone())),
        ("static", Protocol::new(Mode::StaticTs, static_rel.clone())),
        ("dynamic", Protocol::new(Mode::Dynamic2pl, dynamic_rel)),
    ];

    // The deterministic record this binary writes. Everything appended
    // here is a pure function of (BASE_SEED, RUNS_PER_MODE, cfg) — no
    // thread counts, no timings — so the file is byte-identical at every
    // `--threads` count.
    let mut json = String::new();
    json.push_str("{\n  \"id\": \"exp_chaos\",\n");
    let _ = writeln!(json, "  \"base_seed\": {BASE_SEED},");
    let _ = writeln!(json, "  \"runs_per_mode\": {RUNS_PER_MODE},");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"sites\": {}, \"clients\": {}, \"txns_per_client\": {}, \"ops_per_txn\": {}}},",
        cfg.n_sites, cfg.clients, cfg.txns_per_client, cfg.ops_per_txn
    );

    section("1. Sound sweep: every mode, every profile, oracle on every run");
    let mut total_violations = 0u64;
    json.push_str("  \"modes\": {\n");
    for (i, (name, protocol)) in modes.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let outcomes = chaos::sweep::<Queue>(protocol, &cfg, BASE_SEED, RUNS_PER_MODE, threads);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("\n  {name}: {RUNS_PER_MODE} plans from seed {BASE_SEED} ({ms:.1} ms wall)");
        println!(
            "  {:>8} | {:>4} | {:>9} | {:>6} | {:>7} | {:>6} | {:>6} | {:>6} | {:>5} | {:>9} | {:>10}",
            "profile",
            "runs",
            "committed",
            "aborts",
            "abort%",
            "drops",
            "dups",
            "reord",
            "recov",
            "fallbacks",
            "violations"
        );
        let stats = chaos::aggregate(&outcomes);
        let _ = writeln!(json, "    \"{name}\": [");
        for (j, p) in stats.iter().enumerate() {
            println!("{}", profile_row(p));
            total_violations += p.violations;
            let comma = if j + 1 < stats.len() { "," } else { "" };
            let _ = writeln!(json, "      {}{comma}", profile_json(p));
        }
        let comma = if i + 1 < modes.len() { "," } else { "" };
        let _ = writeln!(json, "    ]{comma}");
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"total_violations\": {total_violations},");
    assert_eq!(
        total_violations, 0,
        "the sound sweep must pass the safety oracle in every mode"
    );
    println!("\n  safety oracle: OK on all {} runs", 3 * RUNS_PER_MODE);

    section("2. Oracle self-test: injected quorum weakening is caught and shrunk");
    // The test-only bug: every initial view is assembled from one site
    // too few (and one phantom reply pads the quorum check), silently
    // breaking ti + tf > n. Under narrow fan-out plans this is a real
    // unsoundness — the oracle must flag it, and the shrinker must
    // reduce the flagged plan to a minimal reproducer.
    let unsound = ChaosConfig {
        weaken_read_quorum: true,
        clients: 2,
        txns_per_client: 2,
        ops_per_txn: 1,
        ..ChaosConfig::default()
    };
    let protocol = &modes[0].1;
    let t0 = std::time::Instant::now();
    let mut flagged: Option<(u64, ChaosPlan, Vec<String>)> = None;
    for idx in 0..SELFTEST_SCAN {
        let plan = ChaosPlan::sample(SELFTEST_SEED, idx, &unsound);
        let outcome = chaos::run_outcome::<Queue>(protocol, &unsound, plan);
        if !outcome.violations.is_empty() {
            flagged = Some((idx, outcome.plan, outcome.violations));
            break;
        }
    }
    let (idx, plan, violations) =
        flagged.expect("the injected bug must be flagged within the scan bound");
    let minimal = chaos::shrink_failure::<Queue>(protocol, &unsound, plan.clone());
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("  flagged plan {idx}: {}", plan.encode());
    for v in &violations {
        println!("    - {v}");
    }
    println!(
        "  minimal reproducer: {} ({ms:.1} ms wall)",
        minimal.encode()
    );
    let (_, safety) = chaos::run_plan::<Queue>(protocol, &unsound, &minimal)?;
    assert!(
        !safety.is_ok(),
        "the shrunk plan must still violate safety on replay"
    );

    json.push_str("  \"selftest\": {\n");
    let _ = writeln!(json, "    \"seed\": {SELFTEST_SEED},");
    let _ = writeln!(json, "    \"flagged_at\": {idx},");
    let _ = writeln!(json, "    \"flagged_plan\": \"{}\",", plan.encode());
    let _ = writeln!(json, "    \"minimal_plan\": \"{}\",", minimal.encode());
    let _ = writeln!(
        json,
        "    \"violations\": [{}]",
        violations
            .iter()
            .map(|v| format!("\"{v}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_exp_chaos.json", &json)?;
    println!("\ntelemetry written to BENCH_exp_chaos.json");
    Ok(())
}
