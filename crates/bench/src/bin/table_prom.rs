//! **§4 PROM table** — Theorems 4–6 on the PROM, the quorum-size table
//! (hybrid `(1, n, 1)` vs static `(1, n, n)`), and the availability gap.

use quorumcc_adts::Prom;
use quorumcc_bench::{experiment_bounds, indent, section, threads_from_args, BenchRecorder};
use quorumcc_core::certificates::{prom_hybrid_ok_on_thm5_history, prom_hybrid_relation, thm5};
use quorumcc_core::enumerate::{CorpusConfig, Property};
use quorumcc_core::minimal_static_relation;
use quorumcc_core::verifier::ClauseSet;
use quorumcc_model::Classified;
use quorumcc_quorum::{availability, threshold};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = experiment_bounds();
    let mut rec = BenchRecorder::new("table_prom", threads_from_args(), bounds);
    let ops = Prom::op_classes();
    let evs = Prom::event_classes();

    section("The paper's hybrid dependency relation ≥H");
    println!("{}", indent(&prom_hybrid_relation()));

    section("Computed minimal static relation ≥S (Theorem 6)");
    let s = rec.phase("minimal_static_ms", || {
        minimal_static_relation::<Prom>(bounds)
    });
    println!("{}", indent(&s.relation));
    println!("    (exhaustive: {})", s.exhaustive);
    let extra = s.relation.difference(&prom_hybrid_relation());
    println!("  extra pairs vs ≥H (the availability cost of static atomicity):");
    println!("{}", indent(&extra));

    section("Theorem 5 certificate (≥H is not a static dependency relation)");
    print!("{}", thm5());
    print!("{}", prom_hybrid_ok_on_thm5_history());

    section("Bounded verification: ≥H is a hybrid dependency relation");
    let cfg = CorpusConfig {
        exhaustive_ops: 3,
        max_actions: 3,
        samples: 4_000,
        sample_ops: 4,
        seed: 5,
        bounds,
        threads: rec.threads(),
    };
    let clauses = rec.phase("extract_ms", || {
        ClauseSet::extract::<Prom>(Property::Hybrid, &cfg, &[])
    });
    let st = clauses.stats();
    println!(
        "  corpus: {} histories, {} failing tests, {} clauses",
        st.histories, st.failing_tests, st.clauses
    );
    rec.metric("corpus_histories", st.histories as f64);
    rec.metric("clauses", st.clauses as f64);
    match clauses.verify(&prom_hybrid_relation()) {
        Ok(()) => println!("  ≥H verified against every clause"),
        Err(cx) => println!("  COUNTEREXAMPLE:\n{cx}"),
    }
    // And ≥H minus any pair must fail.
    let mut all_needed = true;
    for pair in prom_hybrid_relation().iter() {
        let weakened = prom_hybrid_relation().without(pair);
        if clauses.verify(&weakened).is_ok() {
            all_needed = false;
            println!(
                "  note: pair {} ≥ {} not exercised by this corpus",
                pair.0, pair.1
            );
        }
    }
    if all_needed {
        println!("  every pair of ≥H is necessary (singleton removals all fail)");
    }

    section("Quorum sizes maximizing Read availability (the §4 table)");
    println!(
        "  {:>3} | {:^16} | {:^16}",
        "n", "hybrid (R,S,W)", "static (R,S,W)"
    );
    for n in [3u32, 5, 7] {
        let h = threshold::optimize(
            &prom_hybrid_relation(),
            n,
            &ops,
            &evs,
            &["Read", "Write", "Seal"],
        )?;
        let st = threshold::optimize(&s.relation, n, &ops, &evs, &["Read", "Write", "Seal"])?;
        println!(
            "  {:>3} | ({}, {}, {})        | ({}, {}, {})",
            n,
            h.op_size_worst("Read", &evs),
            h.op_size_worst("Seal", &evs),
            h.op_size_worst("Write", &evs),
            st.op_size_worst("Read", &evs),
            st.op_size_worst("Seal", &evs),
            st.op_size_worst("Write", &evs),
        );
    }

    section("Pareto frontiers of (Read, Seal, Write) quorum sizes, n = 5");
    let fh = quorumcc_quorum::pareto::frontier(
        &prom_hybrid_relation(),
        5,
        &["Read", "Seal", "Write"],
        &evs,
    );
    let fs = quorumcc_quorum::pareto::frontier(&s.relation, 5, &["Read", "Seal", "Write"], &evs);
    println!("  hybrid  ({} points): {:?}", fh.len(), fh);
    println!("  static  ({} points): {:?}", fs.len(), fs);
    println!(
        "  hybrid frontier dominates static: {}   (strictly: {})",
        quorumcc_quorum::pareto::frontier_dominates(&fh, &fs),
        !quorumcc_quorum::pareto::frontier_dominates(&fs, &fh),
    );

    section("Write availability at n = 5 (exact, independent failures)");
    let h = threshold::optimize(
        &prom_hybrid_relation(),
        5,
        &ops,
        &evs,
        &["Read", "Write", "Seal"],
    )?;
    let st = threshold::optimize(&s.relation, 5, &ops, &evs, &["Read", "Write", "Seal"])?;
    println!(
        "  {:>6} | {:>10} | {:>10} | {:>8}",
        "p", "hybrid", "static", "ratio"
    );
    for p in [0.5, 0.7, 0.9, 0.95, 0.99] {
        let ha = availability::op_availability_worst(&h, "Write", &evs, p)?;
        let sa = availability::op_availability_worst(&st, "Write", &evs, p)?;
        println!("  {p:>6} | {ha:>10.6} | {sa:>10.6} | {:>8.2}x", ha / sa);
    }
    rec.finish();
    Ok(())
}
