//! **Experiment X1** — `exp_explore`: the interleaving model checker.
//!
//! For each data type in {Queue, Prom, FlagSet} and each
//! concurrency-control mode, the explorer exhausts every message-delivery
//! interleaving of a small sound cluster shape (2 sites, 3 clients, 3
//! objects, one op each) to a fixed depth, twice: once with sleep-set
//! partial-order reduction and once without. The recorded quantities per
//! cell are states, transitions, complete schedules, deepest schedule,
//! and the **POR reduction factor** (states without POR / states with) —
//! the claim under test is that reduction exceeds 2x on every cell while
//! the safety oracle stays clean on every explored branch.
//!
//! A second section calibrates the detector the way `exp_chaos` does:
//! with each planted bug switched on (`weaken` needs three sites and
//! narrow fan-out to break quorum intersection; `skipack` loses a write
//! at two sites) the explorer must produce a minimal-depth replayable
//! witness, whose one-line spec is recorded.
//!
//! `--quick` drops the sweep depth by one and sweeps Queue only (the
//! other types' counts track it closely — the explored structure is
//! dominated by message flow, not by the type's semantics); `--threads
//! N` sizes the worker pool. `BENCH_exp_explore.json`
//! carries counts, reduction factors, and witness specs only — never
//! wall-clock or pool sizes — so it is **byte-identical at every
//! `--threads` count**.

use quorumcc_adts::{FlagSet, Prom, Queue};
use quorumcc_bench::{experiment_bounds, section, threads_from_args};
use quorumcc_core::parallel::map_indexed;
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation};
use quorumcc_model::{Classified, Enumerable};
use quorumcc_replication::explore::{self, ExploreSetup, ExploreSpec, Knob};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_sim::explore::{ExploreConfig, ExploreStats};
use std::fmt::Write as _;

const SEED: u64 = 2_026;
const ADTS: [&str; 3] = ["queue", "prom", "flagset"];
const MODES: [&str; 3] = ["hybrid", "static", "dynamic"];

fn protocol_for<S: Enumerable + Classified>(mode: &str) -> Protocol {
    let bounds = experiment_bounds();
    let static_rel = minimal_static_relation::<S>(bounds).relation;
    match mode {
        "hybrid" => Protocol::new(Mode::Hybrid, static_rel),
        "static" => Protocol::new(Mode::StaticTs, static_rel),
        "dynamic" => Protocol::new(
            Mode::Dynamic2pl,
            static_rel.union(&minimal_dynamic_relation::<S>(bounds).relation),
        ),
        other => unreachable!("unknown mode {other}"),
    }
}

/// The sound sweep shape: enough client/object parallelism that
/// commuting repository traffic dominates — the regime partial-order
/// reduction is built for.
fn sweep_setup() -> ExploreSetup {
    ExploreSetup {
        sites: 2,
        clients: 3,
        objects: 3,
        seed: SEED,
        ..ExploreSetup::default()
    }
}

fn sweep_cfg(depth: usize, por: bool) -> ExploreConfig {
    ExploreConfig {
        max_depth: depth,
        max_states: 2_000_000,
        max_transitions: 8_000_000,
        por,
        ..ExploreConfig::default()
    }
}

fn run_cell<S: Enumerable + Classified + Clone + std::fmt::Debug>(
    mode: &str,
    depth: usize,
    por: bool,
) -> ExploreStats {
    let out = explore::explore_setup::<S>(
        &protocol_for::<S>(mode),
        &sweep_setup(),
        sweep_cfg(depth, por),
    )
    .expect("the sweep shape is valid");
    assert!(
        out.witness.is_none(),
        "sound {mode} cell flagged a violation: {:?}",
        out.witness
    );
    out.stats
}

fn run_job(adt: usize, mode: &str, depth: usize, por: bool) -> ExploreStats {
    match adt {
        0 => run_cell::<Queue>(mode, depth, por),
        1 => run_cell::<Prom>(mode, depth, por),
        _ => run_cell::<FlagSet>(mode, depth, por),
    }
}

/// Runs one planted-bug calibration: explore until the witness, then
/// return its replayable spec and depth.
fn witness_spec(knob: Knob) -> (ExploreSpec, usize) {
    // Seed 0 samples a conflicting enqueue/dequeue pair on one object;
    // a non-conflicting workload would leave both bugs unobservable no
    // matter how exhaustively it is explored.
    let setup = match knob {
        // Quorum arithmetic: weaken is unobservable at two sites, so its
        // minimal shape is three (narrow fan-out keeps it tractable).
        Knob::WeakenReadQuorum => ExploreSetup {
            sites: 3,
            clients: 2,
            narrow: true,
            knob,
            seed: 0,
            ..ExploreSetup::default()
        },
        _ => ExploreSetup {
            sites: 2,
            clients: 2,
            knob,
            seed: 0,
            ..ExploreSetup::default()
        },
    };
    let depth = 40;
    let out = explore::explore_setup::<Queue>(
        &protocol_for::<Queue>("hybrid"),
        &setup,
        sweep_cfg(depth, true),
    )
    .expect("the calibration shape is valid");
    let w = out
        .witness
        .unwrap_or_else(|| panic!("planted bug {knob:?} must be found; stats: {:?}", out.stats));
    assert_eq!(
        out.stats.max_depth_reached,
        w.schedule.len(),
        "iterative deepening must make the first witness minimal"
    );
    let d = w.schedule.len();
    (
        ExploreSpec {
            mode: "hybrid".to_string(),
            setup,
            depth,
            por: true,
            sched: w.schedule,
        },
        d,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_from_args();
    let depth = if quick { 15 } else { 16 };
    let adts: &[&str] = if quick { &ADTS[..1] } else { &ADTS };

    let mut json = String::new();
    json.push_str("{\n  \"id\": \"exp_explore\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"depth\": {depth},");
    let s = sweep_setup();
    let _ = writeln!(
        json,
        "  \"shape\": {{\"sites\": {}, \"clients\": {}, \"objects\": {}, \"txns_per_client\": {}, \"ops_per_txn\": {}}},",
        s.sites, s.clients, s.objects, s.txns_per_client, s.ops_per_txn
    );

    section("1. Sound sweep: POR on vs. off, every type x mode");
    // One job per (adt, mode, por); the pool sees all 18 at once so the
    // expensive POR-off halves overlap with everything else.
    let jobs: Vec<(usize, usize, bool)> = (0..adts.len())
        .flat_map(|a| (0..MODES.len()).flat_map(move |m| [(a, m, true), (a, m, false)]))
        .collect();
    let t0 = std::time::Instant::now();
    let stats = map_indexed(threads, &jobs, |_, &(a, m, por)| {
        run_job(a, MODES[m], depth, por)
    });
    let ms = t0.elapsed().as_secs_f64() * 1e3;

    println!(
        "\n  {:>8} | {:>8} | {:>9} | {:>9} | {:>9} | {:>9} | {:>5} | {:>9}",
        "type", "mode", "states+", "states-", "trans+", "trans-", "depth", "reduction"
    );
    json.push_str("  \"cells\": [\n");
    let mut min_reduction = f64::INFINITY;
    for (i, &(a, m, _)) in jobs.iter().enumerate().filter(|(_, j)| j.2) {
        let on = stats[i];
        let off = stats[i + 1];
        let reduction = off.states as f64 / on.states as f64;
        min_reduction = min_reduction.min(reduction);
        println!(
            "  {:>8} | {:>8} | {:>9} | {:>9} | {:>9} | {:>9} | {:>5} | {:>8.2}x",
            adts[a],
            MODES[m],
            on.states,
            off.states,
            on.transitions,
            off.transitions,
            on.max_depth_reached,
            reduction
        );
        let comma = if i + 2 < jobs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"adt\": \"{}\", \"mode\": \"{}\", \"states_por\": {}, \"transitions_por\": {}, \
             \"schedules_por\": {}, \"states_full\": {}, \"transitions_full\": {}, \
             \"schedules_full\": {}, \"max_depth\": {}, \"reduction\": {:.3}}}{comma}",
            adts[a],
            MODES[m],
            on.states,
            on.transitions,
            on.schedules,
            off.states,
            off.transitions,
            off.schedules,
            on.max_depth_reached,
            reduction
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"min_reduction\": {min_reduction:.3},");
    println!(
        "\n  all {} cells clean; min reduction {min_reduction:.2}x ({ms:.1} ms wall)",
        jobs.len() / 2
    );
    assert!(
        min_reduction > 2.0,
        "POR must cut the sound sweep by more than 2x (got {min_reduction:.3})"
    );

    section("2. Calibration: both planted bugs produce minimal witnesses");
    json.push_str("  \"witnesses\": {\n");
    for (i, knob) in [Knob::SkipFinalAck, Knob::WeakenReadQuorum]
        .iter()
        .enumerate()
    {
        let t0 = std::time::Instant::now();
        let (spec, d) = witness_spec(*knob);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "  {:>8}: witness at depth {d} ({ms:.1} ms wall)",
            knob.name()
        );
        println!("           {spec}");
        let comma = if i == 0 { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{\"depth\": {d}, \"spec\": \"{spec}\"}}{comma}",
            knob.name()
        );
    }
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_exp_explore.json", &json)?;
    println!("\ntelemetry written to BENCH_exp_explore.json");
    Ok(())
}
