//! **Figure 1-1** — the concurrency lattice: hybrid atomicity permits more
//! concurrency than strong dynamic atomicity; static atomicity is
//! incomparable with both.
//!
//! Each edge is certified by (a) witness histories accepted by one
//! property and rejected by the other, and (b) exhaustive counts of
//! bounded history corpora, giving the schematic figure quantitative
//! content.

use quorumcc_bench::{section, threads_from_args, BenchRecorder};
use quorumcc_core::enumerate::{histories, CorpusConfig, Property};
use quorumcc_model::atomicity::{in_dynamic_spec, in_hybrid_spec, in_static_spec};
use quorumcc_model::testtypes::*;
use quorumcc_model::BHistory;

fn main() {
    let mut rec = BenchRecorder::new(
        "fig_1_1",
        threads_from_args(),
        quorumcc_bench::experiment_bounds(),
    );
    let cfg = CorpusConfig {
        exhaustive_ops: 3,
        max_actions: 3,
        samples: 0,
        sample_ops: 3,
        seed: 1,
        bounds: quorumcc_bench::experiment_bounds(),
        threads: rec.threads(),
    };

    println!("Figure 1-1: concurrency comparison of local atomicity properties");
    println!("type: Queue over items {{1,2}}; corpus: all behavioral histories");
    println!(
        "with ≤ {} operations / ≤ {} actions",
        cfg.exhaustive_ops, cfg.max_actions
    );

    section("Corpus containment counts");
    let mut counts = std::collections::BTreeMap::new();
    for prop in [Property::Static, Property::Hybrid, Property::Dynamic] {
        let corpus = rec.phase(&format!("corpus_{}_ms", prop.name()), || {
            histories::<TestQueue>(prop, &cfg)
        });
        rec.metric(&format!("corpus_{}", prop.name()), corpus.len() as f64);
        let in_static = corpus
            .iter()
            .filter(|h| in_static_spec::<TestQueue>(h))
            .count();
        let in_hybrid = corpus
            .iter()
            .filter(|h| in_hybrid_spec::<TestQueue>(h))
            .count();
        let in_dynamic = corpus
            .iter()
            .filter(|h| in_dynamic_spec::<TestQueue>(h, cfg.bounds))
            .count();
        println!(
            "members of {:>8}(Queue): {:>6}   of which static {:>6}  hybrid {:>6}  dynamic {:>6}",
            prop.name(),
            corpus.len(),
            in_static,
            in_hybrid,
            in_dynamic
        );
        counts.insert(
            prop.name(),
            (corpus.len(), in_static, in_hybrid, in_dynamic),
        );
    }
    let (dyn_total, _, dyn_in_hybrid, _) = counts["dynamic"];
    assert_eq!(dyn_total, dyn_in_hybrid, "Dynamic(T) ⊆ Hybrid(T) must hold");
    println!("\nedge certified: Dynamic(Queue) ⊆ Hybrid(Queue)  ({dyn_total}/{dyn_in_hybrid})");

    section("Witness: hybrid accepts, dynamic rejects (concurrent enqueues)");
    let mut h: BHistory<QInv, QRes> = BHistory::new();
    h.begin(0);
    h.begin(1);
    h.op_event(0, enq(1));
    h.op_event(1, enq(2));
    h.commit(0);
    h.commit(1);
    print!("{h}");
    println!(
        "hybrid: {}   dynamic: {}",
        in_hybrid_spec::<TestQueue>(&h),
        in_dynamic_spec::<TestQueue>(&h, cfg.bounds)
    );
    assert!(in_hybrid_spec::<TestQueue>(&h));
    assert!(!in_dynamic_spec::<TestQueue>(&h, cfg.bounds));

    section("Witness: hybrid accepts, static rejects (commit order ≠ begin order)");
    let mut h: BHistory<QInv, QRes> = BHistory::new();
    h.begin(0);
    h.begin(1);
    h.op_event(1, deq_empty());
    h.commit(1);
    h.op_event(0, enq(1));
    h.commit(0);
    print!("{h}");
    println!(
        "hybrid: {}   static: {}",
        in_hybrid_spec::<TestQueue>(&h),
        in_static_spec::<TestQueue>(&h)
    );
    assert!(in_hybrid_spec::<TestQueue>(&h));
    assert!(!in_static_spec::<TestQueue>(&h));

    section("Witness: static accepts, hybrid rejects");
    let mut h: BHistory<QInv, QRes> = BHistory::new();
    h.begin(0);
    h.op_event(0, enq(1));
    h.begin(1);
    h.op_event(1, enq(2));
    h.commit(1);
    h.commit(0);
    h.begin(2);
    h.op_event(2, deq(1));
    h.commit(2);
    print!("{h}");
    println!(
        "static: {}   hybrid: {}",
        in_static_spec::<TestQueue>(&h),
        in_hybrid_spec::<TestQueue>(&h)
    );
    assert!(in_static_spec::<TestQueue>(&h));
    assert!(!in_hybrid_spec::<TestQueue>(&h));

    println!("\nFigure 1-1 edges all certified:");
    println!("  hybrid > dynamic (containment + witness)");
    println!("  static ⋈ hybrid  (witnesses both ways)");
    println!("  static ⋈ dynamic (follows from the two above + counts)");
    rec.finish();
}
