//! **§4 FlagSet** — the object with *two distinct minimal hybrid
//! dependency relations*: `Shift(3)` can learn about `Shift(1)` either
//! directly or transitively through `Shift(2)`.

use quorumcc_adts::FlagSet;
use quorumcc_bench::{experiment_bounds, indent, section, threads_from_args, BenchRecorder};
use quorumcc_core::certificates::{
    flagset_base_relation, flagset_dual_certificate, flagset_dual_witness,
    flagset_hybrid_relation_direct, flagset_hybrid_relation_transitive,
};
use quorumcc_core::enumerate::{CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;

fn main() {
    let bounds = experiment_bounds();
    let mut rec = BenchRecorder::new("table_flagset", threads_from_args(), bounds);

    section("Certificate: the dual-minimality witness history");
    print!("{}", flagset_dual_certificate());

    section("Clause extraction (hybrid, corpus seeded with the witness)");
    let cfg = CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 6_000,
        sample_ops: 5,
        seed: 17,
        bounds,
        threads: rec.threads(),
    };
    let witness = flagset_dual_witness();
    // Reference pass: the retained unmemoized single-thread extractor, as
    // both the correctness oracle and the perf baseline.
    let reference = rec.phase("extract_reference_ms", || {
        ClauseSet::extract_reference::<FlagSet>(
            Property::Hybrid,
            &cfg,
            std::slice::from_ref(&witness),
        )
    });
    let clauses = rec.phase("extract_ms", || {
        ClauseSet::extract::<FlagSet>(Property::Hybrid, &cfg, &[witness])
    });
    assert_eq!(
        reference, clauses,
        "memoized parallel extraction must match the reference path bitwise"
    );
    let speedup = rec.phase_millis("extract_reference_ms").unwrap_or(0.0)
        / rec.phase_millis("extract_ms").unwrap_or(f64::INFINITY);
    rec.metric("extract_speedup", speedup);
    println!(
        "  extraction: {:.1} ms reference → {:.1} ms memoized×{} ({speedup:.2}x), outputs identical",
        rec.phase_millis("extract_reference_ms").unwrap_or(0.0),
        rec.phase_millis("extract_ms").unwrap_or(0.0),
        rec.threads(),
    );
    let st = clauses.stats();
    println!(
        "  corpus: {} histories, {} failing tests, {} clauses",
        st.histories, st.failing_tests, st.clauses
    );
    rec.metric("corpus_histories", st.histories as f64);
    rec.metric("failing_tests", st.failing_tests as f64);
    rec.metric("clauses", st.clauses as f64);

    section("The paper's two candidate relations");
    let direct = flagset_hybrid_relation_direct();
    let transitive = flagset_hybrid_relation_transitive();
    println!(
        "  base + Shift(3) ≥ Shift(1):  verifies = {}",
        clauses.verify(&direct).is_ok()
    );
    println!(
        "  base + Shift(2) ≥ Shift(1):  verifies = {}",
        clauses.verify(&transitive).is_ok()
    );
    println!(
        "  base alone:                  verifies = {}  (must fail)",
        clauses.verify(&flagset_base_relation()).is_ok()
    );

    section("The disjunctive clause behind the non-uniqueness");
    for clause in clauses.clauses() {
        let shift1_ok = clause
            .iter()
            .all(|(_, ev)| ev.op == "Shift(1)" && ev.res == "Ok");
        if shift1_ok && clause.len() >= 2 {
            let rendered: Vec<String> = clause
                .iter()
                .map(|(inv, ev)| format!("{inv} \u{2265} {ev}"))
                .collect();
            println!("  {{ {} }}", rendered.join("  OR  "));
        }
    }

    section("Minimal hybrid relations on this corpus");
    let threads = rec.threads();
    let minimal = rec.phase("minimal_relations_ms", || {
        clauses.minimal_relations_par(16, threads)
    });
    rec.metric("minimal_relations", minimal.len() as f64);
    println!("  found {} minimal relation(s)", minimal.len());
    for m in &minimal {
        // Which paper variant is this closest to?
        let (variant, paper_rel) = if m.contains(
            "Shift(3)",
            quorumcc_model::EventClass::new("Shift(1)", "Ok"),
        ) {
            ("direct  (Shift(3) ≥ Shift(1))", &direct)
        } else {
            ("transitive (Shift(2) ≥ Shift(1))", &transitive)
        };
        println!("\n  minimal relation ({} pairs) — {variant}:", m.len());
        println!("{}", indent(m));
        let missing = paper_rel.difference(m);
        let extra = m.difference(paper_rel);
        if !missing.is_empty() {
            println!("    paper pairs found redundant at these bounds:");
            println!("{}", indent(&missing).replace("    ", "      "));
        }
        if !extra.is_empty() {
            println!("    pairs beyond the paper's list:");
            println!("{}", indent(&extra).replace("    ", "      "));
        }
    }
    println!(
        "\n  non-uniqueness certified: {} minimal relations, differing exactly in\n\
         \x20 how Shift(3) learns about Shift(1) — directly, or transitively\n\
         \x20 through Shift(2) — the paper's §4 conclusion.",
        minimal.len(),
    );
    assert!(
        minimal.len() >= 2,
        "FlagSet must exhibit multiple minimal hybrid relations"
    );
    // The defining disagreement between the two minimal relations.
    if minimal.len() == 2 {
        let diff_ab = minimal[0].difference(&minimal[1]);
        let diff_ba = minimal[1].difference(&minimal[0]);
        assert_eq!(diff_ab.len(), 1);
        assert_eq!(diff_ba.len(), 1);
    }
    rec.finish();
}
