//! **Experiment G1** — the gossip wall, measured: shipped statuses per
//! action as the action count doubles, full shipping vs scoped shipping
//! + status GC (DESIGN §3.16).
//!
//! The wall has two faces, and `statuses_shipped` counts both sides of
//! the wire. Repo→client: every `Resolve` plants a tombstone in every
//! object log, full-transfer `ReadLog` replies haul the whole table, and
//! the table only grows (DESIGN §3.14, the reason `exp_load` splits its
//! fleet into cells). Client→repo: a client folds its entire `known`
//! resolution map into **every pushed `WriteLog` view** — the map is the
//! crash-safety net that re-plants outcomes a lost `Resolve` never
//! delivered, and without a durability frontier nothing may ever leave
//! it, so action *k* re-ships *k−1* old statuses and the per-action bill
//! grows linearly in client lifetime. Delta shipping (PR 4) already
//! amortizes the steady-state repo→client bill, which is exactly why the
//! client→repo face dominates here.
//!
//! Status GC is what breaks both: the full-final-quorum ack frontier
//! lets the client prune `known` down to its unacked window (bounded by
//! ack round-trips, not lifetime) and lets repositories drop acked
//! tombstones from every log — so views, tables, and full transfers all
//! cost O(1) in the run length. Scoping alone does *not* flatten the
//! bill (the `scoped` arm stays linear): it confines where statuses are
//! planted, but only the frontier licenses forgetting them.
//!
//! The sweep doubles transactions-per-client four times and runs each
//! scale under three gossip arms: `full` (ship everything, keep
//! everything), `scoped` (ship only relevant statuses, keep
//! everything), `scoped_gc` (ship scoped, GC acked resolutions). All
//! arms run in the DES, so every number here is deterministic and
//! `BENCH_exp_gossip.json` is byte-identical at every `--threads`
//! count.
//!
//! The workload is Enq-only over a small shared object space. `Enq`s
//! commute, so conflicts are impossible for any message timing and
//! commit/abort decisions are a pure function of the workload — the
//! cross-arm identity gate is *structural*, the same trick `exp_scale`
//! (disjoint ranges) and `exp_load` (Enq-only) use. A conflicting
//! workload could not gate this way: GC's `ResolveAck` frames shift
//! every subsequent network-delay draw, and under contention timing
//! picks winners — that regime is instead audited by the safety oracle
//! in the chaos sweep, where the claim that matters is serializability,
//! not decision equality. Commutativity costs the wall nothing: every
//! `Resolve` still plants its tombstone in every object's log, and every
//! read of a reused object still hauls whatever statuses that log
//! carries.
//!
//! Gates this binary enforces:
//!
//! * **decision identity** — at every scale and mode, all three arms
//!   decide exactly the same (committed, conflict, unavailable) triple:
//!   scoping and GC change what travels, never what commits;
//! * **the wall** — under full shipping, statuses shipped per action at
//!   the largest scale are ≥ 3× the smallest scale (the linear growth);
//! * **the fix** — under scoped+GC the per-action bill converges: over
//!   the final two doublings (a 4× action sweep) it grows ≤ 1.15× while
//!   full shipping grows ≥ 2.5× over the same span. The tail is the
//!   honest window: the GC'd table takes a few doublings of warm-up to
//!   fill to its (bounded) asymptote, and measuring from a half-empty
//!   table would flatter *any* arm. Flatness is gated for the
//!   *compacting* modes (hybrid, dynamic 2PL) only: static-timestamp
//!   mode never folds committed prefixes (PR 4 leaves its full history
//!   in place), and `gc_below` deliberately keeps a committed status as
//!   long as any live entry references it — so under static mode GC
//!   bounds the aborted statuses and the resolution table but committed
//!   tombstones stay pinned to their entries. The static gate is the
//!   weaker true claim: scoped+GC still at least halves the bill and the
//!   peak table vs full shipping;
//! * **bounded tables** — with GC on, the peak resident status count at
//!   the largest scale stays below half of full shipping's, and the GC
//!   actually collected something (`statuses_gcd > 0`).
//!
//! `--quick` runs the hybrid mode only; the default sweeps all three
//! concurrency-control modes.

use quorumcc_adts::queue::QueueInv;
use quorumcc_adts::Queue;
use quorumcc_bench::{experiment_bounds, section, threads_from_args};
use quorumcc_core::{minimal_static_relation, parallel};

use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder, TuningConfig};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::{ObjId, Transaction};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::fmt::Write as _;

const BASE_SEED: u64 = 9_191;
/// Transactions per client at each scale: four doublings.
const SCALES: &[usize] = &[8, 16, 32, 64, 128];
const CLIENTS: usize = 3;
const OPS_PER_TXN: usize = 2;
/// Few shared objects: logs are read over and over, so whatever statuses
/// they carry actually travels.
const OBJECTS: u16 = 4;
const SITES: u32 = 3;
/// GC sweep hysteresis for the `scoped_gc` arm (small, so even the
/// smallest scale collects).
const GC_BATCH: u64 = 4;

/// One gossip configuration under test.
#[derive(Clone, Copy, PartialEq)]
enum Arm {
    Full,
    Scoped,
    ScopedGc,
}

const ARMS: &[Arm] = &[Arm::Full, Arm::Scoped, Arm::ScopedGc];

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::Full => "full",
            Arm::Scoped => "scoped",
            Arm::ScopedGc => "scoped_gc",
        }
    }
    /// Every arm compacts committed prefixes (PR 4's checkpoint
    /// machinery): compaction is what removes *entries*, which is the
    /// precondition for GC removing their committed statuses — scoped+GC
    /// folds into it rather than replacing it.
    fn tune(self, t: TuningConfig) -> TuningConfig {
        let t = t.compact_logs();
        match self {
            Arm::Full => t,
            Arm::Scoped => t.scoped_statuses(),
            Arm::ScopedGc => t.scoped_statuses().status_gc(GC_BATCH),
        }
    }
}

/// Seeded Enq-only workload over the shared object space (conflicts
/// impossible by construction — see the module docs). The same
/// (mode, scale) workload is replayed under every arm, so the decision
/// gate compares like with like.
fn workload(txns: usize, seed: u64) -> Vec<Vec<Transaction<QueueInv>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..CLIENTS)
        .map(|_| {
            (0..txns)
                .map(|_| Transaction {
                    ops: (0..OPS_PER_TXN)
                        .map(|_| {
                            let obj = ObjId(rng.gen_range(0..OBJECTS));
                            (obj, QueueInv::Enq(rng.gen_range(0..100)))
                        })
                        .collect(),
                })
                .collect()
        })
        .collect()
}

/// The deterministic record for one (mode, scale, arm) cell.
#[derive(Clone)]
struct Cell {
    arm: &'static str,
    txns_per_client: usize,
    committed: usize,
    aborted_conflict: usize,
    aborted_unavailable: usize,
    statuses_shipped: u64,
    statuses_gcd: u64,
    status_table_peak: u64,
    msgs_sent: u64,
}

impl Cell {
    fn decided(&self) -> usize {
        self.committed + self.aborted_conflict + self.aborted_unavailable
    }
    /// Statuses shipped per decided transaction — the gossip bill a
    /// single action pays; linear growth here is the wall.
    fn shipped_per_action(&self) -> f64 {
        self.statuses_shipped as f64 / self.decided().max(1) as f64
    }
    fn json(&self) -> String {
        format!(
            "{{\"arm\": \"{}\", \"txns_per_client\": {}, \"committed\": {}, \
             \"aborted_conflict\": {}, \"aborted_unavailable\": {}, \
             \"statuses_shipped\": {}, \"statuses_gcd\": {}, \
             \"status_table_peak\": {}, \"msgs_sent\": {}, \
             \"shipped_per_action\": {:.2}}}",
            self.arm,
            self.txns_per_client,
            self.committed,
            self.aborted_conflict,
            self.aborted_unavailable,
            self.statuses_shipped,
            self.statuses_gcd,
            self.status_table_peak,
            self.msgs_sent,
            self.shipped_per_action()
        )
    }
}

fn run_cell(mode: Mode, txns: usize, arm: Arm, protocol: &Protocol) -> Cell {
    let seed = BASE_SEED ^ (txns as u64) << 8 ^ mode as u64;
    let report = RunBuilder::<Queue>::new(SITES)
        .protocol(ProtocolConfig::new(protocol.clone()).txn_retries(2))
        .tuning(arm.tune(TuningConfig::default()))
        .seed(seed)
        .workload(workload(txns, seed))
        .run()
        .expect("gossip sweep cell");
    let s = report.stats();
    let t = report.telemetry();
    Cell {
        arm: arm.name(),
        txns_per_client: txns,
        committed: s.committed,
        aborted_conflict: s.aborted_conflict,
        aborted_unavailable: s.aborted_unavailable,
        statuses_shipped: t.statuses_shipped,
        statuses_gcd: t.statuses_gcd,
        status_table_peak: t.status_table_peak,
        msgs_sent: t.msgs_sent,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let bounds = experiment_bounds();
    let threads = threads_from_args();
    let modes: &[Mode] = if quick {
        &[Mode::Hybrid]
    } else {
        &[Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl]
    };
    let relation = minimal_static_relation::<Queue>(bounds).relation;

    let cells: Vec<(Mode, usize, Arm)> = modes
        .iter()
        .flat_map(|&m| {
            SCALES
                .iter()
                .flat_map(move |&t| ARMS.iter().map(move |&a| (m, t, a)))
        })
        .collect();
    let t0 = std::time::Instant::now();
    let results = parallel::map_indexed(threads, &cells, |_, &(m, t, a)| {
        let protocol = Protocol::new(m, relation.clone());
        run_cell(m, t, a, &protocol)
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    section("Gossip wall: shipped statuses per action vs action count");
    println!("  ({} cells, {wall_ms:.1} ms wall)", cells.len());

    let mut json = String::new();
    json.push_str("{\n  \"id\": \"exp_gossip\",\n");
    let _ = writeln!(json, "  \"base_seed\": {BASE_SEED},");
    let _ = writeln!(
        json,
        "  \"shape\": {{\"sites\": {SITES}, \"clients\": {CLIENTS}, \
         \"ops_per_txn\": {OPS_PER_TXN}, \"gc_batch\": {GC_BATCH}}},"
    );
    json.push_str("  \"modes\": {\n");

    for (mi, &mode) in modes.iter().enumerate() {
        let rows: Vec<(&(Mode, usize, Arm), &Cell)> = cells
            .iter()
            .zip(&results)
            .filter(|((m, ..), _)| *m == mode)
            .collect();
        println!("\n  {}:", mode.name());
        println!(
            "  {:>5} | {:>9} | {:>14} | {:>12} | {:>10} | {:>8}",
            "txns", "arm", "shipped", "shipped/act", "peak", "gcd"
        );
        for &scale in SCALES {
            // Decision identity across arms at this scale.
            let at: Vec<&Cell> = rows
                .iter()
                .filter(|((_, t, _), _)| *t == scale)
                .map(|(_, c)| *c)
                .collect();
            let base = at[0];
            for c in &at {
                println!(
                    "  {:>5} | {:>9} | {:>14} | {:>12.2} | {:>10} | {:>8}",
                    scale,
                    c.arm,
                    c.statuses_shipped,
                    c.shipped_per_action(),
                    c.status_table_peak,
                    c.statuses_gcd
                );
                assert_eq!(
                    (c.committed, c.aborted_conflict, c.aborted_unavailable),
                    (
                        base.committed,
                        base.aborted_conflict,
                        base.aborted_unavailable
                    ),
                    "{} txns={scale} arm={}: decision drift vs full shipping",
                    mode.name(),
                    c.arm
                );
                assert_eq!(
                    c.aborted_conflict,
                    0,
                    "{} txns={scale} arm={}: conflicts in a commuting workload",
                    mode.name(),
                    c.arm
                );
            }
        }

        let per = |arm: Arm, scale: usize| -> &Cell {
            rows.iter()
                .find(|((_, t, a), _)| *t == scale && *a == arm)
                .map(|(_, c)| *c)
                .unwrap()
        };
        let first = SCALES[0];
        let last = SCALES[SCALES.len() - 1];
        // Tail of the sweep: the final two doublings, past GC warm-up.
        let tail = SCALES[SCALES.len() - 3];
        // The wall: full shipping's per-action bill grows linearly.
        let full_growth =
            per(Arm::Full, last).shipped_per_action() / per(Arm::Full, first).shipped_per_action();
        let full_tail =
            per(Arm::Full, last).shipped_per_action() / per(Arm::Full, tail).shipped_per_action();
        // The fix: scoped+GC converges — flat over the tail.
        let gc_tail = per(Arm::ScopedGc, last).shipped_per_action()
            / per(Arm::ScopedGc, tail).shipped_per_action();
        println!(
            "  per-action growth: full x{:.1} over the {}x sweep; tail ({}->{} txns) \
             full x{:.2} vs scoped+gc x{:.3}",
            full_growth,
            last / first,
            tail,
            last,
            full_tail,
            gc_tail
        );
        assert!(
            full_growth >= 3.0,
            "{}: full shipping grew only x{full_growth:.2} — no wall to break?",
            mode.name()
        );
        assert!(
            full_tail >= 2.5,
            "{}: full shipping tail grew only x{full_tail:.2} — wall already bent?",
            mode.name()
        );
        if mode == Mode::StaticTs {
            // No entry compaction under static mode, so committed
            // statuses stay pinned (module docs) — gate the weaker
            // claim: GC still at least halves the total bill.
            assert!(
                per(Arm::ScopedGc, last).statuses_shipped * 2
                    <= per(Arm::Full, last).statuses_shipped,
                "static: scoped+gc bill {} not well below full {}",
                per(Arm::ScopedGc, last).statuses_shipped,
                per(Arm::Full, last).statuses_shipped
            );
        } else {
            assert!(
                gc_tail <= 1.15,
                "{}: scoped+gc per-action shipping grew x{gc_tail:.3} over the tail — not flat",
                mode.name()
            );
        }
        // Bounded tables: GC keeps the peak resident status count below
        // half of full shipping's at the largest scale, and collects.
        let gc_last = per(Arm::ScopedGc, last);
        let full_last = per(Arm::Full, last);
        assert!(
            gc_last.status_table_peak * 2 <= full_last.status_table_peak,
            "{}: GC peak {} not well below full peak {}",
            mode.name(),
            gc_last.status_table_peak,
            full_last.status_table_peak
        );
        assert!(
            gc_last.statuses_gcd > 0,
            "{}: GC enabled but collected nothing",
            mode.name()
        );

        let _ = writeln!(json, "    \"{}\": [", mode.name());
        for (j, (_, c)) in rows.iter().enumerate() {
            let comma = if j + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(json, "      {}{comma}", c.json());
        }
        let comma = if mi + 1 < modes.len() { "," } else { "" };
        let _ = writeln!(json, "    ]{comma}");
    }
    json.push_str("  }\n}\n");

    if !quick {
        std::fs::write("BENCH_exp_gossip.json", &json)?;
        println!("\ntelemetry written to BENCH_exp_gossip.json");
    } else {
        println!("\n(quick mode: gates checked, BENCH_exp_gossip.json untouched)");
    }
    Ok(())
}
