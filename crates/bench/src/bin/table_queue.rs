//! **Theorem 11 table** — the Queue's minimal static and dynamic
//! dependency relations, their incomparability, and the Queue's minimal
//! hybrid relations.

use quorumcc_bench::{experiment_bounds, indent, section, threads_from_args, BenchRecorder};
use quorumcc_core::enumerate::{CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation};
use quorumcc_model::testtypes::TestQueue;

fn main() {
    let bounds = experiment_bounds();
    let mut rec = BenchRecorder::new("table_queue", threads_from_args(), bounds);
    let states = quorumcc_model::spec::reachable_states::<TestQueue>(bounds);
    let events = quorumcc_model::spec::all_events::<TestQueue>(&states);

    section("Minimal static relation ≥S (Theorem 6) — the paper's four pairs");
    let s = rec.phase("minimal_static_ms", || {
        minimal_static_relation::<TestQueue>(bounds)
    });
    println!("{}", indent(&s.relation));

    section("Self-checking Theorem-6 witnesses for every \u{2265}S pair");
    for (inv_class, ev_class) in s.relation.iter() {
        // Find one concrete witnessing pair of events and print it.
        let mut shown = false;
        'outer: for f in &events {
            use quorumcc_model::Classified;
            if TestQueue::op_class(&f.inv) != *inv_class {
                continue;
            }
            for g in &events {
                if TestQueue::event_class(&g.inv, &g.res) != *ev_class {
                    continue;
                }
                for (a, b, dir) in [(f, g, "cond 1"), (g, f, "cond 2")] {
                    if let Some(w) = quorumcc_core::find_witness::<TestQueue>(a, b, bounds) {
                        assert!(w.check());
                        let fmt = |h: &[quorumcc_model::Event<_, _>]| {
                            if h.is_empty() {
                                "\u{03b5}".to_string()
                            } else {
                                h.iter()
                                    .map(|e| e.to_string())
                                    .collect::<Vec<_>>()
                                    .join(" ")
                            }
                        };
                        println!(
                            "  {inv_class} \u{2265} {ev_class}  ({dir}: insert {} before {}):",
                            w.first, w.second
                        );
                        println!(
                            "    h1 = {}   h2 = {}   h3 = {}",
                            fmt(&w.h1),
                            fmt(&w.h2),
                            fmt(&w.h3)
                        );
                        shown = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            shown,
            "no witness printed for {inv_class} \u{2265} {ev_class}"
        );
    }

    section("Minimal dynamic relation ≥D (Theorem 10, strict Definition-8 reading)");
    let d = rec.phase("minimal_dynamic_ms", || {
        minimal_dynamic_relation::<TestQueue>(bounds)
    });
    println!("{}", indent(&d.relation));
    println!(
        "\n  ≥S \\ ≥D:\n{}",
        indent(&s.relation.difference(&d.relation))
    );
    println!(
        "  ≥D \\ ≥S:\n{}",
        indent(&d.relation.difference(&s.relation))
    );
    println!(
        "\n  The paper presents ≥D as \"≥S plus Enq ≥ Enq\"; the literal Theorem-10\n\
         \x20 computation additionally drops Enq ≥ Deq/Ok (enqueue-at-back commutes\n\
         \x20 with dequeue-at-front on an unbounded queue), making ≥S and ≥D\n\
         \x20 incomparable — the abstract's third bullet, witnessed by the Queue."
    );

    section("Cross-validation against Definition 2 over Dynamic(Queue)");
    let cfg = CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 2_000,
        sample_ops: 3,
        seed: 11,
        bounds,
        threads: rec.threads(),
    };
    let dyn_clauses = rec.phase("extract_dynamic_ms", || {
        ClauseSet::extract::<TestQueue>(Property::Dynamic, &cfg, &[])
    });
    println!(
        "  corpus: {} histories, {} clauses",
        dyn_clauses.stats().histories,
        dyn_clauses.stats().clauses
    );
    println!("  ≥D verifies: {}", dyn_clauses.verify(&d.relation).is_ok());
    println!(
        "  ≥S verifies: {} (Theorem 11: a static relation need not be dynamic)",
        dyn_clauses.verify(&s.relation).is_ok()
    );
    let minimal = dyn_clauses.minimal_relations(4);
    println!("  minimal dynamic relations found: {}", minimal.len());
    for m in &minimal {
        println!("{}", indent(m));
    }

    section("Minimal hybrid relations for the Queue");
    let cfg = CorpusConfig {
        exhaustive_ops: 3,
        max_actions: 3,
        samples: 6_000,
        sample_ops: 4,
        seed: 13,
        bounds,
        threads: rec.threads(),
    };
    let hyb = rec.phase("extract_hybrid_ms", || {
        ClauseSet::extract::<TestQueue>(Property::Hybrid, &cfg, &[])
    });
    println!(
        "  corpus: {} histories, {} clauses",
        hyb.stats().histories,
        hyb.stats().clauses
    );
    println!(
        "  ≥S verifies as hybrid (Theorem 4): {}",
        hyb.verify(&s.relation).is_ok()
    );
    let minimal = hyb.minimal_relations(8);
    println!("  minimal hybrid relations found: {}", minimal.len());
    for m in &minimal {
        println!("{}\n", indent(m));
    }
    rec.metric(
        "dynamic_corpus_histories",
        dyn_clauses.stats().histories as f64,
    );
    rec.metric("dynamic_clauses", dyn_clauses.stats().clauses as f64);
    rec.metric("hybrid_corpus_histories", hyb.stats().histories as f64);
    rec.metric("hybrid_clauses", hyb.stats().clauses as f64);
    rec.finish();
}
