//! **Theorem 12** — the DoubleBuffer: its minimal dynamic relation `≥D` is
//! *not* a hybrid dependency relation, so strong dynamic and hybrid
//! atomicity impose incomparable constraints on quorum assignment.

use quorumcc_adts::DoubleBuffer;
use quorumcc_bench::{experiment_bounds, indent, section, threads_from_args, BenchRecorder};
use quorumcc_core::certificates::{doublebuffer_dynamic_relation, thm12};
use quorumcc_core::enumerate::{CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;
use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation};

fn main() {
    let bounds = experiment_bounds();
    let mut rec = BenchRecorder::new("table_doublebuffer", threads_from_args(), bounds);

    section("Computed ≥D (Theorem 10) vs the paper's table");
    let d = rec.phase("minimal_dynamic_ms", || {
        minimal_dynamic_relation::<DoubleBuffer>(bounds)
    });
    println!("{}", indent(&d.relation));
    let paper = doublebuffer_dynamic_relation();
    println!("  matches the paper's five pairs: {}", d.relation == paper);
    assert_eq!(d.relation, paper);

    section("Computed ≥S (Theorem 6)");
    let s = rec.phase("minimal_static_ms", || {
        minimal_static_relation::<DoubleBuffer>(bounds)
    });
    println!("{}", indent(&s.relation));

    section("Theorem 12 certificate (verbatim history)");
    print!("{}", thm12());

    section("Bounded Definition-2 check: ≥D against Hybrid(DoubleBuffer)");
    let cfg = CorpusConfig {
        exhaustive_ops: 3,
        max_actions: 3,
        samples: 4_000,
        sample_ops: 5,
        seed: 23,
        bounds,
        threads: rec.threads(),
    };
    let clauses = rec.phase("extract_ms", || {
        ClauseSet::extract::<DoubleBuffer>(Property::Hybrid, &cfg, &[])
    });
    println!(
        "  corpus: {} histories, {} clauses",
        clauses.stats().histories,
        clauses.stats().clauses
    );
    rec.metric("corpus_histories", clauses.stats().histories as f64);
    rec.metric("clauses", clauses.stats().clauses as f64);
    match clauses.verify(&d.relation) {
        Ok(()) => println!("  UNEXPECTED: ≥D verified (corpus too weak)"),
        Err(cx) => {
            println!("  ≥D refuted as a hybrid dependency relation; counterexample:");
            for line in cx.to_string().lines() {
                println!("    {line}");
            }
        }
    }
    assert!(clauses.verify(&d.relation).is_err(), "Theorem 12");

    section("Minimal hybrid relations for the DoubleBuffer");
    for m in clauses.minimal_relations(8) {
        println!("  ({} pairs)", m.len());
        println!("{}\n", indent(&m));
    }
    rec.finish();
}
