//! **§2 comparison** — Gifford's weighted voting as a special case: what
//! type-specific analysis buys over the read/write classification.
//!
//! Gifford's file rules require `r + w > n` *and* `w + w > n` (version
//! numbers force write quorums to intersect). Typed quorum consensus
//! derives constraints from the data type instead:
//!
//! * **Register** — `≥S` = {Read ≥ Write/Ok, Write ≥ Read/Ok}: the
//!   `w + w > n` constraint disappears (timestamps order writes), but
//!   symmetric configurations match Gifford — files are the case the
//!   read/write classification was optimized for.
//! * **Counter** — `Add` commutes with `Add`: a blind increment can run at
//!   a *single site* while reads pay, which no read/write-classified
//!   scheme can express.

use quorumcc_adts::{Counter, Register};
use quorumcc_bench::{experiment_bounds, section, threads_from_args, BenchRecorder};
use quorumcc_core::minimal_static_relation;
use quorumcc_model::Classified;
use quorumcc_model::EventClass;
use quorumcc_quorum::{availability, threshold, WeightedAssignment};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = experiment_bounds();
    let mut rec = BenchRecorder::new("table_gifford", threads_from_args(), bounds);
    let n = 5u32;

    section("Register, n = 5: Gifford vs typed");
    println!("  Gifford minimal (r + w > 5, 2w > 5): r = 3, w = 3");
    let reg_rel = rec.phase("register_relation_ms", || {
        minimal_static_relation::<Register>(bounds).relation
    });
    println!("  typed relation ≥S:");
    for line in reg_rel.table().lines() {
        println!("    {line}");
    }
    let ops = Register::op_classes();
    let evs = Register::event_classes();
    // Gifford's 2w > n caps write availability at the majority: w ≥ 3 no
    // matter how the reads pay. Typed analysis has no Write/Write pair
    // (timestamps order writes), so writes can shrink to one site.
    let w_opt = threshold::optimize(&reg_rel, n, &ops, &evs, &["Write", "Read"])?;
    let r_opt = threshold::optimize(&reg_rel, n, &ops, &evs, &["Read", "Write"])?;
    println!(
        "  typed write-optimized: Write {}, Read {}   (Gifford floor: Write 3)",
        w_opt.op_size_worst("Write", &evs),
        w_opt.op_size_worst("Read", &evs),
    );
    println!(
        "  typed read-optimized:  Read {}, Write {}   (Gifford: Read 1 forces Write 5)",
        r_opt.op_size_worst("Read", &evs),
        r_opt.op_size_worst("Write", &evs),
    );
    // The symmetric Gifford point (3, 3) remains admissible.
    let mut sym = quorumcc_quorum::ThresholdAssignment::new(n);
    sym.set_initial("Read", 3);
    sym.set_initial("Write", 3);
    for ev in &evs {
        sym.set_final(*ev, 3);
    }
    assert!(sym.validate(&reg_rel).is_ok());
    println!("  symmetric (3, 3) still validates — Gifford is a special case");

    section("Counter, n = 5: the typed win");
    let cnt_rel = rec.phase("counter_relation_ms", || {
        minimal_static_relation::<Counter>(bounds).relation
    });
    println!("  typed relation ≥S:");
    for line in cnt_rel.table().lines() {
        println!("    {line}");
    }
    let ops = Counter::op_classes();
    let evs = Counter::event_classes();
    println!("  Gifford (Add is a \"write\"): w = 3 of 5 minimum — Add size 3");
    for (label, priority) in [
        ("Add-optimized", ["Add", "Get"]),
        ("Get-optimized", ["Get", "Add"]),
    ] {
        let ta = threshold::optimize(&cnt_rel, n, &ops, &evs, &priority)?;
        println!(
            "  typed {label:>14}: Add size {}, Get size {}",
            ta.op_size_worst("Add", &evs),
            ta.op_size_worst("Get", &evs),
        );
    }
    let add_opt = threshold::optimize(&cnt_rel, n, &ops, &evs, &["Add", "Get"])?;
    let p = 0.9;
    println!(
        "\n  Add availability at p = {p}: typed Add-optimized {:.6} vs Gifford majority {:.6}",
        availability::op_availability_worst(&add_opt, "Add", &evs, p)?,
        availability::binomial_tail(n, 3, p)?,
    );

    section("Weighted voting (Gifford's heterogeneity, kept)");
    // One reliable site (p=0.99, 2 votes) + four flaky ones (p=0.7).
    let ps = [0.99, 0.7, 0.7, 0.7, 0.7];
    let mut unit = WeightedAssignment::new(vec![1; 5]);
    unit.set_initial("Read", 3);
    unit.set_final(EventClass::new("Write", "Ok"), 3);
    let mut weighted = WeightedAssignment::new(vec![2, 1, 1, 1, 1]);
    weighted.set_initial("Read", 3);
    weighted.set_final(EventClass::new("Write", "Ok"), 4);
    println!(
        "  read availability, majority votes: unit weights {:.5}, heavy reliable site {:.5}",
        unit.op_availability("Read", EventClass::new("Read", "Ok"), &ps)?,
        weighted.op_availability("Read", EventClass::new("Read", "Ok"), &ps)?,
    );
    println!(
        "  (typed constraints compose with weights: vi + vf > total votes plays the\n\
         \x20  role of ti + tf > n throughout)"
    );
    rec.finish();
    Ok(())
}
