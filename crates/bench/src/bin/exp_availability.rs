//! **Experiment A1** — quantitative Figure 1-2: availability of the PROM
//! under hybrid vs static atomicity, three ways:
//!
//! 1. exact (binomial tails, independent crashes),
//! 2. Monte Carlo with crashes *and partitions*,
//! 3. operationally, by running replicated clusters under random crash
//!    plans and counting completed operations.

use quorumcc_adts::prom::PromInv;
use quorumcc_adts::Prom;
use quorumcc_bench::{experiment_bounds, section, threads_from_args, BenchRecorder};
use quorumcc_core::certificates::prom_hybrid_relation;
use quorumcc_core::minimal_static_relation;
use quorumcc_core::parallel::{effective_threads, map_indexed};
use quorumcc_model::Classified;
use quorumcc_quorum::montecarlo::{estimate_threaded, FaultModel};
use quorumcc_quorum::{availability, threshold};
use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder};
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::types::ObjId;
use quorumcc_replication::{RunTelemetry, Transaction};
use quorumcc_sim::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bounds = experiment_bounds();
    let threads = threads_from_args();
    let mut rec = BenchRecorder::new("exp_availability", threads, bounds);
    let n = 5u32;
    let ops = Prom::op_classes();
    let evs = Prom::event_classes();

    let hybrid_rel = prom_hybrid_relation();
    let static_rel = rec.phase("minimal_static_ms", || {
        minimal_static_relation::<Prom>(bounds).relation
    });
    let ta_h = threshold::optimize(&hybrid_rel, n, &ops, &evs, &["Read", "Write", "Seal"])?;
    let ta_s = threshold::optimize(&static_rel, n, &ops, &evs, &["Read", "Write", "Seal"])?;

    section("1. Exact per-operation availability (n = 5, p = site-up prob)");
    println!(
        "  {:>5} | {:>16} | {:>16}",
        "p", "hybrid W / R", "static W / R"
    );
    for p in [0.7, 0.9, 0.99] {
        println!(
            "  {:>5} | {:>7.5} / {:>6.5} | {:>7.5} / {:>6.5}",
            p,
            availability::op_availability_worst(&ta_h, "Write", &evs, p)?,
            availability::op_availability_worst(&ta_h, "Read", &evs, p)?,
            availability::op_availability_worst(&ta_s, "Write", &evs, p)?,
            availability::op_availability_worst(&ta_s, "Read", &evs, p)?,
        );
    }

    section("2. Monte Carlo with partitions (p = 0.95, 50k trials)");
    println!(
        "  {:>14} | {:>16} | {:>16}",
        "partition prob", "hybrid W / R", "static W / R"
    );
    let mc_t0 = std::time::Instant::now();
    for pp in [0.0, 0.2, 0.5] {
        let model = FaultModel {
            site_up: 0.95,
            partition_prob: pp,
            same_block_prob: 0.5,
        };
        let h = estimate_threaded(&ta_h, &ops, &evs, model, 50_000, 1, rec.threads())?;
        let s = estimate_threaded(&ta_s, &ops, &evs, model, 50_000, 1, rec.threads())?;
        let get = |r: &quorumcc_quorum::montecarlo::MonteCarloReport, op: &str| {
            r.per_op
                .iter()
                .find(|(o, _)| *o == op)
                .map(|(_, a)| *a)
                .unwrap_or(0.0)
        };
        println!(
            "  {:>14} | {:>7.4} / {:>6.4} | {:>7.4} / {:>6.4}",
            pp,
            get(&h, "Write"),
            get(&h, "Read"),
            get(&s, "Write"),
            get(&s, "Read"),
        );
    }
    rec.record_phase("montecarlo_ms", mc_t0.elapsed().as_secs_f64() * 1e3);

    section("3. Operational: replicated clusters under random crash plans");
    // Write-heavy workload before any seal: each client writes 4 times.
    // Crash plans: each repo is down for a random third of the run.
    //
    // Each (mechanism, trial) pair is an independent seeded simulation;
    // they fan out over `quorumcc_core::parallel` and merge in item
    // order, so the table and telemetry are byte-identical at every
    // `--threads` count.
    let trials = 30u64;
    let mechs = [
        ("hybrid", Mode::Hybrid, &hybrid_rel, &ta_h),
        ("static", Mode::StaticTs, &static_rel, &ta_s),
    ];
    let items: Vec<(usize, u64)> = (0..mechs.len())
        .flat_map(|m| (0..trials).map(move |t| (m, t)))
        .collect();
    rec.set_threads_effective(effective_threads(threads).min(items.len()));
    let sim_t0 = std::time::Instant::now();
    let results = map_indexed(threads, &items, |_, &(m, trial)| {
        let (name, mode, rel, ta) = &mechs[m];
        let mut rng = StdRng::seed_from_u64(9_000 + trial);
        let mut faults = FaultPlan::none();
        for repo in 0..n {
            let start: u64 = rng.gen_range(0..2_000);
            faults.crash(repo, start, start + 1_000);
        }
        let w: Vec<Vec<Transaction<PromInv>>> = (0..2)
            .map(|_| {
                (0..4)
                    .map(|k| Transaction {
                        ops: vec![(ObjId(0), PromInv::Write(k))],
                    })
                    .collect()
            })
            .collect();
        let report = RunBuilder::<Prom>::new(n)
            .protocol(ProtocolConfig::new(Protocol::new(*mode, (*rel).clone())).op_timeout(60))
            .thresholds((*ta).clone())
            .faults(faults)
            .seed(trial)
            .workload(w)
            .run()
            .map_err(|e| format!("{name}/trial {trial}: {e}"))?;
        report
            .check_atomicity(bounds)
            .map_err(|o| format!("{name}: non-atomic history {o}"))?;
        let t = report.stats();
        Ok::<_, String>((
            t.committed,
            t.aborted_unavailable,
            report.telemetry().clone(),
        ))
    });
    rec.record_phase("cluster_sim_ms", sim_t0.elapsed().as_secs_f64() * 1e3);
    println!(
        "  {:>9} | {:>10} | {:>12} | {:>12}",
        "config", "committed", "unavailable", "commit rate"
    );
    let mut agg = vec![(0usize, 0usize, RunTelemetry::default()); mechs.len()];
    for (i, res) in results.into_iter().enumerate() {
        let (committed, unavailable, telemetry) = res?;
        let (c, u, merged) = &mut agg[items[i].0];
        *c += committed;
        *u += unavailable;
        merged.merge(&telemetry);
    }
    for ((name, ..), (committed, unavailable, merged)) in mechs.iter().zip(&agg) {
        let total = committed + unavailable;
        println!(
            "  {:>9} | {:>10} | {:>12} | {:>11.1}%",
            name,
            committed,
            unavailable,
            100.0 * *committed as f64 / total.max(1) as f64
        );
        rec.raw_json(&format!("telemetry_{name}"), merged.to_json());
    }
    println!(
        "\n  Shape check: hybrid write availability dominates static at every\n\
         \x20 failure level, and the gap widens with partitions — Figure 1-2's\n\
         \x20 hybrid-below-static edge, measured."
    );
    rec.finish();
    Ok(())
}
