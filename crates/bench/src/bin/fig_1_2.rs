//! **Figure 1-2** — the availability lattice: the constraints on quorum
//! assignment under each property, across the whole data-type battery.
//!
//! For every type we compute the minimal static relation `≥S` (Theorem 6)
//! and minimal dynamic relation `≥D` (Theorem 10), extract the hybrid
//! Definition-2 clauses on a bounded corpus, and certify:
//!
//! * **Theorem 4 edge**: `≥S` verifies as a hybrid dependency relation.
//! * **hybrid ≤ static**: some minimal hybrid relation is ⊆ `≥S` (strictly
//!   smaller for the PROM).
//! * **static ⋈ dynamic / hybrid ⋈ dynamic**: containment verdicts per
//!   type.

use quorumcc_adts::*;
use quorumcc_bench::{experiment_bounds, section, threads_from_args, BenchRecorder};
use quorumcc_core::battery::report;
use quorumcc_core::enumerate::{CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;
use quorumcc_model::{Classified, Enumerable};

fn corpus_cfg(threads: usize) -> CorpusConfig {
    CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 4_000,
        sample_ops: 4,
        seed: 12,
        bounds: experiment_bounds(),
        threads,
    }
}

/// Corpus/clause/timing totals accumulated across the per-type rows.
#[derive(Default)]
struct Totals {
    histories: usize,
    clauses: usize,
    reference_ms: f64,
    memoized_ms: f64,
}

fn row<S: Enumerable + Classified>(threads: usize, totals: &mut Totals) {
    row_seeded::<S>(&[], threads, totals);
}

fn row_seeded<S: Enumerable + Classified>(
    seeds: &[quorumcc_model::BHistory<S::Inv, S::Res>],
    threads: usize,
    totals: &mut Totals,
) {
    let bounds = experiment_bounds();
    let r = report::<S>(bounds);
    let cfg = corpus_cfg(threads);
    // Reference pass: the retained unmemoized single-thread extractor, as
    // both the correctness oracle and the perf baseline.
    let t0 = std::time::Instant::now();
    let reference = ClauseSet::extract_reference::<S>(Property::Hybrid, &cfg, seeds);
    totals.reference_ms += t0.elapsed().as_secs_f64() * 1e3;
    let t1 = std::time::Instant::now();
    let hybrid_clauses = ClauseSet::extract::<S>(Property::Hybrid, &cfg, seeds);
    totals.memoized_ms += t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        reference,
        hybrid_clauses,
        "{}: memoized parallel extraction diverged from the reference path",
        S::NAME
    );
    totals.histories += hybrid_clauses.stats().histories;
    totals.clauses += hybrid_clauses.stats().clauses;
    let thm4 = hybrid_clauses.verify(&r.static_rel).is_ok();
    let minimal_hybrids = hybrid_clauses.minimal_relations_par(8, threads);
    let hybrid_min_size = minimal_hybrids.iter().map(|m| m.len()).min().unwrap_or(0);
    let hybrid_below_static = minimal_hybrids.iter().any(|m| m.is_subset(&r.static_rel));
    let strictly_below = minimal_hybrids
        .iter()
        .any(|m| m.is_subset(&r.static_rel) && *m != r.static_rel);
    println!(
        "{:>12} | {:>4} | {:>4} | {:>13} | {:>6} | {:>5} | {:>8} | {:>6}",
        S::NAME,
        r.static_rel.len(),
        r.dynamic_rel.len(),
        format!("{}", r.static_vs_dynamic()),
        if thm4 { "OK" } else { "FAIL" },
        hybrid_min_size,
        minimal_hybrids.len(),
        if strictly_below {
            "strict"
        } else if hybrid_below_static {
            "≤"
        } else {
            "?"
        },
    );
    assert!(thm4, "{}: Theorem 4 edge failed", S::NAME);
}

fn main() {
    let mut rec = BenchRecorder::new("fig_1_2", threads_from_args(), experiment_bounds());
    let threads = rec.threads();
    let cfg = corpus_cfg(threads);
    println!("Figure 1-2: constraints on quorum assignment (availability lattice)");
    println!(
        "bounds: state depth {}, hybrid corpus exhaustive ≤{} ops + {} samples ≤{} ops, {} thread(s)",
        experiment_bounds().depth,
        cfg.exhaustive_ops,
        cfg.samples,
        cfg.sample_ops,
        threads,
    );

    section("Per-type comparison");
    println!(
        "{:>12} | {:>4} | {:>4} | {:>13} | {:>6} | {:>5} | {:>8} | {:>6}",
        "type", "|≥S|", "|≥D|", "static vs dyn", "Thm4", "|≥H|", "#minimal", "H vs S"
    );
    let mut totals = Totals::default();
    row::<Register>(threads, &mut totals);
    row::<Counter>(threads, &mut totals);
    row::<Queue>(threads, &mut totals);
    row::<Prom>(threads, &mut totals);
    row::<DoubleBuffer>(threads, &mut totals);
    row::<GSet>(threads, &mut totals);
    row::<Account>(threads, &mut totals);
    row::<AppendLog>(threads, &mut totals);
    row::<Directory>(threads, &mut totals);
    row_seeded::<FlagSet>(
        &[quorumcc_core::certificates::flagset_dual_witness()],
        threads,
        &mut totals,
    );
    rec.record_phase("extract_reference_ms", totals.reference_ms);
    rec.record_phase("extract_ms", totals.memoized_ms);
    let speedup = totals.reference_ms / totals.memoized_ms.max(f64::MIN_POSITIVE);
    rec.metric("extract_speedup", speedup);
    rec.metric("corpus_histories", totals.histories as f64);
    rec.metric("clauses", totals.clauses as f64);
    println!(
        "\nextraction across all rows: {:.1} ms reference → {:.1} ms memoized×{threads} \
         ({speedup:.2}x), outputs identical",
        totals.reference_ms, totals.memoized_ms,
    );

    section("Legend");
    println!("|≥S|, |≥D|  — pair counts of the unique minimal static/dynamic relations");
    println!("Thm4        — ≥S verifies as a hybrid dependency relation (bounded)");
    println!("|≥H|        — size of the smallest minimal hybrid relation found");
    println!("#minimal    — number of minimal hybrid relations found (non-unique ⇒ >1)");
    println!("H vs S      — 'strict' when a minimal hybrid relation is strictly ⊆ ≥S,");
    println!("              i.e. hybrid atomicity permits quorum assignments static forbids");
    println!("\nFigure 1-2 edges: hybrid constraints ≤ static constraints (Thm 4 column),");
    println!("static ⋈ dynamic (Queue row), hybrid ⋈ dynamic (DoubleBuffer: Thm 12).");
    rec.finish();
}
