//! **Figure 1-2** — the availability lattice: the constraints on quorum
//! assignment under each property, across the whole data-type battery.
//!
//! For every type we compute the minimal static relation `≥S` (Theorem 6)
//! and minimal dynamic relation `≥D` (Theorem 10), extract the hybrid
//! Definition-2 clauses on a bounded corpus, and certify:
//!
//! * **Theorem 4 edge**: `≥S` verifies as a hybrid dependency relation.
//! * **hybrid ≤ static**: some minimal hybrid relation is ⊆ `≥S` (strictly
//!   smaller for the PROM).
//! * **static ⋈ dynamic / hybrid ⋈ dynamic**: containment verdicts per
//!   type.

use quorumcc_adts::*;
use quorumcc_bench::{experiment_bounds, section};
use quorumcc_core::battery::report;
use quorumcc_core::enumerate::{CorpusConfig, Property};
use quorumcc_core::verifier::ClauseSet;
use quorumcc_model::{Classified, Enumerable};

fn corpus_cfg() -> CorpusConfig {
    CorpusConfig {
        exhaustive_ops: 2,
        max_actions: 3,
        samples: 4_000,
        sample_ops: 4,
        seed: 12,
        bounds: experiment_bounds(),
    }
}

fn row<S: Enumerable + Classified>() {
    row_seeded::<S>(&[]);
}

fn row_seeded<S: Enumerable + Classified>(
    seeds: &[quorumcc_model::BHistory<S::Inv, S::Res>],
) {
    let bounds = experiment_bounds();
    let r = report::<S>(bounds);
    let hybrid_clauses = ClauseSet::extract::<S>(Property::Hybrid, &corpus_cfg(), seeds);
    let thm4 = hybrid_clauses.verify(&r.static_rel).is_ok();
    let minimal_hybrids = hybrid_clauses.minimal_relations(8);
    let hybrid_min_size = minimal_hybrids.iter().map(|m| m.len()).min().unwrap_or(0);
    let hybrid_below_static = minimal_hybrids.iter().any(|m| m.is_subset(&r.static_rel));
    let strictly_below = minimal_hybrids
        .iter()
        .any(|m| m.is_subset(&r.static_rel) && *m != r.static_rel);
    println!(
        "{:>12} | {:>4} | {:>4} | {:>13} | {:>6} | {:>5} | {:>8} | {:>6}",
        S::NAME,
        r.static_rel.len(),
        r.dynamic_rel.len(),
        format!("{}", r.static_vs_dynamic()),
        if thm4 { "OK" } else { "FAIL" },
        hybrid_min_size,
        minimal_hybrids.len(),
        if strictly_below {
            "strict"
        } else if hybrid_below_static {
            "≤"
        } else {
            "?"
        },
    );
    assert!(thm4, "{}: Theorem 4 edge failed", S::NAME);
}

fn main() {
    println!("Figure 1-2: constraints on quorum assignment (availability lattice)");
    println!(
        "bounds: state depth {}, hybrid corpus exhaustive ≤{} ops + {} samples ≤{} ops",
        experiment_bounds().depth,
        corpus_cfg().exhaustive_ops,
        corpus_cfg().samples,
        corpus_cfg().sample_ops
    );

    section("Per-type comparison");
    println!(
        "{:>12} | {:>4} | {:>4} | {:>13} | {:>6} | {:>5} | {:>8} | {:>6}",
        "type", "|≥S|", "|≥D|", "static vs dyn", "Thm4", "|≥H|", "#minimal", "H vs S"
    );
    row::<Register>();
    row::<Counter>();
    row::<Queue>();
    row::<Prom>();
    row::<DoubleBuffer>();
    row::<GSet>();
    row::<Account>();
    row::<AppendLog>();
    row::<Directory>();
    row_seeded::<FlagSet>(&[quorumcc_core::certificates::flagset_dual_witness()]);

    section("Legend");
    println!("|≥S|, |≥D|  — pair counts of the unique minimal static/dynamic relations");
    println!("Thm4        — ≥S verifies as a hybrid dependency relation (bounded)");
    println!("|≥H|        — size of the smallest minimal hybrid relation found");
    println!("#minimal    — number of minimal hybrid relations found (non-unique ⇒ >1)");
    println!("H vs S      — 'strict' when a minimal hybrid relation is strictly ⊆ ≥S,");
    println!("              i.e. hybrid atomicity permits quorum assignments static forbids");
    println!("\nFigure 1-2 edges: hybrid constraints ≤ static constraints (Thm 4 column),");
    println!("static ⋈ dynamic (Queue row), hybrid ⋈ dynamic (DoubleBuffer: Thm 12).");
}
