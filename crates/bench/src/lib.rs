//! Shared plumbing for the experiment binaries (`src/bin/*`) and Criterion
//! benches (`benches/*`).
//!
//! Each binary regenerates one table or figure of the paper; see
//! `EXPERIMENTS.md` at the workspace root for the index and the recorded
//! paper-vs-measured outcomes.

pub mod telemetry;

pub use telemetry::{threads_from_args, BenchRecorder};

use quorumcc_core::DependencyRelation;
use quorumcc_model::spec::ExploreBounds;

/// The exploration bounds every experiment uses (recorded in outputs).
pub fn experiment_bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        max_states: 4_096,
        budget: 5_000_000,
    }
}

/// Renders a relation as an indented block.
pub fn indent(rel: &DependencyRelation) -> String {
    rel.table()
        .lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::EventClass;

    #[test]
    fn indent_prefixes_each_line() {
        let rel = DependencyRelation::from_pairs([
            ("A", EventClass::new("B", "Ok")),
            ("C", EventClass::new("D", "Ok")),
        ]);
        let s = indent(&rel);
        assert!(s.lines().all(|l| l.starts_with("    ")));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn bounds_are_exhaustive_for_paper_types() {
        let b = experiment_bounds();
        assert!(b.depth >= 4);
        assert!(b.budget >= 1_000_000);
    }
}
