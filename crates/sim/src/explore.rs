//! Exhaustive interleaving exploration: a forking scheduler over the same
//! [`Process`] drivers the DES runs, enumerating *every* enabled-event
//! order instead of sampling one.
//!
//! Where [`crate::engine::Sim`] draws one delivery order per seed, the
//! explorer treats the set of in-flight messages, armed timers, and
//! budgeted faults as a branching choice at every step and walks the whole
//! tree depth-first. A caller-supplied [`ExploreHooks`] audits each branch
//! (the replication crate plugs its safety oracle in here) and the first
//! violating branch comes back as a [`Witness`]: a replayable schedule of
//! choice indices.
//!
//! # The zero-delay time model
//!
//! Exploration uses a degenerate network: deliveries are instantaneous and
//! do **not** advance simulated time; only timer firings do (`now`
//! becomes `max(now, due)`). This is what makes independent deliveries
//! genuinely commute — handlers observe the same `now` in either order,
//! so timestamps, armed timer dues, and every other time-derived value
//! converge when independent events are swapped. Logical clocks still
//! advance (clients stamp entries with `max(now, last + 1)`), so
//! timestamp *order* is exactly as in a DES run; only wall-clock spacing
//! is collapsed.
//!
//! Per-event randomness is a pure function of `(seed, process,
//! per-process event count)`, so it too commutes across processes: a
//! process's `k`-th event draws the same randoms on every branch that
//! delivers it `k`-th, regardless of what other processes did in between.
//!
//! # The channel model
//!
//! In-flight messages live on reliable FIFO channels, one per ordered
//! `(from, to)` pair — the delivery model of the TCP and in-process
//! channel backends. Only each channel's *head* is deliverable, so the
//! explorer enumerates interleavings **across** channels but never
//! reorders one sender's messages to one receiver. This is the standard
//! communication-closed reduction: the factorially many same-channel
//! permutations the sampling DES could draw collapse to one, while every
//! cross-channel race (the ones quorum intersection actually defends
//! against) is still enumerated. Drops, when budgeted, also act on
//! channel heads.
//!
//! # Timers
//!
//! Timers fire lazily: a process's timer is eligible only when the
//! process is *quiescent* — no message pending for it and none of its own
//! requests still in flight. In a zero-drop exploration a timeout can
//! only truly happen after a drop, so racing a timer against a delivery
//! that is guaranteed to arrive would add schedules no real execution
//! exhibits; when drops are budgeted, a branch spends a drop first and
//! the timeout becomes reachable. Among eligible processes, only the
//! globally earliest `(due, proc)` timer is enabled — the order the DES
//! would fire them in — so timer firings contribute no artificial
//! interleavings. Because a firing advances global time, timers are
//! treated as dependent with everything by the partial-order reduction.
//!
//! # Partial-order reduction
//!
//! Sleep sets over the Mazurkiewicz independence relation: two deliveries
//! to *different* processes are independent; two deliveries to the same
//! process are independent only when [`ExploreHooks::independent`] says
//! the messages commute (the replication glue claims this for repository
//! data messages on different objects — repository message handlers are
//! RNG-free, so the claim is sound); everything else (timers, drops,
//! crashes, recoveries) is dependent with everything. A state-hash
//! visited set over `Debug`-interned driver state prunes convergent
//! branches; entries remember the depth and sleep set they were explored
//! under, so a revisit with *more* remaining depth or a *smaller* sleep
//! set is re-explored (the classic sleep-set/state-caching soundness
//! condition).
//!
//! Schedules index the **unreduced** canonical choice list, so a witness
//! found with reduction on replays identically with reduction off.

use crate::engine::{Ctx, Process};
use crate::fault::{ProcId, SimTime};
use crate::trace::{TraceConfig, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::Debug;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

/// Budgets and switches for one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum schedule length (events per branch); iterative deepening
    /// stops here.
    pub max_depth: usize,
    /// DFS node budget, cumulative across deepening iterations.
    pub max_states: u64,
    /// Executed-transition budget, cumulative across deepening iterations.
    pub max_transitions: u64,
    /// Partial-order reduction on or off (off still keeps the visited
    /// set; schedules are comparable either way).
    pub por: bool,
    /// Seed for per-event process randomness.
    pub seed: u64,
    /// How many pending messages any single branch may drop.
    pub drop_budget: u32,
    /// How many crashes any single branch may inject.
    pub crash_budget: u32,
    /// Iterative-deepening increment; 1 (the default) makes the first
    /// witness found a strictly minimal-depth one.
    pub deepen_step: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 20,
            max_states: 1_000_000,
            max_transitions: 4_000_000,
            por: true,
            seed: 0,
            drop_budget: 0,
            crash_budget: 0,
            deepen_step: 1,
        }
    }
}

/// Counters describing one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// DFS nodes expanded (cumulative over deepening iterations).
    pub states: u64,
    /// Events executed (cumulative over deepening iterations).
    pub transitions: u64,
    /// Complete schedules (terminal states) reached.
    pub schedules: u64,
    /// Deepest schedule reached.
    pub max_depth_reached: usize,
    /// Deepening iterations run.
    pub iterations: u32,
    /// Whether a state/transition budget stopped the search.
    pub budget_exhausted: bool,
    /// Whether the full reachable space (to `max_depth`) was covered —
    /// the "every reachable schedule is safe" verdict, as opposed to
    /// "no violation found before a budget hit".
    pub complete: bool,
}

/// A violating branch: the canonical choice indices that reach it, and
/// the hooks' verdict there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Indices into each prefix state's canonical enabled-choice list.
    pub schedule: Vec<u32>,
    /// The violation the hooks reported.
    pub verdict: String,
}

/// Everything an exploration returns.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Search counters.
    pub stats: ExploreStats,
    /// The first (minimal-depth, lowest-index) violating schedule, if any.
    pub witness: Option<Witness>,
}

/// What the caller plugs into the explorer: decision counting, the safety
/// audit, and the domain's independence relation.
pub trait ExploreHooks<M, P> {
    /// How many top-level decisions (e.g. transactions committed or
    /// aborted) the state holds — the explorer audits a branch whenever
    /// this increases.
    fn decided(&self, procs: &[P]) -> u64;

    /// Audits the state; `Some(verdict)` reports a safety violation.
    /// Called on every decision increase and at every terminal state.
    fn check(&self, procs: &[P]) -> Option<String>;

    /// Whether delivering `a` and `b` to the *same* process commutes.
    /// Only claim this for handlers that are RNG-free and whose state
    /// updates are order-insensitive; the default claims nothing.
    fn independent(&self, _a: &M, _b: &M) -> bool {
        false
    }

    /// Whether the run is over even if events remain enabled (prunes
    /// post-decision bookkeeping interleavings).
    fn done(&self, _procs: &[P]) -> bool {
        false
    }

    /// Whether the explorer may crash process `p` (when a crash budget is
    /// configured).
    fn can_crash(&self, _p: ProcId) -> bool {
        true
    }
}

/// One in-flight message.
#[derive(Debug, Clone)]
struct Pend<M> {
    from: ProcId,
    to: ProcId,
    fp: u64,
    msg: M,
}

/// One explorer state: drivers plus the whole network/timer/fault
/// context. Cloned per branch — shapes are small by design.
#[derive(Debug, Clone)]
struct ExpState<M, P> {
    procs: Vec<P>,
    /// In-flight messages in send order. A `(from, to)` channel's queue
    /// is the subsequence with that pair; only its first element is
    /// deliverable (FIFO channels). The subsequence per channel is
    /// invariant under commuting swaps — independent events never send
    /// on the same channel — so the canonical per-channel rendering (not
    /// raw insertion order) is what the state hash folds in.
    pending: Vec<Pend<M>>,
    /// Per-process armed timers `(absolute due, token)`, in arm order.
    timers: Vec<Vec<(SimTime, u64)>>,
    crashed: Vec<bool>,
    now: SimTime,
    /// Per-process executed-event counts (seeds per-event randomness).
    events_at: Vec<u64>,
    drops_left: u32,
    crashes_left: u32,
}

/// One enabled choice, identified positionally within a state's canonical
/// list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    Deliver(usize),
    Timer(ProcId),
    Drop(usize),
    Crash(ProcId),
    Recover(ProcId),
}

/// A sleep-set entry: only deliveries ever sleep (everything else is
/// dependent with everything). Carries the message so same-process
/// independence can consult [`ExploreHooks::independent`].
#[derive(Debug, Clone)]
struct SleepEnt<M> {
    from: ProcId,
    to: ProcId,
    fp: u64,
    msg: M,
}

type SleepKey = (ProcId, ProcId, u64);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-event randomness: a pure function of `(seed, process, the
/// process's executed-event count)`, so it commutes across processes.
fn event_rng(seed: u64, p: ProcId, count: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(
        splitmix64(seed ^ (u64::from(p) << 32)).wrapping_add(count),
    ))
}

/// A `fmt::Write` sink that feeds one or two hashers directly — state
/// fingerprinting formats *into* the hash, never into an intermediate
/// `String` (the dominant cost at millions of states).
struct HashWriter<'a> {
    a: &'a mut DefaultHasher,
    b: Option<&'a mut DefaultHasher>,
}

impl std::fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.a.write(s.as_bytes());
        if let Some(b) = self.b.as_deref_mut() {
            b.write(s.as_bytes());
        }
        Ok(())
    }
}

fn fingerprint<M: Debug>(msg: &M) -> u64 {
    let mut h = DefaultHasher::new();
    let mut w = HashWriter { a: &mut h, b: None };
    let _ = write!(w, "{msg:?}");
    h.finish()
}

fn apply_effects<M: Debug, P>(
    st: &mut ExpState<M, P>,
    me: ProcId,
    sends: Vec<(ProcId, M, u64)>,
    timers: Vec<(SimTime, u64)>,
) {
    for (to, msg, _weight) in sends {
        // Sends to crashed (or out-of-range) endpoints vanish at send
        // time, as in the engine.
        if (to as usize) >= st.crashed.len() || st.crashed[to as usize] {
            continue;
        }
        let fp = fingerprint(&msg);
        st.pending.push(Pend {
            from: me,
            to,
            fp,
            msg,
        });
    }
    for (delay, token) in timers {
        st.timers[me as usize].push((st.now + delay, token));
    }
}

/// Runs one handler under a detached context and applies its effects.
fn run_event<M, P, F>(st: &mut ExpState<M, P>, p: ProcId, seed: u64, f: F)
where
    M: Debug,
    P: Process<M>,
    F: FnOnce(&mut P, &mut Ctx<'_, M>),
{
    let mut rng = event_rng(seed, p, st.events_at[p as usize]);
    st.events_at[p as usize] += 1;
    let mut tracer = Tracer::new(TraceConfig::disabled(), st.procs.len());
    let mut ctx = Ctx::detached(st.now, p, &mut rng, &mut tracer);
    f(&mut st.procs[p as usize], &mut ctx);
    let (sends, timers) = ctx.into_effects();
    apply_effects(st, p, sends, timers);
}

fn execute<M, P>(st: &mut ExpState<M, P>, c: Choice, seed: u64)
where
    M: Clone + Debug,
    P: Process<M> + Clone,
{
    match c {
        Choice::Deliver(i) => {
            let Pend { from, to, msg, .. } = st.pending.remove(i);
            debug_assert!(!st.crashed[to as usize], "pending never targets crashed");
            run_event(st, to, seed, |proc, ctx| proc.on_message(ctx, from, msg));
        }
        Choice::Timer(p) => {
            let slot = &mut st.timers[p as usize];
            let (mi, _) = slot
                .iter()
                .enumerate()
                .min_by_key(|(i, (due, _))| (*due, *i))
                .expect("timer choice requires an armed timer");
            let (due, token) = slot.remove(mi);
            st.now = st.now.max(due);
            run_event(st, p, seed, |proc, ctx| proc.on_timer(ctx, token));
        }
        Choice::Drop(i) => {
            st.pending.remove(i);
            st.drops_left -= 1;
        }
        Choice::Crash(p) => {
            st.crashed[p as usize] = true;
            st.crashes_left -= 1;
            st.pending.retain(|m| m.to != p);
            st.timers[p as usize].clear();
        }
        Choice::Recover(p) => {
            st.crashed[p as usize] = false;
            run_event(st, p, seed, |proc, ctx| proc.on_recover(ctx));
        }
    }
}

/// The pending-vector indices of each FIFO channel's head, ordered
/// canonically by `(to, from)` — the deliverable (and droppable) set.
fn channel_heads<M>(pending: &[Pend<M>]) -> Vec<usize> {
    let mut heads: Vec<(ProcId, ProcId, usize)> = Vec::new();
    for (i, m) in pending.iter().enumerate() {
        if !heads
            .iter()
            .any(|&(to, from, _)| to == m.to && from == m.from)
        {
            heads.push((m.to, m.from, i));
        }
    }
    heads.sort_unstable_by_key(|&(to, from, _)| (to, from));
    heads.into_iter().map(|(_, _, i)| i).collect()
}

/// The canonical enabled-choice list: channel-head deliveries in
/// `(to, from)` channel order, then at most one timer (the globally
/// earliest eligible `(due, proc)`), then drops, crashes, and
/// recoveries. Schedule indices refer to this list.
fn enabled_choices<M, P, H>(st: &ExpState<M, P>, hooks: &H) -> Vec<Choice>
where
    H: ExploreHooks<M, P> + ?Sized,
{
    let heads = channel_heads(&st.pending);
    let mut out: Vec<Choice> = heads.iter().copied().map(Choice::Deliver).collect();
    let mut best: Option<(SimTime, ProcId)> = None;
    for (p, slot) in st.timers.iter().enumerate() {
        if st.crashed[p] || slot.is_empty() {
            continue;
        }
        // Quiescent firing: a timer waits until nothing is in flight for
        // *or from* its process (with no drop spent, a timeout cannot
        // outrun a delivery that is guaranteed to arrive).
        if st
            .pending
            .iter()
            .any(|m| m.to as usize == p || m.from as usize == p)
        {
            continue;
        }
        let due = slot.iter().map(|(d, _)| *d).min().expect("non-empty");
        let cand = (due, p as ProcId);
        if best.is_none_or(|b| cand < b) {
            best = Some(cand);
        }
    }
    if let Some((_, p)) = best {
        out.push(Choice::Timer(p));
    }
    if st.drops_left > 0 {
        out.extend(heads.into_iter().map(Choice::Drop));
    }
    if st.crashes_left > 0 {
        for p in 0..st.procs.len() {
            if !st.crashed[p] && hooks.can_crash(p as ProcId) {
                out.push(Choice::Crash(p as ProcId));
            }
        }
    }
    for (p, c) in st.crashed.iter().enumerate() {
        if *c {
            out.push(Choice::Recover(p as ProcId));
        }
    }
    out
}

/// Fingerprints the whole state through its `Debug` rendering (driver
/// state is `Debug`-deterministic by construction: ordered collections
/// only). Two independent hash passes make accidental 64-bit collisions
/// a non-concern at explorable state counts.
fn state_hash<M, P>(st: &ExpState<M, P>) -> u128
where
    M: Debug,
    P: Debug,
{
    let mut h1 = DefaultHasher::new();
    0u8.hash(&mut h1);
    let mut h2 = DefaultHasher::new();
    1u8.hash(&mut h2);
    let mut d = HashWriter {
        a: &mut h1,
        b: Some(&mut h2),
    };
    for p in &st.procs {
        let _ = write!(d, "{p:?};");
    }
    // Channels in canonical `(to, from)` order, each queue in FIFO order:
    // independent events never send on the same channel, so this rendering
    // is invariant under commuting swaps even though the raw insertion
    // order of `pending` is not.
    let mut chans: Vec<(ProcId, ProcId)> = st.pending.iter().map(|m| (m.to, m.from)).collect();
    chans.sort_unstable();
    chans.dedup();
    for (to, from) in chans {
        let _ = write!(d, "m{from}>{to}:");
        for m in &st.pending {
            if m.to == to && m.from == from {
                let _ = write!(d, "{:x},", m.fp);
            }
        }
        let _ = write!(d, ";");
    }
    for (p, slot) in st.timers.iter().enumerate() {
        let _ = write!(d, "t{p}:{slot:?};");
    }
    let _ = write!(
        d,
        "c{:?};n{};e{:?};d{};k{}",
        st.crashed, st.now, st.events_at, st.drops_left, st.crashes_left
    );
    (u128::from(h1.finish()) << 64) | u128::from(h2.finish())
}

fn is_subset(a: &[SleepKey], b: &[SleepKey]) -> bool {
    a.iter().all(|k| b.binary_search(k).is_ok())
}

struct Dfs<'h, M, P, H> {
    hooks: &'h H,
    cfg: ExploreConfig,
    stats: ExploreStats,
    /// Visited states with the (depth, sleep set) they were explored
    /// under; a revisit prunes only when some entry had no less remaining
    /// depth *and* a subset of the current sleep set.
    visited: HashMap<u128, Vec<(usize, Vec<SleepKey>)>>,
    witness: Option<Witness>,
    depth_cut: bool,
    schedule: Vec<u32>,
    _m: std::marker::PhantomData<fn() -> (M, P)>,
}

impl<M, P, H> Dfs<'_, M, P, H>
where
    M: Clone + Debug,
    P: Process<M> + Clone + Debug,
    H: ExploreHooks<M, P>,
{
    fn budget_over(&self) -> bool {
        self.stats.states >= self.cfg.max_states
            || self.stats.transitions >= self.cfg.max_transitions
    }

    fn run(&mut self, st: &ExpState<M, P>, sleep: Vec<SleepEnt<M>>, limit: usize) {
        if self.witness.is_some() {
            return;
        }
        if self.budget_over() {
            self.stats.budget_exhausted = true;
            return;
        }
        self.stats.states += 1;
        let depth = self.schedule.len();
        self.stats.max_depth_reached = self.stats.max_depth_reached.max(depth);

        let choices = enabled_choices(st, self.hooks);
        if choices.is_empty() || self.hooks.done(&st.procs) {
            self.stats.schedules += 1;
            if let Some(verdict) = self.hooks.check(&st.procs) {
                self.witness = Some(Witness {
                    schedule: self.schedule.clone(),
                    verdict,
                });
            }
            return;
        }
        if depth >= limit {
            self.depth_cut = true;
            return;
        }

        let key = state_hash(st);
        let mut sleep_keys: Vec<SleepKey> = sleep.iter().map(|e| (e.from, e.to, e.fp)).collect();
        sleep_keys.sort_unstable();
        sleep_keys.dedup();
        let entries = self.visited.entry(key).or_default();
        if entries
            .iter()
            .any(|(d0, z0)| *d0 <= depth && is_subset(z0, &sleep_keys))
        {
            return;
        }
        entries.retain(|(d0, z0)| !(*d0 >= depth && is_subset(&sleep_keys, z0)));
        entries.push((depth, sleep_keys));

        let mut cur_sleep = sleep;
        for (i, &c) in choices.iter().enumerate() {
            if self.witness.is_some() {
                return;
            }
            if self.budget_over() {
                self.stats.budget_exhausted = true;
                return;
            }
            if let Choice::Deliver(idx) = c {
                let m = &st.pending[idx];
                if cur_sleep
                    .iter()
                    .any(|e| e.from == m.from && e.to == m.to && e.fp == m.fp)
                {
                    continue;
                }
            }
            let mut child = st.clone();
            let before = self.hooks.decided(&child.procs);
            execute(&mut child, c, self.cfg.seed);
            self.stats.transitions += 1;
            self.schedule.push(i as u32);
            if self.hooks.decided(&child.procs) > before {
                if let Some(verdict) = self.hooks.check(&child.procs) {
                    self.stats.max_depth_reached =
                        self.stats.max_depth_reached.max(self.schedule.len());
                    self.witness = Some(Witness {
                        schedule: self.schedule.clone(),
                        verdict,
                    });
                    self.schedule.pop();
                    return;
                }
            }
            let child_sleep: Vec<SleepEnt<M>> = if self.cfg.por {
                cur_sleep
                    .iter()
                    .filter(|e| self.sleeps_through(st, e, c))
                    .cloned()
                    .collect()
            } else {
                Vec::new()
            };
            self.run(&child, child_sleep, limit);
            self.schedule.pop();
            if self.cfg.por {
                if let Choice::Deliver(idx) = c {
                    let m = &st.pending[idx];
                    cur_sleep.push(SleepEnt {
                        from: m.from,
                        to: m.to,
                        fp: m.fp,
                        msg: m.msg.clone(),
                    });
                }
            }
        }
    }

    /// Whether sleep entry `e` stays asleep across executing `c`:
    /// deliveries to a different process always commute; same-process
    /// deliveries commute when the hooks say the messages do; everything
    /// else wakes the entry.
    fn sleeps_through(&self, st: &ExpState<M, P>, e: &SleepEnt<M>, c: Choice) -> bool {
        match c {
            Choice::Deliver(idx) => {
                let m = &st.pending[idx];
                m.to != e.to || self.hooks.independent(&e.msg, &m.msg)
            }
            _ => false,
        }
    }
}

fn init_state<M, P>(procs: Vec<P>, cfg: &ExploreConfig) -> ExpState<M, P>
where
    M: Clone + Debug,
    P: Process<M> + Clone,
{
    let n = procs.len();
    let mut st = ExpState {
        procs,
        pending: Vec::new(),
        timers: vec![Vec::new(); n],
        crashed: vec![false; n],
        now: 0,
        events_at: vec![0; n],
        drops_left: cfg.drop_budget,
        crashes_left: cfg.crash_budget,
    };
    for p in 0..n as ProcId {
        run_event(&mut st, p, cfg.seed, |proc, ctx| proc.on_start(ctx));
    }
    st
}

/// Explores every interleaving of `procs` (which have not been started;
/// the explorer runs `on_start` itself, in process-id order) up to the
/// configured budgets, iteratively deepening so the first witness found
/// is minimal-depth. Deterministic: a pure function of the drivers, the
/// hooks, and `cfg`.
pub fn explore<M, P, H>(procs: Vec<P>, hooks: &H, cfg: ExploreConfig) -> ExploreOutcome
where
    M: Clone + Debug,
    P: Process<M> + Clone + Debug,
    H: ExploreHooks<M, P>,
{
    let init = init_state(procs, &cfg);
    let mut agg = ExploreStats::default();
    let step = cfg.deepen_step.max(1);
    let max_depth = cfg.max_depth.max(1);
    let mut limit = step.min(max_depth);
    loop {
        let mut dfs = Dfs {
            hooks,
            cfg,
            stats: ExploreStats {
                states: agg.states,
                transitions: agg.transitions,
                ..ExploreStats::default()
            },
            visited: HashMap::new(),
            witness: None,
            depth_cut: false,
            schedule: Vec::new(),
            _m: std::marker::PhantomData,
        };
        dfs.run(&init, Vec::new(), limit);
        agg.states = dfs.stats.states;
        agg.transitions = dfs.stats.transitions;
        agg.schedules += dfs.stats.schedules;
        agg.max_depth_reached = agg.max_depth_reached.max(dfs.stats.max_depth_reached);
        agg.iterations += 1;
        agg.budget_exhausted |= dfs.stats.budget_exhausted;
        if let Some(witness) = dfs.witness {
            return ExploreOutcome {
                stats: agg,
                witness: Some(witness),
            };
        }
        if !dfs.depth_cut && !dfs.stats.budget_exhausted {
            // No branch was cut anywhere: the whole reachable space fits
            // within this limit, so deepening further finds nothing new.
            agg.complete = true;
            return ExploreOutcome {
                stats: agg,
                witness: None,
            };
        }
        if agg.budget_exhausted || limit >= max_depth {
            return ExploreOutcome {
                stats: agg,
                witness: None,
            };
        }
        limit = (limit + step).min(max_depth);
    }
}

/// What a schedule replay produces: the drivers after the last step, a
/// deterministic one-line description per executed step, and the hooks'
/// verdict (checked at every decision increase and once at the end).
#[derive(Debug)]
pub struct Replay<P> {
    /// The drivers after the schedule ran.
    pub procs: Vec<P>,
    /// One rendered line per executed step.
    pub steps: Vec<String>,
    /// The first violation observed, if any.
    pub verdict: Option<String>,
}

fn describe<M, P>(st: &ExpState<M, P>, c: Choice) -> String {
    match c {
        Choice::Deliver(i) => {
            let m = &st.pending[i];
            format!("deliver {}->{} fp={:016x}", m.from, m.to, m.fp)
        }
        Choice::Timer(p) => {
            let (due, token) = st.timers[p as usize]
                .iter()
                .copied()
                .min_by_key(|(d, _)| *d)
                .expect("timer choice requires an armed timer");
            format!("timer p={p} token={token} due={due}")
        }
        Choice::Drop(i) => {
            let m = &st.pending[i];
            format!("drop {}->{} fp={:016x}", m.from, m.to, m.fp)
        }
        Choice::Crash(p) => format!("crash p={p}"),
        Choice::Recover(p) => format!("recover p={p}"),
    }
}

/// Replays a schedule produced by [`explore`] step for step. Exact by
/// construction: the explorer is a pure function of `(drivers, seed,
/// schedule)`, so the replay visits the same states the exploration did.
/// An index past the enabled-choice list (a schedule for a different
/// shape or seed) stops the replay with a diagnostic step line.
pub fn replay<M, P, H>(procs: Vec<P>, hooks: &H, cfg: ExploreConfig, schedule: &[u32]) -> Replay<P>
where
    M: Clone + Debug,
    P: Process<M> + Clone + Debug,
    H: ExploreHooks<M, P>,
{
    let mut st = init_state(procs, &cfg);
    let mut steps = Vec::new();
    let mut verdict = None;
    for (k, &idx) in schedule.iter().enumerate() {
        let choices = enabled_choices(&st, hooks);
        let Some(&c) = choices.get(idx as usize) else {
            steps.push(format!(
                "step {k}: index {idx} out of range ({} enabled)",
                choices.len()
            ));
            return Replay {
                procs: st.procs,
                steps,
                verdict,
            };
        };
        let desc = describe(&st, c);
        let before = hooks.decided(&st.procs);
        execute(&mut st, c, cfg.seed);
        steps.push(format!("step {k}: {desc} t={}", st.now));
        if verdict.is_none() && hooks.decided(&st.procs) > before {
            verdict = hooks.check(&st.procs);
        }
        if verdict.is_some() {
            break;
        }
    }
    if verdict.is_none() {
        verdict = hooks.check(&st.procs);
    }
    Replay {
        procs: st.procs,
        steps,
        verdict,
    }
}
