//! Lamport clocks and globally unique timestamps (§3.2 uses them to stamp
//! log entries; hybrid atomicity uses them to order commits).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Lamport timestamp: logical counter with the site id as tiebreak, so
/// timestamps are **totally ordered and unique** across the system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp {
    /// Logical counter (majority component).
    pub counter: u64,
    /// Issuing site/process id (tiebreak component).
    pub node: u32,
}

impl Timestamp {
    /// The zero timestamp, earlier than anything a clock issues.
    pub const ZERO: Timestamp = Timestamp {
        counter: 0,
        node: 0,
    };
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.counter, self.node)
    }
}

/// A Lamport clock (one per process).
///
/// # Example
///
/// ```
/// use quorumcc_sim::clock::LamportClock;
///
/// let mut a = LamportClock::new(0);
/// let mut b = LamportClock::new(1);
/// let t1 = a.tick();
/// b.observe(t1);
/// let t2 = b.tick();
/// assert!(t2 > t1); // happened-before is respected
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportClock {
    counter: u64,
    node: u32,
}

impl LamportClock {
    /// A fresh clock for process `node`.
    pub fn new(node: u32) -> Self {
        LamportClock { counter: 0, node }
    }

    /// Advances the clock and issues a new unique timestamp.
    pub fn tick(&mut self) -> Timestamp {
        self.counter += 1;
        Timestamp {
            counter: self.counter,
            node: self.node,
        }
    }

    /// Merges an observed timestamp (message receipt).
    pub fn observe(&mut self, ts: Timestamp) {
        self.counter = self.counter.max(ts.counter);
    }

    /// The last issued counter value.
    pub fn current(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let mut c = LamportClock::new(3);
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
    }

    #[test]
    fn timestamps_are_unique_across_nodes() {
        let mut a = LamportClock::new(0);
        let mut b = LamportClock::new(1);
        let ta = a.tick();
        let tb = b.tick();
        assert_ne!(ta, tb); // same counter, different node
        assert!(ta < tb); // node id breaks the tie
    }

    #[test]
    fn observe_respects_happened_before() {
        let mut a = LamportClock::new(0);
        let mut b = LamportClock::new(1);
        for _ in 0..10 {
            a.tick();
        }
        let t = a.tick();
        b.observe(t);
        assert!(b.tick() > t);
    }

    #[test]
    fn zero_is_minimal() {
        let mut c = LamportClock::new(0);
        assert!(Timestamp::ZERO < c.tick());
    }

    #[test]
    fn display() {
        assert_eq!(
            Timestamp {
                counter: 4,
                node: 2
            }
            .to_string(),
            "4.2"
        );
    }
}
