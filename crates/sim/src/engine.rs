//! The deterministic discrete-event engine: processes exchange messages
//! over a lossy, delaying, crash- and partition-prone network.
//!
//! Determinism: executions are a pure function of (processes, network
//! config, fault plan, seed). Events are ordered by `(time, sequence)`;
//! all randomness (delays, drops) comes from one seeded RNG.

use crate::fault::{FaultPlan, ProcId, SimTime};
use crate::trace::{DropCause, TraceAction, TraceBuffer, TraceConfig, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Network timing and loss parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Minimum message delay (ticks).
    pub min_delay: SimTime,
    /// Maximum message delay (ticks, inclusive).
    pub max_delay: SimTime,
    /// Probability that a message is silently lost.
    pub drop_prob: f64,
    /// Probability that a delivered message is delivered a second time
    /// (an independent copy with its own delay draw).
    pub dup_prob: f64,
    /// Reorder aggressiveness: each delivered message suffers an extra
    /// uniform delay in `0..=reorder_window` ticks, letting later sends
    /// overtake it. `0` (the default) preserves the plain delay model.
    pub reorder_window: SimTime,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            min_delay: 1,
            max_delay: 10,
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_window: 0,
        }
    }
}

impl NetworkConfig {
    /// Whether the loss/duplication/reorder probabilities are all valid
    /// (`drop_prob` and `dup_prob` in `[0, 1]`).
    pub fn probabilities_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.drop_prob) && (0.0..=1.0).contains(&self.dup_prob)
    }
}

/// A process in the simulation: reacts to messages and timers by emitting
/// actions through [`Ctx`].
pub trait Process<M> {
    /// Called once at time 0.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called on message delivery.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ProcId, msg: M);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}

    /// Called when the process recovers from a crash interval (at its
    /// `until` tick, before any same-tick deliveries). Processes model
    /// volatile state by discarding and rebuilding it here; the default
    /// keeps today's freeze-and-thaw semantics.
    fn on_recover(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

/// The execution context handed to a process: the only way to affect the
/// world. Actions are buffered and applied when the handler returns.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    now: SimTime,
    me: ProcId,
    rng: &'a mut StdRng,
    tracer: &'a mut Tracer,
    outbox: Vec<(ProcId, M, u64)>,
    timers: Vec<(SimTime, u64)>,
}

impl<M> Ctx<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's id.
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// Sends `msg` to `to` (subject to delay, loss, crashes, partitions).
    pub fn send(&mut self, to: ProcId, msg: M) {
        self.outbox.push((to, msg, 1));
    }

    /// Sends a message that stands for `weight` logical payloads — a
    /// batch envelope. The network treats it as one message (one delay,
    /// one loss draw, one delivery), but [`SimStats::payload_msgs`]
    /// advances by `weight`, so telemetry can report both the physical
    /// message count (post-batching) and the logical payload count the
    /// same run would have cost unbatched.
    pub fn send_weighted(&mut self, to: ProcId, msg: M, weight: u64) {
        self.outbox.push((to, msg, weight.max(1)));
    }

    /// Schedules `on_timer(token)` after `delay` ticks.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.timers.push((delay.max(1), token));
    }

    /// Deterministic per-run randomness for the process's own decisions.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Records a protocol-level trace event at this site (no-op unless the
    /// run was built with an enabled [`TraceConfig`]).
    pub fn trace(&mut self, action: TraceAction) {
        self.tracer.record_local(self.now, self.me, action);
    }

    /// Whether tracing is enabled — lets callers skip building expensive
    /// event payloads when nobody is listening.
    pub fn tracing(&self) -> bool {
        self.tracer.enabled()
    }
}

impl<'a, M> Ctx<'a, M> {
    /// A context detached from any running [`Sim`] — the interleaving
    /// explorer executes handlers one event at a time and collects the
    /// buffered effects itself via [`Ctx::into_effects`].
    pub(crate) fn detached(
        now: SimTime,
        me: ProcId,
        rng: &'a mut StdRng,
        tracer: &'a mut Tracer,
    ) -> Self {
        Ctx {
            now,
            me,
            rng,
            tracer,
            outbox: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Consumes the context, yielding the buffered sends
    /// `(to, msg, weight)` and timers `(delay, token)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_effects(self) -> (Vec<(ProcId, M, u64)>, Vec<(SimTime, u64)>) {
        (self.outbox, self.timers)
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: ProcId, msg: M, stamp: u64 },
    Timer { token: u64 },
    Recover,
}

#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    to: ProcId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Counters describing one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages submitted to the network.
    pub sent: usize,
    /// Logical payloads submitted: like `sent`, but a batch envelope sent
    /// with [`Ctx::send_weighted`] counts its full weight. Equal to
    /// `sent` when nothing batches.
    pub payload_msgs: usize,
    /// Messages delivered.
    pub delivered: usize,
    /// Messages lost (random drop, partition, or crashed endpoint).
    pub dropped: usize,
    /// Messages delivered a second time (`NetworkConfig::dup_prob`).
    pub duplicated: usize,
    /// Messages that drew a non-zero reorder penalty
    /// (`NetworkConfig::reorder_window`).
    pub reordered: usize,
    /// Timer events fired.
    pub timers: usize,
    /// Final simulated time.
    pub end_time: SimTime,
}

/// The simulator.
///
/// # Example
///
/// ```
/// use quorumcc_sim::engine::{Ctx, NetworkConfig, Process, Sim};
/// use quorumcc_sim::fault::FaultPlan;
///
/// /// Ping-pong: process 0 sends `n`; everyone replies `n - 1` until 0.
/// struct Pong(u32);
/// impl Process<u32> for Pong {
///     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
///         if ctx.me() == 0 {
///             ctx.send(1, 4);
///         }
///     }
///     fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: u32, n: u32) {
///         self.0 = n;
///         if n > 0 {
///             ctx.send(from, n - 1);
///         }
///     }
/// }
///
/// let mut sim = Sim::new(
///     vec![Pong(99), Pong(99)],
///     NetworkConfig::default(),
///     FaultPlan::none(),
///     42,
/// );
/// let stats = sim.run(1_000);
/// assert_eq!(stats.delivered, 5);
/// assert_eq!(sim.process(0).0 + sim.process(1).0, 1); // 1 and 0
/// ```
#[derive(Debug)]
pub struct Sim<M, P> {
    procs: Vec<P>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    net: NetworkConfig,
    faults: FaultPlan,
    stats: SimStats,
    tracer: Tracer,
}

impl<M: Clone, P: Process<M>> Sim<M, P> {
    /// Builds a simulation over the given processes (ids are their
    /// indices). Tracing is disabled; use [`Sim::with_trace`] to capture.
    pub fn new(procs: Vec<P>, net: NetworkConfig, faults: FaultPlan, seed: u64) -> Self {
        Sim::with_trace(procs, net, faults, seed, TraceConfig::disabled())
    }

    /// Like [`Sim::new`] but with an explicit trace-capture policy. When
    /// enabled, the fault schedule is recorded up front as a prologue and
    /// every network, timer, and process-level event thereafter.
    pub fn with_trace(
        procs: Vec<P>,
        net: NetworkConfig,
        faults: FaultPlan,
        seed: u64,
        trace: TraceConfig,
    ) -> Self {
        assert!(net.min_delay <= net.max_delay, "min_delay > max_delay");
        assert!(
            net.probabilities_valid(),
            "drop_prob / dup_prob outside [0, 1]"
        );
        let mut tracer = Tracer::new(trace, procs.len());
        tracer.prologue(&faults);
        let mut sim = Sim {
            procs,
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            net,
            faults,
            stats: SimStats::default(),
            tracer,
        };
        // Schedule one recovery event per crash interval up front. The low
        // sequence numbers make recoveries run before any same-tick
        // delivery, so a recovering process rebuilds state first.
        let crashes: Vec<_> = sim.faults.crashes().to_vec();
        for c in crashes {
            sim.seq += 1;
            sim.queue.push(Reverse(Scheduled {
                at: c.until,
                seq: sim.seq,
                to: c.proc,
                kind: EventKind::Recover,
            }));
        }
        sim
    }

    /// Takes the captured trace out of the simulator (`None` when tracing
    /// was disabled). Call after [`Sim::run`].
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.tracer.take()
    }

    /// Immutable access to a process (e.g. to read results after `run`).
    pub fn process(&self, id: ProcId) -> &P {
        &self.procs[id as usize]
    }

    /// Mutable access to a process between runs.
    pub fn process_mut(&mut self, id: ProcId) -> &mut P {
        &mut self.procs[id as usize]
    }

    /// All processes.
    pub fn processes(&self) -> &[P] {
        &self.procs
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Runs `on_start` for every process, then drains events until the
    /// queue is empty or `max_time` is reached. Returns the run's
    /// statistics.
    pub fn run(&mut self, max_time: SimTime) -> SimStats {
        // Start processes in id order (only on the first run).
        if self.now == 0 && self.stats.delivered == 0 && self.stats.timers == 0 {
            for id in 0..self.procs.len() as ProcId {
                self.with_ctx(id, |p, ctx| p.on_start(ctx));
            }
        }
        self.run_until(max_time)
    }

    /// Continues draining events until the queue is empty or `max_time`.
    pub fn run_until(&mut self, max_time: SimTime) -> SimStats {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if ev.at > max_time {
                // Leave the event unprocessed; time stops at max_time.
                self.queue.push(Reverse(ev));
                break;
            }
            self.now = ev.at;
            let to = ev.to;
            if self.faults.is_crashed(to, self.now) {
                // A recovery swallowed by an overlapping crash interval is
                // not an occurrence at all: skip it without counting.
                if matches!(ev.kind, EventKind::Recover) {
                    continue;
                }
                self.stats.dropped += 1;
                if let EventKind::Deliver { .. } = ev.kind {
                    self.tracer.record_local(
                        self.now,
                        to,
                        TraceAction::Drop {
                            to,
                            cause: DropCause::Crashed,
                        },
                    );
                }
                continue;
            }
            match ev.kind {
                EventKind::Deliver { from, msg, stamp } => {
                    self.stats.delivered += 1;
                    self.tracer.record_deliver(self.now, to, from, stamp);
                    self.with_ctx(to, |p, ctx| p.on_message(ctx, from, msg));
                }
                EventKind::Timer { token } => {
                    self.stats.timers += 1;
                    self.tracer
                        .record_local(self.now, to, TraceAction::TimerFire { token });
                    self.with_ctx(to, |p, ctx| p.on_timer(ctx, token));
                }
                EventKind::Recover => {
                    self.tracer.record_local(self.now, to, TraceAction::Recover);
                    self.with_ctx(to, |p, ctx| p.on_recover(ctx));
                }
            }
        }
        self.stats.end_time = self.now;
        self.stats
    }

    fn with_ctx(&mut self, id: ProcId, f: impl FnOnce(&mut P, &mut Ctx<'_, M>)) {
        let mut ctx = Ctx {
            now: self.now,
            me: id,
            rng: &mut self.rng,
            tracer: &mut self.tracer,
            outbox: Vec::new(),
            timers: Vec::new(),
        };
        // Split borrow: the process is taken by index; ctx holds only
        // rng and the tracer.
        {
            let (left, rest) = self.procs.split_at_mut(id as usize);
            let _ = left;
            f(&mut rest[0], &mut ctx);
        }
        let Ctx { outbox, timers, .. } = ctx;
        for (to, msg, weight) in outbox {
            self.stats.sent += 1;
            self.stats.payload_msgs += weight as usize;
            // Random loss and partitions are assessed at send time,
            // receiver crashes at delivery time.
            let dropped = if self.rng.gen_bool(self.net.drop_prob) {
                Some(DropCause::Random)
            } else if self.faults.is_partitioned(id, to, self.now) {
                Some(DropCause::Partition)
            } else {
                None
            };
            if let Some(cause) = dropped {
                self.stats.dropped += 1;
                self.tracer
                    .record_local(self.now, id, TraceAction::Drop { to, cause });
                continue;
            }
            let stamp = self.tracer.record_send(self.now, id, to);
            let mut delay = self.rng.gen_range(self.net.min_delay..=self.net.max_delay);
            // Chaos draws are gated on their knobs being set so the RNG
            // stream — and thus every existing seed's execution — is
            // untouched under the default configuration.
            if self.net.reorder_window > 0 {
                let penalty = self.rng.gen_range(0..=self.net.reorder_window);
                if penalty > 0 {
                    self.stats.reordered += 1;
                    self.tracer
                        .record_local(self.now, id, TraceAction::NetReorder { to });
                    delay += penalty;
                }
            }
            if self.net.dup_prob > 0.0 && self.rng.gen_bool(self.net.dup_prob) {
                let dup_delay = self.rng.gen_range(self.net.min_delay..=self.net.max_delay);
                self.stats.duplicated += 1;
                self.tracer
                    .record_local(self.now, id, TraceAction::NetDup { to });
                self.seq += 1;
                self.queue.push(Reverse(Scheduled {
                    at: self.now + dup_delay,
                    seq: self.seq,
                    to,
                    kind: EventKind::Deliver {
                        from: id,
                        msg: msg.clone(),
                        stamp,
                    },
                }));
            }
            self.seq += 1;
            self.queue.push(Reverse(Scheduled {
                at: self.now + delay,
                seq: self.seq,
                to,
                kind: EventKind::Deliver {
                    from: id,
                    msg,
                    stamp,
                },
            }));
        }
        for (delay, token) in timers {
            self.seq += 1;
            self.queue.push(Reverse(Scheduled {
                at: self.now + delay,
                seq: self.seq,
                to: id,
                kind: EventKind::Timer { token },
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood: node 0 broadcasts; others record receipt time.
    struct Flood {
        got: Option<SimTime>,
        n: u32,
    }

    impl Process<()> for Flood {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.me() == 0 {
                for i in 1..self.n {
                    ctx.send(i, ());
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _from: ProcId, _msg: ()) {
            self.got = Some(ctx.now());
        }
    }

    fn flood(n: u32) -> Vec<Flood> {
        (0..n).map(|_| Flood { got: None, n }).collect()
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut sim = Sim::new(flood(5), NetworkConfig::default(), FaultPlan::none(), 1);
        let stats = sim.run(1_000);
        assert_eq!(stats.sent, 4);
        assert_eq!(stats.delivered, 4);
        for i in 1..5 {
            assert!(sim.process(i).got.is_some());
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut sim = Sim::new(flood(5), NetworkConfig::default(), FaultPlan::none(), seed);
            sim.run(1_000);
            (0..5).map(|i| sim.process(i).got).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        // Different seeds almost surely differ in some delivery time.
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn crashed_receiver_drops_messages() {
        let mut faults = FaultPlan::none();
        faults.crash(2, 0, 1_000_000);
        let mut sim = Sim::new(flood(4), NetworkConfig::default(), faults, 1);
        let stats = sim.run(1_000);
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.dropped, 1);
        assert!(sim.process(2).got.is_none());
    }

    #[test]
    fn partition_severs_cross_block_traffic() {
        let mut faults = FaultPlan::none();
        faults.partition([0, 1], 0, 1_000_000);
        let mut sim = Sim::new(flood(4), NetworkConfig::default(), faults, 1);
        let stats = sim.run(1_000);
        // Only node 1 shares node 0's block.
        assert_eq!(stats.delivered, 1);
        assert!(sim.process(1).got.is_some());
        assert!(sim.process(2).got.is_none());
    }

    #[test]
    fn random_drops_lose_messages() {
        let net = NetworkConfig {
            drop_prob: 1.0,
            ..NetworkConfig::default()
        };
        let mut sim = Sim::new(flood(3), net, FaultPlan::none(), 1);
        let stats = sim.run(1_000);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped, 2);
    }

    /// Timers fire at the right times and respect crashes.
    struct Ticker {
        fired: Vec<(SimTime, u64)>,
    }
    impl Process<()> for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(5, 1);
            ctx.set_timer(10, 2);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: ProcId, _msg: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
            self.fired.push((ctx.now(), token));
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Sim::new(
            vec![Ticker { fired: Vec::new() }],
            NetworkConfig::default(),
            FaultPlan::none(),
            1,
        );
        sim.run(1_000);
        assert_eq!(sim.process(0).fired, vec![(5, 1), (10, 2)]);
    }

    #[test]
    fn timers_skipped_while_crashed() {
        let mut faults = FaultPlan::none();
        faults.crash(0, 4, 6); // swallow the t=5 timer
        let mut sim = Sim::new(
            vec![Ticker { fired: Vec::new() }],
            NetworkConfig::default(),
            faults,
            1,
        );
        sim.run(1_000);
        assert_eq!(sim.process(0).fired, vec![(10, 2)]);
    }

    #[test]
    fn duplication_delivers_twice() {
        let net = NetworkConfig {
            dup_prob: 1.0,
            ..NetworkConfig::default()
        };
        let mut sim = Sim::new(flood(3), net, FaultPlan::none(), 1);
        let stats = sim.run(1_000);
        assert_eq!(stats.sent, 2);
        assert_eq!(stats.duplicated, 2);
        assert_eq!(stats.delivered, 4);
    }

    #[test]
    fn reorder_window_defers_some_messages() {
        let net = NetworkConfig {
            reorder_window: 50,
            ..NetworkConfig::default()
        };
        let run = |seed| {
            let mut sim = Sim::new(flood(8), net, FaultPlan::none(), seed);
            let stats = sim.run(1_000);
            let got: Vec<_> = (0..8).map(|i| sim.process(i).got).collect();
            (stats, got)
        };
        let (stats, _) = run(5);
        assert!(stats.reordered > 0, "window 50 over 7 sends must defer one");
        assert_eq!(stats.delivered, 7);
        // Still a pure function of the seed.
        assert_eq!(run(5), run(5));
    }

    /// Records recovery times.
    struct Phoenix {
        recovered: Vec<SimTime>,
    }
    impl Process<()> for Phoenix {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            // Keep the queue non-empty past the crash window.
            ctx.set_timer(100, 0);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: ProcId, _msg: ()) {}
        fn on_recover(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.recovered.push(ctx.now());
        }
    }

    #[test]
    fn recovery_hook_fires_at_crash_end() {
        let mut faults = FaultPlan::none();
        faults.crash(0, 4, 6);
        let mut sim = Sim::new(
            vec![Phoenix {
                recovered: Vec::new(),
            }],
            NetworkConfig::default(),
            faults,
            1,
        );
        sim.run(1_000);
        assert_eq!(sim.process(0).recovered, vec![6]);
    }

    #[test]
    fn overlapping_crash_swallows_inner_recovery() {
        let mut faults = FaultPlan::none();
        faults.crash(0, 4, 6).crash(0, 5, 20);
        let mut sim = Sim::new(
            vec![Phoenix {
                recovered: Vec::new(),
            }],
            NetworkConfig::default(),
            faults,
            1,
        );
        let stats = sim.run(1_000);
        // The t=6 recovery lands inside the second interval: suppressed,
        // and not counted as a drop.
        assert_eq!(sim.process(0).recovered, vec![20]);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn traced_run_captures_sends_and_delivers() {
        let mut sim = Sim::with_trace(
            flood(3),
            NetworkConfig::default(),
            FaultPlan::none(),
            1,
            TraceConfig::unbounded(),
        );
        sim.run(1_000);
        let buf = sim.take_trace().expect("tracing enabled");
        let sends = buf.events().iter().filter(|e| e.action.kind() == "send");
        let delivers = buf.events().iter().filter(|e| e.action.kind() == "deliver");
        assert_eq!(sends.count(), 2);
        assert_eq!(delivers.count(), 2);
        // Delivery Lamport stamps exceed their matching send stamps.
        for e in buf.events() {
            if let TraceAction::Deliver { from } = e.action {
                let send_stamp = buf
                    .events()
                    .iter()
                    .find(|s| {
                        s.site == from
                            && matches!(s.action, TraceAction::Send { to } if to == e.site)
                    })
                    .unwrap()
                    .lamport;
                assert!(e.lamport > send_stamp);
            }
        }
    }

    #[test]
    fn untraced_run_yields_no_trace() {
        let mut sim = Sim::new(flood(3), NetworkConfig::default(), FaultPlan::none(), 1);
        sim.run(1_000);
        assert!(sim.take_trace().is_none());
    }

    #[test]
    fn traced_and_untraced_runs_are_identical() {
        // Capturing a trace must not perturb the execution: the RNG stream
        // is consumed identically either way.
        let run = |trace| {
            let mut sim = Sim::with_trace(
                flood(5),
                NetworkConfig::default(),
                FaultPlan::none(),
                3,
                trace,
            );
            let stats = sim.run(1_000);
            let got: Vec<_> = (0..5).map(|i| sim.process(i).got).collect();
            (stats, got)
        };
        assert_eq!(run(TraceConfig::disabled()), run(TraceConfig::unbounded()));
    }

    #[test]
    fn trace_render_is_deterministic() {
        let render = || {
            let mut faults = FaultPlan::none();
            faults.crash(2, 5, 30);
            let mut sim = Sim::with_trace(
                flood(5),
                NetworkConfig::default(),
                faults,
                9,
                TraceConfig::unbounded(),
            );
            sim.run(1_000);
            sim.take_trace().unwrap().render()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn max_time_stops_the_run() {
        let mut sim = Sim::new(
            vec![Ticker { fired: Vec::new() }],
            NetworkConfig::default(),
            FaultPlan::none(),
            1,
        );
        let stats = sim.run(7);
        assert_eq!(sim.process(0).fired, vec![(5, 1)]);
        assert_eq!(stats.timers, 1);
        // Resuming picks the pending timer back up.
        sim.run_until(1_000);
        assert_eq!(sim.process(0).fired.len(), 2);
    }
}
