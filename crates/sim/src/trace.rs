//! Structured run traces: a ring-buffered, zero-overhead-when-disabled
//! record of everything the simulator and its processes do.
//!
//! Every [`TraceEvent`] is stamped with the simulated time, the site it
//! happened at, and a per-site Lamport counter (message deliveries observe
//! the sender's stamp, so the trace's Lamport order refines causality).
//! The engine records network-level events (send / deliver / drop / timer)
//! and the fault schedule; processes record protocol-level events through
//! [`Ctx::trace`](crate::engine::Ctx::trace).
//!
//! Capture is deterministic: because the engine itself is a pure function
//! of (processes, network, faults, seed), the same seed yields a
//! byte-identical [`TraceBuffer::render`] — which the test suite asserts.

use crate::clock::{LamportClock, Timestamp};
use crate::fault::{FaultPlan, ProcId, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// Capture policy for a run's trace.
///
/// The default is [`TraceConfig::disabled`]: no events are recorded and
/// the only cost on every hot path is a single branch on a `bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    enabled: bool,
    capacity: usize, // 0 = unbounded
}

impl TraceConfig {
    /// No capture at all (the default).
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 0,
        }
    }

    /// Capture into a ring of at most `capacity` events; once full, the
    /// oldest events are overwritten (and counted — see
    /// [`TraceBuffer::overwritten`]).
    pub fn ring(capacity: usize) -> Self {
        TraceConfig {
            enabled: true,
            capacity: capacity.max(1),
        }
    }

    /// Capture every event for the whole run.
    pub fn unbounded() -> Self {
        TraceConfig {
            enabled: true,
            capacity: 0,
        }
    }

    /// Whether any capture happens.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The ring capacity, or `None` when unbounded (or disabled).
    pub fn capacity(&self) -> Option<usize> {
        (self.capacity > 0).then_some(self.capacity)
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

/// Why the network dropped a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Random loss (`NetworkConfig::drop_prob`).
    Random,
    /// Sender and receiver were in different partition blocks.
    Partition,
    /// The receiver was crashed at delivery time.
    Crashed,
}

impl fmt::Display for DropCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DropCause::Random => "random",
            DropCause::Partition => "partition",
            DropCause::Crashed => "crashed",
        })
    }
}

/// Which quorum phase an operation is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Initial quorum: collect and merge logs.
    Read,
    /// Final quorum: push the updated view.
    Write,
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PhaseKind::Read => "read",
            PhaseKind::Write => "write",
        })
    }
}

/// Why a concurrency-control conflict was declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// A dependency lock held by an uncommitted action (hybrid / 2PL).
    Lock,
    /// A static-timestamp writer arrived after a later read (Reed).
    TooLate,
    /// The view already serialized a dependent action in the past.
    DirtyPast,
    /// A repository-side read reservation blocked the write.
    Reservation,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConflictKind::Lock => "lock",
            ConflictKind::TooLate => "too-late",
            ConflictKind::DirtyPast => "dirty-past",
            ConflictKind::Reservation => "reservation",
        })
    }
}

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// Concurrency-control conflict.
    Conflict,
    /// A quorum stayed unreachable past the retry budget.
    Unavailable,
    /// The operation carried a stale configuration epoch; it restarts
    /// under the adopted configuration.
    StaleEpoch,
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AbortCause::Conflict => "conflict",
            AbortCause::Unavailable => "unavailable",
            AbortCause::StaleEpoch => "stale-epoch",
        })
    }
}

/// What happened. Network and fault events come from the engine;
/// protocol events are recorded by processes via
/// [`Ctx::trace`](crate::engine::Ctx::trace). Identifiers are plain
/// integers so the trace layer stays independent of the layers above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceAction {
    /// A message was submitted to the network.
    Send {
        /// Receiver.
        to: ProcId,
    },
    /// A message was delivered.
    Deliver {
        /// Sender.
        from: ProcId,
    },
    /// A message was lost.
    Drop {
        /// Intended receiver.
        to: ProcId,
        /// Why it was lost.
        cause: DropCause,
    },
    /// The network duplicated a message: a second, independently delayed
    /// copy was scheduled (`NetworkConfig::dup_prob`).
    NetDup {
        /// Receiver of both copies.
        to: ProcId,
    },
    /// The network delayed a message past its natural slot, letting later
    /// sends overtake it (`NetworkConfig::reorder_window`).
    NetReorder {
        /// Receiver.
        to: ProcId,
    },
    /// A repository answered a stale frontier with a full log transfer
    /// because the requested suffix had already fallen off its change
    /// journal — correct, but a bandwidth cliff worth surfacing.
    FullLogFallback {
        /// The object whose log was shipped in full.
        obj: u64,
        /// The stale frontier the reader presented.
        since: u64,
    },
    /// A batch envelope was flushed: `len` coalesced payloads left for
    /// one destination as a single network message. Only recorded when
    /// batching is enabled, so traces of unbatched runs are unchanged.
    BatchFlush {
        /// Destination of the envelope.
        to: ProcId,
        /// Number of payload messages coalesced into it.
        len: u64,
    },
    /// A timer fired.
    TimerFire {
        /// The token passed to `set_timer`.
        token: u64,
    },
    /// (Fault schedule) the site crashes, recovering at `until`.
    Crash {
        /// Recovery time (exclusive).
        until: SimTime,
    },
    /// (Fault schedule) the site recovers.
    Recover,
    /// (Fault schedule) the site enters a partition block until `until`.
    PartitionStart {
        /// Heal time (exclusive).
        until: SimTime,
    },
    /// (Fault schedule) the site's partition heals.
    PartitionHeal,
    /// A transaction (action) began.
    TxnBegin {
        /// The action id.
        action: u64,
    },
    /// A quorum phase started for a request.
    PhaseStart {
        /// Object operated on.
        obj: u64,
        /// Request id (matches the phase's timer token).
        req: u64,
        /// Read (initial quorum) or write (final quorum).
        phase: PhaseKind,
    },
    /// A quorum phase completed after `rtt` ticks.
    PhaseEnd {
        /// Object operated on.
        obj: u64,
        /// Request id.
        req: u64,
        /// Read or write.
        phase: PhaseKind,
        /// Logical round-trip: ticks from phase start to quorum assembly.
        rtt: SimTime,
    },
    /// A quorum phase timed out and was re-broadcast.
    PhaseRetry {
        /// Request id.
        req: u64,
        /// Read or write.
        phase: PhaseKind,
    },
    /// A read reservation (dependency lock) was recorded.
    Reserve {
        /// Object.
        obj: u64,
        /// Reserving action.
        action: u64,
    },
    /// A concurrency-control conflict was observed.
    Conflict {
        /// Object.
        obj: u64,
        /// The action that lost.
        action: u64,
        /// The action it conflicted with.
        with: u64,
        /// The conflict's flavor.
        kind: ConflictKind,
    },
    /// A transaction committed.
    Commit {
        /// The action id.
        action: u64,
    },
    /// A transaction aborted.
    Abort {
        /// The action id.
        action: u64,
        /// Conflict or unavailability.
        cause: AbortCause,
    },
    /// An anti-entropy round pushed logs to a peer.
    AntiEntropy {
        /// The gossip target.
        peer: ProcId,
    },
    /// A reconfiguration coordinator began installing a new epoch (the
    /// joint phase starts here).
    ReconfigStart {
        /// The epoch being installed.
        epoch: u64,
    },
    /// A site adopted a configuration state pushed by an install.
    ConfigAdopt {
        /// The adopted epoch.
        epoch: u64,
        /// The adopted state's total-order version (`2·epoch` for the
        /// joint state, `2·epoch + 1` once stable).
        version: u64,
    },
    /// The new epoch committed: a quorum of the new configuration
    /// acknowledged the stable install and the joint phase ended.
    ReconfigCommit {
        /// The committed epoch.
        epoch: u64,
    },
    /// An operation was refused for carrying a stale configuration
    /// version; the client aborts and retries under the current one.
    StaleEpoch {
        /// The version the operation carried.
        seen: u64,
        /// The version the site holds.
        current: u64,
    },
}

impl TraceAction {
    /// A stable, lowercase label for the event family — the unit of
    /// `--action` filtering in the CLI.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceAction::Send { .. } => "send",
            TraceAction::Deliver { .. } => "deliver",
            TraceAction::Drop { .. } => "net-drop",
            TraceAction::NetDup { .. } => "net-dup",
            TraceAction::NetReorder { .. } => "net-reorder",
            TraceAction::FullLogFallback { .. } => "full-log-fallback",
            TraceAction::BatchFlush { .. } => "batch-flush",
            TraceAction::TimerFire { .. } => "timer",
            TraceAction::Crash { .. } => "crash",
            TraceAction::Recover => "recover",
            TraceAction::PartitionStart { .. } => "partition-start",
            TraceAction::PartitionHeal => "partition-heal",
            TraceAction::TxnBegin { .. } => "txn-begin",
            TraceAction::PhaseStart { .. } => "phase-start",
            TraceAction::PhaseEnd { .. } => "phase-end",
            TraceAction::PhaseRetry { .. } => "phase-retry",
            TraceAction::Reserve { .. } => "reserve",
            TraceAction::Conflict { .. } => "conflict",
            TraceAction::Commit { .. } => "commit",
            TraceAction::Abort { .. } => "abort",
            TraceAction::AntiEntropy { .. } => "anti-entropy",
            TraceAction::ReconfigStart { .. } => "reconfig-start",
            TraceAction::ConfigAdopt { .. } => "config-adopt",
            TraceAction::ReconfigCommit { .. } => "reconfig-commit",
            TraceAction::StaleEpoch { .. } => "stale-epoch",
        }
    }

    /// The object the event concerns, when it concerns one.
    pub fn obj(&self) -> Option<u64> {
        match self {
            TraceAction::PhaseStart { obj, .. }
            | TraceAction::PhaseEnd { obj, .. }
            | TraceAction::Reserve { obj, .. }
            | TraceAction::Conflict { obj, .. }
            | TraceAction::FullLogFallback { obj, .. } => Some(*obj),
            _ => None,
        }
    }
}

impl fmt::Display for TraceAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceAction::Send { to } => write!(f, "send to={to}"),
            TraceAction::Deliver { from } => write!(f, "deliver from={from}"),
            TraceAction::Drop { to, cause } => write!(f, "net-drop to={to} cause={cause}"),
            TraceAction::NetDup { to } => write!(f, "net-dup to={to}"),
            TraceAction::NetReorder { to } => write!(f, "net-reorder to={to}"),
            TraceAction::FullLogFallback { obj, since } => {
                write!(f, "full-log-fallback obj={obj} since={since}")
            }
            TraceAction::BatchFlush { to, len } => {
                write!(f, "batch-flush to={to} len={len}")
            }
            TraceAction::TimerFire { token } => write!(f, "timer token={token}"),
            TraceAction::Crash { until } => write!(f, "crash until={until}"),
            TraceAction::Recover => write!(f, "recover"),
            TraceAction::PartitionStart { until } => write!(f, "partition-start until={until}"),
            TraceAction::PartitionHeal => write!(f, "partition-heal"),
            TraceAction::TxnBegin { action } => write!(f, "txn-begin action={action}"),
            TraceAction::PhaseStart { obj, req, phase } => {
                write!(f, "phase-start obj={obj} req={req} phase={phase}")
            }
            TraceAction::PhaseEnd {
                obj,
                req,
                phase,
                rtt,
            } => write!(f, "phase-end obj={obj} req={req} phase={phase} rtt={rtt}"),
            TraceAction::PhaseRetry { req, phase } => {
                write!(f, "phase-retry req={req} phase={phase}")
            }
            TraceAction::Reserve { obj, action } => {
                write!(f, "reserve obj={obj} action={action}")
            }
            TraceAction::Conflict {
                obj,
                action,
                with,
                kind,
            } => write!(
                f,
                "conflict obj={obj} action={action} with={with} kind={kind}"
            ),
            TraceAction::Commit { action } => write!(f, "commit action={action}"),
            TraceAction::Abort { action, cause } => {
                write!(f, "abort action={action} cause={cause}")
            }
            TraceAction::AntiEntropy { peer } => write!(f, "anti-entropy peer={peer}"),
            TraceAction::ReconfigStart { epoch } => write!(f, "reconfig-start epoch={epoch}"),
            TraceAction::ConfigAdopt { epoch, version } => {
                write!(f, "config-adopt epoch={epoch} version={version}")
            }
            TraceAction::ReconfigCommit { epoch } => write!(f, "reconfig-commit epoch={epoch}"),
            TraceAction::StaleEpoch { seen, current } => {
                write!(f, "stale-epoch seen={seen} current={current}")
            }
        }
    }
}

/// One captured event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub t: SimTime,
    /// The site it happened at.
    pub site: ProcId,
    /// The site's Lamport counter after the event (0 for fault-schedule
    /// prologue entries, which are plans rather than occurrences).
    pub lamport: u64,
    /// What happened.
    pub action: TraceAction,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8}] site={:<3} lam={:<6} {}",
            self.t, self.site, self.lamport, self.action
        )
    }
}

/// The captured trace of one run, harvested with
/// [`Sim::take_trace`](crate::engine::Sim::take_trace).
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    overwritten: u64,
}

impl TraceBuffer {
    /// The captured events, in capture order (which is execution order).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events the ring overwrote (0 when unbounded).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the whole trace in the canonical line format. Byte-stable:
    /// identical runs render identically, which the determinism tests
    /// compare directly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

/// The engine-side recorder. Lives inside `Sim`; processes reach it
/// through `Ctx::trace`.
#[derive(Debug)]
pub(crate) struct Tracer {
    enabled: bool,
    capacity: usize, // 0 = unbounded
    buf: VecDeque<TraceEvent>,
    overwritten: u64,
    clocks: Vec<LamportClock>,
}

impl Tracer {
    pub(crate) fn new(cfg: TraceConfig, n_procs: usize) -> Self {
        let clocks = if cfg.enabled {
            (0..n_procs as ProcId).map(LamportClock::new).collect()
        } else {
            Vec::new()
        };
        Tracer {
            enabled: cfg.enabled,
            capacity: cfg.capacity,
            buf: VecDeque::new(),
            overwritten: 0,
            clocks,
        }
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    fn push(&mut self, e: TraceEvent) {
        if self.capacity > 0 && self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.overwritten += 1;
        }
        self.buf.push_back(e);
    }

    /// Records the fault schedule as a prologue: one planned event per
    /// affected site, ordered by `(time, site, insertion)`.
    pub(crate) fn prologue(&mut self, faults: &FaultPlan) {
        if !self.enabled {
            return;
        }
        let mut planned: Vec<TraceEvent> = Vec::new();
        for c in faults.crashes() {
            planned.push(TraceEvent {
                t: c.from,
                site: c.proc,
                lamport: 0,
                action: TraceAction::Crash { until: c.until },
            });
            planned.push(TraceEvent {
                t: c.until,
                site: c.proc,
                lamport: 0,
                action: TraceAction::Recover,
            });
        }
        for p in faults.partitions() {
            for site in &p.block {
                planned.push(TraceEvent {
                    t: p.from,
                    site: *site,
                    lamport: 0,
                    action: TraceAction::PartitionStart { until: p.until },
                });
                planned.push(TraceEvent {
                    t: p.until,
                    site: *site,
                    lamport: 0,
                    action: TraceAction::PartitionHeal,
                });
            }
        }
        planned.sort_by_key(|e| (e.t, e.site));
        for e in planned {
            self.push(e);
        }
    }

    /// Records a local event at `site`, ticking its Lamport clock.
    #[inline]
    pub(crate) fn record_local(&mut self, t: SimTime, site: ProcId, action: TraceAction) {
        if !self.enabled {
            return;
        }
        let lamport = self.clocks[site as usize].tick().counter;
        self.push(TraceEvent {
            t,
            site,
            lamport,
            action,
        });
    }

    /// Records a send and returns the Lamport stamp the message carries.
    #[inline]
    pub(crate) fn record_send(&mut self, t: SimTime, site: ProcId, to: ProcId) -> u64 {
        if !self.enabled {
            return 0;
        }
        let lamport = self.clocks[site as usize].tick().counter;
        self.push(TraceEvent {
            t,
            site,
            lamport,
            action: TraceAction::Send { to },
        });
        lamport
    }

    /// Records a delivery, first observing the carried stamp so the
    /// receiver's counter jumps past the sender's.
    #[inline]
    pub(crate) fn record_deliver(&mut self, t: SimTime, site: ProcId, from: ProcId, stamp: u64) {
        if !self.enabled {
            return;
        }
        let clock = &mut self.clocks[site as usize];
        clock.observe(Timestamp {
            counter: stamp,
            node: from,
        });
        let lamport = clock.tick().counter;
        self.push(TraceEvent {
            t,
            site,
            lamport,
            action: TraceAction::Deliver { from },
        });
    }

    /// Hands the captured events out (leaves the tracer empty).
    pub(crate) fn take(&mut self) -> Option<TraceBuffer> {
        if !self.enabled {
            return None;
        }
        Some(TraceBuffer {
            events: self.buf.drain(..).collect(),
            overwritten: std::mem::take(&mut self.overwritten),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(TraceConfig::disabled(), 3);
        t.record_local(1, 0, TraceAction::Recover);
        assert_eq!(t.record_send(1, 0, 1), 0);
        assert!(t.take().is_none());
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut t = Tracer::new(TraceConfig::ring(2), 1);
        for token in 0..5u64 {
            t.record_local(token, 0, TraceAction::TimerFire { token });
        }
        let buf = t.take().unwrap();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.overwritten(), 3);
        assert_eq!(buf.events()[0].action, TraceAction::TimerFire { token: 3 });
    }

    #[test]
    fn lamport_stamps_respect_happened_before() {
        let mut t = Tracer::new(TraceConfig::unbounded(), 2);
        for _ in 0..5 {
            t.record_local(1, 0, TraceAction::Recover);
        }
        let stamp = t.record_send(2, 0, 1);
        t.record_deliver(3, 1, 0, stamp);
        let buf = t.take().unwrap();
        let deliver = buf.events().last().unwrap();
        assert!(deliver.lamport > stamp);
    }

    #[test]
    fn prologue_is_sorted_by_time_then_site() {
        let mut faults = FaultPlan::none();
        faults.crash(2, 50, 60);
        faults.partition([0, 1], 10, 20);
        let mut t = Tracer::new(TraceConfig::unbounded(), 3);
        t.prologue(&faults);
        let buf = t.take().unwrap();
        let keys: Vec<(SimTime, ProcId)> = buf.events().iter().map(|e| (e.t, e.site)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(buf.len(), 6); // 2 crash ends + 2 sites × 2 partition ends
    }

    #[test]
    fn render_is_stable() {
        let e = TraceEvent {
            t: 42,
            site: 3,
            lamport: 7,
            action: TraceAction::Conflict {
                obj: 0,
                action: 100_001,
                with: 200_000,
                kind: ConflictKind::Lock,
            },
        };
        assert_eq!(
            e.to_string(),
            "[      42] site=3   lam=7      conflict obj=0 action=100001 with=200000 kind=lock"
        );
    }

    #[test]
    fn config_accessors() {
        assert!(!TraceConfig::default().is_enabled());
        assert_eq!(TraceConfig::ring(16).capacity(), Some(16));
        assert_eq!(TraceConfig::unbounded().capacity(), None);
        assert!(TraceConfig::unbounded().is_enabled());
    }
}
