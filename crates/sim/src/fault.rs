//! Fault plans: crash intervals and network partitions (§3's failure
//! model — sites crash and recover; long-lived link failures partition
//! functioning sites).

use serde::{Deserialize, Serialize};

/// Simulated time, in abstract ticks.
pub type SimTime = u64;

/// A process identifier within a simulation.
pub type ProcId = u32;

/// A closed-open interval `[from, until)` during which a site is crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashInterval {
    /// The crashed process.
    pub proc: ProcId,
    /// Crash start (inclusive).
    pub from: SimTime,
    /// Recovery time (exclusive).
    pub until: SimTime,
}

/// A partition: during `[from, until)` the processes in `block` can only
/// talk to each other, and everyone else only to everyone else.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionInterval {
    /// One side of the split (complement forms the other side).
    pub block: Vec<ProcId>,
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Heal time (exclusive).
    pub until: SimTime,
}

/// The complete fault plan for a run. Deterministic: the same plan and
/// seed always reproduce the same execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    crashes: Vec<CrashInterval>,
    partitions: Vec<PartitionInterval>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash interval.
    pub fn crash(&mut self, proc: ProcId, from: SimTime, until: SimTime) -> &mut Self {
        self.crashes.push(CrashInterval { proc, from, until });
        self
    }

    /// Adds a partition interval.
    pub fn partition(
        &mut self,
        block: impl IntoIterator<Item = ProcId>,
        from: SimTime,
        until: SimTime,
    ) -> &mut Self {
        self.partitions.push(PartitionInterval {
            block: block.into_iter().collect(),
            from,
            until,
        });
        self
    }

    /// The scheduled crash intervals (trace prologue, diagnostics).
    pub fn crashes(&self) -> &[CrashInterval] {
        &self.crashes
    }

    /// A copy of the plan without the `i`-th crash interval (used by the
    /// chaos shrinker to search for a minimal reproducing plan).
    pub fn without_crash(&self, i: usize) -> Self {
        let mut plan = self.clone();
        plan.crashes.remove(i);
        plan
    }

    /// A copy of the plan without the `i`-th partition interval.
    pub fn without_partition(&self, i: usize) -> Self {
        let mut plan = self.clone();
        plan.partitions.remove(i);
        plan
    }

    /// Total number of scheduled fault intervals.
    pub fn len(&self) -> usize {
        self.crashes.len() + self.partitions.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.partitions.is_empty()
    }

    /// The scheduled partition intervals.
    pub fn partitions(&self) -> &[PartitionInterval] {
        &self.partitions
    }

    /// Whether `proc` is crashed at time `t`.
    pub fn is_crashed(&self, proc: ProcId, t: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.proc == proc && c.from <= t && t < c.until)
    }

    /// Whether a message from `a` to `b` is severed by a partition at `t`.
    pub fn is_partitioned(&self, a: ProcId, b: ProcId, t: SimTime) -> bool {
        self.partitions
            .iter()
            .any(|p| p.from <= t && t < p.until && (p.block.contains(&a) != p.block.contains(&b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_intervals_are_half_open() {
        let mut plan = FaultPlan::none();
        plan.crash(2, 10, 20);
        assert!(!plan.is_crashed(2, 9));
        assert!(plan.is_crashed(2, 10));
        assert!(plan.is_crashed(2, 19));
        assert!(!plan.is_crashed(2, 20));
        assert!(!plan.is_crashed(1, 15));
    }

    #[test]
    fn partition_severs_cross_block_only() {
        let mut plan = FaultPlan::none();
        plan.partition([0, 1], 5, 15);
        assert!(plan.is_partitioned(0, 2, 10));
        assert!(plan.is_partitioned(2, 1, 10));
        assert!(!plan.is_partitioned(0, 1, 10)); // same block
        assert!(!plan.is_partitioned(2, 3, 10)); // both in complement
        assert!(!plan.is_partitioned(0, 2, 20)); // healed
    }

    #[test]
    fn shrinking_removes_single_intervals() {
        let mut plan = FaultPlan::none();
        plan.crash(0, 0, 10).crash(1, 5, 15).partition([0], 5, 25);
        assert_eq!(plan.len(), 3);
        let shrunk = plan.without_crash(0);
        assert!(!shrunk.is_crashed(0, 5));
        assert!(shrunk.is_crashed(1, 10));
        assert_eq!(shrunk.len(), 2);
        let no_part = plan.without_partition(0);
        assert!(!no_part.is_partitioned(0, 1, 10));
        assert!(FaultPlan::none().is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn overlapping_faults_compose() {
        let mut plan = FaultPlan::none();
        plan.crash(0, 0, 10).crash(0, 20, 30).partition([0], 5, 25);
        assert!(plan.is_crashed(0, 5));
        assert!(plan.is_partitioned(0, 1, 22));
        assert!(plan.is_crashed(0, 22));
    }
}
