//! Deterministic discrete-event simulation substrate for the replicated
//! system: sites, lossy links, crashes, partitions, and Lamport clocks.
//!
//! The paper's fault model (§3) — sites crash and recover, links lose
//! messages, long-lived failures partition functioning sites — is
//! reproduced exactly and *deterministically*: an execution is a pure
//! function of the processes, the network configuration, the fault plan,
//! and one RNG seed. That determinism is what lets the replication layer's
//! end-to-end tests assert atomicity of every captured history.
//!
//! * [`clock`] — Lamport clocks, totally-ordered unique timestamps.
//! * [`fault`] — crash and partition schedules.
//! * [`engine`] — the event loop ([`Sim`], [`Process`], [`Ctx`]).
//! * [`explore`] — exhaustive interleaving enumeration over the same
//!   [`Process`] drivers, with partial-order reduction.
//! * [`trace`] — zero-overhead-when-disabled structured run traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod explore;
pub mod fault;
pub mod trace;

pub use clock::{LamportClock, Timestamp};
pub use engine::{Ctx, NetworkConfig, Process, Sim, SimStats};
pub use explore::{ExploreConfig, ExploreHooks, ExploreOutcome, ExploreStats, Witness};
pub use fault::{FaultPlan, ProcId, SimTime};
pub use trace::{
    AbortCause, ConflictKind, DropCause, PhaseKind, TraceAction, TraceBuffer, TraceConfig,
    TraceEvent,
};
