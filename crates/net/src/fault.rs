//! Deterministic socket-level fault injection.
//!
//! [`FaultShim`] wraps any `Read + Write` transport (in practice a
//! `TcpStream` or one half of it) and injects seeded faults on the byte
//! path: connection resets, read/write stalls, partial ("split") writes,
//! and silent drops. The knobs live in [`NetFaultProfile`], mirroring the
//! DES `NetworkConfig` so chaos coverage extends to the real wire, not
//! just the simulator.
//!
//! # Stream integrity
//!
//! The shim is careful never to corrupt framing mid-stream. Length-prefixed
//! frames (`tcp::write_frame`) tolerate *partial* writes (callers loop via
//! `write_all` / retained write buffers) but not *holes*: a silently dropped
//! byte range desyncs every later frame. So a "drop" is modelled as a link
//! state machine, not a per-byte lottery:
//!
//! ```text
//! Alive --drop_prob--> Blackhole(n) --n writes swallowed--> Dead
//!   |                                                        ^
//!   +--reset_prob---------------------------------------------+
//! ```
//!
//! In `Blackhole` every write is swallowed whole (reported as written);
//! after `n` swallowed writes the link goes `Dead` and all further I/O
//! fails with `BrokenPipe`/`ConnectionReset`. The receiver therefore sees
//! a clean frame prefix, then silence, then connection death — exactly the
//! failure a supervised link must detect and repair by reconnecting and
//! retransmitting unacked frames.
//!
//! Stalls are a blocking `sleep` on blocking sockets and a one-shot
//! `WouldBlock` on nonblocking ones (the event loop retries on the next
//! turn). All randomness is a private splitmix64 stream seeded from the
//! profile seed and a per-link id, so runs are reproducible.

use std::io::{self, Read, Write};
use std::time::Duration;

/// Splitmix64 step — same generator the rest of the workspace uses for
/// deterministic chaos streams.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Knobs for socket-level fault injection, mirroring the DES
/// `NetworkConfig` shape (probabilities per I/O call, not per byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultProfile {
    /// Per-call probability that the link dies with `ConnectionReset`.
    pub reset_prob: f64,
    /// Per-call probability of a stall (sleep or `WouldBlock`).
    pub stall_prob: f64,
    /// Stall duration for blocking sockets.
    pub stall_us: u64,
    /// Per-write probability that only a prefix of the buffer is written
    /// (callers must loop, as `write_all` does).
    pub split_prob: f64,
    /// Per-write probability of entering the blackhole state: this write
    /// and the next few are swallowed, then the link dies.
    pub drop_prob: f64,
    /// Seed for the shim's private splitmix64 stream.
    pub seed: u64,
}

/// Writes swallowed in the blackhole state before the link dies.
const BLACKHOLE_WRITES: u32 = 4;

impl NetFaultProfile {
    /// No faults at all — the identity profile.
    pub fn none() -> Self {
        NetFaultProfile {
            reset_prob: 0.0,
            stall_prob: 0.0,
            stall_us: 0,
            split_prob: 0.0,
            drop_prob: 0.0,
            seed: 0,
        }
    }

    /// A mildly hostile WAN: occasional resets and drops, frequent split
    /// writes and short stalls. Survivable with supervision; fatal without.
    pub fn lossy(seed: u64) -> Self {
        NetFaultProfile {
            reset_prob: 0.002,
            stall_prob: 0.01,
            stall_us: 200,
            split_prob: 0.05,
            drop_prob: 0.001,
            seed,
        }
    }

    /// A hostile link for stress runs: every fault class cranked up.
    pub fn stormy(seed: u64) -> Self {
        NetFaultProfile {
            reset_prob: 0.01,
            stall_prob: 0.05,
            stall_us: 500,
            split_prob: 0.2,
            drop_prob: 0.005,
            seed,
        }
    }

    /// Parses a named profile: `none`, `lossy`, `stormy`, or
    /// `lossy:SEED` / `stormy:SEED` to pin the chaos seed.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, seed) = match s.split_once(':') {
            Some((n, v)) => {
                let seed: u64 = v
                    .parse()
                    .map_err(|_| format!("bad fault-profile seed {v:?}"))?;
                (n, seed)
            }
            None => (s, 0x5eed_fa17),
        };
        match name {
            "none" | "off" => Ok(NetFaultProfile::none()),
            "lossy" => Ok(NetFaultProfile::lossy(seed)),
            "stormy" => Ok(NetFaultProfile::stormy(seed)),
            other => Err(format!(
                "unknown fault profile {other:?} (expected none|lossy|stormy[:seed])"
            )),
        }
    }

    /// True when every knob is zero — the shim short-circuits to the
    /// inner transport.
    pub fn is_none(&self) -> bool {
        self.reset_prob == 0.0
            && self.stall_prob == 0.0
            && self.split_prob == 0.0
            && self.drop_prob == 0.0
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LinkState {
    Alive,
    /// Swallowing writes; dies after the counter hits zero.
    Blackhole(u32),
    Dead,
}

/// Fault counters a host harvests after a run (diagnostics only — the
/// protocol-visible effects surface as reconnects and retransmits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShimCounters {
    pub resets: u64,
    pub stalls: u64,
    pub splits: u64,
    pub drops: u64,
}

/// A `Read + Write` wrapper that injects the faults described by a
/// [`NetFaultProfile`]. Wrap each directional use of a socket in its own
/// shim (they keep independent rng streams keyed by `link_id`).
pub struct FaultShim<S> {
    inner: S,
    profile: NetFaultProfile,
    rng: u64,
    state: LinkState,
    /// Nonblocking transports get `WouldBlock` stalls instead of sleeps.
    nonblocking: bool,
    pub counters: ShimCounters,
}

impl<S> FaultShim<S> {
    /// Wraps `inner` for a blocking transport. `link_id` keys the chaos
    /// stream so distinct links fault independently but reproducibly.
    pub fn new(inner: S, profile: NetFaultProfile, link_id: u64) -> Self {
        FaultShim {
            inner,
            rng: splitmix64(profile.seed ^ splitmix64(link_id.wrapping_add(1))),
            profile,
            state: LinkState::Alive,
            nonblocking: false,
            counters: ShimCounters::default(),
        }
    }

    /// Same, but stalls surface as `WouldBlock` (for readiness-polled
    /// sockets in the event-loop host).
    pub fn new_nonblocking(inner: S, profile: NetFaultProfile, link_id: u64) -> Self {
        let mut s = Self::new(inner, profile, link_id);
        s.nonblocking = true;
        s
    }

    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.rng = splitmix64(self.rng);
        ((self.rng >> 11) as f64) / ((1u64 << 53) as f64) < p
    }

    fn dead_err(&self) -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "faultshim: link dead")
    }

    fn reset_err(&self) -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "faultshim: injected reset")
    }

    fn stall(&mut self) -> Option<io::Error> {
        self.counters.stalls += 1;
        if self.nonblocking {
            Some(io::Error::new(
                io::ErrorKind::WouldBlock,
                "faultshim: injected stall",
            ))
        } else {
            std::thread::sleep(Duration::from_micros(self.profile.stall_us));
            None
        }
    }
}

impl<S: Read> Read for FaultShim<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.profile.is_none() {
            return self.inner.read(buf);
        }
        match self.state {
            LinkState::Dead => return Err(self.reset_err()),
            LinkState::Blackhole(_) => {} // reads still flow until death
            LinkState::Alive => {}
        }
        if self.chance(self.profile.reset_prob) {
            self.state = LinkState::Dead;
            self.counters.resets += 1;
            return Err(self.reset_err());
        }
        if self.chance(self.profile.stall_prob) {
            if let Some(e) = self.stall() {
                return Err(e);
            }
        }
        // Short read: hand back at most half the buffer. Framing-safe —
        // both `read_exact` and the event loop's growing buffer tolerate
        // arbitrary read splits.
        if buf.len() > 1 && self.chance(self.profile.split_prob) {
            self.counters.splits += 1;
            let half = buf.len() / 2;
            return self.inner.read(&mut buf[..half]);
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultShim<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.profile.is_none() {
            return self.inner.write(buf);
        }
        match self.state {
            LinkState::Dead => return Err(self.dead_err()),
            LinkState::Blackhole(n) => {
                // Swallow whole writes so framing never desyncs; die after
                // the countdown so the failure is eventually detectable.
                if n == 0 {
                    self.state = LinkState::Dead;
                    return Err(self.dead_err());
                }
                self.state = LinkState::Blackhole(n - 1);
                return Ok(buf.len());
            }
            LinkState::Alive => {}
        }
        if self.chance(self.profile.reset_prob) {
            self.state = LinkState::Dead;
            self.counters.resets += 1;
            return Err(self.reset_err());
        }
        if self.chance(self.profile.drop_prob) {
            self.state = LinkState::Blackhole(BLACKHOLE_WRITES);
            self.counters.drops += 1;
            return Ok(buf.len());
        }
        if self.chance(self.profile.stall_prob) {
            if let Some(e) = self.stall() {
                return Err(e);
            }
        }
        if buf.len() > 1 && self.chance(self.profile.split_prob) {
            self.counters.splits += 1;
            return self.inner.write(&buf[..buf.len() / 2]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.state {
            LinkState::Dead => Err(self.dead_err()),
            // Pretend success: the bytes went into the hole.
            LinkState::Blackhole(_) => Ok(()),
            LinkState::Alive => self.inner.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_profile_is_transparent() {
        let mut shim = FaultShim::new(Vec::new(), NetFaultProfile::none(), 1);
        shim.write_all(b"hello").unwrap();
        shim.flush().unwrap();
        assert_eq!(shim.get_ref(), b"hello");
        assert_eq!(shim.counters, ShimCounters::default());
    }

    #[test]
    fn profiles_parse_by_name() {
        assert!(NetFaultProfile::parse("none").unwrap().is_none());
        assert!(!NetFaultProfile::parse("lossy").unwrap().is_none());
        assert_eq!(NetFaultProfile::parse("stormy:42").unwrap().seed, 42);
        assert!(NetFaultProfile::parse("tsunami").is_err());
        assert!(NetFaultProfile::parse("lossy:zzz").is_err());
    }

    #[test]
    fn split_writes_never_corrupt_framing() {
        // Heavy split probability but no drops/resets: write_all loops
        // until done, so the sink must hold the exact byte stream.
        let profile = NetFaultProfile {
            split_prob: 0.9,
            ..NetFaultProfile::lossy(7)
        };
        let profile = NetFaultProfile {
            reset_prob: 0.0,
            drop_prob: 0.0,
            stall_prob: 0.0,
            ..profile
        };
        let mut shim = FaultShim::new(Vec::new(), profile, 3);
        let payload: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        shim.write_all(&payload).unwrap();
        assert_eq!(shim.get_ref(), &payload);
        assert!(shim.counters.splits > 0, "expected split writes to fire");
    }

    #[test]
    fn blackhole_swallows_then_kills() {
        let profile = NetFaultProfile {
            drop_prob: 1.0,
            reset_prob: 0.0,
            stall_prob: 0.0,
            split_prob: 0.0,
            stall_us: 0,
            seed: 9,
        };
        let mut shim = FaultShim::new(Vec::new(), profile, 5);
        // First write enters the blackhole and is swallowed.
        assert_eq!(shim.write(b"lost").unwrap(), 4);
        // The next few writes are swallowed too, then the link dies.
        let mut died = false;
        for _ in 0..=BLACKHOLE_WRITES {
            match shim.write(b"x") {
                Ok(1) => {}
                Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {
                    died = true;
                    break;
                }
                other => panic!("unexpected result {other:?}"),
            }
        }
        assert!(died, "blackhole link never died");
        assert!(shim.get_ref().is_empty(), "blackhole leaked bytes");
        // Once dead, everything fails.
        assert!(shim.write(b"x").is_err());
        assert!(shim.flush().is_err());
    }

    #[test]
    fn injected_reset_is_deterministic_per_seed() {
        let profile = NetFaultProfile {
            reset_prob: 0.3,
            stall_prob: 0.0,
            split_prob: 0.0,
            drop_prob: 0.0,
            stall_us: 0,
            seed: 77,
        };
        let run = |link: u64| {
            let mut shim = FaultShim::new(Vec::new(), profile, link);
            let mut survived = 0u32;
            for _ in 0..64 {
                match shim.write_all(b"abc") {
                    Ok(()) => survived += 1,
                    Err(_) => break,
                }
            }
            survived
        };
        assert_eq!(run(1), run(1), "same link id must replay identically");
        // Not a hard guarantee, but with these seeds the streams differ.
        assert_ne!(run(1), run(2), "distinct links should fault independently");
    }

    #[test]
    fn nonblocking_stall_surfaces_as_wouldblock() {
        let profile = NetFaultProfile {
            stall_prob: 1.0,
            stall_us: 1,
            reset_prob: 0.0,
            split_prob: 0.0,
            drop_prob: 0.0,
            seed: 3,
        };
        let mut shim = FaultShim::new_nonblocking(Vec::new(), profile, 8);
        let err = shim.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(shim.counters.stalls, 1);
    }
}
