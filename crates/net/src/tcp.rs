//! Length-prefixed message framing over TCP.
//!
//! One frame per protocol message: `[len: u32][from: u32][to: u32][payload]`
//! (all little-endian), where `len` covers the two ids plus the payload.
//! `from`/`to` are process ids in the cluster's flat id space (repositories
//! first, then clients), which lets many lightweight clients multiplex one
//! worker connection: replies come back tagged with the client they are for.

use std::io::{self, Read, Write};

use quorumcc_sim::ProcId;

/// Largest accepted frame (16 MiB) — a sanity bound against corrupt length
/// prefixes, far above anything the protocol ships.
const MAX_FRAME: u32 = 16 << 20;

/// Writes one frame. The caller batches frames behind a `BufWriter` and
/// flushes once per event-loop turn.
pub fn write_frame(w: &mut impl Write, from: ProcId, to: ProcId, payload: &[u8]) -> io::Result<()> {
    let len = 8 + payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&from.to_le_bytes())?;
    w.write_all(&to.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame, blocking; `Err(UnexpectedEof)` on clean shutdown.
pub fn read_frame(r: &mut impl Read) -> io::Result<(ProcId, ProcId, Vec<u8>)> {
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let len = u32::from_le_bytes(word);
    if !(8..=MAX_FRAME).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    r.read_exact(&mut word)?;
    let from = ProcId::from_le_bytes(word);
    r.read_exact(&mut word)?;
    let to = ProcId::from_le_bytes(word);
    let mut payload = vec![0u8; len as usize - 8];
    r.read_exact(&mut payload)?;
    Ok((from, to, payload))
}

/// Drains every *complete* frame from a growing byte buffer — the
/// nonblocking-socket counterpart of [`read_frame`]. The event-loop
/// backend appends whatever a readiness-polled read returned and calls
/// this; a partial frame's bytes stay in `buf` for the next read.
///
/// # Errors
/// `InvalidData` on a corrupt length prefix (the connection is beyond
/// recovery: framing has lost sync).
pub fn drain_frames(buf: &mut Vec<u8>) -> io::Result<Vec<(ProcId, ProcId, Vec<u8>)>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 4 {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        if !(8..=MAX_FRAME).contains(&len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame length {len}"),
            ));
        }
        let total = 4 + len as usize;
        if buf.len() - pos < total {
            break;
        }
        let from = ProcId::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        let to = ProcId::from_le_bytes(buf[pos + 8..pos + 12].try_into().unwrap());
        out.push((from, to, buf[pos + 12..pos + total].to_vec()));
        pos += total;
    }
    buf.drain(..pos);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_socket_pair() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            write_frame(&mut s, 7, 2, b"hello").unwrap();
            write_frame(&mut s, 8, 3, &[]).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(read_frame(&mut conn).unwrap(), (7, 2, b"hello".to_vec()));
        assert_eq!(read_frame(&mut conn).unwrap(), (8, 3, Vec::new()));
        client.join().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn corrupt_length_is_rejected() {
        let buf = u32::MAX.to_le_bytes();
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn drain_decodes_frames_at_every_split_point() {
        // Two frames back to back; feed the stream byte by byte and
        // check the incremental decoder yields exactly the blocking
        // decoder's frames, no matter where reads split.
        let mut stream = Vec::new();
        write_frame(&mut stream, 7, 2, b"hello").unwrap();
        write_frame(&mut stream, 8, 3, &[]).unwrap();
        for split in 0..=stream.len() {
            let mut buf = Vec::new();
            let mut got = Vec::new();
            buf.extend_from_slice(&stream[..split]);
            got.extend(drain_frames(&mut buf).unwrap());
            buf.extend_from_slice(&stream[split..]);
            got.extend(drain_frames(&mut buf).unwrap());
            assert!(buf.is_empty(), "split {split} left bytes");
            assert_eq!(
                got,
                vec![(7, 2, b"hello".to_vec()), (8, 3, Vec::new())],
                "split {split}"
            );
        }
    }

    #[test]
    fn drain_rejects_corrupt_length() {
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        assert_eq!(
            drain_frames(&mut buf).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
