//! Length-prefixed message framing over TCP.
//!
//! One frame per protocol message: `[len: u32][from: u32][to: u32][payload]`
//! (all little-endian), where `len` covers the two ids plus the payload.
//! `from`/`to` are process ids in the cluster's flat id space (repositories
//! first, then clients), which lets many lightweight clients multiplex one
//! worker connection: replies come back tagged with the client they are for.

use std::io::{self, Read, Write};

use quorumcc_sim::ProcId;

/// Largest accepted frame (16 MiB) — a sanity bound against corrupt length
/// prefixes, far above anything the protocol ships.
const MAX_FRAME: u32 = 16 << 20;

/// Writes one frame. The caller batches frames behind a `BufWriter` and
/// flushes once per event-loop turn.
pub fn write_frame(w: &mut impl Write, from: ProcId, to: ProcId, payload: &[u8]) -> io::Result<()> {
    let len = 8 + payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&from.to_le_bytes())?;
    w.write_all(&to.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame, blocking; `Err(UnexpectedEof)` on clean shutdown.
pub fn read_frame(r: &mut impl Read) -> io::Result<(ProcId, ProcId, Vec<u8>)> {
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let len = u32::from_le_bytes(word);
    if !(8..=MAX_FRAME).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    r.read_exact(&mut word)?;
    let from = ProcId::from_le_bytes(word);
    r.read_exact(&mut word)?;
    let to = ProcId::from_le_bytes(word);
    let mut payload = vec![0u8; len as usize - 8];
    r.read_exact(&mut payload)?;
    Ok((from, to, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_socket_pair() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            write_frame(&mut s, 7, 2, b"hello").unwrap();
            write_frame(&mut s, 8, 3, &[]).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(read_frame(&mut conn).unwrap(), (7, 2, b"hello".to_vec()));
        assert_eq!(read_frame(&mut conn).unwrap(), (8, 3, Vec::new()));
        client.join().unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn corrupt_length_is_rejected() {
        let buf = u32::MAX.to_le_bytes();
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
