//! Wire codec for protocol messages.
//!
//! The replicated-log delta framing (`LogDelta::encode_wire` in
//! `quorumcc_replication::types`) measures payload bytes but is one-way; a
//! real-socket backend needs a *round-trip* codec for the whole
//! [`Msg`] alphabet. This module provides one: a little-endian,
//! length-delimited encoding with a one-byte tag per enum variant, built
//! from composable [`Wire`] impls on every payload component.
//!
//! Two deliberate gates keep the codec total on the load-harness path:
//!
//! * **Checkpoints are not wire-encodable.** A [`Checkpoint`] carries a
//!   type-erased state summary (`Arc<dyn Any>`), so the TCP backend runs
//!   with compaction off; encoding a checkpointed log is a programming
//!   error and panics.
//! * **Reconfiguration frames (`Install`/`InstallAck`/`SyncReq`/
//!   `StaleConfig`) are not encoded.** The harness runs a fixed
//!   configuration; hitting one of these on the socket path is likewise a
//!   programming error.
//!
//! Operation classes travel as strings and are re-interned on decode (the
//! protocol stores them as `&'static str`); the intern table is bounded by
//! the number of distinct classes, so leaking them is by design.
//!
//! [`Checkpoint`]: quorumcc_replication::Checkpoint

use std::collections::BTreeSet;
use std::sync::Mutex;

use quorumcc_model::{ActionId, Event};
use quorumcc_replication::types::{ActionOutcome, LogDelta, LogEntry, ObjId, ObjectLog};
use quorumcc_replication::Msg;
use quorumcc_sim::Timestamp;

/// A cursor over a received byte buffer; every `take` advances it.
pub struct Reader<'a>(pub &'a [u8]);

impl Reader<'_> {
    fn bytes(&mut self, n: usize) -> Option<&[u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }
}

/// Round-trip byte encoding. `decode(encode(x)) == x` for every value the
/// load harness ships (see the proptests in this module's test suite).
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decodes one value, advancing the reader; `None` on malformed input.
    fn take(inp: &mut Reader<'_>) -> Option<Self>;
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn take(inp: &mut Reader<'_>) -> Option<Self> {
                let raw = inp.bytes(std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(raw.try_into().ok()?))
            }
        }
    )*};
}
wire_int!(u8, u16, u32, u64);

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        match u8::take(inp)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        match u8::take(inp)? {
            0 => Some(None),
            1 => Some(Some(T::take(inp)?)),
            _ => None,
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u32).put(out);
        for v in self {
            v.put(out);
        }
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        let n = u32::take(inp)? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::take(inp)?);
        }
        Some(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        Some((A::take(inp)?, B::take(inp)?))
    }
}

/// Interns a decoded operation-class string. The protocol compares classes
/// by value but stores `&'static str`; the table grows to at most the
/// number of distinct classes any data type declares.
fn intern(s: &str) -> &'static str {
    static TABLE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut table = TABLE.lock().unwrap();
    if let Some(hit) = table.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

impl Wire for &'static str {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u32).put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        let n = u32::take(inp)? as usize;
        let raw = inp.bytes(n)?;
        Some(intern(std::str::from_utf8(raw).ok()?))
    }
}

impl Wire for Timestamp {
    fn put(&self, out: &mut Vec<u8>) {
        self.counter.put(out);
        self.node.put(out);
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        Some(Timestamp {
            counter: u64::take(inp)?,
            node: u32::take(inp)?,
        })
    }
}

impl Wire for ActionId {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        Some(ActionId(u32::take(inp)?))
    }
}

impl Wire for ObjId {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        Some(ObjId(u16::take(inp)?))
    }
}

impl Wire for ActionOutcome {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            ActionOutcome::Active => out.push(0),
            ActionOutcome::Committed(ts) => {
                out.push(1);
                ts.put(out);
            }
            ActionOutcome::Aborted => out.push(2),
        }
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        match u8::take(inp)? {
            0 => Some(ActionOutcome::Active),
            1 => Some(ActionOutcome::Committed(Timestamp::take(inp)?)),
            2 => Some(ActionOutcome::Aborted),
            _ => None,
        }
    }
}

impl<I: Wire, R: Wire> Wire for Event<I, R> {
    fn put(&self, out: &mut Vec<u8>) {
        self.inv.put(out);
        self.res.put(out);
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        Some(Event {
            inv: I::take(inp)?,
            res: R::take(inp)?,
        })
    }
}

impl<I: Wire, R: Wire> Wire for LogEntry<I, R> {
    fn put(&self, out: &mut Vec<u8>) {
        self.ts.put(out);
        self.action.put(out);
        self.begin_ts.put(out);
        self.event.put(out);
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        Some(LogEntry {
            ts: Timestamp::take(inp)?,
            action: ActionId::take(inp)?,
            begin_ts: Timestamp::take(inp)?,
            event: Event::take(inp)?,
        })
    }
}

impl<I: Wire + Clone, R: Wire + Clone> Wire for LogDelta<I, R> {
    fn put(&self, out: &mut Vec<u8>) {
        assert!(
            self.checkpoint.is_none(),
            "checkpoints are not wire-encodable; run the socket backend with compaction off"
        );
        self.base.put(out);
        self.head.put(out);
        self.full.put(out);
        self.entries.put(out);
        self.statuses.put(out);
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        Some(LogDelta {
            base: u64::take(inp)?,
            head: u64::take(inp)?,
            full: bool::take(inp)?,
            entries: Vec::take(inp)?,
            statuses: Vec::take(inp)?,
            checkpoint: None,
        })
    }
}

impl<I: Wire + Clone, R: Wire + Clone> Wire for ObjectLog<I, R> {
    fn put(&self, out: &mut Vec<u8>) {
        assert!(
            self.checkpoint().is_none(),
            "checkpoints are not wire-encodable; run the socket backend with compaction off"
        );
        self.gc_aborted().put(out);
        let entries: Vec<&LogEntry<I, R>> = self.entries().collect();
        (entries.len() as u32).put(out);
        for e in entries {
            e.put(out);
        }
        let statuses: Vec<(ActionId, ActionOutcome)> = self.statuses().collect();
        statuses.put(out);
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        let gc = bool::take(inp)?;
        let mut log = ObjectLog::new();
        log.set_gc_aborted(gc);
        let n = u32::take(inp)? as usize;
        for _ in 0..n {
            log.insert(LogEntry::take(inp)?);
        }
        let statuses: Vec<(ActionId, ActionOutcome)> = Vec::take(inp)?;
        for (a, o) in statuses {
            log.resolve(a, o);
        }
        Some(log)
    }
}

impl<I: Wire + Clone, R: Wire + Clone> Wire for Msg<I, R> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Msg::ReadLog {
                obj,
                req,
                action,
                begin_ts,
                op,
                cfg,
                since,
                durable,
            } => {
                out.push(0);
                obj.put(out);
                req.put(out);
                action.put(out);
                begin_ts.put(out);
                op.put(out);
                cfg.put(out);
                since.put(out);
                durable.put(out);
            }
            Msg::LogReply { obj, req, delta } => {
                out.push(1);
                obj.put(out);
                req.put(out);
                delta.put(out);
            }
            Msg::WriteLog {
                obj,
                req,
                log,
                entry,
                cfg,
            } => {
                out.push(2);
                obj.put(out);
                req.put(out);
                log.put(out);
                entry.put(out);
                cfg.put(out);
            }
            Msg::WriteAck { obj, req, conflict } => {
                out.push(3);
                obj.put(out);
                req.put(out);
                conflict.put(out);
            }
            Msg::Resolve {
                action,
                outcome,
                entries,
            } => {
                out.push(4);
                action.put(out);
                outcome.put(out);
                entries.put(out);
            }
            Msg::Batch(inner) => {
                out.push(5);
                inner.put(out);
            }
            Msg::ResolveAck { action } => {
                out.push(6);
                action.put(out);
            }
            Msg::Install { .. }
            | Msg::InstallAck { .. }
            | Msg::SyncReq
            | Msg::StaleConfig { .. } => {
                unreachable!(
                    "reconfiguration frames are not wire-encodable; \
                     the socket backend runs a fixed configuration"
                )
            }
        }
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        Some(match u8::take(inp)? {
            0 => Msg::ReadLog {
                obj: ObjId::take(inp)?,
                req: u64::take(inp)?,
                action: ActionId::take(inp)?,
                begin_ts: Timestamp::take(inp)?,
                op: <&'static str>::take(inp)?,
                cfg: u64::take(inp)?,
                since: u64::take(inp)?,
                durable: u64::take(inp)?,
            },
            1 => Msg::LogReply {
                obj: ObjId::take(inp)?,
                req: u64::take(inp)?,
                delta: LogDelta::take(inp)?,
            },
            2 => Msg::WriteLog {
                obj: ObjId::take(inp)?,
                req: u64::take(inp)?,
                log: ObjectLog::take(inp)?,
                entry: <Option<LogEntry<I, R>> as Wire>::take(inp)?,
                cfg: u64::take(inp)?,
            },
            3 => Msg::WriteAck {
                obj: ObjId::take(inp)?,
                req: u64::take(inp)?,
                conflict: <Option<ActionId> as Wire>::take(inp)?,
            },
            4 => Msg::Resolve {
                action: ActionId::take(inp)?,
                outcome: ActionOutcome::take(inp)?,
                entries: Vec::take(inp)?,
            },
            5 => Msg::Batch(Vec::take(inp)?),
            6 => Msg::ResolveAck {
                action: ActionId::take(inp)?,
            },
            _ => return None,
        })
    }
}

/// Encodes one value to a fresh buffer.
pub fn encode<T: Wire>(v: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    v.put(&mut out);
    out
}

/// Decodes one value, requiring the buffer to be fully consumed.
pub fn decode<T: Wire>(buf: &[u8]) -> Option<T> {
    let mut r = Reader(buf);
    let v = T::take(&mut r)?;
    r.0.is_empty().then_some(v)
}

// Queue payloads — the data type the load harness ships.

use quorumcc_adts::queue::{QueueInv, QueueRes};

impl Wire for QueueInv {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            QueueInv::Enq(x) => {
                out.push(0);
                x.put(out);
            }
            QueueInv::Deq => out.push(1),
        }
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        match u8::take(inp)? {
            0 => Some(QueueInv::Enq(u32::take(inp)?)),
            1 => Some(QueueInv::Deq),
            _ => None,
        }
    }
}

impl Wire for QueueRes {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            QueueRes::Ok => out.push(0),
            QueueRes::Item(x) => {
                out.push(1);
                x.put(out);
            }
            QueueRes::Empty => out.push(2),
        }
    }
    fn take(inp: &mut Reader<'_>) -> Option<Self> {
        match u8::take(inp)? {
            0 => Some(QueueRes::Ok),
            1 => Some(QueueRes::Item(u32::take(inp)?)),
            2 => Some(QueueRes::Empty),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let buf = encode(&v);
        assert_eq!(decode::<T>(&buf).as_ref(), Some(&v), "{} bytes", buf.len());
    }

    /// For types without `PartialEq` (their payloads carry type-erased
    /// checkpoints): compare the Debug rendering of the round trip.
    fn roundtrip_dbg<T: Wire + std::fmt::Debug>(v: T) {
        let buf = encode(&v);
        let back = decode::<T>(&buf).expect("decode");
        assert_eq!(format!("{back:?}"), format!("{v:?}"));
    }

    #[test]
    fn scalars_and_composites_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(Some(ObjId(7)));
        roundtrip(Option::<ObjId>::None);
        roundtrip(vec![
            Timestamp {
                counter: 3,
                node: 1,
            },
            Timestamp::ZERO,
        ]);
        roundtrip(ActionOutcome::Committed(Timestamp {
            counter: 9,
            node: 2,
        }));
        roundtrip(QueueInv::Enq(41));
        roundtrip(QueueRes::Empty);
    }

    #[test]
    fn op_class_strings_reintern() {
        let buf = encode(&"Enq");
        let back = decode::<&'static str>(&buf).unwrap();
        assert_eq!(back, "Enq");
        // Decoding the same class twice yields the same interned pointer.
        let again = decode::<&'static str>(&buf).unwrap();
        assert!(std::ptr::eq(back, again));
    }

    #[test]
    fn messages_roundtrip() {
        let entry = LogEntry {
            ts: Timestamp {
                counter: 5,
                node: 3,
            },
            action: ActionId(2),
            begin_ts: Timestamp {
                counter: 4,
                node: 3,
            },
            event: Event::new(QueueInv::Enq(1), QueueRes::Ok),
        };
        let mut log: ObjectLog<QueueInv, QueueRes> = ObjectLog::new();
        log.insert(entry.clone());
        log.resolve(
            ActionId(2),
            ActionOutcome::Committed(Timestamp {
                counter: 6,
                node: 3,
            }),
        );

        let msgs: Vec<Msg<QueueInv, QueueRes>> = vec![
            Msg::ReadLog {
                obj: ObjId(1),
                req: 42,
                action: ActionId(2),
                begin_ts: Timestamp {
                    counter: 4,
                    node: 3,
                },
                op: "Deq",
                cfg: 0,
                since: 7,
                durable: 3,
            },
            Msg::LogReply {
                obj: ObjId(1),
                req: 42,
                delta: LogDelta {
                    base: 7,
                    head: 9,
                    full: false,
                    entries: vec![entry.clone()],
                    statuses: vec![(ActionId(2), ActionOutcome::Aborted)],
                    checkpoint: None,
                },
            },
            Msg::WriteLog {
                obj: ObjId(1),
                req: 43,
                log: log.clone(),
                entry: Some(entry),
                cfg: 0,
            },
            Msg::WriteAck {
                obj: ObjId(1),
                req: 43,
                conflict: Some(ActionId(9)),
            },
            Msg::Resolve {
                action: ActionId(2),
                outcome: ActionOutcome::Aborted,
                entries: vec![(ObjId(1), 2)],
            },
            Msg::ResolveAck {
                action: ActionId(2),
            },
        ];
        for m in &msgs {
            roundtrip_dbg(m.clone());
        }
        roundtrip_dbg(Msg::Batch(msgs));
    }

    #[test]
    fn object_log_roundtrip_preserves_entries_and_statuses() {
        let mut log: ObjectLog<QueueInv, QueueRes> = ObjectLog::new();
        for i in 0..4u64 {
            log.insert(LogEntry {
                ts: Timestamp {
                    counter: i + 1,
                    node: 0,
                },
                action: ActionId(i as u32),
                begin_ts: Timestamp {
                    counter: i,
                    node: 0,
                },
                event: Event::new(QueueInv::Enq(i as u32), QueueRes::Ok),
            });
        }
        log.resolve(
            ActionId(0),
            ActionOutcome::Committed(Timestamp {
                counter: 9,
                node: 0,
            }),
        );
        log.resolve(ActionId(1), ActionOutcome::Aborted);
        let back: ObjectLog<QueueInv, QueueRes> = decode(&encode(&log)).unwrap();
        assert_eq!(back.len(), log.len());
        assert_eq!(
            back.statuses().collect::<Vec<_>>(),
            log.statuses().collect::<Vec<_>>()
        );
    }
}
