//! The `exp_load` harness: many lightweight sans-I/O clients against a
//! real-socket cluster.
//!
//! Topology: each repository is an OS thread hosting a
//! [`Repository`] driver behind a TCP listener on loopback. Clients are
//! *not* threads — a small worker pool multiplexes tens to hundreds of
//! thousands of [`Client`] drivers, each a few hundred bytes of protocol
//! state plus a [`CollectIo`]. Every worker opens one connection per
//! repository and tags frames with the issuing client's process id, so a
//! repository routes replies by id over the connection they arrived on.
//!
//! Time: one logical tick = 1µs of wall clock, so client-recorded
//! begin→commit spans *are* latencies in microseconds. Protocol timeouts
//! are scaled accordingly ([`LoadConfig::op_timeout_ticks`]).
//!
//! Gates (see `wire.rs`): compaction and reconfiguration are off — their
//! payloads are not wire-encodable — and the workload is the Queue type.

use std::collections::BinaryHeap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::{Duration, Instant};

use quorumcc_adts::queue::{QueueInv, QueueRes};
use quorumcc_adts::Queue;
use quorumcc_model::Classified;
use quorumcc_quorum::ThresholdAssignment;
use quorumcc_replication::client::Record;
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::types::ObjId;
use quorumcc_replication::{
    Client, ClientConfig, CollectIo, Config, ConfigState, Fanout, LogicalHistogram, Msg, Output,
    Repository, Transaction,
};
use quorumcc_sim::{ProcId, SimTime};

use crate::tcp::{drain_frames, read_frame, write_frame};
use crate::wire;

type QMsg = Msg<QueueInv, QueueRes>;

/// Parameters for one load run (one concurrency-control mode).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrency-control mode under test.
    pub mode: Mode,
    /// Dependency relation for `mode` (must validate for Queue).
    pub relation: quorumcc_core::DependencyRelation,
    /// Independent cells, each its own `n_repos`-repository cluster with
    /// its own listeners and workers; clients are split evenly across
    /// cells and all cells run concurrently. Cells were originally a
    /// gossip-pressure valve (per-repository work was O(total actions)
    /// in statuses, DESIGN §3.14); with scoped shipping + status GC
    /// (DESIGN §3.16) they are the *hosting* unit — one event-loop
    /// thread per cell under [`LoadBackend::EventLoop`], the same
    /// parallelism shape as `exp_scale`'s per-cluster sims.
    pub clusters: usize,
    /// Repository (site) count per cell.
    pub n_repos: u32,
    /// Concurrent client drivers.
    pub clients: usize,
    /// Transactions per client.
    pub txns_per_client: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Distinct objects, assigned per-op pseudorandomly; more objects
    /// means fewer cross-client conflicts.
    pub objects: u16,
    /// Worker threads multiplexing the client drivers.
    pub workers: usize,
    /// Workload/jitter seed.
    pub seed: u64,
    /// Per-quorum-phase timeout in ticks (µs).
    pub op_timeout_ticks: SimTime,
    /// Contact only quorum-sized repository subsets (`Fanout::Narrow`)
    /// instead of broadcasting every phase — a third fewer frames on a
    /// 3-repository cell, at the price of a broadcast fallback after a
    /// timeout.
    pub narrow: bool,
    /// Fraction of operations that are `Deq` (the rest are `Enq`). `Deq`
    /// conflicts with everything on its object; `Enq`s commute, so a
    /// 0.0 mix measures pure throughput with no conflict aborts.
    pub deq_fraction: f64,
    /// Window over which each worker staggers its clients' starts. Zero
    /// is a thundering herd; a ramp keeps the repository side from
    /// building a queue it can never drain (every `Resolve` still plants
    /// statuses in the touched logs — DESIGN §3.16 bounds that work but
    /// does not make admission free).
    pub ramp: Duration,
    /// Wall-clock cap; clients still in flight at the deadline are
    /// abandoned (reported in [`LoadReport::unfinished`]).
    pub deadline: Duration,
    /// Scoped status shipping on repositories (see
    /// `TuningConfig::scoped_statuses`).
    pub scoped_statuses: bool,
    /// Status-GC sweep batch (see `TuningConfig::status_gc`); `None`
    /// keeps tombstones forever.
    pub status_gc: Option<u64>,
    /// How repositories are hosted: one OS thread per repository
    /// ([`LoadBackend::Threads`], the PR 7 shape) or one readiness-polled
    /// event-loop thread per cell multiplexing every repository
    /// ([`LoadBackend::EventLoop`]).
    pub backend: LoadBackend,
}

/// Repository hosting strategy for the load harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBackend {
    /// One OS thread (plus blocking reader threads) per repository.
    Threads,
    /// One OS thread per cell multiplexing all of its repositories over
    /// nonblocking sockets — the mio-style poll loop.
    EventLoop,
}

impl LoadBackend {
    /// Stable label for BENCH json.
    pub fn name(self) -> &'static str {
        match self {
            LoadBackend::Threads => "threads",
            LoadBackend::EventLoop => "eventloop",
        }
    }
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            mode: Mode::StaticTs,
            relation: quorumcc_core::DependencyRelation::default(),
            clusters: 1,
            n_repos: 3,
            clients: 1000,
            txns_per_client: 1,
            ops_per_txn: 2,
            objects: 1024,
            workers: 8,
            seed: 1,
            op_timeout_ticks: 500_000, // 500ms
            narrow: false,
            deq_fraction: 0.4,
            ramp: Duration::ZERO,
            deadline: Duration::from_secs(60),
            scoped_statuses: false,
            status_gc: None,
            backend: LoadBackend::Threads,
        }
    }
}

/// Throughput/latency summary of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Mode name (`static-ts` / `hybrid` / `dynamic-2pl`).
    pub mode: &'static str,
    /// Repository hosting strategy (`threads` / `eventloop`).
    pub backend: &'static str,
    /// Client drivers launched.
    pub clients: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted (conflict or unavailability, after retries).
    pub aborted: usize,
    /// Individual operations inside committed transactions.
    pub ops_committed: usize,
    /// Clients that had not finished when the deadline hit.
    pub unfinished: usize,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Committed transactions per wall-clock second.
    pub txns_per_sec: f64,
    /// Committed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Median begin→commit latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
}

impl LoadReport {
    /// Renders the report as a JSON object (hand-rolled, like the rest of
    /// the `BENCH_*.json` emitters).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"mode\": \"{}\", \"backend\": \"{}\", \"clients\": {}, \"committed\": {}, \
             \"aborted\": {}, \
             \"ops_committed\": {}, \"unfinished\": {}, \"wall_ms\": {}, \
             \"txns_per_sec\": {:.1}, \"ops_per_sec\": {:.1}, \
             \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"mean\": {:.1}}}}}",
            self.mode,
            self.backend,
            self.clients,
            self.committed,
            self.aborted,
            self.ops_committed,
            self.unfinished,
            self.wall.as_millis(),
            self.txns_per_sec,
            self.ops_per_sec,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.mean_us,
        )
    }
}

const TICK: Duration = Duration::from_micros(1);

/// How long an event loop may sleep with no local event due. Frame
/// arrival interrupts the sleep via `recv_timeout`, so this bounds only
/// how stale the stop-flag / deadline / accept checks can get — and the
/// *idle* wakeup rate: a large fleet runs hundreds of repository and
/// worker threads, and polling them at 1 kHz each would saturate a
/// small box with context switches before any protocol work happens.
const IDLE_POLL: Duration = Duration::from_millis(25);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Majority thresholds for the Queue alphabet — the same default
/// `RunBuilder` applies.
fn majority_thresholds(n: u32) -> ThresholdAssignment {
    let maj = n / 2 + 1;
    let mut ta = ThresholdAssignment::new(n);
    for op in Queue::op_classes() {
        ta.set_initial(op, maj);
    }
    for ev in Queue::event_classes() {
        ta.set_final(ev, maj);
    }
    ta
}

/// The scripted transactions for one client: seeded Enq/Deq ops over
/// pseudorandomly assigned objects.
fn client_txns(cfg: &LoadConfig, client_idx: usize) -> Vec<Transaction<QueueInv>> {
    let mut state = cfg.seed ^ splitmix64(client_idx as u64 + 1);
    let mut draw = || {
        state = splitmix64(state);
        state
    };
    (0..cfg.txns_per_client)
        .map(|_| Transaction {
            ops: (0..cfg.ops_per_txn)
                .map(|_| {
                    let obj = ObjId((draw() % u64::from(cfg.objects.max(1))) as u16);
                    let deq_cut = (cfg.deq_fraction.clamp(0.0, 1.0) * 1000.0) as u64;
                    let inv = if draw() % 1000 < deq_cut {
                        QueueInv::Deq
                    } else {
                        QueueInv::Enq((draw() % 100) as u32)
                    };
                    (obj, inv)
                })
                .collect(),
        })
        .collect()
}

fn client_config(cfg: &LoadConfig, repos: Vec<ProcId>) -> ClientConfig {
    ClientConfig {
        protocol: Protocol::new(cfg.mode, cfg.relation.clone()),
        thresholds: majority_thresholds(cfg.n_repos),
        repos,
        op_timeout: cfg.op_timeout_ticks,
        max_phase_retries: 2,
        think_time: 1000,
        commit_delay: 0,
        txn_retries: 2,
        propagate_views: true,
        fanout: if cfg.narrow {
            Fanout::Narrow
        } else {
            Fanout::Broadcast
        },
        delta_shipping: true,
        compact_logs: false,
        weaken_read_quorum: false,
        skip_final_ack: false,
        shards: 1,
        batch: 1,
        batch_window: 0,
        shard_thresholds: Vec::new(),
        status_gc: cfg.status_gc.is_some(),
    }
}

/// What one worker hands back when its clients are done (or abandoned).
struct WorkerResult {
    committed: usize,
    aborted: usize,
    ops_committed: usize,
    unfinished: usize,
    latency: LogicalHistogram,
}

/// Runs one load configuration end to end and reports SLO percentiles.
///
/// # Panics
/// Panics on socket errors (bind/connect on loopback) and on codec
/// violations — both are harness bugs, not protocol outcomes.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    assert!(cfg.n_repos >= 1 && cfg.clients >= 1 && cfg.workers >= 1);
    let cells = cfg.clusters.max(1).min(cfg.clients);
    let epoch = Instant::now();
    let per = cfg.clients / cells;
    let extra = cfg.clients % cells;
    let results: Vec<Vec<WorkerResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cells)
            .map(|cell| {
                let mut sub = cfg.clone();
                sub.clients = per + usize::from(cell < extra);
                sub.seed = cfg.seed ^ splitmix64(cell as u64 + 0x5eed);
                scope.spawn(move || run_cluster(&sub))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cell panicked"))
            .collect()
    });
    let wall = epoch.elapsed();
    let mut latency = LogicalHistogram::default();
    let (mut committed, mut aborted, mut ops_committed, mut unfinished) = (0, 0, 0, 0);
    for r in results.iter().flatten() {
        committed += r.committed;
        aborted += r.aborted;
        ops_committed += r.ops_committed;
        unfinished += r.unfinished;
        latency.merge(&r.latency);
    }
    let secs = wall.as_secs_f64().max(1e-9);
    LoadReport {
        mode: cfg.mode.name(),
        backend: cfg.backend.name(),
        clients: cfg.clients,
        committed,
        aborted,
        ops_committed,
        unfinished,
        wall,
        txns_per_sec: committed as f64 / secs,
        ops_per_sec: ops_committed as f64 / secs,
        p50_us: latency.percentile(50.0).unwrap_or(0),
        p90_us: latency.percentile(90.0).unwrap_or(0),
        p99_us: latency.percentile(99.0).unwrap_or(0),
        mean_us: latency.mean().unwrap_or(0.0),
    }
}

/// One cell: an `n_repos` cluster plus its worker pool, run to quiescence
/// or the deadline.
fn run_cluster(cfg: &LoadConfig) -> Vec<WorkerResult> {
    let repos: Vec<ProcId> = (0..cfg.n_repos).collect();
    let stop = AtomicBool::new(false);
    let epoch = Instant::now();
    let now_tick = |epoch: &Instant| -> SimTime { epoch.elapsed().as_micros() as SimTime };

    // Bind every repository listener up front so workers can connect
    // immediately.
    let listeners: Vec<TcpListener> = repos
        .iter()
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let ports: Vec<u16> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect();

    let chunk = cfg.clients.div_ceil(cfg.workers);
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        // --- Repository nodes ---------------------------------------
        match cfg.backend {
            LoadBackend::Threads => {
                for (r, listener) in repos.iter().zip(listeners) {
                    let repo_id = *r;
                    let stop = &stop;
                    let epoch = &epoch;
                    let peers = repos.clone();
                    let repo_cfg = cfg.clone();
                    scope
                        .spawn(move || repo_main(&repo_cfg, repo_id, listener, peers, stop, epoch));
                }
            }
            LoadBackend::EventLoop => {
                let stop = &stop;
                let epoch = &epoch;
                let peers = repos.clone();
                let cell_cfg = cfg.clone();
                scope.spawn(move || cell_eventloop_main(&cell_cfg, listeners, &peers, stop, epoch));
            }
        }

        // --- Client workers -----------------------------------------
        let mut handles = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let first = w * chunk;
            if first >= cfg.clients {
                break;
            }
            let count = chunk.min(cfg.clients - first);
            let ports = ports.clone();
            let repos = repos.clone();
            let epoch = &epoch;
            let cfg = cfg.clone();
            handles
                .push(scope.spawn(move || worker_main(&cfg, first, count, &ports, &repos, epoch)));
        }
        let results: Vec<WorkerResult> = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        stop.store(true, Ordering::SeqCst);
        results
    });
    let _ = now_tick; // tick mapping is implicit in client records
    results
}

/// One repository node: accept loop + event loop, single thread. The
/// listener is polled non-blocking so the thread can watch `stop`;
/// accepted connections get a blocking reader thread each, feeding the
/// shared event queue.
fn repo_main(
    cfg: &LoadConfig,
    repo_id: ProcId,
    listener: TcpListener,
    peers: Vec<ProcId>,
    stop: &AtomicBool,
    epoch: &Instant,
) {
    let bootstrap = Config::new(0, peers.iter().copied(), majority_thresholds(cfg.n_repos));
    let mut repo: Repository<Queue> = Repository::new(cfg.mode, cfg.relation.clone())
        .with_config(ConfigState::Stable(bootstrap))
        .with_peers(peers)
        .with_gossip(cfg.scoped_statuses, cfg.status_gc);
    let mut io: CollectIo<QMsg> = CollectIo::new(repo_id, u64::from(repo_id) + 1);

    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let (tx, rx) = mpsc::channel::<(ProcId, QMsg, usize)>();
    // Writers for accepted connections, indexed by accept order; routes
    // map a client id to the connection its frames arrive on.
    let mut writers: Vec<BufWriter<TcpStream>> = Vec::new();
    let mut route: std::collections::HashMap<ProcId, usize> = std::collections::HashMap::new();

    std::thread::scope(|scope| {
        io.set_now(now_us(epoch));
        repo.start(&mut io);
        debug_assert!(io.is_empty(), "idle repository start emits nothing");

        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            // Accept any pending connections.
            while let Ok((conn, _addr)) = listener.accept() {
                conn.set_nodelay(true).ok();
                let reader = conn.try_clone().expect("clone conn");
                let conn_idx = writers.len();
                writers.push(BufWriter::new(conn));
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut reader = BufReader::new(reader);
                    while let Ok((from, _to, payload)) = read_frame(&mut reader) {
                        let Some(msg) = wire::decode::<QMsg>(&payload) else {
                            break;
                        };
                        if tx.send((from, msg, conn_idx)).is_err() {
                            break;
                        }
                    }
                });
            }
            // Drain the whole backlog per wakeup: on a loaded box each
            // cross-thread handoff costs a context switch, so amortizing
            // handle/flush over the queue is what keeps service rate
            // above arrival rate.
            let mut first = match rx.recv_timeout(IDLE_POLL) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            };
            let mut touched: Vec<usize> = Vec::new();
            while let Some((from, msg, conn_idx)) = first {
                route.insert(from, conn_idx);
                io.set_now(now_us(epoch));
                repo.handle(&mut io, from, msg);
                for out in io.take_outputs() {
                    match out {
                        Output::Send { to, msg, .. } => {
                            // A closed connection (its worker already
                            // finished and shut the socket) just drops
                            // the reply, like a lossy link would.
                            if let Some(&idx) = route.get(&to) {
                                let payload = wire::encode(&msg);
                                if write_frame(&mut writers[idx], repo_id, to, &payload).is_ok() {
                                    touched.push(idx);
                                }
                            }
                        }
                        // Repositories only arm timers for optional
                        // anti-entropy gossip, which the harness
                        // leaves off.
                        Output::SetTimer { .. } => {}
                    }
                }
                first = rx.try_recv().ok();
            }
            touched.sort_unstable();
            touched.dedup();
            for idx in touched {
                writers[idx].flush().ok();
            }
        }
        drop(tx);
    });
}

fn now_us(epoch: &Instant) -> SimTime {
    epoch.elapsed().as_micros() as SimTime
}

/// One event-loop thread hosting *all* of a cell's repositories
/// ([`LoadBackend::EventLoop`]): the whole cell's repository side is one
/// OS thread, no per-repository threads and no per-connection reader
/// threads.
///
/// Everything is readiness-polled over nonblocking sockets: listeners
/// are drained of pending accepts each turn; each connection carries an
/// incremental read buffer (frames decoded as bytes arrive, via
/// [`drain_frames`]) and a write buffer drained opportunistically
/// (`WouldBlock` leaves the tail for the next turn, so a slow reader
/// never stalls the loop). Sends between co-hosted repositories
/// short-circuit in memory. A timer wheel (binary heap keyed by due
/// tick) honors `Output::SetTimer`, so repository timers — optional
/// anti-entropy gossip, off in this harness — would fire here too.
///
/// With nothing readable, writable, due, or pending the loop backs off
/// exponentially (50µs doubling to ~3ms), since nothing interrupts a
/// poll loop's sleep the way `recv_timeout` interrupts the threaded
/// backend's.
fn cell_eventloop_main(
    cfg: &LoadConfig,
    listeners: Vec<TcpListener>,
    peers: &[ProcId],
    stop: &AtomicBool,
    epoch: &Instant,
) {
    use std::io::{ErrorKind, Read as _};

    struct Conn {
        sock: TcpStream,
        /// Which co-hosted repository this connection belongs to (the
        /// listener it was accepted on).
        repo_idx: usize,
        /// Bytes received but not yet framed.
        rbuf: Vec<u8>,
        /// Frames encoded but not yet accepted by the socket.
        wbuf: Vec<u8>,
        open: bool,
    }

    let mut repos: Vec<(Repository<Queue>, CollectIo<QMsg>)> = peers
        .iter()
        .map(|&r| {
            let protocol = Protocol::new(cfg.mode, cfg.relation.clone());
            let bootstrap = Config::new(0, peers.iter().copied(), majority_thresholds(cfg.n_repos));
            let repo: Repository<Queue> = Repository::new(protocol.mode, protocol.rel.clone())
                .with_config(ConfigState::Stable(bootstrap))
                .with_peers(peers.to_vec())
                .with_gossip(cfg.scoped_statuses, cfg.status_gc);
            (repo, CollectIo::new(r, u64::from(r) + 1))
        })
        .collect();
    for l in &listeners {
        l.set_nonblocking(true).expect("nonblocking listener");
    }

    let mut conns: Vec<Conn> = Vec::new();
    // (repository index, client id) -> connection the client's frames
    // arrive on; replies route back over the same connection.
    let mut route: std::collections::HashMap<(usize, ProcId), usize> =
        std::collections::HashMap::new();
    // Sends between co-hosted repositories, delivered without a socket.
    let mut local: std::collections::VecDeque<(usize, ProcId, QMsg)> =
        std::collections::VecDeque::new();
    let mut timers: BinaryHeap<std::cmp::Reverse<(SimTime, u64, usize, u64)>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let mut scratch = vec![0u8; 64 * 1024];

    // Route repository `r`'s buffered outputs: encoded frames into
    // connection write buffers, peer sends into the local queue, timers
    // into the wheel.
    macro_rules! drain {
        ($r:expr, $now:expr) => {{
            let (_, io) = &mut repos[$r];
            for out in io.take_outputs() {
                match out {
                    Output::Send { to, msg, .. } => {
                        if (to as usize) < peers.len() {
                            local.push_back((to as usize, peers[$r], msg));
                        } else if let Some(&ci) = route.get(&($r, to)) {
                            // A closed connection drops the reply, like
                            // a lossy link would.
                            if conns[ci].open {
                                let payload = wire::encode(&msg);
                                write_frame(&mut conns[ci].wbuf, peers[$r], to, &payload)
                                    .expect("vec write");
                            }
                        }
                    }
                    Output::SetTimer { delay, token } => {
                        timers.push(std::cmp::Reverse(($now + delay, timer_seq, $r, token)));
                        timer_seq += 1;
                    }
                }
            }
        }};
    }

    for r in 0..repos.len() {
        let now = now_us(epoch);
        let (repo, io) = &mut repos[r];
        io.set_now(now);
        repo.start(io);
        drain!(r, now);
    }

    let mut idle_turns = 0u32;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let mut progress = false;

        // Accept every pending connection on every listener.
        for (r, l) in listeners.iter().enumerate() {
            loop {
                match l.accept() {
                    Ok((sock, _addr)) => {
                        sock.set_nonblocking(true).expect("nonblocking conn");
                        sock.set_nodelay(true).ok();
                        conns.push(Conn {
                            sock,
                            repo_idx: r,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            open: true,
                        });
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // Read readiness: pull whatever each socket has, frame it, feed
        // the owning repository driver.
        for ci in 0..conns.len() {
            if !conns[ci].open {
                continue;
            }
            loop {
                match conns[ci].sock.read(&mut scratch) {
                    Ok(0) => {
                        conns[ci].open = false;
                        break;
                    }
                    Ok(n) => {
                        conns[ci].rbuf.extend_from_slice(&scratch[..n]);
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conns[ci].open = false;
                        break;
                    }
                }
            }
            let frames = match drain_frames(&mut conns[ci].rbuf) {
                Ok(frames) => frames,
                Err(_) => {
                    conns[ci].open = false;
                    continue;
                }
            };
            let r = conns[ci].repo_idx;
            for (from, _to, payload) in frames {
                let Some(msg) = wire::decode::<QMsg>(&payload) else {
                    conns[ci].open = false;
                    break;
                };
                route.insert((r, from), ci);
                let now = now_us(epoch);
                let (repo, io) = &mut repos[r];
                io.set_now(now);
                repo.handle(io, from, msg);
                drain!(r, now);
            }
        }

        // In-memory deliveries between co-hosted repositories (may
        // enqueue more; drain to empty).
        while let Some((r, from, msg)) = local.pop_front() {
            let now = now_us(epoch);
            let (repo, io) = &mut repos[r];
            io.set_now(now);
            repo.handle(io, from, msg);
            drain!(r, now);
            progress = true;
        }

        // Timer wheel: fire everything due.
        loop {
            let now = now_us(epoch);
            let Some(&std::cmp::Reverse((due, _, r, token))) = timers.peek() else {
                break;
            };
            if due > now {
                break;
            }
            timers.pop();
            let (repo, io) = &mut repos[r];
            io.set_now(now);
            repo.tick(io, token);
            drain!(r, now);
            progress = true;
        }

        // Write readiness: push each connection's buffer as far as the
        // socket will take it.
        for c in &mut conns {
            if !c.open || c.wbuf.is_empty() {
                continue;
            }
            let mut off = 0usize;
            while off < c.wbuf.len() {
                match c.sock.write(&c.wbuf[off..]) {
                    Ok(0) => {
                        c.open = false;
                        break;
                    }
                    Ok(n) => {
                        off += n;
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.open = false;
                        break;
                    }
                }
            }
            c.wbuf.drain(..off);
        }

        if progress {
            idle_turns = 0;
        } else {
            idle_turns += 1;
            let backoff = Duration::from_micros(50u64 << idle_turns.min(6));
            let wait = match timers.peek() {
                Some(&std::cmp::Reverse((due, ..))) => {
                    (TICK * due.saturating_sub(now_us(epoch)) as u32).min(backoff)
                }
                None => backoff,
            };
            std::thread::sleep(wait);
        }
    }
}

/// One worker: hosts `count` client drivers (global ids starting at
/// `n_repos + first`), one TCP connection per repository, and a shared
/// timer heap keyed by `(due_tick, seq, local_client, token)`.
fn worker_main(
    cfg: &LoadConfig,
    first: usize,
    count: usize,
    ports: &[u16],
    repos: &[ProcId],
    epoch: &Instant,
) -> WorkerResult {
    let base_id = cfg.n_repos + first as ProcId;
    let mut conns: Vec<BufWriter<TcpStream>> = Vec::with_capacity(ports.len());
    let (tx, rx) = mpsc::channel::<(ProcId, ProcId, Vec<u8>)>();
    let deadline = *epoch + cfg.deadline;

    let result = std::thread::scope(|scope| {
        for port in ports {
            let conn = TcpStream::connect(("127.0.0.1", *port)).expect("connect repo");
            conn.set_nodelay(true).ok();
            let reader = conn.try_clone().expect("clone conn");
            conns.push(BufWriter::new(conn));
            let tx = tx.clone();
            scope.spawn(move || {
                let mut reader = BufReader::new(reader);
                while let Ok(frame) = read_frame(&mut reader) {
                    if tx.send(frame).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        let mut clients: Vec<(Client<Queue>, CollectIo<QMsg>)> = (0..count)
            .map(|k| {
                let id = base_id + k as ProcId;
                let c = Client::new(
                    client_config(cfg, repos.to_vec()),
                    client_txns(cfg, first + k),
                );
                (c, CollectIo::new(id, cfg.seed ^ splitmix64(u64::from(id))))
            })
            .collect();
        let mut timers: BinaryHeap<std::cmp::Reverse<(SimTime, u64, usize, u64)>> =
            BinaryHeap::new();
        let mut timer_seq = 0u64;
        let mut done = vec![false; count];
        let mut n_done = 0usize;
        let mut dirty = false;

        // Dispatch buffered outputs of client `k`: frames out, timers in.
        macro_rules! dispatch {
            ($k:expr, $now:expr) => {{
                let (_, io) = &mut clients[$k];
                for out in io.take_outputs() {
                    match out {
                        Output::Send { to, msg, .. } => {
                            let payload = wire::encode(&msg);
                            write_frame(
                                &mut conns[to as usize],
                                base_id + $k as ProcId,
                                to,
                                &payload,
                            )
                            .expect("worker write");
                            dirty = true;
                        }
                        Output::SetTimer { delay, token } => {
                            timers.push(std::cmp::Reverse(($now + delay, timer_seq, $k, token)));
                            timer_seq += 1;
                        }
                    }
                }
            }};
        }

        // Client k starts `k/count` of the way through the ramp window
        // (all at once when the ramp is zero).
        let t0 = now_us(epoch);
        let ramp_us = cfg.ramp.as_micros() as u64;
        let mut next_start = 0usize;

        while n_done < count && Instant::now() < deadline {
            let now = now_us(epoch);
            while next_start < count {
                let due = t0 + ramp_us * next_start as u64 / count as u64;
                if due > now {
                    break;
                }
                let k = next_start;
                next_start += 1;
                let (c, io) = &mut clients[k];
                io.set_now(now);
                c.start(&mut *io);
                dispatch!(k, now);
            }
            while let Some(&std::cmp::Reverse((due, _, k, token))) = timers.peek() {
                if due > now {
                    break;
                }
                timers.pop();
                if done[k] {
                    continue;
                }
                let (c, io) = &mut clients[k];
                io.set_now(now);
                c.tick(&mut *io, token);
                dispatch!(k, now);
            }
            // Push out start/timer-driven frames before blocking — nothing
            // may ever be received if these are left sitting in the buffer.
            if dirty {
                for conn in &mut conns {
                    conn.flush().expect("worker flush");
                }
                dirty = false;
            }
            // Sleep until the next local event — a timer firing or a ramped
            // client start — capped only by the stop/deadline poll. Frame
            // arrival interrupts the wait, so a long sleep costs nothing;
            // a short fixed cap would cost everything (hundreds of threads
            // polling at 1 kHz turn a one-core box into a context-switch
            // storm before any protocol work happens).
            let mut next_event = timers
                .peek()
                .map(|&std::cmp::Reverse((due, ..))| due)
                .unwrap_or(u64::MAX);
            if next_start < count {
                next_event = next_event.min(t0 + ramp_us * next_start as u64 / count as u64);
            }
            let wait = if next_event == u64::MAX {
                IDLE_POLL
            } else {
                (TICK * next_event.saturating_sub(now) as u32).min(IDLE_POLL)
            };
            match rx.recv_timeout(wait) {
                Ok((from, to, payload)) => {
                    let k = (to - base_id) as usize;
                    let msg = wire::decode::<QMsg>(&payload).expect("decode reply");
                    let now = now_us(epoch);
                    let (c, io) = &mut clients[k];
                    io.set_now(now);
                    c.handle(&mut *io, from, msg);
                    dispatch!(k, now);
                    if !done[k] && clients[k].0.is_done() {
                        done[k] = true;
                        n_done += 1;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            // Drain whatever else is queued before paying a flush.
            while let Ok((from, to, payload)) = rx.try_recv() {
                let k = (to - base_id) as usize;
                let msg = wire::decode::<QMsg>(&payload).expect("decode reply");
                let now = now_us(epoch);
                let (c, io) = &mut clients[k];
                io.set_now(now);
                c.handle(&mut *io, from, msg);
                dispatch!(k, now);
                if !done[k] && clients[k].0.is_done() {
                    done[k] = true;
                    n_done += 1;
                }
            }
            // Flush everything this turn produced — replies *and*
            // timer-driven sends (a client's first op leaves via a
            // start-jitter timer, when nothing has been received yet).
            if dirty {
                for conn in &mut conns {
                    conn.flush().expect("worker flush");
                }
                dirty = false;
            }
        }

        // Unblock this worker's reader threads (they block on reads from
        // connections the repositories hold open until global stop) so the
        // scope can join them.
        for conn in &conns {
            conn.get_ref().shutdown(std::net::Shutdown::Both).ok();
        }

        // Harvest: stats and begin→commit latencies from client records.
        let mut latency = LogicalHistogram::default();
        let (mut committed, mut aborted, mut ops_committed) = (0, 0, 0);
        for (c, _) in &clients {
            let stats = c.stats();
            committed += stats.committed;
            aborted += stats.aborted_conflict + stats.aborted_unavailable;
            ops_committed += stats.ops_completed;
            let mut begins: std::collections::HashMap<u32, SimTime> =
                std::collections::HashMap::new();
            for rec in c.records() {
                match rec {
                    Record::Begin { t, action } => {
                        begins.insert(action.0, *t);
                    }
                    Record::Commit { t, action } => {
                        if let Some(b) = begins.get(&action.0) {
                            latency.record(t.saturating_sub(*b));
                        }
                    }
                    _ => {}
                }
            }
        }
        WorkerResult {
            committed,
            aborted,
            ops_committed,
            unfinished: count - n_done,
            latency,
        }
    });
    result
}
