//! The `exp_load` harness: many lightweight sans-I/O clients against a
//! real-socket cluster.
//!
//! Topology: each repository is an OS thread hosting a
//! [`Repository`] driver behind a TCP listener on loopback. Clients are
//! *not* threads — a small worker pool multiplexes tens to hundreds of
//! thousands of [`Client`] drivers, each a few hundred bytes of protocol
//! state plus a [`CollectIo`]. Every worker opens one connection per
//! repository and tags frames with the issuing client's process id, so a
//! repository routes replies by id over the connection they arrived on.
//!
//! Time: one logical tick = 1µs of wall clock, so client-recorded
//! begin→commit spans *are* latencies in microseconds. Protocol timeouts
//! are scaled accordingly ([`LoadConfig::op_timeout_ticks`]).
//!
//! Gates (see `wire.rs`): compaction and reconfiguration are off — their
//! payloads are not wire-encodable — and the workload is the Queue type.

use std::collections::{BinaryHeap, VecDeque};
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use quorumcc_adts::queue::{QueueInv, QueueRes};
use quorumcc_adts::Queue;
use quorumcc_model::Classified;
use quorumcc_quorum::ThresholdAssignment;
use quorumcc_replication::client::Record;
use quorumcc_replication::protocol::{Mode, Protocol};
use quorumcc_replication::types::ObjId;
use quorumcc_replication::{
    Client, ClientConfig, CollectIo, Config, ConfigState, Durability, Fanout, LogicalHistogram,
    Msg, Output, Repository, Transaction,
};
use quorumcc_sim::{ProcId, SimTime};

use crate::fault::{FaultShim, NetFaultProfile};
use crate::tcp::{drain_frames, read_frame, write_frame};
use crate::wire;

type QMsg = Msg<QueueInv, QueueRes>;

/// Parameters for one load run (one concurrency-control mode).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrency-control mode under test.
    pub mode: Mode,
    /// Dependency relation for `mode` (must validate for Queue).
    pub relation: quorumcc_core::DependencyRelation,
    /// Independent cells, each its own `n_repos`-repository cluster with
    /// its own listeners and workers; clients are split evenly across
    /// cells and all cells run concurrently. Cells were originally a
    /// gossip-pressure valve (per-repository work was O(total actions)
    /// in statuses, DESIGN §3.14); with scoped shipping + status GC
    /// (DESIGN §3.16) they are the *hosting* unit — one event-loop
    /// thread per cell under [`LoadBackend::EventLoop`], the same
    /// parallelism shape as `exp_scale`'s per-cluster sims.
    pub clusters: usize,
    /// Repository (site) count per cell.
    pub n_repos: u32,
    /// Concurrent client drivers.
    pub clients: usize,
    /// Transactions per client.
    pub txns_per_client: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Distinct objects, assigned per-op pseudorandomly; more objects
    /// means fewer cross-client conflicts.
    pub objects: u16,
    /// Worker threads multiplexing the client drivers.
    pub workers: usize,
    /// Workload/jitter seed.
    pub seed: u64,
    /// Per-quorum-phase timeout in ticks (µs).
    pub op_timeout_ticks: SimTime,
    /// Contact only quorum-sized repository subsets (`Fanout::Narrow`)
    /// instead of broadcasting every phase — a third fewer frames on a
    /// 3-repository cell, at the price of a broadcast fallback after a
    /// timeout.
    pub narrow: bool,
    /// Fraction of operations that are `Deq` (the rest are `Enq`). `Deq`
    /// conflicts with everything on its object; `Enq`s commute, so a
    /// 0.0 mix measures pure throughput with no conflict aborts.
    pub deq_fraction: f64,
    /// Window over which each worker staggers its clients' starts. Zero
    /// is a thundering herd; a ramp keeps the repository side from
    /// building a queue it can never drain (every `Resolve` still plants
    /// statuses in the touched logs — DESIGN §3.16 bounds that work but
    /// does not make admission free).
    pub ramp: Duration,
    /// Wall-clock cap; clients still in flight at the deadline are
    /// abandoned (reported in [`LoadReport::unfinished`]).
    pub deadline: Duration,
    /// Scoped status shipping on repositories (see
    /// `TuningConfig::scoped_statuses`).
    pub scoped_statuses: bool,
    /// Status-GC sweep batch (see `TuningConfig::status_gc`); `None`
    /// keeps tombstones forever.
    pub status_gc: Option<u64>,
    /// How repositories are hosted: one OS thread per repository
    /// ([`LoadBackend::Threads`], the PR 7 shape) or one readiness-polled
    /// event-loop thread per cell multiplexing every repository
    /// ([`LoadBackend::EventLoop`]).
    pub backend: LoadBackend,
    /// Socket-level fault injection applied to every harness link (worker
    /// connections on both backends, accepted connections on the event
    /// loop): seeded resets, stalls, split writes, and silent drops. The
    /// default profile injects nothing and leaves streams untouched.
    pub fault_profile: NetFaultProfile,
    /// Event-loop idle backoff floor, microseconds (the first sleep after
    /// a turn that made no progress; doubles per idle turn).
    pub poll_min_us: u64,
    /// Event-loop idle backoff ceiling, microseconds.
    pub poll_max_us: u64,
    /// Idle wakeup cap for the blocking hosts (repository and worker
    /// threads), milliseconds. Frame arrival interrupts the sleep via
    /// `recv_timeout`, so this bounds only how stale the stop-flag /
    /// deadline / accept checks can get — and the *idle* wakeup rate: a
    /// large fleet runs hundreds of repository and worker threads, and
    /// polling them at 1 kHz each would saturate a small box with context
    /// switches before any protocol work happens.
    pub idle_poll_ms: u64,
    /// Client ResolveAck retransmit period in ticks (µs) — the frontier
    /// repair path (`TuningConfig::resolve_retransmit`). `None` disables
    /// retransmission, the pre-supervision behavior.
    pub resolve_retransmit: Option<SimTime>,
    /// Scripted repository crash (event-loop backend only): the repo at
    /// this index in each cell goes dark at `at_ms`, loses its volatile
    /// state, and restarts `down_ms` later, catching back up through
    /// `SyncReq` state transfer.
    pub crash: Option<CrashSpec>,
}

/// One scripted kill/restart for [`LoadConfig::crash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Repository index (within each cell) to kill.
    pub repo: usize,
    /// Wall-clock offset of the crash, milliseconds from run start.
    pub at_ms: u64,
    /// How long the repository stays dark, milliseconds.
    pub down_ms: u64,
}

impl CrashSpec {
    /// Parses `repo:at_ms:down_ms` (e.g. `0:500:300`).
    pub fn parse(s: &str) -> Result<CrashSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [repo, at_ms, down_ms] = parts.as_slice() else {
            return Err(format!("bad crash spec '{s}': want repo:at_ms:down_ms"));
        };
        let field = |v: &str, name: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("bad crash spec '{s}': {name} is not a number"))
        };
        Ok(CrashSpec {
            repo: field(repo, "repo")? as usize,
            at_ms: field(at_ms, "at_ms")?,
            down_ms: field(down_ms, "down_ms")?,
        })
    }
}

/// Repository hosting strategy for the load harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBackend {
    /// One OS thread (plus blocking reader threads) per repository.
    Threads,
    /// One OS thread per cell multiplexing all of its repositories over
    /// nonblocking sockets — the mio-style poll loop.
    EventLoop,
}

impl LoadBackend {
    /// Stable label for BENCH json.
    pub fn name(self) -> &'static str {
        match self {
            LoadBackend::Threads => "threads",
            LoadBackend::EventLoop => "eventloop",
        }
    }
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            mode: Mode::StaticTs,
            relation: quorumcc_core::DependencyRelation::default(),
            clusters: 1,
            n_repos: 3,
            clients: 1000,
            txns_per_client: 1,
            ops_per_txn: 2,
            objects: 1024,
            workers: 8,
            seed: 1,
            op_timeout_ticks: 500_000, // 500ms
            narrow: false,
            deq_fraction: 0.4,
            ramp: Duration::ZERO,
            deadline: Duration::from_secs(60),
            scoped_statuses: false,
            status_gc: None,
            backend: LoadBackend::Threads,
            fault_profile: NetFaultProfile::none(),
            poll_min_us: 50,
            poll_max_us: 3200,
            idle_poll_ms: 25,
            resolve_retransmit: None,
            crash: None,
        }
    }
}

impl LoadConfig {
    /// The blocking hosts' idle wakeup cap as a duration.
    fn idle_poll(&self) -> Duration {
        Duration::from_millis(self.idle_poll_ms.max(1))
    }

    /// The event loop's idle sleep after `idle_turns` turns with no
    /// progress: exponential from the floor, capped at the ceiling.
    fn poll_backoff(&self, idle_turns: u32) -> Duration {
        let us = self
            .poll_min_us
            .max(1)
            .saturating_mul(1u64 << idle_turns.min(16))
            .min(self.poll_max_us.max(self.poll_min_us.max(1)));
        Duration::from_micros(us)
    }
}

/// Throughput/latency summary of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Mode name (`static-ts` / `hybrid` / `dynamic-2pl`).
    pub mode: &'static str,
    /// Repository hosting strategy (`threads` / `eventloop`).
    pub backend: &'static str,
    /// Client drivers launched.
    pub clients: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted (conflict or unavailability, after retries).
    pub aborted: usize,
    /// Individual operations inside committed transactions.
    pub ops_committed: usize,
    /// Clients that had not finished when the deadline hit.
    pub unfinished: usize,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Committed transactions per wall-clock second.
    pub txns_per_sec: f64,
    /// Committed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Median begin→commit latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Worker→repository reconnects performed by link supervision.
    pub reconnects: u64,
    /// Frames replayed from link rings after a reconnect.
    pub retransmit_frames: u64,
    /// Client-side ResolveAck retransmit rounds (frontier repair).
    pub resolve_ack_retransmits: u64,
    /// Retransmit timer fires that observed a stuck durable frontier.
    pub frontier_stalls: u64,
    /// Statuses garbage-collected repository-side (durable-GC progress).
    pub statuses_gcd: u64,
    /// Repository crash recoveries (scripted via [`LoadConfig::crash`]).
    pub recoveries: u64,
    /// Commit times (ticks = µs since run start) of every committed
    /// transaction, sorted — the raw series `exp_recovery` buckets into
    /// pre-crash vs post-rejoin goodput. Not serialized.
    pub commit_ticks: Vec<SimTime>,
}

impl LoadReport {
    /// Renders the report as a JSON object (hand-rolled, like the rest of
    /// the `BENCH_*.json` emitters).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"mode\": \"{}\", \"backend\": \"{}\", \"clients\": {}, \"committed\": {}, \
             \"aborted\": {}, \
             \"ops_committed\": {}, \"unfinished\": {}, \"wall_ms\": {}, \
             \"txns_per_sec\": {:.1}, \"ops_per_sec\": {:.1}, \
             \"reconnects\": {}, \"retransmit_frames\": {}, \
             \"resolve_ack_retransmits\": {}, \"frontier_stalls\": {}, \"rejoins\": 0, \
             \"statuses_gcd\": {}, \"recoveries\": {}, \
             \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"mean\": {:.1}}}}}",
            self.mode,
            self.backend,
            self.clients,
            self.committed,
            self.aborted,
            self.ops_committed,
            self.unfinished,
            self.wall.as_millis(),
            self.txns_per_sec,
            self.ops_per_sec,
            self.reconnects,
            self.retransmit_frames,
            self.resolve_ack_retransmits,
            self.frontier_stalls,
            self.statuses_gcd,
            self.recoveries,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.mean_us,
        )
    }
}

const TICK: Duration = Duration::from_micros(1);

/// How many recent frames a supervised worker link keeps for replay
/// after a reconnect. Replay is idempotent on the repository side
/// (duplicate `ReadLog`/`WriteLog`/`Resolve` deliveries are absorbed —
/// DESIGN §3.17), so the ring trades memory for recovery coverage; a
/// frame that falls off the ring is recovered by the client's own
/// phase-timeout retry instead.
const LINK_RING: usize = 64;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Majority thresholds for the Queue alphabet — the same default
/// `RunBuilder` applies.
fn majority_thresholds(n: u32) -> ThresholdAssignment {
    let maj = n / 2 + 1;
    let mut ta = ThresholdAssignment::new(n);
    for op in Queue::op_classes() {
        ta.set_initial(op, maj);
    }
    for ev in Queue::event_classes() {
        ta.set_final(ev, maj);
    }
    ta
}

/// The scripted transactions for one client: seeded Enq/Deq ops over
/// pseudorandomly assigned objects.
fn client_txns(cfg: &LoadConfig, client_idx: usize) -> Vec<Transaction<QueueInv>> {
    let mut state = cfg.seed ^ splitmix64(client_idx as u64 + 1);
    let mut draw = || {
        state = splitmix64(state);
        state
    };
    (0..cfg.txns_per_client)
        .map(|_| Transaction {
            ops: (0..cfg.ops_per_txn)
                .map(|_| {
                    let obj = ObjId((draw() % u64::from(cfg.objects.max(1))) as u16);
                    let deq_cut = (cfg.deq_fraction.clamp(0.0, 1.0) * 1000.0) as u64;
                    let inv = if draw() % 1000 < deq_cut {
                        QueueInv::Deq
                    } else {
                        QueueInv::Enq((draw() % 100) as u32)
                    };
                    (obj, inv)
                })
                .collect(),
        })
        .collect()
}

fn client_config(cfg: &LoadConfig, repos: Vec<ProcId>) -> ClientConfig {
    ClientConfig {
        protocol: Protocol::new(cfg.mode, cfg.relation.clone()),
        thresholds: majority_thresholds(cfg.n_repos),
        repos,
        op_timeout: cfg.op_timeout_ticks,
        max_phase_retries: 2,
        think_time: 1000,
        commit_delay: 0,
        txn_retries: 2,
        propagate_views: true,
        fanout: if cfg.narrow {
            Fanout::Narrow
        } else {
            Fanout::Broadcast
        },
        delta_shipping: true,
        compact_logs: false,
        weaken_read_quorum: false,
        skip_final_ack: false,
        shards: 1,
        batch: 1,
        batch_window: 0,
        shard_thresholds: Vec::new(),
        status_gc: cfg.status_gc.is_some(),
        resolve_retransmit: cfg.resolve_retransmit,
    }
}

/// What one worker hands back when its clients are done (or abandoned).
struct WorkerResult {
    committed: usize,
    aborted: usize,
    ops_committed: usize,
    unfinished: usize,
    latency: LogicalHistogram,
    reconnects: u64,
    retransmit_frames: u64,
    resolve_retransmits: u64,
    frontier_stalls: u64,
    commit_ticks: Vec<SimTime>,
}

/// Repository-side counters a cell reports once its hosts stop.
#[derive(Debug, Clone, Copy, Default)]
struct RepoSideStats {
    statuses_gcd: u64,
    recoveries: u64,
}

/// A supervised worker→repository connection: on any write failure the
/// link is severed and redialed with capped exponential backoff plus
/// deterministic jitter, and the last [`LINK_RING`] frames are replayed
/// over the new socket. Replay is safe because every protocol message is
/// idempotent repository-side (DESIGN §3.17); in particular a replayed
/// `Resolve` re-earns the `ResolveAck` that unsticks the durable-GC
/// frontier after an ack was lost with the old connection.
struct PeerLink {
    port: u16,
    seed: u64,
    profile: NetFaultProfile,
    writer: Option<BufWriter<FaultShim<TcpStream>>>,
    ring: VecDeque<Vec<u8>>,
    /// Successful connects so far (first connect included).
    established: u64,
    /// Consecutive failed dial attempts since the last success.
    attempts: u32,
    next_attempt: Instant,
    reconnects: u64,
    retransmit_frames: u64,
    rng: u64,
    dirty: bool,
}

impl PeerLink {
    fn new(port: u16, seed: u64, profile: NetFaultProfile) -> Self {
        PeerLink {
            port,
            seed,
            profile,
            writer: None,
            ring: VecDeque::new(),
            established: 0,
            attempts: 0,
            next_attempt: Instant::now(),
            reconnects: 0,
            retransmit_frames: 0,
            rng: splitmix64(seed ^ 0xbacc_0ff5),
            dirty: false,
        }
    }

    /// Dial delay after `attempts` consecutive failures: 1ms doubling to
    /// a 256ms cap, plus up to 25% deterministic jitter so a fleet of
    /// workers does not redial a recovering repository in lockstep.
    fn backoff(&mut self) -> Duration {
        let base_us = (1000u64 << self.attempts.min(8)).min(256_000);
        self.rng = splitmix64(self.rng);
        Duration::from_micros(base_us + self.rng % (base_us / 4 + 1))
    }

    /// Tears the connection down (unblocking its reader thread) and
    /// schedules the first redial.
    fn sever(&mut self) {
        if let Some(w) = self.writer.take() {
            w.get_ref()
                .get_ref()
                .shutdown(std::net::Shutdown::Both)
                .ok();
        }
        self.attempts = 0;
        let delay = self.backoff();
        self.next_attempt = Instant::now() + delay;
    }

    /// Queues `frame` on the ring and writes it if the link is up; a
    /// write failure severs the link (the frame survives on the ring).
    fn send(&mut self, frame: Vec<u8>) {
        if self.ring.len() == LINK_RING {
            self.ring.pop_front();
        }
        if let Some(w) = &mut self.writer {
            if w.write_all(&frame).is_ok() {
                self.dirty = true;
            } else {
                self.sever();
            }
        }
        self.ring.push_back(frame);
    }

    /// Flushes buffered writes; a failure severs the link.
    fn flush(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        if let Some(w) = &mut self.writer {
            if w.flush().is_err() {
                self.sever();
            }
        }
    }
}

/// Runs one load configuration end to end and reports SLO percentiles.
///
/// # Panics
/// Panics on socket errors (bind/connect on loopback) and on codec
/// violations — both are harness bugs, not protocol outcomes.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    assert!(cfg.n_repos >= 1 && cfg.clients >= 1 && cfg.workers >= 1);
    let cells = cfg.clusters.max(1).min(cfg.clients);
    let epoch = Instant::now();
    let per = cfg.clients / cells;
    let extra = cfg.clients % cells;
    let results: Vec<(Vec<WorkerResult>, RepoSideStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cells)
            .map(|cell| {
                let mut sub = cfg.clone();
                sub.clients = per + usize::from(cell < extra);
                sub.seed = cfg.seed ^ splitmix64(cell as u64 + 0x5eed);
                scope.spawn(move || run_cluster(&sub))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cell panicked"))
            .collect()
    });
    let wall = epoch.elapsed();
    let mut latency = LogicalHistogram::default();
    let (mut committed, mut aborted, mut ops_committed, mut unfinished) = (0, 0, 0, 0);
    let (mut reconnects, mut retransmit_frames) = (0u64, 0u64);
    let (mut resolve_ack_retransmits, mut frontier_stalls) = (0u64, 0u64);
    let mut repo_side = RepoSideStats::default();
    let mut commit_ticks: Vec<SimTime> = Vec::new();
    for (workers, repo) in &results {
        repo_side.statuses_gcd += repo.statuses_gcd;
        repo_side.recoveries += repo.recoveries;
        for r in workers {
            committed += r.committed;
            aborted += r.aborted;
            ops_committed += r.ops_committed;
            unfinished += r.unfinished;
            latency.merge(&r.latency);
            reconnects += r.reconnects;
            retransmit_frames += r.retransmit_frames;
            resolve_ack_retransmits += r.resolve_retransmits;
            frontier_stalls += r.frontier_stalls;
            commit_ticks.extend_from_slice(&r.commit_ticks);
        }
    }
    commit_ticks.sort_unstable();
    let secs = wall.as_secs_f64().max(1e-9);
    LoadReport {
        mode: cfg.mode.name(),
        backend: cfg.backend.name(),
        clients: cfg.clients,
        committed,
        aborted,
        ops_committed,
        unfinished,
        wall,
        txns_per_sec: committed as f64 / secs,
        ops_per_sec: ops_committed as f64 / secs,
        p50_us: latency.percentile(50.0).unwrap_or(0),
        p90_us: latency.percentile(90.0).unwrap_or(0),
        p99_us: latency.percentile(99.0).unwrap_or(0),
        mean_us: latency.mean().unwrap_or(0.0),
        reconnects,
        retransmit_frames,
        resolve_ack_retransmits,
        frontier_stalls,
        statuses_gcd: repo_side.statuses_gcd,
        recoveries: repo_side.recoveries,
        commit_ticks,
    }
}

/// One cell: an `n_repos` cluster plus its worker pool, run to quiescence
/// or the deadline.
fn run_cluster(cfg: &LoadConfig) -> (Vec<WorkerResult>, RepoSideStats) {
    let repos: Vec<ProcId> = (0..cfg.n_repos).collect();
    let stop = AtomicBool::new(false);
    let epoch = Instant::now();
    let now_tick = |epoch: &Instant| -> SimTime { epoch.elapsed().as_micros() as SimTime };

    // Bind every repository listener up front so workers can connect
    // immediately.
    let listeners: Vec<TcpListener> = repos
        .iter()
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let ports: Vec<u16> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect();

    let chunk = cfg.clients.div_ceil(cfg.workers);
    let (results, repo_side) = std::thread::scope(|scope| {
        // --- Repository nodes ---------------------------------------
        let mut repo_handles = Vec::new();
        match cfg.backend {
            LoadBackend::Threads => {
                for (r, listener) in repos.iter().zip(listeners) {
                    let repo_id = *r;
                    let stop = &stop;
                    let epoch = &epoch;
                    let peers = repos.clone();
                    let repo_cfg = cfg.clone();
                    repo_handles.push(scope.spawn(move || {
                        repo_main(&repo_cfg, repo_id, listener, peers, stop, epoch)
                    }));
                }
            }
            LoadBackend::EventLoop => {
                let stop = &stop;
                let epoch = &epoch;
                let peers = repos.clone();
                let cell_cfg = cfg.clone();
                repo_handles.push(
                    scope.spawn(move || {
                        cell_eventloop_main(&cell_cfg, listeners, &peers, stop, epoch)
                    }),
                );
            }
        }

        // --- Client workers -----------------------------------------
        let mut handles = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let first = w * chunk;
            if first >= cfg.clients {
                break;
            }
            let count = chunk.min(cfg.clients - first);
            let ports = ports.clone();
            let repos = repos.clone();
            let epoch = &epoch;
            let cfg = cfg.clone();
            handles
                .push(scope.spawn(move || worker_main(&cfg, first, count, &ports, &repos, epoch)));
        }
        let results: Vec<WorkerResult> = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        stop.store(true, Ordering::SeqCst);
        let mut repo_side = RepoSideStats::default();
        for h in repo_handles {
            let s = h.join().expect("repo host panicked");
            repo_side.statuses_gcd += s.statuses_gcd;
            repo_side.recoveries += s.recoveries;
        }
        (results, repo_side)
    });
    let _ = now_tick; // tick mapping is implicit in client records
    (results, repo_side)
}

/// One repository node: accept loop + event loop, single thread. The
/// listener is polled non-blocking so the thread can watch `stop`;
/// accepted connections get a blocking reader thread each, feeding the
/// shared event queue. Accepted streams pass through [`FaultShim`], so a
/// lossy profile can reset, stall, or blackhole them server-side too.
fn repo_main(
    cfg: &LoadConfig,
    repo_id: ProcId,
    listener: TcpListener,
    peers: Vec<ProcId>,
    stop: &AtomicBool,
    epoch: &Instant,
) -> RepoSideStats {
    let bootstrap = Config::new(0, peers.iter().copied(), majority_thresholds(cfg.n_repos));
    let mut repo: Repository<Queue> = Repository::new(cfg.mode, cfg.relation.clone())
        .with_config(ConfigState::Stable(bootstrap))
        .with_peers(peers)
        .with_gossip(cfg.scoped_statuses, cfg.status_gc);
    let mut io: CollectIo<QMsg> = CollectIo::new(repo_id, u64::from(repo_id) + 1);

    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let (tx, rx) = mpsc::channel::<(ProcId, QMsg, usize)>();
    // Writers for accepted connections, indexed by accept order; routes
    // map a client id to the connection its frames arrive on.
    let mut writers: Vec<BufWriter<FaultShim<TcpStream>>> = Vec::new();
    let mut route: std::collections::HashMap<ProcId, usize> = std::collections::HashMap::new();

    std::thread::scope(|scope| {
        io.set_now(now_us(epoch));
        repo.start(&mut io);
        debug_assert!(io.is_empty(), "idle repository start emits nothing");

        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            // Accept any pending connections.
            while let Ok((conn, _addr)) = listener.accept() {
                conn.set_nodelay(true).ok();
                let reader = conn.try_clone().expect("clone conn");
                let conn_idx = writers.len();
                let link_id = splitmix64(cfg.seed ^ (u64::from(repo_id) << 24) ^ conn_idx as u64);
                writers.push(BufWriter::new(FaultShim::new(
                    conn,
                    cfg.fault_profile,
                    link_id,
                )));
                let reader_shim = FaultShim::new(reader, cfg.fault_profile, link_id ^ 1);
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut reader = BufReader::new(reader_shim);
                    while let Ok((from, _to, payload)) = read_frame(&mut reader) {
                        let Some(msg) = wire::decode::<QMsg>(&payload) else {
                            break;
                        };
                        if tx.send((from, msg, conn_idx)).is_err() {
                            break;
                        }
                    }
                    // A dead read leg must kill the whole socket: leaving
                    // it half-open would let the worker keep writing into
                    // a void with nothing to trip its supervision.
                    reader
                        .get_ref()
                        .get_ref()
                        .shutdown(std::net::Shutdown::Both)
                        .ok();
                });
            }
            // Drain the whole backlog per wakeup: on a loaded box each
            // cross-thread handoff costs a context switch, so amortizing
            // handle/flush over the queue is what keeps service rate
            // above arrival rate.
            let mut first = match rx.recv_timeout(cfg.idle_poll()) {
                Ok(m) => Some(m),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            };
            let mut touched: Vec<usize> = Vec::new();
            while let Some((from, msg, conn_idx)) = first {
                route.insert(from, conn_idx);
                io.set_now(now_us(epoch));
                repo.handle(&mut io, from, msg);
                for out in io.take_outputs() {
                    match out {
                        Output::Send { to, msg, .. } => {
                            // A closed connection (its worker already
                            // finished and shut the socket) just drops
                            // the reply, like a lossy link would.
                            if let Some(&idx) = route.get(&to) {
                                let payload = wire::encode(&msg);
                                if write_frame(&mut writers[idx], repo_id, to, &payload).is_ok() {
                                    touched.push(idx);
                                } else {
                                    // The write leg died (shim reset or
                                    // blackhole exhausted): close the
                                    // socket so the worker's reader sees
                                    // EOF and supervision redials.
                                    writers[idx]
                                        .get_ref()
                                        .get_ref()
                                        .shutdown(std::net::Shutdown::Both)
                                        .ok();
                                }
                            }
                        }
                        // Repositories only arm timers for optional
                        // anti-entropy gossip, which the harness
                        // leaves off.
                        Output::SetTimer { .. } => {}
                    }
                }
                first = rx.try_recv().ok();
            }
            touched.sort_unstable();
            touched.dedup();
            for idx in touched {
                if writers[idx].flush().is_err() {
                    writers[idx]
                        .get_ref()
                        .get_ref()
                        .shutdown(std::net::Shutdown::Both)
                        .ok();
                }
            }
        }
        drop(tx);
    });
    let counters = repo.counters();
    RepoSideStats {
        statuses_gcd: counters.statuses_gcd,
        recoveries: counters.recoveries,
    }
}

fn now_us(epoch: &Instant) -> SimTime {
    epoch.elapsed().as_micros() as SimTime
}

/// One event-loop thread hosting *all* of a cell's repositories
/// ([`LoadBackend::EventLoop`]): the whole cell's repository side is one
/// OS thread, no per-repository threads and no per-connection reader
/// threads.
///
/// Everything is readiness-polled over nonblocking sockets: listeners
/// are drained of pending accepts each turn; each connection carries an
/// incremental read buffer (frames decoded as bytes arrive, via
/// [`drain_frames`]) and a write buffer drained opportunistically
/// (`WouldBlock` leaves the tail for the next turn, so a slow reader
/// never stalls the loop). Sends between co-hosted repositories
/// short-circuit in memory. A timer wheel (binary heap keyed by due
/// tick) honors `Output::SetTimer`, so repository timers — optional
/// anti-entropy gossip, off in this harness — would fire here too.
///
/// With nothing readable, writable, due, or pending the loop backs off
/// exponentially ([`LoadConfig::poll_min_us`] doubling to
/// [`LoadConfig::poll_max_us`]), since nothing interrupts a poll loop's
/// sleep the way `recv_timeout` interrupts the threaded backend's.
///
/// A scripted [`LoadConfig::crash`] kills one co-hosted repository for a
/// wall-clock window: its connections are severed, its timers and
/// pending deliveries dropped, and — since the crashed repository is
/// built with volatile storage — the restart comes back amnesiac and
/// catches up through `SyncReq` state transfer over the cell's local
/// queue before serving quorums again.
fn cell_eventloop_main(
    cfg: &LoadConfig,
    listeners: Vec<TcpListener>,
    peers: &[ProcId],
    stop: &AtomicBool,
    epoch: &Instant,
) -> RepoSideStats {
    use std::io::{ErrorKind, Read as _};

    struct Conn {
        sock: FaultShim<TcpStream>,
        /// Which co-hosted repository this connection belongs to (the
        /// listener it was accepted on).
        repo_idx: usize,
        /// Bytes received but not yet framed.
        rbuf: Vec<u8>,
        /// Frames encoded but not yet accepted by the socket.
        wbuf: Vec<u8>,
        open: bool,
    }

    impl Conn {
        /// Marks the connection dead and shuts the socket down so the
        /// worker's reader sees EOF — a half-open connection would let
        /// the worker keep writing into a void with nothing to trip its
        /// link supervision.
        fn close(&mut self) {
            self.open = false;
            self.sock.get_ref().shutdown(std::net::Shutdown::Both).ok();
        }
    }

    let crash_repo = cfg.crash.map(|c| c.repo.min(peers.len() - 1));
    let mut repos: Vec<(Repository<Queue>, CollectIo<QMsg>)> = peers
        .iter()
        .map(|&r| {
            let protocol = Protocol::new(cfg.mode, cfg.relation.clone());
            let bootstrap = Config::new(0, peers.iter().copied(), majority_thresholds(cfg.n_repos));
            let mut repo: Repository<Queue> = Repository::new(protocol.mode, protocol.rel.clone())
                .with_config(ConfigState::Stable(bootstrap))
                .with_peers(peers.to_vec())
                .with_gossip(cfg.scoped_statuses, cfg.status_gc);
            if crash_repo == Some(r as usize) {
                // The scripted victim loses everything at the crash —
                // recovery must rebuild from peers, not from a WAL.
                repo = repo.with_durability(Durability::Volatile { wal: false });
            }
            (repo, CollectIo::new(r, u64::from(r) + 1))
        })
        .collect();
    for l in &listeners {
        l.set_nonblocking(true).expect("nonblocking listener");
    }

    let mut conns: Vec<Conn> = Vec::new();
    // (repository index, client id) -> connection the client's frames
    // arrive on; replies route back over the same connection.
    let mut route: std::collections::HashMap<(usize, ProcId), usize> =
        std::collections::HashMap::new();
    // Sends between co-hosted repositories, delivered without a socket.
    let mut local: std::collections::VecDeque<(usize, ProcId, QMsg)> =
        std::collections::VecDeque::new();
    let mut timers: BinaryHeap<std::cmp::Reverse<(SimTime, u64, usize, u64)>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let mut scratch = vec![0u8; 64 * 1024];

    // Route repository `r`'s buffered outputs: encoded frames into
    // connection write buffers, peer sends into the local queue, timers
    // into the wheel.
    macro_rules! drain {
        ($r:expr, $now:expr) => {{
            let (_, io) = &mut repos[$r];
            for out in io.take_outputs() {
                match out {
                    Output::Send { to, msg, .. } => {
                        if (to as usize) < peers.len() {
                            local.push_back((to as usize, peers[$r], msg));
                        } else if let Some(&ci) = route.get(&($r, to)) {
                            // A closed connection drops the reply, like
                            // a lossy link would.
                            if conns[ci].open {
                                let payload = wire::encode(&msg);
                                write_frame(&mut conns[ci].wbuf, peers[$r], to, &payload)
                                    .expect("vec write");
                            }
                        }
                    }
                    Output::SetTimer { delay, token } => {
                        timers.push(std::cmp::Reverse(($now + delay, timer_seq, $r, token)));
                        timer_seq += 1;
                    }
                }
            }
        }};
    }

    for r in 0..repos.len() {
        let now = now_us(epoch);
        let (repo, io) = &mut repos[r];
        io.set_now(now);
        repo.start(io);
        drain!(r, now);
    }

    let mut idle_turns = 0u32;
    let mut accepted = 0u64;
    // 0 = crash not yet due, 1 = dark, 2 = recovered (or no crash).
    let mut crash_phase = if cfg.crash.is_some() { 0u8 } else { 2u8 };
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let mut progress = false;

        // Scripted crash window: sever the victim's connections and drop
        // its pending work on entry; recover (amnesiac) at the end.
        if let (Some(spec), Some(victim)) = (cfg.crash, crash_repo) {
            let el_ms = epoch.elapsed().as_millis() as u64;
            if crash_phase == 0 && el_ms >= spec.at_ms {
                crash_phase = 1;
                for c in conns.iter_mut().filter(|c| c.repo_idx == victim) {
                    c.sock.get_ref().shutdown(std::net::Shutdown::Both).ok();
                    c.open = false;
                }
                timers = timers
                    .drain()
                    .filter(|&std::cmp::Reverse((_, _, r, _))| r != victim)
                    .collect();
                local.retain(|&(to, _, _)| to != victim);
                route.retain(|&(r, _), _| r != victim);
                let (_, io) = &mut repos[victim];
                io.take_outputs();
            }
            if crash_phase == 1 && el_ms >= spec.at_ms + spec.down_ms {
                crash_phase = 2;
                let now = now_us(epoch);
                let (repo, io) = &mut repos[victim];
                io.set_now(now);
                repo.on_recover(io);
                drain!(victim, now);
            }
        }
        let dark = (crash_phase == 1).then_some(crash_repo.unwrap_or(usize::MAX));

        // Accept every pending connection on every listener (a dark
        // repository accepts nothing; connects queue in its backlog).
        for (r, l) in listeners.iter().enumerate() {
            if dark == Some(r) {
                continue;
            }
            loop {
                match l.accept() {
                    Ok((sock, _addr)) => {
                        sock.set_nonblocking(true).expect("nonblocking conn");
                        sock.set_nodelay(true).ok();
                        accepted += 1;
                        let link_id = splitmix64(cfg.seed ^ ((r as u64) << 40) ^ accepted);
                        conns.push(Conn {
                            sock: FaultShim::new_nonblocking(sock, cfg.fault_profile, link_id),
                            repo_idx: r,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            open: true,
                        });
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // Read readiness: pull whatever each socket has, frame it, feed
        // the owning repository driver.
        for ci in 0..conns.len() {
            if !conns[ci].open || dark == Some(conns[ci].repo_idx) {
                continue;
            }
            loop {
                match conns[ci].sock.read(&mut scratch) {
                    Ok(0) => {
                        conns[ci].close();
                        break;
                    }
                    Ok(n) => {
                        conns[ci].rbuf.extend_from_slice(&scratch[..n]);
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conns[ci].close();
                        break;
                    }
                }
            }
            let frames = match drain_frames(&mut conns[ci].rbuf) {
                Ok(frames) => frames,
                Err(_) => {
                    conns[ci].close();
                    continue;
                }
            };
            let r = conns[ci].repo_idx;
            for (from, _to, payload) in frames {
                let Some(msg) = wire::decode::<QMsg>(&payload) else {
                    conns[ci].close();
                    break;
                };
                route.insert((r, from), ci);
                let now = now_us(epoch);
                let (repo, io) = &mut repos[r];
                io.set_now(now);
                repo.handle(io, from, msg);
                drain!(r, now);
            }
        }

        // In-memory deliveries between co-hosted repositories (may
        // enqueue more; drain to empty). A dark repository's deliveries
        // are dropped, like frames to a crashed host.
        while let Some((r, from, msg)) = local.pop_front() {
            if dark == Some(r) {
                continue;
            }
            let now = now_us(epoch);
            let (repo, io) = &mut repos[r];
            io.set_now(now);
            repo.handle(io, from, msg);
            drain!(r, now);
            progress = true;
        }

        // Timer wheel: fire everything due (dark repository's timers
        // were purged at crash entry; drop any stragglers).
        loop {
            let now = now_us(epoch);
            let Some(&std::cmp::Reverse((due, _, r, token))) = timers.peek() else {
                break;
            };
            if due > now {
                break;
            }
            timers.pop();
            if dark == Some(r) {
                continue;
            }
            let (repo, io) = &mut repos[r];
            io.set_now(now);
            repo.tick(io, token);
            drain!(r, now);
            progress = true;
        }

        // Write readiness: push each connection's buffer as far as the
        // socket will take it.
        for c in &mut conns {
            if !c.open || c.wbuf.is_empty() {
                continue;
            }
            let mut off = 0usize;
            while off < c.wbuf.len() {
                match c.sock.write(&c.wbuf[off..]) {
                    Ok(0) => {
                        c.close();
                        break;
                    }
                    Ok(n) => {
                        off += n;
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.close();
                        break;
                    }
                }
            }
            c.wbuf.drain(..off);
        }

        if progress {
            idle_turns = 0;
        } else {
            idle_turns += 1;
            let backoff = cfg.poll_backoff(idle_turns);
            let wait = match timers.peek() {
                Some(&std::cmp::Reverse((due, ..))) => {
                    (TICK * due.saturating_sub(now_us(epoch)) as u32).min(backoff)
                }
                None => backoff,
            };
            std::thread::sleep(wait);
        }
    }

    let mut side = RepoSideStats::default();
    for (repo, _) in &repos {
        let counters = repo.counters();
        side.statuses_gcd += counters.statuses_gcd;
        side.recoveries += counters.recoveries;
    }
    side
}

/// One worker: hosts `count` client drivers (global ids starting at
/// `n_repos + first`), one TCP connection per repository, and a shared
/// timer heap keyed by `(due_tick, seq, local_client, token)`.
fn worker_main(
    cfg: &LoadConfig,
    first: usize,
    count: usize,
    ports: &[u16],
    repos: &[ProcId],
    epoch: &Instant,
) -> WorkerResult {
    let base_id = cfg.n_repos + first as ProcId;
    let (tx, rx) = mpsc::channel::<(ProcId, ProcId, Vec<u8>)>();
    let deadline = *epoch + cfg.deadline;
    let mut links: Vec<PeerLink> = ports
        .iter()
        .enumerate()
        .map(|(i, port)| {
            PeerLink::new(
                *port,
                splitmix64(cfg.seed ^ ((first as u64) << 32) ^ i as u64),
                cfg.fault_profile,
            )
        })
        .collect();
    // Per-link death signal from reader threads: a reader that hits
    // EOF/error records its connection generation here, and supervision
    // severs the matching link. This is what catches *server-side* link
    // deaths — the repository closes the socket, our writes would keep
    // succeeding into the OS buffer forever otherwise.
    let dead_gens: Vec<Arc<AtomicU64>> = ports.iter().map(|_| Arc::default()).collect();

    let result = std::thread::scope(|scope| {
        // Dial every link that is down and due for an attempt; replay the
        // ring over the fresh socket and spawn its reader thread. `tx`
        // stays alive for the whole run so late reconnects can clone it.
        macro_rules! supervise {
            () => {{
                for (link, dead) in links.iter_mut().zip(&dead_gens) {
                    // Reader died for the current generation (server
                    // closed, reset, or the read shim gave out): sever so
                    // the dial path below takes over.
                    if link.writer.is_some() && dead.load(Ordering::SeqCst) >= link.established {
                        link.sever();
                    }
                    if link.writer.is_some() || Instant::now() < link.next_attempt {
                        continue;
                    }
                    let Ok(conn) = TcpStream::connect(("127.0.0.1", link.port)) else {
                        link.attempts += 1;
                        let delay = link.backoff();
                        link.next_attempt = Instant::now() + delay;
                        continue;
                    };
                    conn.set_nodelay(true).ok();
                    link.established += 1;
                    if link.established > 1 {
                        link.reconnects += 1;
                    }
                    let link_id = splitmix64(link.seed ^ link.established);
                    let reader = FaultShim::new(
                        conn.try_clone().expect("clone conn"),
                        link.profile,
                        link_id ^ 1,
                    );
                    let tx = tx.clone();
                    let dead = Arc::clone(dead);
                    let generation = link.established;
                    scope.spawn(move || {
                        let mut reader = BufReader::new(reader);
                        while let Ok(frame) = read_frame(&mut reader) {
                            if tx.send(frame).is_err() {
                                break;
                            }
                        }
                        reader
                            .get_ref()
                            .get_ref()
                            .shutdown(std::net::Shutdown::Both)
                            .ok();
                        dead.fetch_max(generation, Ordering::SeqCst);
                    });
                    let mut w = BufWriter::new(FaultShim::new(conn, link.profile, link_id));
                    let mut ok = true;
                    for f in &link.ring {
                        if w.write_all(f).is_err() {
                            ok = false;
                            break;
                        }
                        link.retransmit_frames += 1;
                    }
                    if ok {
                        ok = w.flush().is_ok();
                    }
                    if ok {
                        link.writer = Some(w);
                        link.attempts = 0;
                    } else {
                        w.get_ref()
                            .get_ref()
                            .shutdown(std::net::Shutdown::Both)
                            .ok();
                        link.attempts += 1;
                        let delay = link.backoff();
                        link.next_attempt = Instant::now() + delay;
                    }
                }
            }};
        }
        supervise!();

        let mut clients: Vec<(Client<Queue>, CollectIo<QMsg>)> = (0..count)
            .map(|k| {
                let id = base_id + k as ProcId;
                let c = Client::new(
                    client_config(cfg, repos.to_vec()),
                    client_txns(cfg, first + k),
                );
                (c, CollectIo::new(id, cfg.seed ^ splitmix64(u64::from(id))))
            })
            .collect();
        let mut timers: BinaryHeap<std::cmp::Reverse<(SimTime, u64, usize, u64)>> =
            BinaryHeap::new();
        let mut timer_seq = 0u64;
        let mut done = vec![false; count];
        let mut n_done = 0usize;

        // Dispatch buffered outputs of client `k`: frames onto the
        // supervised links, timers into the heap.
        macro_rules! dispatch {
            ($k:expr, $now:expr) => {{
                let (_, io) = &mut clients[$k];
                for out in io.take_outputs() {
                    match out {
                        Output::Send { to, msg, .. } => {
                            let payload = wire::encode(&msg);
                            let mut frame = Vec::with_capacity(payload.len() + 16);
                            write_frame(&mut frame, base_id + $k as ProcId, to, &payload)
                                .expect("vec write");
                            links[to as usize].send(frame);
                        }
                        Output::SetTimer { delay, token } => {
                            timers.push(std::cmp::Reverse(($now + delay, timer_seq, $k, token)));
                            timer_seq += 1;
                        }
                    }
                }
            }};
        }

        // Client k starts `k/count` of the way through the ramp window
        // (all at once when the ramp is zero).
        let t0 = now_us(epoch);
        let ramp_us = cfg.ramp.as_micros() as u64;
        let mut next_start = 0usize;

        while n_done < count && Instant::now() < deadline {
            supervise!();
            let now = now_us(epoch);
            while next_start < count {
                let due = t0 + ramp_us * next_start as u64 / count as u64;
                if due > now {
                    break;
                }
                let k = next_start;
                next_start += 1;
                let (c, io) = &mut clients[k];
                io.set_now(now);
                c.start(&mut *io);
                dispatch!(k, now);
            }
            while let Some(&std::cmp::Reverse((due, _, k, token))) = timers.peek() {
                if due > now {
                    break;
                }
                timers.pop();
                if done[k] {
                    continue;
                }
                let (c, io) = &mut clients[k];
                io.set_now(now);
                c.tick(&mut *io, token);
                dispatch!(k, now);
            }
            // Push out start/timer-driven frames before blocking — nothing
            // may ever be received if these are left sitting in the buffer.
            for link in links.iter_mut() {
                link.flush();
            }
            // Sleep until the next local event — a timer firing or a ramped
            // client start — capped only by the stop/deadline poll. Frame
            // arrival interrupts the wait, so a long sleep costs nothing;
            // a short fixed cap would cost everything (hundreds of threads
            // polling at 1 kHz turn a one-core box into a context-switch
            // storm before any protocol work happens).
            let mut next_event = timers
                .peek()
                .map(|&std::cmp::Reverse((due, ..))| due)
                .unwrap_or(u64::MAX);
            if next_start < count {
                next_event = next_event.min(t0 + ramp_us * next_start as u64 / count as u64);
            }
            let mut wait = if next_event == u64::MAX {
                cfg.idle_poll()
            } else {
                (TICK * next_event.saturating_sub(now) as u32).min(cfg.idle_poll())
            };
            // A downed link bounds the sleep too, so redials happen on
            // their backoff schedule rather than the idle cadence.
            if let Some(due) = links
                .iter()
                .filter(|l| l.writer.is_none())
                .map(|l| l.next_attempt)
                .min()
            {
                let until = due
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_micros(100));
                wait = wait.min(until);
            }
            match rx.recv_timeout(wait) {
                Ok((from, to, payload)) => {
                    let k = (to - base_id) as usize;
                    let msg = wire::decode::<QMsg>(&payload).expect("decode reply");
                    let now = now_us(epoch);
                    let (c, io) = &mut clients[k];
                    io.set_now(now);
                    c.handle(&mut *io, from, msg);
                    dispatch!(k, now);
                    if !done[k] && clients[k].0.is_done() {
                        done[k] = true;
                        n_done += 1;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            // Drain whatever else is queued before paying a flush.
            while let Ok((from, to, payload)) = rx.try_recv() {
                let k = (to - base_id) as usize;
                let msg = wire::decode::<QMsg>(&payload).expect("decode reply");
                let now = now_us(epoch);
                let (c, io) = &mut clients[k];
                io.set_now(now);
                c.handle(&mut *io, from, msg);
                dispatch!(k, now);
                if !done[k] && clients[k].0.is_done() {
                    done[k] = true;
                    n_done += 1;
                }
            }
            // Flush everything this turn produced — replies *and*
            // timer-driven sends (a client's first op leaves via a
            // start-jitter timer, when nothing has been received yet).
            for link in links.iter_mut() {
                link.flush();
            }
        }

        // Unblock this worker's reader threads (they block on reads from
        // connections the repositories hold open until global stop) so the
        // scope can join them.
        for link in links.iter_mut() {
            if let Some(w) = link.writer.take() {
                w.get_ref()
                    .get_ref()
                    .shutdown(std::net::Shutdown::Both)
                    .ok();
            }
        }

        // Harvest: stats, begin→commit latencies, and commit times from
        // client records; supervision counters from the links.
        let mut latency = LogicalHistogram::default();
        let (mut committed, mut aborted, mut ops_committed) = (0, 0, 0);
        let (mut resolve_retransmits, mut frontier_stalls) = (0u64, 0u64);
        let mut commit_ticks: Vec<SimTime> = Vec::new();
        for (c, _) in &clients {
            let stats = c.stats();
            committed += stats.committed;
            aborted += stats.aborted_conflict + stats.aborted_unavailable;
            ops_committed += stats.ops_completed;
            let metrics = c.metrics();
            resolve_retransmits += metrics.resolve_retransmits;
            frontier_stalls += metrics.frontier_stalls;
            let mut begins: std::collections::HashMap<u32, SimTime> =
                std::collections::HashMap::new();
            for rec in c.records() {
                match rec {
                    Record::Begin { t, action } => {
                        begins.insert(action.0, *t);
                    }
                    Record::Commit { t, action } => {
                        if let Some(b) = begins.get(&action.0) {
                            latency.record(t.saturating_sub(*b));
                        }
                        commit_ticks.push(*t);
                    }
                    _ => {}
                }
            }
        }
        WorkerResult {
            committed,
            aborted,
            ops_committed,
            unfinished: count - n_done,
            latency,
            reconnects: links.iter().map(|l| l.reconnects).sum(),
            retransmit_frames: links.iter().map(|l| l.retransmit_frames).sum(),
            resolve_retransmits,
            frontier_stalls,
            commit_ticks,
        }
    });
    result
}
