//! Real-socket backend for the sans-I/O replication core.
//!
//! The protocol drivers in `quorumcc_replication` never perform I/O — they
//! consume [`Input`](quorumcc_replication::Input)s and buffer
//! [`Output`](quorumcc_replication::Output)s through a
//! [`CollectIo`](quorumcc_replication::CollectIo). This crate hosts those
//! same drivers over loopback TCP:
//!
//! * [`wire`] — a round-trip byte codec for the [`Msg`] alphabet
//!   (little-endian, tag-per-variant, op-class strings re-interned on
//!   decode).
//! * [`tcp`] — length-prefixed framing tagged with flat-id `from`/`to`, so
//!   one connection multiplexes many lightweight clients.
//! * [`load`] — the `exp_load` harness: a worker pool driving tens to
//!   hundreds of thousands of client drivers against a real-socket
//!   repository cluster, reporting throughput and latency SLO percentiles.
//! * [`fault`] — deterministic socket-level fault injection
//!   ([`fault::FaultShim`]) plus connection supervision knobs, so the
//!   chaos envelope covers the real wire path too.
//!
//! [`Msg`]: quorumcc_replication::Msg

pub mod fault;
pub mod load;
pub mod tcp;
pub mod wire;

pub use fault::{FaultShim, NetFaultProfile};
pub use load::{run_load, CrashSpec, LoadBackend, LoadConfig, LoadReport};
pub use wire::{decode, encode, Wire};
