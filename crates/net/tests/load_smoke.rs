//! Small-scale end-to-end exercise of the real-socket load harness: a
//! loopback TCP cluster, a few hundred multiplexed client drivers, all
//! three concurrency-control modes. The full-scale version is the
//! `exp_load` bench.

use std::time::Duration;

use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_net::{run_load, LoadBackend, LoadConfig, NetFaultProfile};
use quorumcc_replication::protocol::Mode;

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    }
}

#[test]
fn socket_cluster_serves_hundreds_of_multiplexed_clients() {
    use quorumcc_adts::Queue;
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let relation = match mode {
            Mode::StaticTs | Mode::Hybrid => minimal_static_relation::<Queue>(bounds()).relation,
            Mode::Dynamic2pl => minimal_static_relation::<Queue>(bounds())
                .relation
                .union(&minimal_dynamic_relation::<Queue>(bounds()).relation),
        };
        let report = run_load(&LoadConfig {
            mode,
            relation,
            n_repos: 3,
            clients: 300,
            txns_per_client: 2,
            ops_per_txn: 2,
            objects: 512,
            workers: 4,
            seed: 11,
            deadline: Duration::from_secs(30),
            ..LoadConfig::default()
        });
        eprintln!("{mode:?}: {report:?}");
        assert_eq!(report.unfinished, 0, "{mode:?}: {report:?}");
        // `aborted` counts attempts (retries re-abort), so the exact txn
        // total is bounded, not equal.
        assert!(report.committed <= 600, "{mode:?}: {report:?}");
        assert!(report.committed > 0, "{mode:?}: nothing committed");
        assert!(report.p50_us > 0, "{mode:?}: missing latency samples");
    }
}

/// The supervised-reconnect path under deterministic socket faults: a
/// lossy shim (resets, stalls, split writes, silent drops) over the
/// event-loop backend, with frontier repair on. Enq-only on private-ish
/// objects is conflict-free, so *every* transaction must still commit —
/// the faults may only cost retries and reconnects, never outcomes —
/// and the durable-GC frontier must still advance end to end.
#[test]
fn lossy_sockets_with_repair_commit_everything() {
    use quorumcc_adts::Queue;
    let relation = minimal_static_relation::<Queue>(bounds()).relation;
    let report = run_load(&LoadConfig {
        mode: Mode::Hybrid,
        relation,
        n_repos: 3,
        clients: 48,
        txns_per_client: 20,
        ops_per_txn: 1,
        objects: 256,
        workers: 2,
        seed: 31,
        narrow: false,
        deq_fraction: 0.0,
        deadline: Duration::from_secs(60),
        scoped_statuses: true,
        status_gc: Some(4),
        backend: LoadBackend::EventLoop,
        fault_profile: NetFaultProfile::lossy(31),
        resolve_retransmit: Some(250_000),
        ..LoadConfig::default()
    });
    eprintln!("lossy repair: {report:?}");
    assert_eq!(report.unfinished, 0, "{report:?}");
    assert_eq!(report.committed, 48 * 20, "lossy run lost transactions");
    assert!(
        report.statuses_gcd > 0,
        "durable-GC frontier never advanced"
    );
}
