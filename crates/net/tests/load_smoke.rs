//! Small-scale end-to-end exercise of the real-socket load harness: a
//! loopback TCP cluster, a few hundred multiplexed client drivers, all
//! three concurrency-control modes. The full-scale version is the
//! `exp_load` bench.

use std::time::Duration;

use quorumcc_core::{minimal_dynamic_relation, minimal_static_relation};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_net::{run_load, LoadConfig};
use quorumcc_replication::protocol::Mode;

fn bounds() -> ExploreBounds {
    ExploreBounds {
        depth: 4,
        ..ExploreBounds::default()
    }
}

#[test]
fn socket_cluster_serves_hundreds_of_multiplexed_clients() {
    use quorumcc_adts::Queue;
    for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
        let relation = match mode {
            Mode::StaticTs | Mode::Hybrid => minimal_static_relation::<Queue>(bounds()).relation,
            Mode::Dynamic2pl => minimal_static_relation::<Queue>(bounds())
                .relation
                .union(&minimal_dynamic_relation::<Queue>(bounds()).relation),
        };
        let report = run_load(&LoadConfig {
            mode,
            relation,
            n_repos: 3,
            clients: 300,
            txns_per_client: 2,
            ops_per_txn: 2,
            objects: 512,
            workers: 4,
            seed: 11,
            deadline: Duration::from_secs(30),
            ..LoadConfig::default()
        });
        eprintln!("{mode:?}: {report:?}");
        assert_eq!(report.unfinished, 0, "{mode:?}: {report:?}");
        // `aborted` counts attempts (retries re-abort), so the exact txn
        // total is bounded, not equal.
        assert!(report.committed <= 600, "{mode:?}: {report:?}");
        assert!(report.committed > 0, "{mode:?}: nothing committed");
        assert!(report.p50_us > 0, "{mode:?}: missing latency samples");
    }
}
