//! Exact availability of threshold quorums under independent site
//! failures.
//!
//! With each site up independently with probability `p`, an operation
//! needing `k` of `n` sites succeeds with probability
//! `P[Binomial(n, p) ≥ k]`. This module computes those tails exactly and
//! derives per-operation availability profiles for a threshold assignment
//! — the quantitative content of the §4 PROM table and Figure 1-2.

use crate::error::QuorumError;
use crate::threshold::ThresholdAssignment;
use quorumcc_model::EventClass;

/// `P[Binomial(n, p) ≥ k]`, computed by direct summation (numerically fine
/// for the `n ≤ 64` site counts quorum systems use).
///
/// # Errors
///
/// Returns [`QuorumError::BadProbability`] if `p ∉ [0, 1]`.
pub fn binomial_tail(n: u32, k: u32, p: f64) -> Result<f64, QuorumError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(QuorumError::BadProbability(p));
    }
    if k == 0 {
        return Ok(1.0);
    }
    if k > n {
        return Ok(0.0);
    }
    let mut total = 0.0f64;
    for i in k..=n {
        total += choose(n, i) * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32);
    }
    Ok(total.clamp(0.0, 1.0))
}

fn choose(n: u32, k: u32) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Availability of executing `op` with response class `ev` under `ta`:
/// the probability that at least `max(ti, tf)` sites are up.
pub fn op_availability(
    ta: &ThresholdAssignment,
    op: &str,
    ev: EventClass,
    p: f64,
) -> Result<f64, QuorumError> {
    binomial_tail(ta.sites(), ta.op_size(op, ev), p)
}

/// Worst-case availability of `op` over its response classes.
pub fn op_availability_worst(
    ta: &ThresholdAssignment,
    op: &str,
    event_classes: &[EventClass],
    p: f64,
) -> Result<f64, QuorumError> {
    binomial_tail(ta.sites(), ta.op_size_worst(op, event_classes), p)
}

/// One row of an availability profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityRow {
    /// Operation class.
    pub op: &'static str,
    /// Effective quorum size (worst case over response classes).
    pub size: u32,
    /// Availability at each requested site-up probability.
    pub availability: Vec<f64>,
}

/// Computes the per-operation availability profile of `ta` at several `p`
/// values.
///
/// # Errors
///
/// Returns [`QuorumError::BadProbability`] if any `p ∉ [0, 1]`.
pub fn profile(
    ta: &ThresholdAssignment,
    ops: &[&'static str],
    event_classes: &[EventClass],
    ps: &[f64],
) -> Result<Vec<AvailabilityRow>, QuorumError> {
    ops.iter()
        .map(|op| {
            let size = ta.op_size_worst(op, event_classes);
            let availability = ps
                .iter()
                .map(|p| binomial_tail(ta.sites(), size, *p))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(AvailabilityRow {
                op,
                size,
                availability,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn tail_edge_cases() {
        assert!(close(binomial_tail(5, 0, 0.3).unwrap(), 1.0));
        assert!(close(binomial_tail(5, 6, 0.9).unwrap(), 0.0));
        assert!(close(binomial_tail(5, 5, 1.0).unwrap(), 1.0));
        assert!(close(binomial_tail(5, 1, 0.0).unwrap(), 0.0));
    }

    #[test]
    fn tail_matches_hand_computation() {
        // P[Bin(3, 0.5) ≥ 2] = (3 + 1) / 8 = 0.5
        assert!(close(binomial_tail(3, 2, 0.5).unwrap(), 0.5));
        // P[Bin(2, 0.9) ≥ 1] = 1 - 0.01 = 0.99
        assert!(close(binomial_tail(2, 1, 0.9).unwrap(), 0.99));
    }

    #[test]
    fn tail_is_monotone_in_p_and_antitone_in_k() {
        let a = binomial_tail(7, 3, 0.6).unwrap();
        let b = binomial_tail(7, 3, 0.8).unwrap();
        assert!(b > a);
        let c = binomial_tail(7, 5, 0.8).unwrap();
        assert!(c < b);
    }

    #[test]
    fn bad_probability_rejected() {
        assert!(binomial_tail(3, 1, 1.5).is_err());
        assert!(binomial_tail(3, 1, -0.1).is_err());
    }

    #[test]
    fn quorum_of_one_beats_quorum_of_n() {
        // The heart of the §4 PROM argument: size-1 quorums are much more
        // available than size-n quorums.
        let p = 0.9;
        let one = binomial_tail(5, 1, p).unwrap();
        let all = binomial_tail(5, 5, p).unwrap();
        assert!(one > 0.9999);
        assert!(all < 0.6);
    }

    #[test]
    fn profile_shapes() {
        let mut ta = ThresholdAssignment::new(3);
        ta.set_initial("Read", 1);
        ta.set_initial("Write", 3);
        let evs = [
            EventClass::new("Read", "Ok"),
            EventClass::new("Write", "Ok"),
        ];
        let rows = profile(&ta, &["Read", "Write"], &evs, &[0.5, 0.9]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].size, 1);
        assert_eq!(rows[1].size, 3);
        assert!(rows[0].availability[1] > rows[1].availability[1]);
    }
}
