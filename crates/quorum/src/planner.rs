//! Availability-optimal quorum planning over an observed site population —
//! the bridge from the paper's *static* lattices (Figs 1-1/1-2, the §4
//! PROM table) to *live* reconfiguration decisions.
//!
//! Given a dependency relation (static `≥S`, a hybrid extension, or
//! dynamic `≥D`), a candidate membership, and a per-site up-probability
//! estimate (e.g. from a run's fault history or `RunTelemetry`), the
//! planner enumerates every legal threshold assignment over the members
//! and returns the one that lexicographically maximizes per-operation
//! availability in a caller-supplied priority order. Availability over
//! *heterogeneous* sites is the Poisson-binomial tail, computed exactly by
//! dynamic programming.
//!
//! This is where the paper's central comparison becomes executable: after
//! a site loss, hybrid atomicity's weaker constraints let the planner keep
//! PROM's Read and Write quorums at a single site, while static atomicity
//! forces Write to cover the whole surviving membership (see
//! `hybrid_prom_plan_strictly_beats_static`).

use crate::error::QuorumError;
use crate::sites::SiteSet;
use crate::threshold::{self, ThresholdAssignment};
use quorumcc_core::DependencyRelation;
use quorumcc_model::EventClass;
use std::fmt;

/// Exact `P[at least k of the sites are up]` with heterogeneous,
/// independent per-site up-probabilities `ps` (the Poisson-binomial tail),
/// by dynamic programming over the count distribution — `O(n²)`, no `2^n`
/// enumeration.
///
/// # Errors
///
/// Returns [`QuorumError::BadProbability`] if any `p ∉ [0, 1]`.
pub fn at_least_k_up(ps: &[f64], k: u32) -> Result<f64, QuorumError> {
    for p in ps {
        if !(0.0..=1.0).contains(p) {
            return Err(QuorumError::BadProbability(*p));
        }
    }
    if k == 0 {
        return Ok(1.0);
    }
    if k as usize > ps.len() {
        return Ok(0.0);
    }
    // dist[j] = P[exactly j of the sites seen so far are up].
    let mut dist = vec![0.0f64; ps.len() + 1];
    dist[0] = 1.0;
    for (i, p) in ps.iter().enumerate() {
        for j in (0..=i).rev() {
            let up = dist[j] * p;
            dist[j] *= 1.0 - p;
            dist[j + 1] += up;
        }
    }
    Ok(dist[k as usize..].iter().sum::<f64>().clamp(0.0, 1.0))
}

/// A planned configuration: a legal threshold assignment over `members`,
/// with its per-operation availability under the observed up-probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The membership the plan is drawn over.
    pub members: SiteSet,
    /// The chosen threshold assignment (over `members.len()` votes).
    pub thresholds: ThresholdAssignment,
    /// Per-operation worst-case availability, in the planner's scoring
    /// order (priority classes first, the rest after).
    pub per_op: Vec<(&'static str, f64)>,
}

impl Plan {
    /// The planned availability of `op` (worst case over its response
    /// classes), or `None` if `op` was not in the planning universe.
    pub fn availability_of(&self, op: &str) -> Option<f64> {
        self.per_op.iter().find(|(o, _)| *o == op).map(|(_, a)| *a)
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "members = {}", self.members)?;
        write!(f, "{}", self.thresholds)?;
        for (op, a) in &self.per_op {
            writeln!(f, "  avail({op}) = {a:.6}")?;
        }
        Ok(())
    }
}

/// Enumerates every legal threshold assignment of `rel` over `members` and
/// returns the plan that lexicographically **maximizes** worst-case
/// per-operation availability, priority classes first. Ties break toward
/// smaller total quorum sizes (fewer messages), then toward the
/// enumeration-first assignment, so the result is deterministic.
///
/// `up` gives the up-probability of each site, indexed by site id over the
/// *full* universe; only the entries of `members` are read. `ops` and
/// `event_classes` list the type's invocation and event classes, as for
/// [`threshold::optimize`].
///
/// # Errors
///
/// * [`QuorumError::NoAssignment`] if `members` is empty (no quorum can
///   exist) — with sites of the surviving membership size.
/// * [`QuorumError::BadProbability`] if an up-probability is outside
///   `[0, 1]`.
///
/// # Panics
///
/// Panics if `up` does not cover every member, or if `priority` lists an
/// unknown operation class.
pub fn plan(
    rel: &DependencyRelation,
    members: SiteSet,
    up: &[f64],
    ops: &[&'static str],
    event_classes: &[EventClass],
    priority: &[&'static str],
) -> Result<Plan, QuorumError> {
    assert!(
        priority.iter().all(|p| ops.contains(p)),
        "priority lists an unknown operation class"
    );
    assert!(
        members.iter().all(|s| (s.0 as usize) < up.len()),
        "up-probability vector does not cover every member"
    );
    let member_ps: Vec<f64> = members.iter().map(|s| up[s.0 as usize]).collect();
    for p in &member_ps {
        if !(0.0..=1.0).contains(p) {
            return Err(QuorumError::BadProbability(*p));
        }
    }
    let n = member_ps.len() as u32;
    if n == 0 {
        return Err(QuorumError::NoAssignment { sites: 0 });
    }

    // Scoring order: priority classes first, the rest in `ops` order.
    let order: Vec<&'static str> = priority
        .iter()
        .chain(ops.iter().filter(|op| !priority.contains(op)))
        .copied()
        .collect();

    let k = ops.len();
    let mut ti = vec![1u32; k];
    let mut best: Option<(Vec<f64>, u32, Plan)> = None;
    loop {
        let ta = threshold::force_finals(rel, n, ops, &ti, event_classes);
        if ta.validate(rel).is_ok() {
            let per_op: Vec<(&'static str, f64)> = order
                .iter()
                .map(|op| {
                    let size = ta.op_size_worst(op, event_classes);
                    Ok((*op, at_least_k_up(&member_ps, size)?))
                })
                .collect::<Result<_, QuorumError>>()?;
            let score: Vec<f64> = per_op.iter().map(|(_, a)| *a).collect();
            let cost: u32 = order
                .iter()
                .map(|op| ta.op_size_worst(op, event_classes))
                .sum();
            let better = match &best {
                None => true,
                // Lexicographic availability (higher wins), then total
                // quorum size (smaller wins). Probabilities are finite and
                // in [0, 1], so partial_cmp never fails.
                Some((bs, bc, _)) => match score.partial_cmp(bs).expect("finite scores") {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Equal => cost < *bc,
                },
            };
            if better {
                best = Some((
                    score,
                    cost,
                    Plan {
                        members,
                        thresholds: ta,
                        per_op,
                    },
                ));
            }
        }
        // Mixed-radix counter over initial thresholds 1..=n.
        let mut i = 0;
        loop {
            if i == k {
                return best
                    .map(|(_, _, p)| p)
                    .ok_or(QuorumError::NoAssignment { sites: n });
            }
            ti[i] += 1;
            if ti[i] <= n {
                break;
            }
            ti[i] = 1;
            i += 1;
        }
    }
}

/// Replans after a fault: drops `lost` from `members` and plans over the
/// survivors. Convenience wrapper for the reactive reconfiguration path.
///
/// # Errors
///
/// As for [`plan`]; in particular [`QuorumError::NoAssignment`] when no
/// site survives.
pub fn replan(
    rel: &DependencyRelation,
    members: SiteSet,
    lost: SiteSet,
    up: &[f64],
    ops: &[&'static str],
    event_classes: &[EventClass],
    priority: &[&'static str],
) -> Result<Plan, QuorumError> {
    plan(
        rel,
        members.difference(lost),
        up,
        ops,
        event_classes,
        priority,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_core::certificates::{prom_hybrid_relation, prom_static_extra_pairs};

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    fn prom_ops() -> Vec<&'static str> {
        vec!["Write", "Read", "Seal"]
    }

    fn prom_events() -> Vec<EventClass> {
        vec![
            ec("Write", "Ok"),
            ec("Write", "Disabled"),
            ec("Read", "Ok"),
            ec("Read", "Disabled"),
            ec("Seal", "Ok"),
        ]
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn poisson_binomial_matches_binomial_when_homogeneous() {
        let ps = [0.8; 6];
        for k in 0..=7u32 {
            let dp = at_least_k_up(&ps, k).unwrap();
            let direct = crate::availability::binomial_tail(6, k, 0.8).unwrap();
            assert!(close(dp, direct), "k={k}: {dp} vs {direct}");
        }
    }

    #[test]
    fn poisson_binomial_heterogeneous_hand_check() {
        // Sites up with (0.5, 0.9): P[≥1] = 1 - 0.5·0.1 = 0.95,
        // P[≥2] = 0.45.
        let ps = [0.5, 0.9];
        assert!(close(at_least_k_up(&ps, 1).unwrap(), 0.95));
        assert!(close(at_least_k_up(&ps, 2).unwrap(), 0.45));
        assert!(close(at_least_k_up(&ps, 0).unwrap(), 1.0));
        assert!(close(at_least_k_up(&ps, 3).unwrap(), 0.0));
        assert!(at_least_k_up(&[1.2], 1).is_err());
    }

    /// The acceptance-criterion demonstration, in-code: over the 4
    /// survivors of a 5-site PROM cluster, hybrid replans to Write
    /// quorums of a single site while static's extra constraints force
    /// Write to cover the whole surviving membership — so the hybrid
    /// plan's Write availability is strictly better.
    #[test]
    fn hybrid_prom_plan_strictly_beats_static() {
        let survivors = SiteSet::from_ids([0, 1, 2, 3]); // site 4 lost
        let up = [0.9, 0.9, 0.9, 0.9, 0.0];
        let priority = ["Read", "Write", "Seal"];
        let hybrid = plan(
            &prom_hybrid_relation(),
            survivors,
            &up,
            &prom_ops(),
            &prom_events(),
            &priority,
        )
        .unwrap();
        let static_rel = prom_hybrid_relation().union(&prom_static_extra_pairs());
        let stat = plan(
            &static_rel,
            survivors,
            &up,
            &prom_ops(),
            &prom_events(),
            &priority,
        )
        .unwrap();

        let evs = prom_events();
        assert_eq!(hybrid.thresholds.op_size_worst("Read", &evs), 1);
        assert_eq!(hybrid.thresholds.op_size_worst("Write", &evs), 1);
        assert_eq!(hybrid.thresholds.op_size_worst("Seal", &evs), 4);
        assert_eq!(stat.thresholds.op_size_worst("Read", &evs), 1);
        assert_eq!(stat.thresholds.op_size_worst("Write", &evs), 4);

        let hw = hybrid.availability_of("Write").unwrap();
        let sw = stat.availability_of("Write").unwrap();
        assert!(
            hw > sw,
            "hybrid Write availability {hw} must strictly beat static {sw}"
        );
        assert!(close(hw, at_least_k_up(&[0.9; 4], 1).unwrap()));
        assert!(close(sw, at_least_k_up(&[0.9; 4], 4).unwrap()));
    }

    #[test]
    fn replan_drops_the_lost_site() {
        let all = SiteSet::all(5);
        let up = [0.9; 5];
        let p = replan(
            &prom_hybrid_relation(),
            all,
            SiteSet::from_ids([2]),
            &up,
            &prom_ops(),
            &prom_events(),
            &["Read", "Write", "Seal"],
        )
        .unwrap();
        assert_eq!(p.members, SiteSet::from_ids([0, 1, 3, 4]));
        assert_eq!(p.thresholds.sites(), 4);
    }

    #[test]
    fn planner_prefers_available_sites() {
        // With one flaky member, a majority-style op still counts it, but
        // the chosen assignment's availability reflects the heterogeneous
        // vector — sanity: planning over {0,1,2} with p2 = 0.2 yields a
        // strictly lower Seal availability than over three good sites.
        let rel = prom_hybrid_relation();
        let flaky = plan(
            &rel,
            SiteSet::from_ids([0, 1, 2]),
            &[0.9, 0.9, 0.2],
            &prom_ops(),
            &prom_events(),
            &["Read", "Write", "Seal"],
        )
        .unwrap();
        let good = plan(
            &rel,
            SiteSet::from_ids([0, 1, 2]),
            &[0.9, 0.9, 0.9],
            &prom_ops(),
            &prom_events(),
            &["Read", "Write", "Seal"],
        )
        .unwrap();
        assert!(flaky.availability_of("Seal").unwrap() < good.availability_of("Seal").unwrap());
    }

    #[test]
    fn empty_membership_is_no_assignment() {
        let err = plan(
            &prom_hybrid_relation(),
            SiteSet::EMPTY,
            &[],
            &prom_ops(),
            &prom_events(),
            &[],
        )
        .unwrap_err();
        assert_eq!(err, QuorumError::NoAssignment { sites: 0 });
    }

    #[test]
    fn plan_display_lists_availability() {
        let p = plan(
            &prom_hybrid_relation(),
            SiteSet::all(3),
            &[0.9; 3],
            &prom_ops(),
            &prom_events(),
            &["Read"],
        )
        .unwrap();
        let s = p.to_string();
        assert!(s.contains("avail(Read)"), "{s}");
        assert!(s.contains("members = {s0,s1,s2}"), "{s}");
    }
}
