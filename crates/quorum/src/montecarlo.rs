//! Monte-Carlo availability under crashes **and partitions** — the failure
//! model of §3 (sites crash; long-lived link failures partition the
//! network).
//!
//! Quorum consensus preserves serializability across partitions (unlike
//! available-copies schemes, §2); the price is that an operation executes
//! only if the *client's* partition block contains one of its quorums.
//! This module estimates that probability for threshold assignments.

use crate::error::QuorumError;
use crate::sites::SiteSet;
use crate::threshold::ThresholdAssignment;
use quorumcc_core::parallel::{derive_seed, map_indexed};
use quorumcc_model::EventClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure-model parameters for one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Independent probability that each site is up.
    pub site_up: f64,
    /// Probability that the network is split into two blocks for the
    /// duration of the trial.
    pub partition_prob: f64,
    /// When partitioned, each site lands in the client's block with this
    /// probability.
    pub same_block_prob: f64,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            site_up: 0.95,
            partition_prob: 0.0,
            same_block_prob: 0.5,
        }
    }
}

impl FaultModel {
    fn validate(&self) -> Result<(), QuorumError> {
        for p in [self.site_up, self.partition_prob, self.same_block_prob] {
            if !(0.0..=1.0).contains(&p) {
                return Err(QuorumError::BadProbability(p));
            }
        }
        Ok(())
    }
}

/// The estimated availability of each operation class.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    /// Trials run.
    pub trials: usize,
    /// `(op, fraction of trials in which its quorum was reachable)`.
    pub per_op: Vec<(&'static str, f64)>,
}

/// Samples the up-and-reachable site set for one trial.
pub fn sample_reachable(n: u32, model: FaultModel, rng: &mut StdRng) -> SiteSet {
    let mut up = SiteSet::EMPTY;
    let partitioned = rng.gen_bool(model.partition_prob);
    for i in 0..n {
        if !rng.gen_bool(model.site_up) {
            continue; // crashed
        }
        if partitioned && !rng.gen_bool(model.same_block_prob) {
            continue; // up, but across the partition
        }
        up = up.with(crate::sites::SiteId(i as u8));
    }
    up
}

/// Trials per work chunk. Each chunk derives its own RNG stream from
/// `(seed, chunk index)`, so estimates are a pure function of
/// `(assignment, model, trials, seed)` — identical at every thread count.
const TRIAL_CHUNK: usize = 4_096;

/// Estimates per-operation availability of `ta` under `model` with
/// `trials` independent trials (single-threaded; see
/// [`estimate_threaded`]).
///
/// # Errors
///
/// Returns [`QuorumError::BadProbability`] for parameters outside `[0, 1]`.
pub fn estimate(
    ta: &ThresholdAssignment,
    ops: &[&'static str],
    event_classes: &[EventClass],
    model: FaultModel,
    trials: usize,
    seed: u64,
) -> Result<MonteCarloReport, QuorumError> {
    estimate_threaded(ta, ops, event_classes, model, trials, seed, 1)
}

/// [`estimate`] on `threads` workers (`0` = all available parallelism).
///
/// Trials run in `TRIAL_CHUNK`-sized chunks with per-chunk derived
/// seeds; hit counts merge by summation in chunk order. The sequential
/// path uses the same chunking, so reports are bitwise-identical at every
/// thread count.
///
/// # Errors
///
/// Returns [`QuorumError::BadProbability`] for parameters outside `[0, 1]`.
pub fn estimate_threaded(
    ta: &ThresholdAssignment,
    ops: &[&'static str],
    event_classes: &[EventClass],
    model: FaultModel,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Result<MonteCarloReport, QuorumError> {
    model.validate()?;
    let sizes: Vec<u32> = ops
        .iter()
        .map(|op| ta.op_size_worst(op, event_classes))
        .collect();
    let mut chunks: Vec<usize> = Vec::new();
    let mut rem = trials;
    while rem > 0 {
        let c = rem.min(TRIAL_CHUNK);
        chunks.push(c);
        rem -= c;
    }
    let per_chunk = map_indexed(threads, &chunks, |idx, &chunk_trials| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, idx as u64));
        let mut hits = vec![0usize; ops.len()];
        for _ in 0..chunk_trials {
            let reachable = sample_reachable(ta.sites(), model, &mut rng);
            for (k, size) in sizes.iter().enumerate() {
                if reachable.len() as u32 >= *size {
                    hits[k] += 1;
                }
            }
        }
        hits
    });
    let mut hits = vec![0usize; ops.len()];
    for chunk_hits in per_chunk {
        for (total, h) in hits.iter_mut().zip(chunk_hits) {
            *total += h;
        }
    }
    Ok(MonteCarloReport {
        trials,
        per_op: ops
            .iter()
            .zip(hits)
            .map(|(op, h)| (*op, h as f64 / trials as f64))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::binomial_tail;

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    #[test]
    fn no_partition_matches_binomial_tail() {
        let mut ta = ThresholdAssignment::new(5);
        ta.set_initial("Read", 1);
        ta.set_initial("Write", 4);
        let evs = [ec("Read", "Ok"), ec("Write", "Ok")];
        let model = FaultModel {
            site_up: 0.8,
            partition_prob: 0.0,
            same_block_prob: 0.5,
        };
        let rep = estimate(&ta, &["Read", "Write"], &evs, model, 200_000, 42).unwrap();
        let exact_read = binomial_tail(5, 1, 0.8).unwrap();
        let exact_write = binomial_tail(5, 4, 0.8).unwrap();
        assert!((rep.per_op[0].1 - exact_read).abs() < 0.01, "{rep:?}");
        assert!((rep.per_op[1].1 - exact_write).abs() < 0.01, "{rep:?}");
    }

    #[test]
    fn partitions_hurt_big_quorums_more() {
        let mut ta = ThresholdAssignment::new(5);
        ta.set_initial("Small", 1);
        ta.set_initial("Big", 5);
        let evs = [ec("Small", "Ok"), ec("Big", "Ok")];
        let clean = FaultModel {
            site_up: 0.99,
            partition_prob: 0.0,
            same_block_prob: 0.5,
        };
        let split = FaultModel {
            site_up: 0.99,
            partition_prob: 0.5,
            same_block_prob: 0.5,
        };
        let a = estimate(&ta, &["Small", "Big"], &evs, clean, 50_000, 1).unwrap();
        let b = estimate(&ta, &["Small", "Big"], &evs, split, 50_000, 1).unwrap();
        let small_drop = a.per_op[0].1 - b.per_op[0].1;
        let big_drop = a.per_op[1].1 - b.per_op[1].1;
        assert!(big_drop > small_drop + 0.1, "{a:?}\n{b:?}");
    }

    #[test]
    fn determinism_by_seed() {
        let ta = ThresholdAssignment::new(3);
        let evs = [ec("Op", "Ok")];
        let m = FaultModel::default();
        let a = estimate(&ta, &["Op"], &evs, m, 1000, 7).unwrap();
        let b = estimate(&ta, &["Op"], &evs, m, 1000, 7).unwrap();
        assert_eq!(a, b);
    }

    /// The report is bitwise-identical at every thread count, including
    /// trial counts that straddle chunk boundaries.
    #[test]
    fn determinism_across_thread_counts() {
        let mut ta = ThresholdAssignment::new(5);
        ta.set_initial("Read", 2);
        ta.set_initial("Write", 4);
        let evs = [ec("Read", "Ok"), ec("Write", "Ok")];
        let m = FaultModel {
            site_up: 0.9,
            partition_prob: 0.3,
            same_block_prob: 0.5,
        };
        for trials in [1_000, TRIAL_CHUNK, TRIAL_CHUNK + 17, 3 * TRIAL_CHUNK] {
            let seq = estimate_threaded(&ta, &["Read", "Write"], &evs, m, trials, 99, 1).unwrap();
            for threads in [2, 4, 0] {
                let par = estimate_threaded(&ta, &["Read", "Write"], &evs, m, trials, 99, threads)
                    .unwrap();
                assert_eq!(seq, par, "trials = {trials}, threads = {threads}");
            }
        }
    }

    #[test]
    fn bad_parameters_rejected() {
        let ta = ThresholdAssignment::new(3);
        let m = FaultModel {
            site_up: 1.2,
            ..FaultModel::default()
        };
        assert!(estimate(&ta, &["Op"], &[], m, 10, 0).is_err());
    }
}
