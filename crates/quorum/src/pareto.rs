//! Pareto frontiers of quorum-size vectors: the *entire* availability
//! trade-off space a dependency relation admits, not just one optimum.
//!
//! "The weaker the constraints on quorum intersection, the wider the range
//! of realizable availability properties" (§3.2) — made precise: the
//! frontier of a weaker relation dominates the frontier of a stronger one,
//! pointwise.

use quorumcc_core::DependencyRelation;
use quorumcc_model::EventClass;
use std::collections::BTreeSet;

/// One Pareto-optimal point: the worst-case effective quorum size of each
/// operation class, in the order the `ops` slice was given.
pub type SizeVector = Vec<u32>;

/// Enumerates every achievable quorum-size vector under `rel` over `n`
/// unit-vote sites (exhausting initial thresholds; final thresholds take
/// their forced minima) and returns the Pareto-minimal ones, sorted.
///
/// A vector `a` dominates `b` when `a[i] ≤ b[i]` everywhere; smaller
/// quorums mean strictly higher availability at every site-up probability.
pub fn frontier(
    rel: &DependencyRelation,
    n: u32,
    ops: &[&'static str],
    event_classes: &[EventClass],
) -> Vec<SizeVector> {
    let k = ops.len();
    let mut points: BTreeSet<SizeVector> = BTreeSet::new();
    let mut ti = vec![1u32; k];
    loop {
        // Forced final thresholds, then the size vector.
        let mut ta = crate::threshold::ThresholdAssignment::new(n);
        for (op, t) in ops.iter().zip(&ti) {
            ta.set_initial(op, *t);
        }
        for ev in event_classes {
            let need = rel
                .iter()
                .filter(|(_, e)| e == ev)
                .map(|(inv, _)| n + 1 - ta.initial(inv))
                .max()
                .unwrap_or(0);
            ta.set_final(*ev, need);
        }
        if ta.validate(rel).is_ok() {
            points.insert(
                ops.iter()
                    .map(|op| ta.op_size_worst(op, event_classes))
                    .collect(),
            );
        }
        // Advance the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == k {
                return pareto_minimal(points);
            }
            ti[i] += 1;
            if ti[i] <= n {
                break;
            }
            ti[i] = 1;
            i += 1;
        }
    }
}

/// Whether `a` dominates `b` (component-wise ≤).
pub fn dominates(a: &[u32], b: &[u32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Whether every point of `weaker` frontier `a` dominates some… rather:
/// whether for every point in `b` there is a point in `a` dominating it —
/// the frontier of `a` is at least as good everywhere.
pub fn frontier_dominates(a: &[SizeVector], b: &[SizeVector]) -> bool {
    b.iter().all(|pb| a.iter().any(|pa| dominates(pa, pb)))
}

fn pareto_minimal(points: BTreeSet<SizeVector>) -> Vec<SizeVector> {
    let mut out: Vec<SizeVector> = Vec::new();
    for p in &points {
        if !points.iter().any(|q| q != p && dominates(q, p)) {
            out.push(p.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_core::certificates::{prom_hybrid_relation, prom_static_extra_pairs};

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    fn prom_ops() -> Vec<&'static str> {
        vec!["Read", "Seal", "Write"]
    }

    fn prom_events() -> Vec<EventClass> {
        vec![
            ec("Write", "Ok"),
            ec("Write", "Disabled"),
            ec("Read", "Ok"),
            ec("Read", "Disabled"),
            ec("Seal", "Ok"),
        ]
    }

    #[test]
    fn dominance_laws() {
        assert!(dominates(&[1, 2], &[1, 2]));
        assert!(dominates(&[1, 2], &[2, 2]));
        assert!(!dominates(&[3, 1], &[2, 2]));
        assert!(!dominates(&[1], &[1, 1]));
    }

    #[test]
    fn frontier_points_are_mutually_nondominating() {
        let f = frontier(&prom_hybrid_relation(), 5, &prom_ops(), &prom_events());
        assert!(!f.is_empty());
        for (i, a) in f.iter().enumerate() {
            for (j, b) in f.iter().enumerate() {
                if i != j {
                    assert!(!dominates(a, b), "{a:?} dominates {b:?}");
                }
            }
        }
    }

    /// §3.2 made quantitative: the hybrid frontier dominates the static
    /// frontier for the PROM, and strictly (it contains a point no static
    /// assignment matches).
    #[test]
    fn hybrid_frontier_dominates_static_for_prom() {
        let hybrid = prom_hybrid_relation();
        let static_rel = hybrid.union(&prom_static_extra_pairs());
        let fh = frontier(&hybrid, 5, &prom_ops(), &prom_events());
        let fs = frontier(&static_rel, 5, &prom_ops(), &prom_events());
        assert!(frontier_dominates(&fh, &fs));
        assert!(!frontier_dominates(&fs, &fh), "dominance must be strict");
        // The paper's (Read, Seal, Write) = (1, n, 1) point is hybrid-only.
        assert!(fh.iter().any(|p| p == &vec![1, 5, 1]));
        assert!(!fs.iter().any(|p| dominates(p, &[1, 5, 1])));
    }

    /// Monotonicity: any subset relation's frontier dominates.
    #[test]
    fn weaker_relation_frontier_dominates() {
        let weak = prom_hybrid_relation();
        let strong = weak.union(&prom_static_extra_pairs());
        for n in [3u32, 4, 5] {
            let fw = frontier(&weak, n, &prom_ops(), &prom_events());
            let fs = frontier(&strong, n, &prom_ops(), &prom_events());
            assert!(frontier_dominates(&fw, &fs), "n = {n}");
        }
    }

    #[test]
    fn empty_relation_frontier_is_all_ones() {
        let f = frontier(
            &DependencyRelation::new(),
            5,
            &["A", "B"],
            &[ec("A", "Ok"), ec("B", "Ok")],
        );
        assert_eq!(f, vec![vec![1, 1]]);
    }
}
