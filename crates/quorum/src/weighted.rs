//! Gifford-style **weighted voting**: sites carry votes, quorums are vote
//! thresholds. The paper cites Gifford's scheme as the earliest quorum
//! consensus method (§2); typed quorum consensus generalizes it, and this
//! module generalizes the unit-vote [`ThresholdAssignment`] in turn —
//! heterogeneous weights let reliable sites carry more of the quorum.
//!
//! [`ThresholdAssignment`]: crate::threshold::ThresholdAssignment

use crate::error::QuorumError;
use crate::sites::SiteSet;
use quorumcc_core::DependencyRelation;
use quorumcc_model::EventClass;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// A weighted-vote quorum assignment.
///
/// Site `i` carries `weights[i]` votes. An **initial quorum** for
/// invocation class `op` is any site set with at least `vi(op)` votes; a
/// **final quorum** for event class `ev` any set with at least `vf(ev)`
/// votes. The §3.2 constraint `inv ≥ e` (every initial quorum intersects
/// every final quorum) holds iff `vi(inv) + vf(e) > total votes`.
///
/// # Example
///
/// A three-site register where the first site is a beefy, reliable
/// machine carrying two votes:
///
/// ```
/// use quorumcc_quorum::weighted::WeightedAssignment;
/// use quorumcc_core::DependencyRelation;
/// use quorumcc_model::EventClass;
///
/// let rel = DependencyRelation::from_pairs([
///     ("Read", EventClass::new("Write", "Ok")),
///     ("Write", EventClass::new("Read", "Ok")),
/// ]);
/// let mut wa = WeightedAssignment::new(vec![2, 1, 1]);
/// wa.set_initial("Read", 2);
/// wa.set_initial("Write", 3);
/// wa.set_final(EventClass::new("Write", "Ok"), 3);
/// wa.set_final(EventClass::new("Read", "Ok"), 2);
/// assert!(wa.validate(&rel).is_ok());
/// // The big site alone is a read quorum.
/// assert!(wa.is_initial_quorum("Read",
///     quorumcc_quorum::SiteSet::from_ids([0])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct WeightedAssignment {
    weights: Vec<u32>,
    initial: BTreeMap<&'static str, u32>,
    finals: BTreeMap<EventClass, u32>,
}

impl WeightedAssignment {
    /// An assignment over sites with the given vote weights.
    ///
    /// # Panics
    ///
    /// Panics if there are no sites or more than 64.
    pub fn new(weights: Vec<u32>) -> Self {
        assert!(
            !weights.is_empty() && weights.len() <= 64,
            "1..=64 sites supported"
        );
        WeightedAssignment {
            weights,
            initial: BTreeMap::new(),
            finals: BTreeMap::new(),
        }
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.weights.len()
    }

    /// Total votes in the system.
    pub fn total_votes(&self) -> u32 {
        self.weights.iter().sum()
    }

    /// The votes a site set musters.
    pub fn votes_of(&self, set: SiteSet) -> u32 {
        set.iter()
            .map(|s| self.weights.get(s.0 as usize).copied().unwrap_or(0))
            .sum()
    }

    /// Sets the initial vote threshold of an invocation class.
    pub fn set_initial(&mut self, op: &'static str, v: u32) -> &mut Self {
        self.initial.insert(op, v.min(self.total_votes()));
        self
    }

    /// Sets the final vote threshold of an event class.
    pub fn set_final(&mut self, ev: EventClass, v: u32) -> &mut Self {
        self.finals.insert(ev, v.min(self.total_votes()));
        self
    }

    /// The initial threshold of `op` (default: 1 vote).
    pub fn initial(&self, op: &str) -> u32 {
        self.initial
            .iter()
            .find(|(k, _)| **k == op)
            .map(|(_, v)| *v)
            .unwrap_or(1)
    }

    /// The final threshold of `ev` (default: 0 votes).
    pub fn final_of(&self, ev: EventClass) -> u32 {
        self.finals.get(&ev).copied().unwrap_or(0)
    }

    /// Whether `set` is an initial quorum for `op`.
    pub fn is_initial_quorum(&self, op: &str, set: SiteSet) -> bool {
        self.votes_of(set) >= self.initial(op)
    }

    /// Whether `set` is a final quorum for `ev`.
    pub fn is_final_quorum(&self, ev: EventClass, set: SiteSet) -> bool {
        self.votes_of(set) >= self.final_of(ev)
    }

    /// Validates every constraint of `rel`: `vi(inv) + vf(e) > total`.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self, rel: &DependencyRelation) -> Result<(), QuorumError> {
        let total = self.total_votes();
        for (inv, ev) in rel.iter() {
            let vi = self.initial(inv);
            let vf = self.final_of(*ev);
            if vi + vf <= total {
                return Err(QuorumError::ConstraintViolated {
                    inv,
                    event: *ev,
                    initial: vi,
                    final_: vf,
                    sites: total,
                });
            }
        }
        Ok(())
    }

    /// The probability that the *up* sites muster at least `votes` votes,
    /// with per-site up-probabilities `ps` (exact dynamic program over the
    /// vote distribution).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::BadProbability`] if any probability is
    /// outside `[0, 1]`, and panics if `ps.len() != self.sites()`.
    pub fn votes_available(&self, votes: u32, ps: &[f64]) -> Result<f64, QuorumError> {
        assert_eq!(ps.len(), self.sites(), "one probability per site");
        for p in ps {
            if !(0.0..=1.0).contains(p) {
                return Err(QuorumError::BadProbability(*p));
            }
        }
        let total = self.total_votes() as usize;
        // dist[w] = P[up-weight == w]
        let mut dist = vec![0.0f64; total + 1];
        dist[0] = 1.0;
        for (w, p) in self.weights.iter().zip(ps) {
            let w = *w as usize;
            for i in (0..=total).rev() {
                let stay = dist[i] * (1.0 - p);
                let up = dist[i] * p;
                dist[i] = stay;
                if i + w <= total {
                    dist[i + w] += up;
                } else {
                    dist[total] += up; // cannot happen, defensive
                }
            }
        }
        Ok(dist[(votes as usize).min(total)..]
            .iter()
            .sum::<f64>()
            .clamp(0.0, 1.0))
    }

    /// Availability of executing `op` with response class `ev`: the up
    /// sites must muster `max(vi, vf)` votes (one up-set serves as both
    /// quorums).
    ///
    /// # Errors
    ///
    /// See [`WeightedAssignment::votes_available`].
    pub fn op_availability(
        &self,
        op: &str,
        ev: EventClass,
        ps: &[f64],
    ) -> Result<f64, QuorumError> {
        self.votes_available(self.initial(op).max(self.final_of(ev)), ps)
    }

    /// The smallest number of *sites* that can form a quorum of `votes`
    /// (greedy over descending weights) — the latency-relevant size.
    pub fn min_quorum_cardinality(&self, votes: u32) -> Option<usize> {
        let mut ws = self.weights.clone();
        ws.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0u32;
        for (k, w) in ws.iter().enumerate() {
            acc += w;
            if acc >= votes {
                return Some(k + 1);
            }
        }
        (votes == 0).then_some(0)
    }
}

impl fmt::Display for WeightedAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "weights = {:?} (total {})",
            self.weights,
            self.total_votes()
        )?;
        for (op, v) in &self.initial {
            writeln!(f, "  initial({op}) = {v} votes")?;
        }
        for (ev, v) in &self.finals {
            writeln!(f, "  final({ev}) = {v} votes")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::binomial_tail;

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    fn register_rel() -> DependencyRelation {
        DependencyRelation::from_pairs([("Read", ec("Write", "Ok")), ("Write", ec("Read", "Ok"))])
    }

    #[test]
    fn unit_weights_reduce_to_thresholds() {
        let mut wa = WeightedAssignment::new(vec![1; 5]);
        wa.set_initial("Read", 2);
        wa.set_final(ec("Write", "Ok"), 4);
        wa.set_initial("Write", 2);
        wa.set_final(ec("Read", "Ok"), 4);
        assert!(wa.validate(&register_rel()).is_ok());
        // Availability of 2-of-5 unit votes = binomial tail.
        let ps = [0.8; 5];
        let a = wa.votes_available(2, &ps).unwrap();
        let b = binomial_tail(5, 2, 0.8).unwrap();
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn heavy_site_dominates_quorums() {
        // Gifford's classic: weights (2,1,1), total 4. Read 2, Write 3.
        let mut wa = WeightedAssignment::new(vec![2, 1, 1]);
        wa.set_initial("Read", 2);
        wa.set_final(ec("Write", "Ok"), 3);
        wa.set_initial("Write", 3);
        wa.set_final(ec("Read", "Ok"), 2);
        assert!(wa.validate(&register_rel()).is_ok());
        // The heavy site alone reads; the two light sites together read.
        assert!(wa.is_initial_quorum("Read", SiteSet::from_ids([0])));
        assert!(wa.is_initial_quorum("Read", SiteSet::from_ids([1, 2])));
        assert!(!wa.is_initial_quorum("Read", SiteSet::from_ids([1])));
        // Writes need the heavy site plus one light.
        assert!(wa.is_final_quorum(ec("Write", "Ok"), SiteSet::from_ids([0, 1])));
        assert!(!wa.is_final_quorum(ec("Write", "Ok"), SiteSet::from_ids([1, 2])));
        assert_eq!(wa.min_quorum_cardinality(2), Some(1));
        assert_eq!(wa.min_quorum_cardinality(3), Some(2));
    }

    #[test]
    fn weighting_the_reliable_site_buys_availability() {
        // Sites: one 0.99 box, two 0.6 boxes. Majority-of-3 unit votes vs
        // 2 votes on the reliable box (read 2 / write 3 of 4).
        let ps = [0.99, 0.6, 0.6];
        let mut unit = WeightedAssignment::new(vec![1, 1, 1]);
        unit.set_initial("Read", 2);
        let mut weighted = WeightedAssignment::new(vec![2, 1, 1]);
        weighted.set_initial("Read", 2);
        let a_unit = unit.votes_available(2, &ps).unwrap();
        let a_weighted = weighted.votes_available(2, &ps).unwrap();
        assert!(
            a_weighted > a_unit + 0.05,
            "weighted {a_weighted} vs unit {a_unit}"
        );
    }

    #[test]
    fn validate_catches_insufficient_votes() {
        let mut wa = WeightedAssignment::new(vec![2, 1, 1]);
        wa.set_initial("Read", 2);
        wa.set_final(ec("Write", "Ok"), 2); // 2 + 2 = 4 = total → violated
        assert!(wa.validate(&register_rel()).is_err());
    }

    #[test]
    fn votes_available_edge_cases() {
        let wa = WeightedAssignment::new(vec![3, 2]);
        let ps = [0.5, 0.5];
        assert!((wa.votes_available(0, &ps).unwrap() - 1.0).abs() < 1e-12);
        // Exactly both sites: 0.25.
        assert!((wa.votes_available(5, &ps).unwrap() - 0.25).abs() < 1e-12);
        // Needing 4 votes also requires both (3+2 only combo ≥ 4).
        assert!((wa.votes_available(4, &ps).unwrap() - 0.25).abs() < 1e-12);
        // 3 votes: heavy site alone or both = P[s0 up] = 0.5.
        assert!((wa.votes_available(3, &ps).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bad_probability_rejected() {
        let wa = WeightedAssignment::new(vec![1, 1]);
        assert!(wa.votes_available(1, &[0.5, 1.5]).is_err());
    }

    #[test]
    fn display_shows_votes() {
        let mut wa = WeightedAssignment::new(vec![2, 1]);
        wa.set_initial("Read", 2);
        let s = wa.to_string();
        assert!(s.contains("total 3"));
        assert!(s.contains("initial(Read) = 2 votes"));
    }
}
