//! Explicit (non-threshold) quorum assignments: arbitrary antichains of
//! site sets, for heterogeneous configurations that votes cannot express.

use crate::error::QuorumError;
use crate::sites::SiteSet;
use quorumcc_core::DependencyRelation;
use quorumcc_model::EventClass;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// A set of quorums: any one of the member site sets suffices.
///
/// Kept as an antichain — supersets of existing quorums are redundant and
/// are pruned on insertion.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct QuorumSet {
    quorums: Vec<SiteSet>,
}

impl QuorumSet {
    /// The empty quorum set (no quorum can ever be assembled — an
    /// unexecutable operation).
    pub fn new() -> Self {
        QuorumSet::default()
    }

    /// Builds a quorum set, pruning redundant supersets.
    pub fn from_quorums(qs: impl IntoIterator<Item = SiteSet>) -> Self {
        let mut set = QuorumSet::new();
        for q in qs {
            set.insert(q);
        }
        set
    }

    /// Every subset of `{0..n}` with at least `k` members, as a threshold
    /// quorum set (materialized; prefer
    /// [`ThresholdAssignment`](crate::threshold::ThresholdAssignment) for
    /// analysis — this form is for small `n`).
    pub fn threshold(n: u8, k: u8) -> Self {
        assert!(n <= 16, "materialized threshold sets limited to 16 sites");
        let mut qs = Vec::new();
        for mask in 0u64..(1 << n) {
            if mask.count_ones() == k as u32 {
                qs.push(SiteSet::from_mask(mask));
            }
        }
        QuorumSet::from_quorums(qs)
    }

    /// Adds a quorum unless it is a superset of an existing one; removes
    /// any existing quorums that are supersets of it.
    pub fn insert(&mut self, q: SiteSet) {
        if self.quorums.iter().any(|m| m.is_subset(q)) {
            return;
        }
        self.quorums.retain(|m| !q.is_subset(*m));
        self.quorums.push(q);
    }

    /// The minimal quorums.
    pub fn quorums(&self) -> &[SiteSet] {
        &self.quorums
    }

    /// Whether no quorum exists.
    pub fn is_empty(&self) -> bool {
        self.quorums.is_empty()
    }

    /// Whether some quorum is fully contained in the up-set `up`.
    pub fn available_under(&self, up: SiteSet) -> bool {
        self.quorums.iter().any(|q| q.is_subset(up))
    }

    /// Picks a quorum contained in `up`, preferring the smallest; ties
    /// break on the bitmask so the choice is a pure function of the set's
    /// *contents*, independent of insertion order (message-count telemetry
    /// must not depend on how a `QuorumSet` was built).
    pub fn pick(&self, up: SiteSet) -> Option<SiteSet> {
        self.quorums
            .iter()
            .filter(|q| q.is_subset(up))
            .min_by_key(|q| (q.len(), q.mask()))
            .copied()
    }

    /// Whether **every** quorum of `self` intersects **every** quorum of
    /// `other` — the §3.2 constraint form.
    pub fn always_intersects(&self, other: &QuorumSet) -> bool {
        self.quorums
            .iter()
            .all(|a| other.quorums.iter().all(|b| a.intersects(*b)))
    }

    /// Exact availability: the probability that some quorum is fully up,
    /// with per-site up-probabilities `ps` (exhaustive over up-sets; use
    /// for ≤ 20 sites).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::BadProbability`] for probabilities outside
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `ps` covers more than 20 sites (2^n enumeration).
    pub fn availability(&self, ps: &[f64]) -> Result<f64, QuorumError> {
        assert!(
            ps.len() <= 20,
            "exhaustive availability limited to 20 sites"
        );
        for p in ps {
            if !(0.0..=1.0).contains(p) {
                return Err(QuorumError::BadProbability(*p));
            }
        }
        let n = ps.len();
        let mut total = 0.0f64;
        for mask in 0u64..(1 << n) {
            let up = SiteSet::from_mask(mask);
            if !self.available_under(up) {
                continue;
            }
            let mut prob = 1.0f64;
            for (i, p) in ps.iter().enumerate() {
                prob *= if mask & (1 << i) != 0 { *p } else { 1.0 - p };
            }
            total += prob;
        }
        Ok(total.clamp(0.0, 1.0))
    }
}

impl fmt::Display for QuorumSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, q) in self.quorums.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "]")
    }
}

/// An explicit quorum assignment: initial quorum sets per invocation class
/// and final quorum sets per event class.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExplicitAssignment {
    initial: BTreeMap<&'static str, QuorumSet>,
    finals: BTreeMap<EventClass, QuorumSet>,
}

impl ExplicitAssignment {
    /// An empty assignment.
    pub fn new() -> Self {
        ExplicitAssignment::default()
    }

    /// Sets the initial quorum set of an invocation class.
    pub fn set_initial(&mut self, op: &'static str, qs: QuorumSet) -> &mut Self {
        self.initial.insert(op, qs);
        self
    }

    /// Sets the final quorum set of an event class.
    pub fn set_final(&mut self, ev: EventClass, qs: QuorumSet) -> &mut Self {
        self.finals.insert(ev, qs);
        self
    }

    /// The initial quorum set of `op` (empty if unset).
    pub fn initial(&self, op: &str) -> QuorumSet {
        self.initial
            .iter()
            .find(|(k, _)| **k == op)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    }

    /// The final quorum set of `ev`. Unset classes get the *trivially
    /// satisfied* quorum set `{∅}` — recording nowhere is legitimate
    /// exactly when nothing depends on the event.
    pub fn final_of(&self, ev: EventClass) -> QuorumSet {
        self.finals
            .get(&ev)
            .cloned()
            .unwrap_or_else(|| QuorumSet::from_quorums([SiteSet::EMPTY]))
    }

    /// Validates every constraint of `rel`: each initial quorum of `inv`
    /// intersects each final quorum of `ev`.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (thresholds reported as the
    /// minimum quorum sizes involved).
    pub fn validate(&self, rel: &DependencyRelation, n: u32) -> Result<(), QuorumError> {
        for (inv, ev) in rel.iter() {
            let qi = self.initial(inv);
            let qf = self.final_of(*ev);
            if qi.is_empty() || !qi.always_intersects(&qf) {
                return Err(QuorumError::ConstraintViolated {
                    inv,
                    event: *ev,
                    initial: qi
                        .quorums()
                        .iter()
                        .map(|q| q.len() as u32)
                        .min()
                        .unwrap_or(0),
                    final_: qf
                        .quorums()
                        .iter()
                        .map(|q| q.len() as u32)
                        .min()
                        .unwrap_or(0),
                    sites: n,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    #[test]
    fn antichain_pruning() {
        let mut qs = QuorumSet::new();
        qs.insert(SiteSet::from_ids([0, 1]));
        qs.insert(SiteSet::from_ids([0, 1, 2])); // superset — dropped
        assert_eq!(qs.quorums().len(), 1);
        qs.insert(SiteSet::from_ids([0])); // subset — replaces
        assert_eq!(qs.quorums(), &[SiteSet::from_ids([0])]);
    }

    #[test]
    fn threshold_materialization() {
        let qs = QuorumSet::threshold(4, 3);
        assert_eq!(qs.quorums().len(), 4); // C(4,3)
        assert!(qs.available_under(SiteSet::from_ids([0, 1, 2])));
        assert!(!qs.available_under(SiteSet::from_ids([0, 1])));
    }

    #[test]
    fn majorities_always_intersect() {
        let maj = QuorumSet::threshold(5, 3);
        assert!(maj.always_intersects(&maj));
        let two = QuorumSet::threshold(5, 2);
        assert!(!two.always_intersects(&two));
        // 2 + 4 > 5 sites do intersect.
        let four = QuorumSet::threshold(5, 4);
        assert!(two.always_intersects(&four));
    }

    #[test]
    fn pick_prefers_smallest_available() {
        let qs = QuorumSet::from_quorums([SiteSet::from_ids([0, 1, 2]), SiteSet::from_ids([3])]);
        assert_eq!(qs.pick(SiteSet::all(5)), Some(SiteSet::from_ids([3])));
        assert_eq!(
            qs.pick(SiteSet::from_ids([0, 1, 2])),
            Some(SiteSet::from_ids([0, 1, 2]))
        );
        assert_eq!(qs.pick(SiteSet::from_ids([4])), None);
    }

    #[test]
    fn pick_is_independent_of_insertion_order() {
        // Two same-size quorums, inserted in both orders: pick must return
        // the same one (lowest mask), not whichever came first.
        let a = SiteSet::from_ids([1, 3]);
        let b = SiteSet::from_ids([0, 2]);
        let forward = QuorumSet::from_quorums([a, b]);
        let reverse = QuorumSet::from_quorums([b, a]);
        let up = SiteSet::all(5);
        assert_eq!(forward.pick(up), reverse.pick(up));
        assert_eq!(forward.pick(up), Some(b), "lowest mask wins the tie");
        // And under a partial up-set that excludes the tie-winner, both
        // orders still agree.
        let up = SiteSet::from_ids([1, 3, 4]);
        assert_eq!(forward.pick(up), Some(a));
        assert_eq!(reverse.pick(up), Some(a));
    }

    #[test]
    fn weighted_style_asymmetric_assignment_validates() {
        // A "true copy at site 0" flavour: reads at {0} or {1,2}; the
        // write final quorum must hit both.
        let rel = quorumcc_core::DependencyRelation::from_pairs([("Read", ec("Write", "Ok"))]);
        let mut ea = ExplicitAssignment::new();
        ea.set_initial(
            "Read",
            QuorumSet::from_quorums([SiteSet::from_ids([0]), SiteSet::from_ids([1, 2])]),
        );
        ea.set_initial("Write", QuorumSet::from_quorums([SiteSet::from_ids([0])]));
        ea.set_final(
            ec("Write", "Ok"),
            QuorumSet::from_quorums([SiteSet::from_ids([0, 1]), SiteSet::from_ids([0, 2])]),
        );
        assert!(ea.validate(&rel, 3).is_ok());

        // Shrinking the write final quorum to {0} misses the {1,2} read.
        ea.set_final(
            ec("Write", "Ok"),
            QuorumSet::from_quorums([SiteSet::from_ids([0])]),
        );
        assert!(ea.validate(&rel, 3).is_err());
    }

    #[test]
    fn unset_final_is_trivial_and_unset_initial_is_impossible() {
        let ea = ExplicitAssignment::new();
        assert!(ea.final_of(ec("X", "Ok")).available_under(SiteSet::EMPTY));
        assert!(ea.initial("X").is_empty());
    }

    #[test]
    fn exact_availability_matches_binomial_for_thresholds() {
        let qs = QuorumSet::threshold(5, 3);
        let ps = [0.8; 5];
        let exact = qs.availability(&ps).unwrap();
        let tail = crate::availability::binomial_tail(5, 3, 0.8).unwrap();
        assert!((exact - tail).abs() < 1e-12, "{exact} vs {tail}");
    }

    #[test]
    fn exact_availability_heterogeneous() {
        // Quorums: {0} or {1,2}. ps = (0.5, 0.9, 0.9):
        // P = p0 + (1-p0)·p1·p2 = 0.5 + 0.5·0.81 = 0.905.
        let qs = QuorumSet::from_quorums([SiteSet::from_ids([0]), SiteSet::from_ids([1, 2])]);
        let a = qs.availability(&[0.5, 0.9, 0.9]).unwrap();
        assert!((a - 0.905).abs() < 1e-12, "{a}");
        // The empty quorum set is never available.
        assert_eq!(QuorumSet::new().availability(&[0.9; 3]).unwrap(), 0.0);
        // A quorum set containing ∅ is always available.
        let trivial = QuorumSet::from_quorums([SiteSet::EMPTY]);
        assert_eq!(trivial.availability(&[0.1; 3]).unwrap(), 1.0);
    }

    #[test]
    fn empty_initial_quorum_fails_validation() {
        let rel = quorumcc_core::DependencyRelation::from_pairs([("Read", ec("Write", "Ok"))]);
        let ea = ExplicitAssignment::new();
        assert!(ea.validate(&rel, 3).is_err());
    }
}
