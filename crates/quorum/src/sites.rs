//! Sites and site sets (bitset over at most 64 repositories).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a repository site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u8);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u8> for SiteId {
    fn from(v: u8) -> Self {
        SiteId(v)
    }
}

/// A set of sites, as a 64-bit mask.
///
/// # Example
///
/// ```
/// use quorumcc_quorum::sites::{SiteId, SiteSet};
///
/// let a = SiteSet::from_ids([0, 1, 2]);
/// let b = SiteSet::from_ids([2, 3]);
/// assert!(a.intersects(b));
/// assert_eq!(a.intersection(b).len(), 1);
/// assert!(a.contains(SiteId(1)));
/// assert_eq!(a.union(b).len(), 4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SiteSet(u64);

impl SiteSet {
    /// The empty set.
    pub const EMPTY: SiteSet = SiteSet(0);

    /// Builds a set from site indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is ≥ 64.
    pub fn from_ids(ids: impl IntoIterator<Item = u8>) -> Self {
        let mut mask = 0u64;
        for id in ids {
            assert!(id < 64, "site index {id} out of range (max 63)");
            mask |= 1 << id;
        }
        SiteSet(mask)
    }

    /// The set `{0, 1, …, n-1}` of all `n` sites.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn all(n: usize) -> Self {
        assert!(n <= 64, "at most 64 sites supported");
        if n == 64 {
            SiteSet(u64::MAX)
        } else {
            SiteSet((1u64 << n) - 1)
        }
    }

    /// The raw mask.
    pub fn mask(self) -> u64 {
        self.0
    }

    /// Builds a set from a raw mask.
    pub fn from_mask(mask: u64) -> Self {
        SiteSet(mask)
    }

    /// Whether `site` is a member.
    pub fn contains(self, site: SiteId) -> bool {
        self.0 & (1 << site.0) != 0
    }

    /// Inserts a site, returning the new set.
    pub fn with(self, site: SiteId) -> Self {
        SiteSet(self.0 | (1 << site.0))
    }

    /// Removes a site, returning the new set.
    pub fn without(self, site: SiteId) -> Self {
        SiteSet(self.0 & !(1 << site.0))
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: SiteSet) -> SiteSet {
        SiteSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: SiteSet) -> SiteSet {
        SiteSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: SiteSet) -> SiteSet {
        SiteSet(self.0 & !other.0)
    }

    /// Whether the sets share a member — the heart of quorum consensus.
    pub fn intersects(self, other: SiteSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(self, other: SiteSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over members in increasing order.
    pub fn iter(self) -> impl Iterator<Item = SiteId> {
        (0u8..64)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(SiteId)
    }
}

impl FromIterator<SiteId> for SiteSet {
    fn from_iter<T: IntoIterator<Item = SiteId>>(iter: T) -> Self {
        SiteSet::from_ids(iter.into_iter().map(|s| s.0))
    }
}

impl fmt::Display for SiteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, s) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = SiteSet::from_ids([0, 5, 63]);
        assert!(s.contains(SiteId(0)));
        assert!(s.contains(SiteId(63)));
        assert!(!s.contains(SiteId(1)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn all_sites() {
        assert_eq!(SiteSet::all(5).len(), 5);
        assert_eq!(SiteSet::all(64).len(), 64);
        assert_eq!(SiteSet::all(0), SiteSet::EMPTY);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_index_panics() {
        SiteSet::from_ids([64]);
    }

    #[test]
    fn set_algebra() {
        let a = SiteSet::from_ids([0, 1, 2]);
        let b = SiteSet::from_ids([2, 3]);
        assert_eq!(a.intersection(b), SiteSet::from_ids([2]));
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.difference(b), SiteSet::from_ids([0, 1]));
        assert!(a.intersects(b));
        assert!(!a.intersects(SiteSet::from_ids([4])));
        assert!(SiteSet::from_ids([1]).is_subset(a));
        assert!(!a.is_subset(b));
        // The empty set intersects nothing.
        assert!(!SiteSet::EMPTY.intersects(a));
    }

    #[test]
    fn with_and_without() {
        let s = SiteSet::EMPTY.with(SiteId(3)).with(SiteId(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.without(SiteId(3)), SiteSet::from_ids([4]));
    }

    #[test]
    fn display() {
        assert_eq!(SiteSet::from_ids([0, 2]).to_string(), "{s0,s2}");
        assert_eq!(SiteSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn iter_roundtrip() {
        let s = SiteSet::from_ids([1, 7, 30]);
        let back: SiteSet = s.iter().collect();
        assert_eq!(s, back);
    }
}
