//! Error types for quorum assignment and analysis.

use quorumcc_model::EventClass;
use std::error::Error;
use std::fmt;

/// Errors from quorum assignment validation and search.
#[derive(Debug, Clone, PartialEq)]
pub enum QuorumError {
    /// A dependency constraint's quorums fail to intersect.
    ConstraintViolated {
        /// The invocation class of the constraint.
        inv: &'static str,
        /// The event class of the constraint.
        event: EventClass,
        /// The initial threshold (or minimum initial quorum weight).
        initial: u32,
        /// The final threshold.
        final_: u32,
        /// Total sites (or total weight).
        sites: u32,
    },
    /// No satisfying assignment exists under the given bounds.
    NoAssignment {
        /// Number of sites searched over.
        sites: u32,
    },
    /// A probability parameter was outside `[0, 1]`.
    BadProbability(f64),
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumError::ConstraintViolated {
                inv,
                event,
                initial,
                final_,
                sites,
            } => write!(
                f,
                "constraint {inv} \u{2265} {event} violated: initial {initial} + final {final_} \u{2264} {sites} sites"
            ),
            QuorumError::NoAssignment { sites } => {
                write!(f, "no satisfying quorum assignment over {sites} sites")
            }
            QuorumError::BadProbability(p) => {
                write!(f, "probability {p} is outside [0, 1]")
            }
        }
    }
}

impl Error for QuorumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_error() {
        fn assert_error<E: Error>() {}
        assert_error::<QuorumError>();
    }

    #[test]
    fn display_mentions_the_constraint() {
        let e = QuorumError::ConstraintViolated {
            inv: "Read",
            event: EventClass::new("Write", "Ok"),
            initial: 1,
            final_: 1,
            sites: 3,
        };
        let s = e.to_string();
        assert!(s.contains("Read"));
        assert!(s.contains("Write/Ok"));
    }
}
