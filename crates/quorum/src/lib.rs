//! Quorum assignments, intersection constraints, and availability analysis
//! for replicated typed objects (§3.2 and §4 of the paper).
//!
//! A dependency relation from `quorumcc-core` compiles directly into
//! quorum-intersection constraints: `inv ≥ e` requires every initial
//! quorum of `inv` to intersect every final quorum of `e`. This crate
//! provides:
//!
//! * [`sites`] — sites and site sets (bitsets).
//! * [`threshold`] — Gifford-style vote thresholds, constraint validation,
//!   and the lexicographic optimizer behind the §4 PROM table.
//! * [`explicit`] — arbitrary quorum-set assignments for heterogeneous
//!   configurations.
//! * [`availability`] — exact availability under independent site
//!   failures.
//! * [`weighted`] — Gifford-style weighted voting (heterogeneous sites).
//! * [`montecarlo`] — availability under crashes *and partitions*.
//! * [`planner`] — availability-optimal legal assignments over an observed
//!   site population, for online reconfiguration.
//!
//! # Example
//!
//! ```
//! use quorumcc_quorum::{availability, threshold};
//! use quorumcc_core::certificates::prom_hybrid_relation;
//! use quorumcc_model::EventClass;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ops = ["Write", "Read", "Seal"];
//! let evs = [
//!     EventClass::new("Write", "Ok"),
//!     EventClass::new("Write", "Disabled"),
//!     EventClass::new("Read", "Ok"),
//!     EventClass::new("Read", "Disabled"),
//!     EventClass::new("Seal", "Ok"),
//! ];
//! let ta = threshold::optimize(&prom_hybrid_relation(), 5, &ops, &evs,
//!                              &["Read", "Write", "Seal"])?;
//! // §4: hybrid atomicity permits Read/Write quorums of one site.
//! assert_eq!(ta.op_size_worst("Read", &evs), 1);
//! assert_eq!(ta.op_size_worst("Write", &evs), 1);
//! let read_avail = availability::op_availability_worst(&ta, "Read", &evs, 0.9)?;
//! assert!(read_avail > 0.9999);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod error;
pub mod explicit;
pub mod montecarlo;
pub mod pareto;
pub mod planner;
pub mod sites;
pub mod threshold;
pub mod weighted;

pub use error::QuorumError;
pub use explicit::{ExplicitAssignment, QuorumSet};
pub use pareto::{frontier, frontier_dominates};
pub use planner::Plan;
pub use sites::{SiteId, SiteSet};
pub use threshold::{optimize, ThresholdAssignment};
pub use weighted::WeightedAssignment;
