//! Gifford-style weighted-vote threshold quorum assignments, with
//! constraint checking against a dependency relation and the §4
//! lexicographic optimizer.
//!
//! With unit votes over `n` sites, an **initial quorum** for invocation
//! class `op` is any `ti(op)` sites and a **final quorum** for event class
//! `ev` is any `tf(ev)` sites; the constraint `inv ≥ e` (every initial
//! quorum of `inv` intersects every final quorum of `e`) holds iff
//! `ti(inv) + tf(e) > n`.

use crate::error::QuorumError;
use quorumcc_core::DependencyRelation;
use quorumcc_model::EventClass;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// A threshold quorum assignment over `n` equally-weighted sites.
///
/// # Example
///
/// The §4 PROM assignment under hybrid atomicity, `n = 5`:
///
/// ```
/// use quorumcc_quorum::threshold::ThresholdAssignment;
/// use quorumcc_core::certificates::prom_hybrid_relation;
/// use quorumcc_model::EventClass;
///
/// let mut ta = ThresholdAssignment::new(5);
/// ta.set_initial("Read", 1);
/// ta.set_initial("Write", 1);
/// ta.set_initial("Seal", 5);
/// ta.set_final(EventClass::new("Seal", "Ok"), 5);
/// ta.set_final(EventClass::new("Write", "Ok"), 1);
/// ta.set_final(EventClass::new("Read", "Disabled"), 1);
/// assert!(ta.validate(&prom_hybrid_relation()).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ThresholdAssignment {
    n: u32,
    initial: BTreeMap<&'static str, u32>,
    finals: BTreeMap<EventClass, u32>,
}

impl ThresholdAssignment {
    /// An assignment over `n` sites with no thresholds set (defaults:
    /// initial 1, final 0 — i.e. read one copy, record nowhere).
    pub fn new(n: u32) -> Self {
        ThresholdAssignment {
            n,
            initial: BTreeMap::new(),
            finals: BTreeMap::new(),
        }
    }

    /// Number of sites.
    pub fn sites(&self) -> u32 {
        self.n
    }

    /// Sets the initial-quorum threshold for an invocation class.
    pub fn set_initial(&mut self, op: &'static str, t: u32) -> &mut Self {
        self.initial.insert(op, t.min(self.n));
        self
    }

    /// Sets the final-quorum threshold for an event class.
    pub fn set_final(&mut self, ev: EventClass, t: u32) -> &mut Self {
        self.finals.insert(ev, t.min(self.n));
        self
    }

    /// The initial threshold of `op` (default 1).
    pub fn initial(&self, op: &str) -> u32 {
        self.initial
            .iter()
            .find(|(k, _)| **k == op)
            .map(|(_, v)| *v)
            .unwrap_or(1)
    }

    /// The final threshold of `ev` (default 0: the event is recorded
    /// nowhere beyond the executing front-end, which is sound exactly when
    /// nothing depends on it).
    pub fn final_of(&self, ev: EventClass) -> u32 {
        self.finals.get(&ev).copied().unwrap_or(0)
    }

    /// The **effective quorum size** of executing `op` and observing
    /// response class `ev`: the invocation needs `max(ti, tf)` live sites
    /// (one live set can serve as both initial and final quorum).
    pub fn op_size(&self, op: &str, ev: EventClass) -> u32 {
        self.initial(op).max(self.final_of(ev))
    }

    /// The worst-case effective size of `op` over the given response
    /// classes.
    pub fn op_size_worst(&self, op: &str, evs: &[EventClass]) -> u32 {
        evs.iter()
            .filter(|e| e.op == op)
            .map(|e| self.op_size(op, *e))
            .max()
            .unwrap_or(self.initial(op))
    }

    /// Checks every constraint `inv ≥ e` of `rel`: `ti(inv) + tf(e) > n`.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self, rel: &DependencyRelation) -> Result<(), QuorumError> {
        for (inv, ev) in rel.iter() {
            let ti = self.initial(inv);
            let tf = self.final_of(*ev);
            if ti + tf <= self.n {
                return Err(QuorumError::ConstraintViolated {
                    inv,
                    event: *ev,
                    initial: ti,
                    final_: tf,
                    sites: self.n,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for ThresholdAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "n = {}", self.n)?;
        for (op, t) in &self.initial {
            writeln!(f, "  initial({op}) = {t}")?;
        }
        for (ev, t) in &self.finals {
            writeln!(f, "  final({ev}) = {t}")?;
        }
        Ok(())
    }
}

/// Derives the cheapest threshold assignment for `rel` that minimizes the
/// worst-case effective quorum sizes of the operation classes in
/// `priority` order (lexicographically): the paper's "replicated to
/// maximize the availability of the Read operation" analysis, §4.
///
/// `ops` lists every invocation class with its event classes (from
/// `Classified::op_classes` / `event_classes`). Exhaustive over initial
/// thresholds (final thresholds are then forced to their minima), so exact.
///
/// # Errors
///
/// Returns [`QuorumError::NoAssignment`] if `rel` is unsatisfiable at `n`
/// (cannot happen for `n ≥ 1` since `ti = tf = n` satisfies everything).
pub fn optimize(
    rel: &DependencyRelation,
    n: u32,
    ops: &[&'static str],
    event_classes: &[EventClass],
    priority: &[&'static str],
) -> Result<ThresholdAssignment, QuorumError> {
    assert!(
        priority.iter().all(|p| ops.contains(p)),
        "priority lists an unknown operation class"
    );
    let k = ops.len();
    let mut ti = vec![1u32; k]; // candidate initial thresholds
    let mut best: Option<(Vec<u32>, ThresholdAssignment)> = None;

    loop {
        let ta = force_finals(rel, n, ops, &ti, event_classes);
        if ta.validate(rel).is_ok() {
            let key: Vec<u32> = priority
                .iter()
                .map(|op| ta.op_size_worst(op, event_classes))
                .chain(
                    ops.iter()
                        .filter(|op| !priority.contains(op))
                        .map(|op| ta.op_size_worst(op, event_classes)),
                )
                .collect();
            if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
                best = Some((key, ta));
            }
        }
        // Advance the mixed-radix counter over initial thresholds 1..=n.
        let mut i = 0;
        loop {
            if i == k {
                return best
                    .map(|(_, ta)| ta)
                    .ok_or(QuorumError::NoAssignment { sites: n });
            }
            ti[i] += 1;
            if ti[i] <= n {
                break;
            }
            ti[i] = 1;
            i += 1;
        }
    }
}

/// Given initial thresholds, each final threshold is forced to its minimum:
/// `tf(e) = max over {inv : inv ≥ e} of (n + 1 - ti(inv))`, or 0 if nothing
/// depends on `e`.
pub(crate) fn force_finals(
    rel: &DependencyRelation,
    n: u32,
    ops: &[&'static str],
    ti: &[u32],
    event_classes: &[EventClass],
) -> ThresholdAssignment {
    let mut ta = ThresholdAssignment::new(n);
    for (op, t) in ops.iter().zip(ti) {
        ta.set_initial(op, *t);
    }
    for ev in event_classes {
        let need = rel
            .iter()
            .filter(|(_, e)| e == ev)
            .map(|(inv, _)| n + 1 - ta.initial(inv))
            .max()
            .unwrap_or(0);
        ta.set_final(*ev, need);
    }
    ta
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_core::certificates::{prom_hybrid_relation, prom_static_extra_pairs};

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    fn prom_ops() -> Vec<&'static str> {
        vec!["Write", "Read", "Seal"]
    }

    fn prom_events() -> Vec<EventClass> {
        vec![
            ec("Write", "Ok"),
            ec("Write", "Disabled"),
            ec("Read", "Ok"),
            ec("Read", "Disabled"),
            ec("Seal", "Ok"),
        ]
    }

    /// §4's PROM table, hybrid side: maximizing Read availability yields
    /// quorum sizes (Read, Seal, Write) = (1, n, 1).
    #[test]
    fn prom_hybrid_quorums_one_n_one() {
        for n in [3u32, 5, 7] {
            let ta = optimize(
                &prom_hybrid_relation(),
                n,
                &prom_ops(),
                &prom_events(),
                &["Read", "Write", "Seal"],
            )
            .unwrap();
            assert_eq!(ta.op_size_worst("Read", &prom_events()), 1, "n={n}");
            assert_eq!(ta.op_size_worst("Write", &prom_events()), 1, "n={n}");
            assert_eq!(ta.op_size_worst("Seal", &prom_events()), n, "n={n}");
        }
    }

    /// §4's PROM table, static side: the two extra constraints force
    /// (Read, Seal, Write) = (1, n, n).
    #[test]
    fn prom_static_quorums_one_n_n() {
        let rel = prom_hybrid_relation().union(&prom_static_extra_pairs());
        for n in [3u32, 5, 7] {
            let ta = optimize(
                &rel,
                n,
                &prom_ops(),
                &prom_events(),
                &["Read", "Write", "Seal"],
            )
            .unwrap();
            assert_eq!(ta.op_size_worst("Read", &prom_events()), 1, "n={n}");
            assert_eq!(ta.op_size_worst("Write", &prom_events()), n, "n={n}");
            assert_eq!(ta.op_size_worst("Seal", &prom_events()), n, "n={n}");
        }
    }

    #[test]
    fn validate_catches_violations() {
        let rel = prom_hybrid_relation();
        let mut ta = ThresholdAssignment::new(3);
        ta.set_initial("Read", 1);
        // final(Seal/Ok) defaults to 0 → Read ≥ Seal/Ok violated.
        let err = ta.validate(&rel).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("Seal/Ok"), "{msg}");
    }

    #[test]
    fn defaults_are_read_one_record_nowhere() {
        let ta = ThresholdAssignment::new(5);
        assert_eq!(ta.initial("Anything"), 1);
        assert_eq!(ta.final_of(ec("X", "Ok")), 0);
        assert_eq!(ta.op_size("X", ec("X", "Ok")), 1);
    }

    #[test]
    fn thresholds_are_clamped_to_n() {
        let mut ta = ThresholdAssignment::new(3);
        ta.set_initial("Op", 99);
        assert_eq!(ta.initial("Op"), 3);
    }

    #[test]
    fn optimizer_respects_priority_order() {
        // Prioritizing Seal first gives Seal a chance to shrink at the
        // Read/Write side's expense… but Seal ≥ Write/Ok and Write ≥
        // Seal/Ok couple them: ti(S)+tf(W) > n and ti(W)+tf(S) > n. With
        // priority Seal: minimize max(ti(S), tf(S/Ok)).
        let ta = optimize(
            &prom_hybrid_relation(),
            5,
            &prom_ops(),
            &prom_events(),
            &["Seal", "Read", "Write"],
        )
        .unwrap();
        let seal = ta.op_size_worst("Seal", &prom_events());
        // Seal can do better than n when Read/Write pay: ti(R)+tf(S) > 5
        // allows tf(S)=3 with ti(R)=3.
        assert!(seal <= 3, "seal size {seal}\n{ta}");
    }

    #[test]
    fn display_lists_thresholds() {
        let mut ta = ThresholdAssignment::new(3);
        ta.set_initial("Read", 2);
        ta.set_final(ec("Write", "Ok"), 2);
        let s = ta.to_string();
        assert!(s.contains("initial(Read) = 2"));
        assert!(s.contains("final(Write/Ok) = 2"));
    }
}
