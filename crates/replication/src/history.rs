//! Assembling captured client records into per-object behavioral
//! histories, and checking them against the atomicity properties — the
//! end-to-end soundness loop.

use crate::client::Record;
use crate::protocol::Mode;
use crate::types::ObjId;
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{atomicity, ActionId, BHistory, Enumerable, Event};
use quorumcc_sim::SimTime;
use std::collections::HashSet;

/// One record tagged with its origin for global ordering.
type Tagged<I, R> = (SimTime, u32, usize, Record<I, R>);

/// Assembles the global behavioral history of `obj` from every client's
/// records, ordered by `(time, client, sequence)`.
///
/// Only actions that performed at least one operation on `obj` are
/// included (actions that never touched the object contribute nothing to
/// its atomicity and would bloat the checker's subset enumeration).
pub fn assemble<I: Clone, R: Clone>(
    per_client: &[(u32, &[Record<I, R>])],
    obj: ObjId,
) -> BHistory<I, R> {
    let mut tagged: Vec<Tagged<I, R>> = Vec::new();
    for (client, records) in per_client {
        for (seq, r) in records.iter().enumerate() {
            let t = match r {
                Record::Begin { t, .. }
                | Record::Op { t, .. }
                | Record::Commit { t, .. }
                | Record::Abort { t, .. } => *t,
            };
            tagged.push((t, *client, seq, r.clone()));
        }
    }
    tagged.sort_by_key(|a| (a.0, a.1, a.2));

    // Which actions touched this object?
    let relevant: HashSet<ActionId> = tagged
        .iter()
        .filter_map(|(_, _, _, r)| match r {
            Record::Op { action, obj: o, .. } if *o == obj => Some(*action),
            _ => None,
        })
        .collect();

    let mut h = BHistory::new();
    for (_, _, _, r) in tagged {
        let result = match r {
            Record::Begin { action, .. } if relevant.contains(&action) => {
                h.try_push(quorumcc_model::BEntry::Begin(action))
            }
            Record::Op {
                action,
                obj: o,
                event,
                ..
            } if o == obj && relevant.contains(&action) => h.try_push(quorumcc_model::BEntry::Op {
                action,
                event: Event::new(event.inv, event.res),
            }),
            Record::Commit { action, .. } if relevant.contains(&action) => {
                h.try_push(quorumcc_model::BEntry::Commit(action))
            }
            Record::Abort { action, .. } if relevant.contains(&action) => {
                h.try_push(quorumcc_model::BEntry::Abort(action))
            }
            _ => Ok(()),
        };
        if let Err(e) = result {
            panic!("captured records are malformed: {e}");
        }
    }
    h
}

/// Checks a captured history against the atomicity property of `mode` —
/// Definition 3 (or 7) on the **committed subhistory**.
///
/// The on-line `in_*_spec` predicates describe the idealized objects;
/// implementations instead abort conflicting actions, so their histories
/// need only serialize the committed actions in the mode's order. A
/// failure here means the protocol or the quorum assignment is broken
/// (the negative tests inject exactly such breakage).
pub fn satisfies<S: Enumerable>(
    mode: Mode,
    h: &BHistory<S::Inv, S::Res>,
    bounds: ExploreBounds,
) -> bool {
    match mode {
        Mode::StaticTs => atomicity::committed_static_atomic::<S>(h),
        Mode::Hybrid => atomicity::committed_hybrid_atomic::<S>(h),
        Mode::Dynamic2pl => atomicity::committed_dynamic_atomic::<S>(h, bounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_model::testtypes::{enq, QInv, QRes};

    type R = Record<QInv, QRes>;

    #[test]
    fn assembly_orders_by_time_then_client() {
        let a: Vec<R> = vec![
            Record::Begin {
                t: 1,
                action: ActionId(0),
            },
            Record::Op {
                t: 5,
                action: ActionId(0),
                obj: ObjId(0),
                event: enq(1),
            },
            Record::Commit {
                t: 9,
                action: ActionId(0),
            },
        ];
        let b: Vec<R> = vec![
            Record::Begin {
                t: 2,
                action: ActionId(1),
            },
            Record::Op {
                t: 4,
                action: ActionId(1),
                obj: ObjId(0),
                event: enq(2),
            },
            Record::Commit {
                t: 7,
                action: ActionId(1),
            },
        ];
        let h = assemble(&[(0, &a[..]), (1, &b[..])], ObjId(0));
        assert_eq!(h.actions(), vec![ActionId(0), ActionId(1)]);
        // B's op (t=4) lands before A's (t=5); B commits first.
        assert_eq!(h.committed_actions(), vec![ActionId(1), ActionId(0)]);
    }

    #[test]
    fn assembly_drops_unrelated_objects_and_actions() {
        let a: Vec<R> = vec![
            Record::Begin {
                t: 1,
                action: ActionId(0),
            },
            Record::Op {
                t: 2,
                action: ActionId(0),
                obj: ObjId(1), // different object!
                event: enq(1),
            },
            Record::Commit {
                t: 3,
                action: ActionId(0),
            },
        ];
        let h = assemble(&[(0, &a[..])], ObjId(0));
        assert!(h.is_empty());
        let h1 = assemble(&[(0, &a[..])], ObjId(1));
        assert_eq!(h1.len(), 3);
    }

    #[test]
    fn satisfies_dispatches_by_mode() {
        use quorumcc_model::testtypes::TestQueue;
        let mut h = BHistory::new();
        h.begin(0);
        h.op_event(0, enq(1));
        h.commit(0);
        for mode in [Mode::StaticTs, Mode::Hybrid, Mode::Dynamic2pl] {
            assert!(satisfies::<TestQueue>(mode, &h, ExploreBounds::default()));
        }
    }
}
