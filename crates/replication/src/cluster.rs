//! Cluster assembly: repositories + clients over the simulator, one call
//! to run a workload and harvest histories, statistics, telemetry, and
//! (optionally) a structured trace.
//!
//! The entry point is [`RunBuilder`], which groups the run's knobs into
//! cohesive configs: [`NetworkConfig`], [`FaultPlan`], [`ProtocolConfig`]
//! (protocol + timeout/retry/commit knobs), [`TuningConfig`] (client and
//! repository pacing), [`TraceConfig`], and [`ReconfigPolicy`] (online
//! quorum reconfiguration).

use crate::backend::BackendKind;
use crate::client::{Client, ClientConfig, ClientStats, Fanout, Record, Transaction};
use crate::driver::{DesAdapter, Driver, Input, Io};
use crate::error::ReplicationError;
use crate::history;
use crate::messages::Msg;
use crate::metrics::RunTelemetry;
use crate::protocol::Protocol;
use crate::reconfig::{Config, ConfigState, ReconfigPolicy, ReconfigRecord, Reconfigurer};
use crate::repository::{Durability, RepoCounters, Repository};
use crate::types::{CompactionConfig, ObjId, ObjectLog};
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{BHistory, Classified, Enumerable};
use quorumcc_quorum::{planner, SiteSet, ThresholdAssignment};
use quorumcc_sim::{
    FaultPlan, NetworkConfig, ProcId, Sim, SimStats, SimTime, TraceBuffer, TraceConfig,
};

/// A node in the cluster: repository, client, or the reconfiguration
/// coordinator.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum Node<S: Classified> {
    /// A storage site.
    Repo(Repository<S>),
    /// A client with its embedded front-end.
    Client(Client<S>),
    /// The view-change coordinator (present only when a
    /// [`ReconfigPolicy`] yields a non-empty schedule).
    Reconfig(Reconfigurer<S>),
}

/// A whole node is one sans-I/O [`Driver`]: every backend — the
/// deterministic simulator (via [`DesAdapter`]) and the real-concurrency
/// hosts in [`crate::backend`] — feeds it the same [`Input`] alphabet and
/// receives effects through the same [`Io`] surface.
impl<S: Classified> Driver<Msg<S::Inv, S::Res>> for Node<S> {
    fn handle(&mut self, io: &mut dyn Io<Msg<S::Inv, S::Res>>, input: Input<Msg<S::Inv, S::Res>>) {
        match input {
            Input::Start => match self {
                Node::Client(c) => c.start(io),
                Node::Repo(r) => r.start(io),
                Node::Reconfig(r) => r.start(io),
            },
            Input::Deliver { from, msg } => match self {
                Node::Repo(r) => r.handle(io, from, msg),
                Node::Client(c) => c.handle(io, from, msg),
                Node::Reconfig(r) => r.handle(io, from, msg),
            },
            Input::Timer { token } => match self {
                Node::Client(c) => c.tick(io, token),
                Node::Repo(r) => r.tick(io, token),
                Node::Reconfig(r) => r.tick(io, token),
            },
            // Only repositories model storage durability; clients and the
            // reconfigurer are the application side, outside the failure
            // model.
            Input::Recover => {
                if let Node::Repo(r) = self {
                    r.on_recover(io);
                }
            }
        }
    }
}

/// The concurrency-control side of a run: which protocol, and the knobs
/// that govern how its transactions pace themselves.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// The concurrency-control protocol (mode + dependency relation).
    pub protocol: Protocol,
    /// Per-quorum-phase timeout before a re-broadcast.
    pub op_timeout: SimTime,
    /// How many times an aborted transaction is re-run (fresh action each
    /// time).
    pub txn_retries: u32,
    /// Delay between the last operation and the commit decision (models
    /// atomic-commitment latency; 0 = commit immediately).
    pub commit_delay: SimTime,
}

impl ProtocolConfig {
    /// A config for `protocol` with the default pacing (timeout 120,
    /// no transaction retries, immediate commit).
    pub fn new(protocol: Protocol) -> Self {
        ProtocolConfig {
            protocol,
            op_timeout: 120,
            txn_retries: 0,
            commit_delay: 0,
        }
    }

    /// Sets the per-phase timeout.
    pub fn op_timeout(mut self, t: SimTime) -> Self {
        self.op_timeout = t;
        self
    }

    /// Sets how many times an aborted transaction is re-run.
    pub fn txn_retries(mut self, r: u32) -> Self {
        self.txn_retries = r;
        self
    }

    /// Sets the commit-decision delay.
    pub fn commit_delay(mut self, d: SimTime) -> Self {
        self.commit_delay = d;
        self
    }
}

/// Client and repository pacing knobs, orthogonal to the protocol.
///
/// Every setter overwrites exactly one field, so setters commute — the
/// builder surface has no order-dependent interactions (asserted by a
/// unit test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningConfig {
    /// Idle time between transactions.
    pub think_time: SimTime,
    /// Phase re-broadcasts before declaring the quorum unavailable.
    pub max_phase_retries: u32,
    /// Quorum fan-out policy.
    pub fanout: Fanout,
    /// Whether final-quorum writes carry the whole merged view (§3.2's
    /// algorithm) or only the fresh entry (ablation).
    pub propagate_views: bool,
    /// Periodic repository anti-entropy (log gossip) interval, if any.
    ///
    /// The gossip timers keep the event queue non-empty, so the run lasts
    /// until `max_time` — set that explicitly (a few thousand ticks)
    /// rather than relying on quiescence.
    pub anti_entropy: Option<SimTime>,
    /// Delta log shipping: `LogReply` carries only the suffix past the
    /// client's per-site frontier instead of the whole log. On by default;
    /// disable for the full-clone shipping baseline.
    pub delta_shipping: bool,
    /// Committed-prefix compaction on repositories (and aborted-entry GC
    /// on client mirrors), when set. `None` (default) keeps raw logs
    /// forever.
    pub compaction: Option<CompactionConfig>,
    /// Repository storage durability class (default
    /// [`Durability::Stable`]). Volatile repositories discard in-memory
    /// state on crash and recover from their write-ahead mirror (if kept)
    /// plus peer state transfer.
    pub durability: Durability,
    /// Test-only: weaken every initial-quorum check by one phantom reply
    /// (the safety oracle's self-test). Never enable outside tests.
    #[doc(hidden)]
    pub weaken_read_quorum: bool,
    /// Test-only: complete every final-quorum write at send time, before
    /// any acknowledgment arrives (the oracle's second self-test). Never
    /// enable outside tests.
    #[doc(hidden)]
    pub skip_final_ack: bool,
    /// Shards the object space: object `o` belongs to shard `o mod shards`
    /// and quorum state (configuration, thresholds, log frontiers) is kept
    /// per shard. 1 (default) = the unsharded seed behavior.
    pub shards: u16,
    /// Op batching and pipelining degree: coalesces independent sends to
    /// one destination into a single envelope and lets a client keep this
    /// many disjoint-shard operations in flight. 1 (default) = the
    /// unbatched, strictly sequential seed behavior, byte-identical.
    pub batch: u32,
    /// Batch flush window in logical ticks. 0 (default) flushes at the end
    /// of every event handler; `w > 0` holds under-filled envelopes for up
    /// to `w` ticks so sends from later events can coalesce too.
    pub batch_window: SimTime,
    /// Scoped status shipping on repositories: resolutions are planted
    /// (and therefore shipped) only in logs the resolved action touched,
    /// instead of in every object's log. Off (default) = the full-table
    /// gossip baseline.
    pub scoped_statuses: bool,
    /// Status GC batch: when set, repositories acknowledge resolutions
    /// ([`Msg::ResolveAck`]), clients advance a durable resolution
    /// frontier piggybacked on reads, and repositories drop tombstones
    /// below it — sweeping once accumulated frontier advance reaches the
    /// batch (hysteresis: each sweep fences readers into one full
    /// transfer). `None` (default) keeps tombstones forever.
    pub status_gc: Option<u64>,
    /// Resolve retransmission period for clients (`None` = off). With
    /// status GC on, clients keep unacknowledged resolutions pending and
    /// re-send them to exactly the repositories whose `ResolveAck` is
    /// missing — the frontier-repair path that unsticks durable GC after
    /// a crash swallows an ack. Safe because resolution application is
    /// idempotent and repositories re-ack every receipt.
    pub resolve_retransmit: Option<SimTime>,
}

impl Default for TuningConfig {
    fn default() -> Self {
        TuningConfig {
            think_time: 5,
            max_phase_retries: 2,
            fanout: Fanout::Broadcast,
            propagate_views: true,
            anti_entropy: None,
            delta_shipping: true,
            compaction: None,
            durability: Durability::Stable,
            weaken_read_quorum: false,
            skip_final_ack: false,
            shards: 1,
            batch: 1,
            batch_window: 0,
            scoped_statuses: false,
            status_gc: None,
            resolve_retransmit: None,
        }
    }
}

impl TuningConfig {
    /// Sets the idle time between transactions.
    pub fn think_time(mut self, t: SimTime) -> Self {
        self.think_time = t;
        self
    }

    /// Sets the phase-retry budget.
    pub fn max_phase_retries(mut self, r: u32) -> Self {
        self.max_phase_retries = r;
        self
    }

    /// Selects the quorum fan-out policy.
    pub fn fanout(mut self, f: Fanout) -> Self {
        self.fanout = f;
        self
    }

    /// Disables view propagation on final-quorum writes (ablation).
    pub fn no_view_propagation(mut self) -> Self {
        self.propagate_views = false;
        self
    }

    /// Enables periodic repository anti-entropy every `interval` ticks.
    pub fn anti_entropy(mut self, interval: SimTime) -> Self {
        self.anti_entropy = Some(interval);
        self
    }

    /// Enables committed-prefix compaction with the default
    /// [`CompactionConfig`].
    pub fn compact_logs(self) -> Self {
        self.compaction(CompactionConfig::default())
    }

    /// Enables committed-prefix compaction with explicit knobs.
    pub fn compaction(mut self, cc: CompactionConfig) -> Self {
        self.compaction = Some(cc);
        self
    }

    /// Reverts to full-log `LogReply` payloads (the shipping baseline /
    /// ablation).
    pub fn full_log_shipping(mut self) -> Self {
        self.delta_shipping = false;
        self
    }

    /// Sets the repository storage durability class.
    pub fn durability(mut self, d: Durability) -> Self {
        self.durability = d;
        self
    }

    /// Test-only: weaken every initial-quorum check by one phantom reply,
    /// producing runs the safety oracle must flag (its self-test).
    #[doc(hidden)]
    pub fn unsound_weaken_read_quorum(mut self) -> Self {
        self.weaken_read_quorum = true;
        self
    }

    /// Test-only: commit final-quorum writes at send time, before any ack
    /// (the second planted bug for the oracle/explorer self-tests).
    #[doc(hidden)]
    pub fn unsound_skip_final_ack(mut self) -> Self {
        self.skip_final_ack = true;
        self
    }

    /// Shards the object space into `n` independent quorum domains
    /// (`n <= 1` = unsharded).
    pub fn shards(mut self, n: u16) -> Self {
        self.shards = n;
        self
    }

    /// Sets the op batching / pipelining degree (`b <= 1` = off).
    pub fn batch(mut self, b: u32) -> Self {
        self.batch = b;
        self
    }

    /// Sets the batch flush window in ticks (0 = flush every event).
    pub fn batch_window(mut self, w: SimTime) -> Self {
        self.batch_window = w;
        self
    }

    /// Enables scoped status shipping (resolutions planted only in logs
    /// the action touched).
    pub fn scoped_statuses(mut self) -> Self {
        self.scoped_statuses = true;
        self
    }

    /// Enables status GC with the given sweep batch (clamped to ≥ 1).
    pub fn status_gc(mut self, batch: u64) -> Self {
        self.status_gc = Some(batch.max(1));
        self
    }

    /// Enables client-side resolve retransmission (frontier repair) every
    /// `period` ticks (clamped to ≥ 1). Only meaningful with
    /// [`TuningConfig::status_gc`].
    pub fn resolve_retransmit(mut self, period: SimTime) -> Self {
        self.resolve_retransmit = Some(period.max(1));
        self
    }
}

/// Builder for a replicated cluster running one data type `S`.
///
/// # Example
///
/// ```
/// use quorumcc_replication::cluster::{ProtocolConfig, RunBuilder};
/// use quorumcc_replication::protocol::{Mode, Protocol};
/// use quorumcc_replication::client::Transaction;
/// use quorumcc_replication::types::ObjId;
/// use quorumcc_model::testtypes::{QInv, TestQueue};
/// use quorumcc_core::minimal_static_relation;
/// use quorumcc_model::spec::ExploreBounds;
///
/// let rel = minimal_static_relation::<TestQueue>(ExploreBounds {
///     depth: 4, ..ExploreBounds::default()
/// }).relation;
/// let report = RunBuilder::<TestQueue>::new(3)
///     .protocol(ProtocolConfig::new(Protocol::new(Mode::Hybrid, rel)))
///     .seed(1)
///     .workload(vec![vec![Transaction {
///         ops: vec![(ObjId(0), QInv::Enq(7)), (ObjId(0), QInv::Deq)],
///     }]])
///     .run()
///     .expect("valid configuration");
/// assert_eq!(report.stats().committed, 1);
/// assert_eq!(report.telemetry().committed, 1);
/// ```
#[derive(Debug)]
pub struct RunBuilder<S: Classified> {
    n_repos: u32,
    protocol: Option<ProtocolConfig>,
    thresholds: Option<ThresholdAssignment>,
    net: NetworkConfig,
    faults: FaultPlan,
    trace_cfg: TraceConfig,
    tuning: TuningConfig,
    seed: u64,
    max_time: SimTime,
    workload: Vec<Vec<Transaction<S::Inv>>>,
    reconfig: ReconfigPolicy,
    shard_thresholds: Vec<ThresholdAssignment>,
    backend: BackendKind,
}

impl<S: Classified + Enumerable> RunBuilder<S> {
    /// Starts a builder for a cluster of `n_repos` repositories.
    pub fn new(n_repos: u32) -> Self {
        RunBuilder {
            n_repos,
            protocol: None,
            thresholds: None,
            net: NetworkConfig::default(),
            faults: FaultPlan::none(),
            trace_cfg: TraceConfig::disabled(),
            tuning: TuningConfig::default(),
            seed: 0,
            max_time: 1_000_000,
            workload: Vec::new(),
            reconfig: ReconfigPolicy::None,
            shard_thresholds: Vec::new(),
            backend: BackendKind::Des,
        }
    }

    /// Sets the concurrency-control configuration (required).
    pub fn protocol(mut self, p: ProtocolConfig) -> Self {
        self.protocol = Some(p);
        self
    }

    /// Sets quorum thresholds. Defaults to majorities everywhere
    /// (initial = final = ⌈(n+1)/2⌉), which satisfies every relation.
    pub fn thresholds(mut self, ta: ThresholdAssignment) -> Self {
        self.thresholds = Some(ta);
        self
    }

    /// Selects the execution backend: the deterministic simulator
    /// ([`BackendKind::Des`], the default) or the real-concurrency
    /// channels host ([`BackendKind::Channels`]). The same sans-I/O
    /// drivers run either way; see [`crate::backend`].
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Sets per-shard quorum thresholds (one assignment per shard, in
    /// shard order). Requires [`TuningConfig::shards`] to match the
    /// length; each shard's quorum intersection holds independently
    /// because conflicts are per-object and every object lives in exactly
    /// one shard.
    pub fn shard_thresholds(mut self, tas: Vec<ThresholdAssignment>) -> Self {
        self.shard_thresholds = tas;
        self
    }

    /// Sets network parameters.
    pub fn network(mut self, net: NetworkConfig) -> Self {
        self.net = net;
        self
    }

    /// Installs a fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the trace-capture policy (default: disabled, zero overhead).
    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.trace_cfg = cfg;
        self
    }

    /// Sets the client/repository pacing knobs.
    pub fn tuning(mut self, tuning: TuningConfig) -> Self {
        self.tuning = tuning;
        self
    }

    /// Sets the run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the simulation horizon.
    pub fn max_time(mut self, t: SimTime) -> Self {
        self.max_time = t;
        self
    }

    /// Sets the per-client transaction lists (one `Vec<Transaction>` per
    /// client; the number of clients is the outer length).
    pub fn workload(mut self, w: Vec<Vec<Transaction<S::Inv>>>) -> Self {
        self.workload = w;
        self
    }

    /// Sets the online-reconfiguration policy (default: never
    /// reconfigure). With a non-trivial policy a dedicated coordinator
    /// process installs each scheduled configuration through a joint
    /// phase; in-flight operations caught on the old epoch abort and
    /// retry for free under the new one.
    pub fn reconfig(mut self, policy: ReconfigPolicy) -> Self {
        self.reconfig = policy;
        self
    }

    /// Builds and runs the cluster to quiescence (or `max_time`).
    ///
    /// # Errors
    ///
    /// [`ReplicationError::MissingProtocol`] when no protocol was set,
    /// [`ReplicationError::EmptyWorkload`] when there are no transactions
    /// to run, [`ReplicationError::InvalidNetwork`] when
    /// `min_delay > max_delay`, and
    /// [`ReplicationError::InvalidThresholds`] when the quorum
    /// thresholds violate the protocol's dependency relation — an invalid
    /// assignment would silently produce non-atomic histories, which is
    /// precisely what the paper's constraints exist to prevent. (The
    /// negative tests bypass that check via [`RunBuilder::run_unchecked`].)
    pub fn run(self) -> Result<RunReport<S>, ReplicationError> {
        self.run_with(true)
    }

    /// Like [`RunBuilder::run`] but skips quorum validation — for
    /// experiments that *demonstrate* what goes wrong with too-small
    /// quorums.
    pub fn run_unchecked(self) -> Result<RunReport<S>, ReplicationError> {
        self.run_with(false)
    }

    fn run_with(self, validate: bool) -> Result<RunReport<S>, ReplicationError> {
        if self.net.min_delay > self.net.max_delay {
            return Err(ReplicationError::InvalidNetwork {
                min_delay: self.net.min_delay,
                max_delay: self.net.max_delay,
            });
        }
        if !self.net.probabilities_valid() {
            return Err(ReplicationError::InvalidChaosProfile(format!(
                "drop_prob {} / dup_prob {} outside [0, 1]",
                self.net.drop_prob, self.net.dup_prob
            )));
        }
        let cc = self
            .protocol
            .clone()
            .ok_or(ReplicationError::MissingProtocol)?;
        if self.workload.iter().all(Vec::is_empty) {
            return Err(ReplicationError::EmptyWorkload);
        }
        let thresholds = self.default_thresholds();
        if validate {
            thresholds
                .validate(&cc.protocol.rel)
                .map_err(|e| ReplicationError::InvalidThresholds(e.to_string()))?;
        }
        if !self.shard_thresholds.is_empty() {
            let shards = self.tuning.shards.max(1) as usize;
            if self.shard_thresholds.len() != shards {
                return Err(ReplicationError::InvalidThresholds(format!(
                    "shard_thresholds carries {} assignments for {shards} shards",
                    self.shard_thresholds.len()
                )));
            }
            if validate {
                for ta in &self.shard_thresholds {
                    ta.validate(&cc.protocol.rel)
                        .map_err(|e| ReplicationError::InvalidThresholds(e.to_string()))?;
                }
            }
        }
        self.validate_reconfig(&cc)?;
        match self.backend {
            BackendKind::Des => Ok(self.run_inner(cc, thresholds)),
            BackendKind::Channels => {
                if !self.faults.partitions().is_empty() {
                    return Err(ReplicationError::Unsupported(
                        "the channels backend cannot schedule scripted partitions \
                         (link cuts are tied to simulated time); use NetworkConfig \
                         drop/dup probabilities instead. Scripted crash windows are \
                         supported: they map tick-for-tick onto the host's wall-clock \
                         tick."
                            .into(),
                    ));
                }
                if self.trace_cfg != TraceConfig::disabled() {
                    return Err(ReplicationError::Unsupported(
                        "trace capture requires the deterministic DES backend".into(),
                    ));
                }
                Ok(self.run_channels_inner(cc, thresholds))
            }
        }
    }

    /// Validation half of [`RunBuilder::run`], for callers that execute
    /// the drivers themselves (the interleaving explorer): performs every
    /// configuration check `run` would, then hands the builder back with
    /// the resolved protocol and thresholds instead of running.
    pub(crate) fn validated(
        self,
    ) -> Result<(Self, ProtocolConfig, ThresholdAssignment), ReplicationError> {
        if self.net.min_delay > self.net.max_delay {
            return Err(ReplicationError::InvalidNetwork {
                min_delay: self.net.min_delay,
                max_delay: self.net.max_delay,
            });
        }
        let cc = self
            .protocol
            .clone()
            .ok_or(ReplicationError::MissingProtocol)?;
        if self.workload.iter().all(Vec::is_empty) {
            return Err(ReplicationError::EmptyWorkload);
        }
        let thresholds = self.default_thresholds();
        thresholds
            .validate(&cc.protocol.rel)
            .map_err(|e| ReplicationError::InvalidThresholds(e.to_string()))?;
        self.validate_reconfig(&cc)?;
        Ok((self, cc, thresholds))
    }

    /// The repository count (explorer plumbing).
    pub(crate) fn n_repos(&self) -> u32 {
        self.n_repos
    }

    /// The client count (explorer plumbing).
    pub(crate) fn n_clients(&self) -> u32 {
        self.workload.len() as u32
    }

    /// Runs the cluster on the real-concurrency channels backend and
    /// harvests the same [`RunReport`] shape as the DES path (minus trace).
    fn run_channels_inner(
        self,
        cc: ProtocolConfig,
        thresholds: ThresholdAssignment,
    ) -> RunReport<S> {
        let protocol = cc.protocol.clone();
        let (nodes, has_reconfigurer) = self.build_nodes(&cc, &thresholds);
        let (finished, sim_stats) = crate::backend::run_channels(
            nodes,
            self.net,
            self.faults.clone(),
            self.seed,
            self.max_time,
        );
        let refs: Vec<&Node<S>> = finished.iter().collect();
        self.harvest(protocol, &refs, has_reconfigurer, sim_stats, None)
    }

    /// Structural checks on a manual reconfiguration schedule. (Reactive
    /// policies need none: the planner only emits legal configurations.)
    fn validate_reconfig(&self, cc: &ProtocolConfig) -> Result<(), ReplicationError> {
        let ReconfigPolicy::Manual(schedule) = &self.reconfig else {
            return Ok(());
        };
        let mut last_epoch = 0u64;
        let mut last_t = 0;
        for (t, c) in schedule {
            if *t < last_t {
                return Err(ReplicationError::InvalidReconfig(format!(
                    "install times must be nondecreasing ({t} after {last_t})"
                )));
            }
            last_t = *t;
            if c.epoch <= last_epoch {
                return Err(ReplicationError::InvalidReconfig(format!(
                    "epochs must increase (epoch {} after {last_epoch})",
                    c.epoch
                )));
            }
            last_epoch = c.epoch;
            if let Some(m) = c.members.iter().find(|m| **m >= self.n_repos) {
                return Err(ReplicationError::InvalidReconfig(format!(
                    "epoch {}: member {m} outside the cluster (n = {})",
                    c.epoch, self.n_repos
                )));
            }
            c.validate(&cc.protocol.rel)?;
        }
        Ok(())
    }

    /// Resolves the reconfiguration policy into a concrete install
    /// schedule. Reactive policies replan over the surviving membership
    /// `detect_delay` ticks after each crash begins, scoring candidate
    /// assignments by availability under the fault plan's observed
    /// per-site uptime.
    fn reconfig_schedule(&self, cc: &ProtocolConfig) -> Vec<(SimTime, Config)> {
        match &self.reconfig {
            ReconfigPolicy::None => Vec::new(),
            ReconfigPolicy::Manual(schedule) => schedule.clone(),
            ReconfigPolicy::Reactive {
                detect_delay,
                priority,
            } => {
                let horizon = self.max_time.max(1);
                // Observed availability: each site's uptime fraction over
                // the run, from the statically known fault plan.
                let up = self.uptime_fractions(horizon);
                let ops = S::op_classes();
                let evs = S::event_classes();
                let mut triggers: Vec<SimTime> = self
                    .faults
                    .crashes()
                    .iter()
                    .filter(|c| c.proc < self.n_repos)
                    .map(|c| c.from + detect_delay)
                    .filter(|t| *t < horizon)
                    .collect();
                triggers.sort_unstable();
                triggers.dedup();
                let mut schedule = Vec::new();
                let mut members: Vec<ProcId> = (0..self.n_repos).collect();
                let mut epoch = 0u64;
                for t in triggers {
                    let alive: Vec<ProcId> = (0..self.n_repos)
                        .filter(|r| !self.faults.is_crashed(*r, t))
                        .collect();
                    if alive == members || alive.is_empty() {
                        continue;
                    }
                    let site_set = SiteSet::from_ids(alive.iter().map(|r| *r as u8));
                    let Ok(plan) =
                        planner::plan(&cc.protocol.rel, site_set, &up, &ops, &evs, priority)
                    else {
                        continue;
                    };
                    epoch += 1;
                    members = alive.clone();
                    schedule.push((t, Config::new(epoch, alive, plan.thresholds)));
                }
                schedule
            }
            ReconfigPolicy::SelfHealing {
                detect_delay,
                heartbeat,
                clean_heartbeats,
                priority,
            } => {
                let horizon = self.max_time.max(1);
                let up = self.uptime_fractions(horizon);
                let ops = S::op_classes();
                let evs = S::event_classes();
                let hb = (*heartbeat).max(1);
                let k = (*clean_heartbeats).max(1);
                // The event stream: shrink detections (like Reactive) plus
                // hysteresis-gated rejoins. A rejoin for a crash interval
                // fires `k` clean heartbeats after its recovery — and only
                // if every probe in that window observes the site up. A
                // flapping site fails its probes, so only its *final*
                // recovery produces an install: hysteresis by construction.
                #[derive(Clone, Copy)]
                enum Ev {
                    Shrink,
                    Rejoin(ProcId),
                }
                let mut events: Vec<(SimTime, u64, Ev)> = Vec::new();
                for c in self.faults.crashes() {
                    if c.proc >= self.n_repos {
                        continue;
                    }
                    let t = c.from + detect_delay;
                    if t < horizon {
                        events.push((t, 0, Ev::Shrink));
                    }
                    if c.until >= horizon {
                        continue;
                    }
                    let clean = (1..=u64::from(k))
                        .all(|i| !self.faults.is_crashed(c.proc, c.until + i * hb));
                    let t = c.until + u64::from(k) * hb;
                    if clean && t < horizon {
                        events.push((t, 1 + u64::from(c.proc), Ev::Rejoin(c.proc)));
                    }
                }
                events.sort_by_key(|(t, order, _)| (*t, *order));
                let mut schedule = Vec::new();
                let mut members: Vec<ProcId> = (0..self.n_repos).collect();
                let mut epoch = 0u64;
                for (t, _, ev) in events {
                    let next: Vec<ProcId> = match ev {
                        Ev::Shrink => members
                            .iter()
                            .copied()
                            .filter(|r| !self.faults.is_crashed(*r, t))
                            .collect(),
                        Ev::Rejoin(p) => {
                            if members.contains(&p) || self.faults.is_crashed(p, t) {
                                continue;
                            }
                            let mut m = members.clone();
                            m.push(p);
                            m.sort_unstable();
                            m
                        }
                    };
                    if next == members || next.is_empty() {
                        continue;
                    }
                    let site_set = SiteSet::from_ids(next.iter().map(|r| *r as u8));
                    let Ok(plan) =
                        planner::plan(&cc.protocol.rel, site_set, &up, &ops, &evs, priority)
                    else {
                        continue;
                    };
                    epoch += 1;
                    members = next.clone();
                    schedule.push((t, Config::new(epoch, next, plan.thresholds)));
                }
                schedule
            }
        }
    }

    /// Each site's uptime fraction over the run, from the statically known
    /// fault plan — the availability signal the replanner scores with.
    fn uptime_fractions(&self, horizon: SimTime) -> Vec<f64> {
        (0..self.n_repos)
            .map(|r| {
                let down: u64 = self
                    .faults
                    .crashes()
                    .iter()
                    .filter(|c| c.proc == r)
                    .map(|c| c.until.min(horizon).saturating_sub(c.from.min(horizon)))
                    .sum();
                1.0 - (down.min(horizon) as f64 / horizon as f64)
            })
            .collect()
    }

    fn default_thresholds(&self) -> ThresholdAssignment {
        self.thresholds.clone().unwrap_or_else(|| {
            let n = self.n_repos;
            let maj = n / 2 + 1;
            let mut ta = ThresholdAssignment::new(n);
            for op in S::op_classes() {
                ta.set_initial(op, maj);
            }
            for ev in S::event_classes() {
                ta.set_final(ev, maj);
            }
            ta
        })
    }

    /// Builds the cluster's driver set — repositories, clients, and the
    /// optional reconfiguration coordinator — in process-id order. Both
    /// backends (the DES adapter and the real-concurrency channels host)
    /// run exactly these nodes.
    pub(crate) fn build_nodes(
        &self,
        cc: &ProtocolConfig,
        thresholds: &ThresholdAssignment,
    ) -> (Vec<Node<S>>, bool) {
        let protocol = cc.protocol.clone();
        let repos: Vec<ProcId> = (0..self.n_repos).collect();
        let bootstrap = Config::new(0, repos.iter().copied(), thresholds.clone());
        let schedule = self.reconfig_schedule(cc);
        let mut nodes: Vec<Node<S>> = repos
            .iter()
            .map(|_| {
                let mut r = Repository::new(protocol.mode, protocol.rel.clone())
                    .with_config(ConfigState::Stable(bootstrap.clone()))
                    .with_durability(self.tuning.durability)
                    .with_peers(repos.clone());
                if let Some(iv) = self.tuning.anti_entropy {
                    r = r.with_anti_entropy(repos.clone(), iv);
                }
                if let Some(cc) = self.tuning.compaction {
                    r = r.with_compaction(cc);
                }
                r = r.with_batch(self.tuning.batch);
                r = r.with_gossip(self.tuning.scoped_statuses, self.tuning.status_gc);
                Node::Repo(r)
            })
            .collect();
        for txns in &self.workload {
            let cfg = ClientConfig {
                protocol: protocol.clone(),
                thresholds: thresholds.clone(),
                repos: repos.clone(),
                op_timeout: cc.op_timeout,
                max_phase_retries: self.tuning.max_phase_retries,
                think_time: self.tuning.think_time,
                commit_delay: cc.commit_delay,
                txn_retries: cc.txn_retries,
                propagate_views: self.tuning.propagate_views,
                fanout: self.tuning.fanout,
                delta_shipping: self.tuning.delta_shipping,
                compact_logs: self.tuning.compaction.is_some(),
                weaken_read_quorum: self.tuning.weaken_read_quorum,
                skip_final_ack: self.tuning.skip_final_ack,
                shards: self.tuning.shards.max(1),
                batch: self.tuning.batch.max(1),
                batch_window: self.tuning.batch_window,
                shard_thresholds: self.shard_thresholds.clone(),
                status_gc: self.tuning.status_gc.is_some(),
                resolve_retransmit: self.tuning.resolve_retransmit,
            };
            nodes.push(Node::Client(Client::new(cfg, txns.clone())));
        }
        let has_reconfigurer = !schedule.is_empty();
        if has_reconfigurer {
            nodes.push(Node::Reconfig(Reconfigurer::new(
                bootstrap,
                schedule,
                cc.op_timeout,
            )));
        }
        (nodes, has_reconfigurer)
    }

    fn run_inner(mut self, cc: ProtocolConfig, thresholds: ThresholdAssignment) -> RunReport<S> {
        let protocol = cc.protocol.clone();
        let (plain, has_reconfigurer) = self.build_nodes(&cc, &thresholds);
        let nodes: Vec<DesAdapter<Node<S>>> = plain.into_iter().map(DesAdapter::new).collect();
        let faults = std::mem::replace(&mut self.faults, FaultPlan::none());
        let trace_cfg = std::mem::replace(&mut self.trace_cfg, TraceConfig::disabled());
        let mut sim = Sim::with_trace(nodes, self.net, faults, self.seed, trace_cfg);
        let sim_stats = sim.run(self.max_time);
        let trace = sim.take_trace();
        let node_refs: Vec<&Node<S>> = sim.processes().iter().map(DesAdapter::driver).collect();
        self.harvest(protocol, &node_refs, has_reconfigurer, sim_stats, trace)
    }

    /// Assembles a [`RunReport`] from the finished drivers (in process-id
    /// order: repositories, then clients, then the optional
    /// reconfigurer), identically for every backend.
    pub(crate) fn harvest(
        &self,
        protocol: Protocol,
        nodes: &[&Node<S>],
        has_reconfigurer: bool,
        sim_stats: SimStats,
        trace: Option<TraceBuffer>,
    ) -> RunReport<S> {
        let n_clients = self.workload.len() as u32;
        let mut clients = Vec::new();
        let mut client_metrics = Vec::new();
        for id in self.n_repos..self.n_repos + n_clients {
            let Node::Client(c) = nodes[id as usize] else {
                unreachable!("client id range");
            };
            clients.push((id, c.records().to_vec(), c.stats()));
            client_metrics.push(c.metrics().clone());
        }
        let reconfigs = if has_reconfigurer {
            let Node::Reconfig(r) = nodes[(self.n_repos + n_clients) as usize] else {
                unreachable!("reconfigurer id range");
            };
            r.records().to_vec()
        } else {
            Vec::new()
        };
        // Objects touched by the workload.
        let mut objs: Vec<ObjId> = self
            .workload
            .iter()
            .flatten()
            .flat_map(|t| t.ops.iter().map(|(o, _)| *o))
            .collect();
        objs.sort();
        objs.dedup();

        let mut repo_logs = Vec::new();
        let mut repo_state = Vec::new();
        let mut repo_counters = Vec::new();
        let mut repo_batch_fills = Vec::new();
        for id in 0..self.n_repos {
            let Node::Repo(r) = nodes[id as usize] else {
                unreachable!("repo id range");
            };
            let state: Vec<_> = objs.iter().map(|o| (*o, r.log(*o))).collect();
            repo_logs.push(state.iter().map(|(o, l)| (*o, l.len())).collect());
            repo_state.push(state);
            repo_counters.push(r.counters());
            repo_batch_fills.extend_from_slice(r.batch_fills());
        }

        let stats: Vec<ClientStats> = clients.iter().map(|(_, _, s)| *s).collect();
        let mut telemetry = RunTelemetry::from_run(
            protocol.mode.name(),
            &stats,
            &client_metrics,
            sim_stats,
            repo_logs
                .iter()
                .flatten()
                .map(|(_, len): &(ObjId, usize)| *len as u64)
                .collect::<Vec<_>>(),
        );
        telemetry.full_log_fallbacks = repo_counters
            .iter()
            .map(|c: &RepoCounters| c.full_log_fallbacks)
            .sum();
        telemetry.recoveries = repo_counters.iter().map(|c| c.recoveries).sum();
        telemetry.statuses_shipped = repo_counters.iter().map(|c| c.statuses_shipped).sum();
        telemetry.statuses_gcd = repo_counters.iter().map(|c| c.statuses_gcd).sum();
        telemetry.status_table_peak = repo_counters
            .iter()
            .map(|c| c.status_table_peak)
            .max()
            .unwrap_or(0);
        telemetry.batch_size = u64::from(self.tuning.batch.max(1));
        telemetry.batches_flushed += repo_counters.iter().map(|c| c.batches_flushed).sum::<u64>();
        for f in repo_batch_fills {
            telemetry.batch_fill.record(f);
        }
        // Rejoins: members a committed install added relative to its
        // predecessor (bootstrap = the full cluster, so the count is 0
        // for pure-shrink schedules and for runs without reconfiguration).
        let mut prev: std::collections::BTreeSet<ProcId> = (0..self.n_repos).collect();
        for rec in &reconfigs {
            let cur: std::collections::BTreeSet<ProcId> = rec.members.iter().copied().collect();
            telemetry.rejoins += cur.difference(&prev).count() as u64;
            prev = cur;
        }

        RunReport {
            protocol,
            clients,
            objects: objs,
            repo_logs,
            repo_state,
            repo_counters,
            sim_stats,
            telemetry,
            trace,
            reconfigs,
        }
    }
}

/// Everything harvested from one cluster run. Fields are private; the
/// accessors below are the stable surface.
#[derive(Debug)]
pub struct RunReport<S: Classified> {
    protocol: Protocol,
    #[allow(clippy::type_complexity)]
    clients: Vec<(ProcId, Vec<Record<S::Inv, S::Res>>, ClientStats)>,
    objects: Vec<ObjId>,
    repo_logs: Vec<Vec<(ObjId, usize)>>,
    #[allow(clippy::type_complexity)]
    repo_state: Vec<Vec<(ObjId, ObjectLog<S::Inv, S::Res>)>>,
    repo_counters: Vec<RepoCounters>,
    sim_stats: SimStats,
    telemetry: RunTelemetry,
    trace: Option<TraceBuffer>,
    reconfigs: Vec<ReconfigRecord>,
}

impl<S: Classified + Enumerable> RunReport<S> {
    /// Aggregated outcome counters across all clients.
    pub fn stats(&self) -> ClientStats {
        let mut out = ClientStats::default();
        for (_, _, s) in &self.clients {
            out.committed += s.committed;
            out.aborted_conflict += s.aborted_conflict;
            out.aborted_unavailable += s.aborted_unavailable;
            out.ops_completed += s.ops_completed;
            out.stale_retries += s.stale_retries;
        }
        out
    }

    /// The view changes committed during the run, in order.
    pub fn reconfigs(&self) -> &[ReconfigRecord] {
        &self.reconfigs
    }

    /// The run's aggregated telemetry: counters, rates, and logical-time
    /// histograms.
    pub fn telemetry(&self) -> &RunTelemetry {
        &self.telemetry
    }

    /// The captured structured trace, when the run was built with an
    /// enabled [`TraceConfig`].
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// The protocol that ran.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// Objects the workload touched.
    pub fn objects(&self) -> &[ObjId] {
        &self.objects
    }

    /// Per repository: entry counts per object at the end of the run
    /// (`repo_logs()[repo] = [(obj, entries)]`) — convergence diagnostics.
    pub fn repo_logs(&self) -> &[Vec<(ObjId, usize)>] {
        &self.repo_logs
    }

    /// Per repository: the full final object logs
    /// (`repo_state()[repo] = [(obj, log)]`) — what the safety oracle
    /// audits for lost writes and checkpoint nesting.
    #[allow(clippy::type_complexity)]
    pub fn repo_state(&self) -> &[Vec<(ObjId, ObjectLog<S::Inv, S::Res>)>] {
        &self.repo_state
    }

    /// Per repository: health counters (full-log fallbacks, recoveries,
    /// version/epoch regressions).
    pub fn repo_counters(&self) -> &[RepoCounters] {
        &self.repo_counters
    }

    /// Simulator counters.
    pub fn sim_stats(&self) -> SimStats {
        self.sim_stats
    }

    /// Per client: process id, captured records, outcome counters.
    #[allow(clippy::type_complexity)]
    pub fn clients(&self) -> &[(ProcId, Vec<Record<S::Inv, S::Res>>, ClientStats)] {
        &self.clients
    }

    /// The captured behavioral history of one object.
    pub fn history(&self, obj: ObjId) -> BHistory<S::Inv, S::Res> {
        #[allow(clippy::type_complexity)]
        let per_client: Vec<(u32, &[Record<S::Inv, S::Res>])> = self
            .clients
            .iter()
            .map(|(id, recs, _)| (*id, recs.as_slice()))
            .collect();
        history::assemble(&per_client, obj)
    }

    /// Checks every object's captured history against the protocol's
    /// atomicity property; returns the first violating object, if any.
    pub fn check_atomicity(&self, bounds: ExploreBounds) -> Result<(), ObjId> {
        for obj in &self.objects {
            let h = self.history(*obj);
            if !history::satisfies::<S>(self.protocol.mode, &h, bounds) {
                return Err(*obj);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Mode;
    use quorumcc_core::DependencyRelation;
    use quorumcc_model::testtypes::{QInv, TestQueue};

    fn queue_protocol() -> Protocol {
        // The full relation is valid under majority quorums and cheap to
        // build (no corpus exploration needed in unit tests).
        Protocol::new(Mode::Hybrid, DependencyRelation::full::<TestQueue>())
    }

    fn workload() -> Vec<Vec<Transaction<QInv>>> {
        vec![
            vec![Transaction {
                ops: vec![(ObjId(0), QInv::Enq(1)), (ObjId(0), QInv::Deq)],
            }],
            vec![Transaction {
                ops: vec![(ObjId(0), QInv::Enq(2))],
            }],
        ]
    }

    #[test]
    fn missing_protocol_is_an_error_not_a_panic() {
        let err = RunBuilder::<TestQueue>::new(3)
            .workload(workload())
            .run()
            .unwrap_err();
        assert_eq!(err, ReplicationError::MissingProtocol);
    }

    #[test]
    fn invalid_network_is_an_error() {
        let err = RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(queue_protocol()))
            .network(NetworkConfig {
                min_delay: 9,
                max_delay: 2,
                ..NetworkConfig::default()
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, ReplicationError::InvalidNetwork { .. }));
    }

    #[test]
    fn empty_workload_is_an_error() {
        let err = RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(queue_protocol()))
            .run()
            .unwrap_err();
        assert_eq!(err, ReplicationError::EmptyWorkload);
        // A workload of clients with no transactions is just as empty.
        let err = RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(queue_protocol()))
            .workload(vec![vec![], vec![]])
            .run()
            .unwrap_err();
        assert_eq!(err, ReplicationError::EmptyWorkload);
    }

    #[test]
    fn invalid_thresholds_are_an_error() {
        let ta = ThresholdAssignment::new(3); // all-zero thresholds
        let err = RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(queue_protocol()))
            .thresholds(ta)
            .workload(workload())
            .run()
            .unwrap_err();
        assert!(matches!(err, ReplicationError::InvalidThresholds(_)));
        assert!(err.to_string().contains("violate the dependency relation"));
    }

    #[test]
    fn setter_order_does_not_matter() {
        // The historical order-dependence hazard: no_view_propagation /
        // fanout / anti_entropy in every order must resolve identically.
        let base = || {
            RunBuilder::<TestQueue>::new(3)
                .protocol(ProtocolConfig::new(queue_protocol()).op_timeout(80))
                .seed(7)
                .max_time(4_000)
                .workload(workload())
        };
        let a = base().tuning(
            TuningConfig::default()
                .no_view_propagation()
                .fanout(Fanout::Narrow)
                .anti_entropy(25),
        );
        let b = base().tuning(
            TuningConfig::default()
                .anti_entropy(25)
                .fanout(Fanout::Narrow)
                .no_view_propagation(),
        );
        let c = base()
            .max_time(4_000) // repeated setter: last write wins, same value
            .tuning(
                TuningConfig::default()
                    .fanout(Fanout::Narrow)
                    .no_view_propagation()
                    .anti_entropy(25),
            );
        let (ra, rb, rc) = (
            a.run_unchecked().unwrap(),
            b.run_unchecked().unwrap(),
            c.run_unchecked().unwrap(),
        );
        assert_eq!(ra.stats(), rb.stats());
        assert_eq!(ra.stats(), rc.stats());
        assert_eq!(ra.sim_stats(), rb.sim_stats());
        assert_eq!(ra.sim_stats(), rc.sim_stats());
        assert_eq!(ra.repo_logs(), rb.repo_logs());
    }

    #[test]
    fn traced_run_carries_a_trace_and_telemetry() {
        let report = RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(queue_protocol()))
            .trace(TraceConfig::unbounded())
            .seed(1)
            .workload(workload())
            .run()
            .unwrap();
        let trace = report.trace().expect("trace captured");
        assert!(!trace.is_empty());
        let kinds: Vec<&str> = trace.events().iter().map(|e| e.action.kind()).collect();
        for expected in [
            "txn-begin",
            "phase-start",
            "phase-end",
            "send",
            "deliver",
            "reserve",
            "commit",
        ] {
            assert!(kinds.contains(&expected), "missing {expected}");
        }
        let t = report.telemetry();
        assert_eq!(t.committed as usize, report.stats().committed);
        assert_eq!(t.ops_completed as usize, report.stats().ops_completed);
        assert!(t.initial_rt.count() >= t.final_rt.count());
        assert_eq!(t.op_latency.count() as u64, t.ops_completed);
        assert!(t.messages_per_op() > 0.0);
        // Untraced identical run: same outcome, no trace.
        let untraced = RunBuilder::<TestQueue>::new(3)
            .protocol(ProtocolConfig::new(queue_protocol()))
            .seed(1)
            .workload(workload())
            .run()
            .unwrap();
        assert!(untraced.trace().is_none());
        assert_eq!(untraced.stats(), report.stats());
        assert_eq!(untraced.sim_stats(), report.sim_stats());
    }
}
