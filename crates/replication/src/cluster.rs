//! Cluster assembly: repositories + clients over the simulator, one call
//! to run a workload and harvest histories and statistics.

use crate::client::{Client, ClientConfig, ClientStats, Record, Transaction};
use crate::history;
use crate::messages::Msg;
use crate::protocol::Protocol;
use crate::repository::Repository;
use crate::types::ObjId;
use quorumcc_model::spec::ExploreBounds;
use quorumcc_model::{BHistory, Classified, Enumerable};
use quorumcc_quorum::ThresholdAssignment;
use quorumcc_sim::{Ctx, FaultPlan, NetworkConfig, ProcId, Process, Sim, SimStats, SimTime};

/// A node in the cluster: repository or client.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Node<S: Classified> {
    /// A storage site.
    Repo(Repository<S>),
    /// A client with its embedded front-end.
    Client(Client<S>),
}

impl<S: Classified> Process<Msg<S::Inv, S::Res>> for Node<S> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>) {
        match self {
            Node::Client(c) => c.start(ctx),
            Node::Repo(r) => r.start(ctx),
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>,
        from: ProcId,
        msg: Msg<S::Inv, S::Res>,
    ) {
        match self {
            Node::Repo(r) => r.handle(ctx, from, msg),
            Node::Client(c) => c.handle(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg<S::Inv, S::Res>>, token: u64) {
        match self {
            Node::Client(c) => c.tick(ctx, token),
            Node::Repo(r) => r.tick(ctx, token),
        }
    }
}

/// Builder for a replicated cluster running one data type `S`.
///
/// # Example
///
/// ```
/// use quorumcc_replication::cluster::ClusterBuilder;
/// use quorumcc_replication::protocol::{Mode, Protocol};
/// use quorumcc_replication::client::Transaction;
/// use quorumcc_replication::types::ObjId;
/// use quorumcc_model::testtypes::{QInv, TestQueue};
/// use quorumcc_core::minimal_static_relation;
/// use quorumcc_model::spec::ExploreBounds;
///
/// let rel = minimal_static_relation::<TestQueue>(ExploreBounds {
///     depth: 4, ..ExploreBounds::default()
/// }).relation;
/// let report = ClusterBuilder::<TestQueue>::new(3)
///     .protocol(Protocol::new(Mode::Hybrid, rel))
///     .seed(1)
///     .workload(vec![vec![Transaction {
///         ops: vec![(ObjId(0), QInv::Enq(7)), (ObjId(0), QInv::Deq)],
///     }]])
///     .run();
/// assert_eq!(report.totals().committed, 1);
/// ```
#[derive(Debug)]
pub struct ClusterBuilder<S: Classified> {
    n_repos: u32,
    protocol: Option<Protocol>,
    thresholds: Option<ThresholdAssignment>,
    net: NetworkConfig,
    faults: FaultPlan,
    seed: u64,
    op_timeout: SimTime,
    max_phase_retries: u32,
    think_time: SimTime,
    commit_delay: SimTime,
    txn_retries: u32,
    propagate_views: bool,
    fanout: crate::client::Fanout,
    anti_entropy: Option<SimTime>,
    max_time: SimTime,
    workload: Vec<Vec<Transaction<S::Inv>>>,
}

impl<S: Classified + Enumerable> ClusterBuilder<S> {
    /// Starts a builder for a cluster of `n_repos` repositories.
    pub fn new(n_repos: u32) -> Self {
        ClusterBuilder {
            n_repos,
            protocol: None,
            thresholds: None,
            net: NetworkConfig::default(),
            faults: FaultPlan::none(),
            seed: 0,
            op_timeout: 120,
            max_phase_retries: 2,
            think_time: 5,
            commit_delay: 0,
            txn_retries: 0,
            propagate_views: true,
            fanout: crate::client::Fanout::Broadcast,
            anti_entropy: None,
            max_time: 1_000_000,
            workload: Vec::new(),
        }
    }

    /// Sets the concurrency-control protocol (required).
    pub fn protocol(mut self, p: Protocol) -> Self {
        self.protocol = Some(p);
        self
    }

    /// Sets quorum thresholds. Defaults to majorities everywhere
    /// (initial = final = ⌈(n+1)/2⌉), which satisfies every relation.
    pub fn thresholds(mut self, ta: ThresholdAssignment) -> Self {
        self.thresholds = Some(ta);
        self
    }

    /// Sets network parameters.
    pub fn network(mut self, net: NetworkConfig) -> Self {
        self.net = net;
        self
    }

    /// Installs a fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-phase timeout.
    pub fn op_timeout(mut self, t: SimTime) -> Self {
        self.op_timeout = t;
        self
    }

    /// Sets how many times an aborted transaction is re-run.
    pub fn txn_retries(mut self, r: u32) -> Self {
        self.txn_retries = r;
        self
    }

    /// Sets the delay between the last operation and the commit decision.
    pub fn commit_delay(mut self, d: SimTime) -> Self {
        self.commit_delay = d;
        self
    }

    /// Disables view propagation on final-quorum writes (ablation; see
    /// [`ClientConfig::propagate_views`](crate::client::ClientConfig)).
    pub fn no_view_propagation(mut self) -> Self {
        self.propagate_views = false;
        self
    }

    /// Selects the quorum fan-out policy (default: broadcast).
    pub fn fanout(mut self, f: crate::client::Fanout) -> Self {
        self.fanout = f;
        self
    }

    /// Enables periodic repository anti-entropy (log gossip) every
    /// `interval` ticks.
    ///
    /// The gossip timers keep the event queue non-empty, so the run lasts
    /// until `max_time` — set it explicitly (e.g. a few thousand ticks)
    /// rather than relying on quiescence.
    pub fn anti_entropy(mut self, interval: SimTime) -> Self {
        self.anti_entropy = Some(interval);
        self
    }

    /// Sets the simulation horizon.
    pub fn max_time(mut self, t: SimTime) -> Self {
        self.max_time = t;
        self
    }

    /// Sets the per-client transaction lists (one `Vec<Transaction>` per
    /// client; the number of clients is the outer length).
    pub fn workload(mut self, w: Vec<Vec<Transaction<S::Inv>>>) -> Self {
        self.workload = w;
        self
    }

    /// Builds and runs the cluster to quiescence (or `max_time`).
    ///
    /// # Panics
    ///
    /// Panics if no protocol was set, or if the supplied thresholds
    /// violate the protocol's dependency relation — an invalid quorum
    /// assignment would silently produce non-atomic histories, which is
    /// precisely what the paper's constraints exist to prevent. (The
    /// negative tests bypass this check deliberately via
    /// [`ClusterBuilder::run_unchecked`].)
    pub fn run(self) -> RunReport<S> {
        let protocol = self.protocol.clone().expect("protocol required");
        let thresholds = self.default_thresholds();
        thresholds
            .validate(&protocol.rel)
            .expect("quorum thresholds violate the dependency relation");
        self.run_inner(protocol, thresholds)
    }

    /// Like [`ClusterBuilder::run`] but skips quorum validation — for
    /// experiments that *demonstrate* what goes wrong with too-small
    /// quorums.
    pub fn run_unchecked(self) -> RunReport<S> {
        let protocol = self.protocol.clone().expect("protocol required");
        let thresholds = self.default_thresholds();
        self.run_inner(protocol, thresholds)
    }

    fn default_thresholds(&self) -> ThresholdAssignment {
        self.thresholds.clone().unwrap_or_else(|| {
            let n = self.n_repos;
            let maj = n / 2 + 1;
            let mut ta = ThresholdAssignment::new(n);
            for op in S::op_classes() {
                ta.set_initial(op, maj);
            }
            for ev in S::event_classes() {
                ta.set_final(ev, maj);
            }
            ta
        })
    }

    fn run_inner(self, protocol: Protocol, thresholds: ThresholdAssignment) -> RunReport<S> {
        let repos: Vec<ProcId> = (0..self.n_repos).collect();
        let mut nodes: Vec<Node<S>> = repos
            .iter()
            .map(|_| {
                let mut r = Repository::new(protocol.mode, protocol.rel.clone());
                if let Some(iv) = self.anti_entropy {
                    r = r.with_anti_entropy(repos.clone(), iv);
                }
                Node::Repo(r)
            })
            .collect();
        let n_clients = self.workload.len() as u32;
        for txns in &self.workload {
            let cfg = ClientConfig {
                protocol: protocol.clone(),
                thresholds: thresholds.clone(),
                repos: repos.clone(),
                op_timeout: self.op_timeout,
                max_phase_retries: self.max_phase_retries,
                think_time: self.think_time,
                commit_delay: self.commit_delay,
                txn_retries: self.txn_retries,
                propagate_views: self.propagate_views,
                fanout: self.fanout,
            };
            nodes.push(Node::Client(Client::new(cfg, txns.clone())));
        }
        let mut sim = Sim::new(nodes, self.net, self.faults, self.seed);
        let sim_stats = sim.run(self.max_time);

        let mut clients = Vec::new();
        for id in self.n_repos..self.n_repos + n_clients {
            let Node::Client(c) = sim.process(id) else {
                unreachable!("client id range");
            };
            clients.push((id, c.records().to_vec(), c.stats()));
        }
        let mut repo_logs = Vec::new();
        for id in 0..self.n_repos {
            let Node::Repo(r) = sim.process(id) else {
                unreachable!("repo id range");
            };
            let mut sizes = Vec::new();
            for txns in self.workload.iter().flatten() {
                for (obj, _) in &txns.ops {
                    if !sizes.iter().any(|(o, _)| o == obj) {
                        sizes.push((*obj, r.log(*obj).len()));
                    }
                }
            }
            sizes.sort();
            repo_logs.push(sizes);
        }
        // Objects touched by the workload.
        let mut objs: Vec<ObjId> = self
            .workload
            .iter()
            .flatten()
            .flat_map(|t| t.ops.iter().map(|(o, _)| *o))
            .collect();
        objs.sort();
        objs.dedup();

        RunReport {
            protocol,
            clients,
            objects: objs,
            repo_logs,
            sim_stats,
        }
    }
}

/// Everything harvested from one cluster run.
#[derive(Debug)]
pub struct RunReport<S: Classified> {
    /// The protocol that ran.
    pub protocol: Protocol,
    /// Per client: process id, captured records, outcome counters.
    #[allow(clippy::type_complexity)]
    pub clients: Vec<(ProcId, Vec<Record<S::Inv, S::Res>>, ClientStats)>,
    /// Objects the workload touched.
    pub objects: Vec<ObjId>,
    /// Per repository: entry counts per object at the end of the run
    /// (`repo_logs[repo] = [(obj, entries)]`) — convergence diagnostics.
    pub repo_logs: Vec<Vec<(ObjId, usize)>>,
    /// Simulator counters.
    pub sim_stats: SimStats,
}

impl<S: Classified + Enumerable> RunReport<S> {
    /// Aggregated outcome counters.
    pub fn totals(&self) -> ClientStats {
        let mut out = ClientStats::default();
        for (_, _, s) in &self.clients {
            out.committed += s.committed;
            out.aborted_conflict += s.aborted_conflict;
            out.aborted_unavailable += s.aborted_unavailable;
            out.ops_completed += s.ops_completed;
        }
        out
    }

    /// The captured behavioral history of one object.
    pub fn history(&self, obj: ObjId) -> BHistory<S::Inv, S::Res> {
        #[allow(clippy::type_complexity)]
        let per_client: Vec<(u32, &[Record<S::Inv, S::Res>])> = self
            .clients
            .iter()
            .map(|(id, recs, _)| (*id, recs.as_slice()))
            .collect();
        history::assemble(&per_client, obj)
    }

    /// Checks every object's captured history against the protocol's
    /// atomicity property; returns the first violating object, if any.
    pub fn check_atomicity(&self, bounds: ExploreBounds) -> Result<(), ObjId> {
        for obj in &self.objects {
            let h = self.history(*obj);
            if !history::satisfies::<S>(self.protocol.mode, &h, bounds) {
                return Err(*obj);
            }
        }
        Ok(())
    }
}
