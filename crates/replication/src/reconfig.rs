//! Online quorum reconfiguration: epoch-stamped configurations installed
//! through a **joint phase**, in the style of joint consensus.
//!
//! A [`Config`] names an epoch, a repository membership, and a per-class
//! [`ThresholdAssignment`] over that membership. The cluster's view of
//! "which quorums count" is a [`ConfigState`]: either one stable config,
//! or — while a view change is in flight — a *joint* state in which every
//! operation must assemble quorums satisfying **both** the old and the new
//! config. Configuration states are totally ordered by
//! [`ConfigState::version`] (`2·epoch` for the joint state of `epoch`,
//! `2·epoch + 1` once stable), and every data message carries the version
//! its sender believed current; repositories refuse older versions and
//! push the current state back, making stale front-ends abort with
//! [`ReplicationError::StaleEpoch`] semantics and retry under the adopted
//! configuration.
//!
//! Safety is the paper's quorum-intersection condition held *across* the
//! boundary: because joint quorums satisfy the old thresholds, they
//! intersect every old-config quorum wherever the dependency relation
//! demands it — and symmetrically for the new side — so no epoch boundary
//! ever separates two constrained operations onto disjoint quorums. The
//! property tests materialize the quorum sets of adjacent configuration
//! states and check `always_intersects` for every constrained pair.
//!
//! The coordinator is a [`Reconfigurer`] process: it installs the joint
//! state on the union membership, waits for majority acknowledgements
//! from *both* memberships, then installs the stable state and declares
//! the epoch committed once a majority of the new membership acknowledges.
//! Repositories that adopt a stable install push their logs to the new
//! membership (install-triggered anti-entropy), migrating state to any
//! freshly added member.

use crate::driver::Io;
use crate::error::ReplicationError;
use crate::messages::Msg;
use crate::types::{ObjId, ShardId, ShardMap};
use quorumcc_core::DependencyRelation;
use quorumcc_model::{Classified, EventClass};
use quorumcc_quorum::{QuorumSet, SiteSet, ThresholdAssignment};
use quorumcc_sim::trace::TraceAction;
use quorumcc_sim::{ProcId, SimTime};
use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;

/// One epoch's configuration: who the repositories are and what the
/// quorum thresholds over them are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// The epoch number (0 is the bootstrap configuration).
    pub epoch: u64,
    /// Member repository process ids, ascending.
    pub members: Vec<ProcId>,
    /// Threshold assignment over `members.len()` sites.
    pub thresholds: ThresholdAssignment,
}

impl Config {
    /// Builds a configuration, sorting and deduplicating the members.
    pub fn new(
        epoch: u64,
        members: impl IntoIterator<Item = ProcId>,
        ta: ThresholdAssignment,
    ) -> Self {
        let mut members: Vec<ProcId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        Config {
            epoch,
            members,
            thresholds: ta,
        }
    }

    /// Checks internal consistency and the dependency-relation constraints.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::InvalidReconfig`] when the membership is empty
    /// or does not match the threshold site count, and
    /// [`ReplicationError::InvalidThresholds`] when `ti + tf ≤ n` for some
    /// constrained pair.
    pub fn validate(&self, rel: &DependencyRelation) -> Result<(), ReplicationError> {
        if self.members.is_empty() {
            return Err(ReplicationError::InvalidReconfig(format!(
                "epoch {}: empty membership",
                self.epoch
            )));
        }
        if self.thresholds.sites() as usize != self.members.len() {
            return Err(ReplicationError::InvalidReconfig(format!(
                "epoch {}: thresholds cover {} sites but membership has {}",
                self.epoch,
                self.thresholds.sites(),
                self.members.len()
            )));
        }
        self.thresholds
            .validate(rel)
            .map_err(|e| ReplicationError::InvalidThresholds(e.to_string()))
    }

    /// How many members of this config are in `who`.
    fn count_in(&self, who: &BTreeSet<ProcId>) -> u32 {
        self.members.iter().filter(|m| who.contains(m)).count() as u32
    }

    /// Whether `who` contains an initial quorum for `op`.
    pub fn initial_ok(&self, op: &str, who: &BTreeSet<ProcId>) -> bool {
        self.count_in(who) >= self.thresholds.initial(op)
    }

    /// Whether `who` contains a final quorum for `ev`.
    pub fn final_ok(&self, ev: EventClass, who: &BTreeSet<ProcId>) -> bool {
        self.count_in(who) >= self.thresholds.final_of(ev)
    }

    /// A strict majority of the membership — the quorum rule for
    /// *installing* configurations (decoupled from the per-class data
    /// thresholds, so an epoch can commit even when a data quorum is
    /// unassemblable under the old assignment).
    pub fn majority(&self) -> u32 {
        self.members.len() as u32 / 2 + 1
    }

    /// The membership as a [`SiteSet`] (members must be < 64).
    pub fn member_set(&self) -> SiteSet {
        SiteSet::from_ids(self.members.iter().map(|m| *m as u8))
    }

    /// Materializes the initial quorum set of `op` over the universe
    /// `{0..universe}`: every subset containing ≥ `ti(op)` members.
    ///
    /// # Panics
    ///
    /// Panics if `universe > 16` (exhaustive enumeration).
    pub fn initial_quorums(&self, op: &str, universe: u8) -> QuorumSet {
        self.quorums_of(self.thresholds.initial(op), universe)
    }

    /// Materializes the final quorum set of `ev` over `{0..universe}`.
    ///
    /// # Panics
    ///
    /// Panics if `universe > 16`.
    pub fn final_quorums(&self, ev: EventClass, universe: u8) -> QuorumSet {
        self.quorums_of(self.thresholds.final_of(ev), universe)
    }

    fn quorums_of(&self, t: u32, universe: u8) -> QuorumSet {
        assert!(universe <= 16, "materialized quorums limited to 16 sites");
        let members = self.member_set();
        let mut qs = Vec::new();
        for mask in 0u64..(1 << universe) {
            let s = SiteSet::from_mask(mask);
            if s.intersection(members).len() as u32 >= t {
                qs.push(s);
            }
        }
        QuorumSet::from_quorums(qs)
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch {} members {}", self.epoch, self.member_set())
    }
}

/// The cluster's current notion of which quorums count: one stable
/// configuration, or the joint state of a view change in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigState {
    /// One configuration governs.
    Stable(Config),
    /// A view change is in flight: quorums must satisfy **both**.
    Joint {
        /// The outgoing configuration.
        old: Config,
        /// The incoming configuration.
        new: Config,
    },
}

impl ConfigState {
    /// The bootstrap state: epoch 0, stable.
    pub fn bootstrap(members: impl IntoIterator<Item = ProcId>, ta: ThresholdAssignment) -> Self {
        ConfigState::Stable(Config::new(0, members, ta))
    }

    /// The governing epoch (the *new* epoch while joint).
    pub fn epoch(&self) -> u64 {
        match self {
            ConfigState::Stable(c) => c.epoch,
            ConfigState::Joint { new, .. } => new.epoch,
        }
    }

    /// Total-order version: `2·epoch` for the joint state installing
    /// `epoch`, `2·epoch + 1` once stable. Strictly increases along
    /// `Stable(e) → Joint{…, e+1} → Stable(e+1)`.
    pub fn version(&self) -> u64 {
        match self {
            ConfigState::Stable(c) => 2 * c.epoch + 1,
            ConfigState::Joint { new, .. } => 2 * new.epoch,
        }
    }

    /// Checks an operation's carried version against this state.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::StaleEpoch`] when `seen` is older than the
    /// current version — the operation must abort and retry under the
    /// current configuration.
    pub fn admit(&self, seen: u64) -> Result<(), ReplicationError> {
        if seen < self.version() {
            Err(ReplicationError::StaleEpoch {
                seen,
                current: self.version(),
            })
        } else {
            Ok(())
        }
    }

    /// The repositories an operation contacts: the membership, or the
    /// union of both memberships while joint.
    pub fn members(&self) -> Vec<ProcId> {
        match self {
            ConfigState::Stable(c) => c.members.clone(),
            ConfigState::Joint { old, new } => {
                let mut m = old.members.clone();
                m.extend_from_slice(&new.members);
                m.sort_unstable();
                m.dedup();
                m
            }
        }
    }

    /// Whether `who` contains an initial quorum for `op` under every
    /// active configuration.
    pub fn initial_ok(&self, op: &str, who: &BTreeSet<ProcId>) -> bool {
        match self {
            ConfigState::Stable(c) => c.initial_ok(op, who),
            ConfigState::Joint { old, new } => old.initial_ok(op, who) && new.initial_ok(op, who),
        }
    }

    /// Whether `who` contains a final quorum for `ev` under every active
    /// configuration.
    pub fn final_ok(&self, ev: EventClass, who: &BTreeSet<ProcId>) -> bool {
        match self {
            ConfigState::Stable(c) => c.final_ok(ev, who),
            ConfigState::Joint { old, new } => old.final_ok(ev, who) && new.final_ok(ev, who),
        }
    }

    /// The largest initial threshold for `op` across active configs (used
    /// to size narrow fan-outs).
    pub fn max_initial(&self, op: &str) -> u32 {
        match self {
            ConfigState::Stable(c) => c.thresholds.initial(op),
            ConfigState::Joint { old, new } => {
                old.thresholds.initial(op).max(new.thresholds.initial(op))
            }
        }
    }

    /// The largest final threshold for `ev` across active configs (0
    /// means the write phase completes immediately).
    pub fn max_final(&self, ev: EventClass) -> u32 {
        match self {
            ConfigState::Stable(c) => c.thresholds.final_of(ev),
            ConfigState::Joint { old, new } => {
                old.thresholds.final_of(ev).max(new.thresholds.final_of(ev))
            }
        }
    }

    /// Materializes the initial quorum set of `op`: while joint, a set
    /// qualifies iff it contains an initial quorum of **both** configs.
    ///
    /// # Panics
    ///
    /// Panics if `universe > 16`.
    pub fn initial_quorums(&self, op: &str, universe: u8) -> QuorumSet {
        match self {
            ConfigState::Stable(c) => c.initial_quorums(op, universe),
            ConfigState::Joint { old, new } => intersect_requirements(
                &old.initial_quorums(op, universe),
                &new.initial_quorums(op, universe),
            ),
        }
    }

    /// Materializes the final quorum set of `ev` (joint = both).
    ///
    /// # Panics
    ///
    /// Panics if `universe > 16`.
    pub fn final_quorums(&self, ev: EventClass, universe: u8) -> QuorumSet {
        match self {
            ConfigState::Stable(c) => c.final_quorums(ev, universe),
            ConfigState::Joint { old, new } => intersect_requirements(
                &old.final_quorums(ev, universe),
                &new.final_quorums(ev, universe),
            ),
        }
    }
}

impl fmt::Display for ConfigState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigState::Stable(c) => write!(f, "stable[{c}]"),
            ConfigState::Joint { old, new } => write!(f, "joint[{old} -> {new}]"),
        }
    }
}

/// Per-shard quorum maps: one [`ConfigState`] per shard of the object
/// space, routed by the static [`ShardMap`].
///
/// Soundness: conflict detection is per-object and every object lives in
/// exactly one shard, so the quorum-intersection requirement
/// (`ti + tf > n`, and the §4 co-quorum constraints) only has to hold
/// *within* each shard — two operations on objects of different shards
/// never need intersecting quorums. Each shard may therefore carry its
/// own threshold assignment (e.g. read-heavy shards with small initial
/// quorums), while membership and epoch numbering stay global:
/// reconfiguration installs apply to every shard, so all shards agree on
/// the configuration version an operation must carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedConfig {
    map: ShardMap,
    states: Vec<ConfigState>,
}

impl ShardedConfig {
    /// Every shard governed by the same state (the unsharded degenerate
    /// case when `shards == 1`).
    pub fn uniform(shards: u16, state: ConfigState) -> Self {
        let shards = shards.max(1);
        ShardedConfig {
            map: ShardMap::new(shards),
            states: vec![state; shards as usize],
        }
    }

    /// One explicit state per shard (`states` must be non-empty).
    pub fn from_states(states: Vec<ConfigState>) -> Self {
        assert!(!states.is_empty(), "at least one shard state");
        ShardedConfig {
            map: ShardMap::new(states.len() as u16),
            states,
        }
    }

    /// The object→shard partition.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Number of shards.
    pub fn shards(&self) -> u16 {
        self.map.count()
    }

    /// The quorum map governing `obj`'s shard.
    pub fn state(&self, obj: ObjId) -> &ConfigState {
        &self.states[self.map.of(obj).0 as usize]
    }

    /// The quorum map of shard `s`.
    pub fn shard_state(&self, s: ShardId) -> &ConfigState {
        &self.states[s.0 as usize]
    }

    /// Adopts an installed state into every shard it is newer than,
    /// returning whether anything changed. Installs are global (the
    /// reconfiguration planner is shard-agnostic), so a successful adopt
    /// leaves every shard at the installed version — per-shard threshold
    /// assignments are a bootstrap-time property that a reconfiguration
    /// replaces.
    pub fn adopt(&mut self, state: &ConfigState) -> bool {
        let mut changed = false;
        for s in &mut self.states {
            if state.version() > s.version() {
                *s = state.clone();
                changed = true;
            }
        }
        changed
    }

    /// The highest version any shard holds (shards only disagree
    /// transiently, while an adopt is being applied).
    pub fn version(&self) -> u64 {
        self.states.iter().map(|s| s.version()).max().unwrap_or(1)
    }
}

/// Sets satisfying both requirement families: the antichain of pairwise
/// unions.
fn intersect_requirements(a: &QuorumSet, b: &QuorumSet) -> QuorumSet {
    let mut out = QuorumSet::new();
    for qa in a.quorums() {
        for qb in b.quorums() {
            out.insert(qa.union(*qb));
        }
    }
    out
}

/// When (and to what) the cluster reconfigures during a run.
#[derive(Debug, Clone, Default)]
pub enum ReconfigPolicy {
    /// Never reconfigure (the pre-reconfiguration behavior).
    #[default]
    None,
    /// Install the given configurations at the given times (ascending;
    /// epochs must increase from 1).
    Manual(Vec<(SimTime, Config)>),
    /// Derive the schedule from the fault plan: `detect_delay` ticks
    /// after a crash begins, replan over the surviving sites with the
    /// availability planner, prioritizing `priority` classes.
    Reactive {
        /// Ticks between a crash starting and the replan triggering
        /// (models failure detection).
        detect_delay: SimTime,
        /// Operation classes the planner favors, most important first.
        priority: Vec<&'static str>,
    },
    /// Reactive shrink *plus* grow-epoch rejoin: crashed sites are ejected
    /// like [`ReconfigPolicy::Reactive`], and a site that recovers is
    /// re-admitted through a further install once it has been observed up
    /// for `clean_heartbeats` consecutive heartbeat intervals (hysteresis:
    /// a flapping site never thrashes the epoch machinery). Install-
    /// triggered anti-entropy ships the logs to the rejoining member
    /// before its acks count toward data quorums, so catch-up precedes
    /// participation.
    SelfHealing {
        /// Ticks between a crash starting and the shrink triggering.
        detect_delay: SimTime,
        /// Heartbeat probe interval for the rejoin hysteresis.
        heartbeat: SimTime,
        /// Consecutive clean heartbeats a recovered site must show before
        /// the grow install fires.
        clean_heartbeats: u32,
        /// Operation classes the planner favors, most important first.
        priority: Vec<&'static str>,
    },
}

/// One committed view change, harvested into the run report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigRecord {
    /// The installed epoch.
    pub epoch: u64,
    /// When the joint phase began.
    pub started: SimTime,
    /// When the stable install was acknowledged by a majority of the new
    /// membership.
    pub committed: SimTime,
    /// The installed membership, ascending — lets the harvest distinguish
    /// shrink installs from grow-epoch rejoins.
    pub members: Vec<ProcId>,
}

/// Timer token that checks whether a scheduled install is due.
const TOKEN_DUE: u64 = 0;
/// Install request ids live far above any schedule-kick token.
const REQ_BASE: u64 = 1 << 32;

#[derive(Debug, Clone)]
struct InFlight {
    state: ConfigState,
    req: u64,
    acks: BTreeSet<ProcId>,
    started: SimTime,
}

/// The view-change coordinator: a dedicated process that walks a schedule
/// of configurations, installing each via the joint phase.
#[derive(Debug, Clone)]
pub struct Reconfigurer<S: Classified> {
    schedule: Vec<(SimTime, Config)>,
    current: Config,
    next_idx: usize,
    active: Option<InFlight>,
    req_counter: u64,
    op_timeout: SimTime,
    records: Vec<ReconfigRecord>,
    _type: PhantomData<fn() -> S>,
}

impl<S: Classified> Reconfigurer<S> {
    /// A coordinator starting from `initial` (epoch 0) and installing
    /// `schedule` in order, re-broadcasting installs every `op_timeout`.
    pub fn new(initial: Config, schedule: Vec<(SimTime, Config)>, op_timeout: SimTime) -> Self {
        Reconfigurer {
            schedule,
            current: initial,
            next_idx: 0,
            active: None,
            req_counter: REQ_BASE,
            op_timeout: op_timeout.max(1),
            records: Vec::new(),
            _type: PhantomData,
        }
    }

    /// The view changes committed so far.
    pub fn records(&self) -> &[ReconfigRecord] {
        &self.records
    }

    /// Arms one due-check timer per scheduled install.
    pub fn start<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        for (t, _) in &self.schedule {
            ctx.set_timer((*t).max(1), TOKEN_DUE);
        }
    }

    fn broadcast_install<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        let Some(inflight) = &self.active else { return };
        let (req, state) = (inflight.req, inflight.state.clone());
        for r in state.members() {
            if !inflight.acks.contains(&r) {
                ctx.send(
                    r,
                    Msg::Install {
                        req,
                        state: state.clone(),
                    },
                );
            }
        }
        ctx.set_timer(self.op_timeout, req);
    }

    fn begin_joint<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO) {
        let next = self.schedule[self.next_idx].1.clone();
        ctx.trace(TraceAction::ReconfigStart { epoch: next.epoch });
        self.req_counter += 1;
        self.active = Some(InFlight {
            state: ConfigState::Joint {
                old: self.current.clone(),
                new: next,
            },
            req: self.req_counter,
            acks: BTreeSet::new(),
            started: ctx.now(),
        });
        self.broadcast_install(ctx);
    }

    fn begin_stable<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        started: SimTime,
    ) {
        let next = self.schedule[self.next_idx].1.clone();
        self.req_counter += 1;
        self.active = Some(InFlight {
            state: ConfigState::Stable(next),
            req: self.req_counter,
            acks: BTreeSet::new(),
            started,
        });
        self.broadcast_install(ctx);
    }

    /// Whether the in-flight install has gathered enough acknowledgements:
    /// majorities of **both** memberships for the joint state, a majority
    /// of the new membership for the stable state (the old side already
    /// acknowledged the joint state; stragglers keep receiving the
    /// broadcast until they ack or the next install supersedes it).
    fn acked(inflight: &InFlight) -> bool {
        match &inflight.state {
            ConfigState::Joint { old, new } => {
                old.count_in(&inflight.acks) >= old.majority()
                    && new.count_in(&inflight.acks) >= new.majority()
            }
            ConfigState::Stable(c) => c.count_in(&inflight.acks) >= c.majority(),
        }
    }

    /// Handles one delivered message (only `InstallAck` matters).
    pub fn handle<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(
        &mut self,
        ctx: &mut IO,
        from: ProcId,
        msg: Msg<S::Inv, S::Res>,
    ) {
        let Msg::InstallAck { req, .. } = msg else {
            return;
        };
        let Some(inflight) = &mut self.active else {
            return;
        };
        if inflight.req != req {
            return; // stale ack
        }
        inflight.acks.insert(from);
        if !Self::acked(inflight) {
            return;
        }
        let started = inflight.started;
        match inflight.state.clone() {
            ConfigState::Joint { .. } => self.begin_stable(ctx, started),
            ConfigState::Stable(c) => {
                ctx.trace(TraceAction::ReconfigCommit { epoch: c.epoch });
                self.records.push(ReconfigRecord {
                    epoch: c.epoch,
                    started,
                    committed: ctx.now(),
                    members: c.members.clone(),
                });
                self.current = c;
                self.active = None;
                self.next_idx += 1;
                // A later install already due? Its TOKEN_DUE timer may
                // have fired while this one was in flight.
                if self
                    .schedule
                    .get(self.next_idx)
                    .is_some_and(|(t, _)| *t <= ctx.now())
                {
                    self.begin_joint(ctx);
                }
            }
        }
    }

    /// Handles a timer: due-checks and install re-broadcasts.
    pub fn tick<IO: Io<Msg<S::Inv, S::Res>> + ?Sized>(&mut self, ctx: &mut IO, token: u64) {
        if token == TOKEN_DUE {
            if self.active.is_none()
                && self
                    .schedule
                    .get(self.next_idx)
                    .is_some_and(|(t, _)| *t <= ctx.now())
            {
                self.begin_joint(ctx);
            }
            return;
        }
        if self.active.as_ref().is_some_and(|i| i.req == token) {
            self.broadcast_install(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quorumcc_core::certificates::prom_hybrid_relation;

    fn ec(op: &'static str, res: &'static str) -> EventClass {
        EventClass::new(op, res)
    }

    fn ta(
        n: u32,
        pairs: &[(&'static str, u32)],
        finals: &[(EventClass, u32)],
    ) -> ThresholdAssignment {
        let mut t = ThresholdAssignment::new(n);
        for (op, v) in pairs {
            t.set_initial(op, *v);
        }
        for (e, v) in finals {
            t.set_final(*e, *v);
        }
        t
    }

    fn majority_cfg(epoch: u64, members: &[ProcId]) -> Config {
        let n = members.len() as u32;
        let maj = n / 2 + 1;
        let t = ta(
            n,
            &[("Read", maj), ("Write", maj), ("Seal", maj)],
            &[
                (ec("Write", "Ok"), maj),
                (ec("Write", "Disabled"), maj),
                (ec("Read", "Ok"), maj),
                (ec("Read", "Disabled"), maj),
                (ec("Seal", "Ok"), maj),
            ],
        );
        Config::new(epoch, members.iter().copied(), t)
    }

    #[test]
    fn versions_strictly_increase_across_the_transition() {
        let old = majority_cfg(0, &[0, 1, 2]);
        let new = majority_cfg(1, &[0, 1, 3]);
        let s0 = ConfigState::Stable(old.clone());
        let joint = ConfigState::Joint {
            old,
            new: new.clone(),
        };
        let s1 = ConfigState::Stable(new);
        assert!(s0.version() < joint.version());
        assert!(joint.version() < s1.version());
        assert_eq!(s0.version(), 1);
        assert_eq!(joint.version(), 2);
        assert_eq!(s1.version(), 3);
    }

    #[test]
    fn admit_rejects_older_versions_only() {
        let s = ConfigState::Stable(majority_cfg(2, &[0, 1, 2]));
        assert_eq!(s.version(), 5);
        let err = s.admit(4).unwrap_err();
        assert_eq!(
            err,
            ReplicationError::StaleEpoch {
                seen: 4,
                current: 5
            }
        );
        assert!(err.to_string().contains("stale"));
        assert!(s.admit(5).is_ok());
        assert!(s.admit(6).is_ok());
    }

    #[test]
    fn joint_quorum_counting_requires_both_sides() {
        let old = majority_cfg(0, &[0, 1, 2]); // majority 2
        let new = majority_cfg(1, &[2, 3, 4]); // majority 2
        let joint = ConfigState::Joint { old, new };
        let who = |ids: &[ProcId]| ids.iter().copied().collect::<BTreeSet<_>>();
        // {0,1} is a quorum of old only.
        assert!(!joint.initial_ok("Read", &who(&[0, 1])));
        // {3,4} is a quorum of new only.
        assert!(!joint.initial_ok("Read", &who(&[3, 4])));
        // {1,2,3}: two in each membership (2 shared).
        assert!(joint.initial_ok("Read", &who(&[1, 2, 3])));
        assert!(joint.final_ok(ec("Write", "Ok"), &who(&[0, 2, 3])));
        assert_eq!(joint.members(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn joint_quorums_intersect_both_generations() {
        // The epoch-safety core: materialized joint quorum sets intersect
        // every constrained quorum set of both adjacent stable states.
        let rel = prom_hybrid_relation();
        let old = Config::new(0, 0..5, prom_opt(&rel, 5));
        let new = Config::new(1, 0..4, prom_opt(&rel, 4));
        let joint = ConfigState::Joint {
            old: old.clone(),
            new: new.clone(),
        };
        let universe = 5u8;
        for (inv, ev) in rel.iter() {
            let ji = joint.initial_quorums(inv, universe);
            let jf = joint.final_quorums(*ev, universe);
            for side in [&old, &new] {
                assert!(
                    ji.always_intersects(&side.final_quorums(*ev, universe)),
                    "joint initial({inv}) vs epoch {} final({ev})",
                    side.epoch
                );
                assert!(
                    side.initial_quorums(inv, universe).always_intersects(&jf),
                    "epoch {} initial({inv}) vs joint final({ev})",
                    side.epoch
                );
            }
            assert!(ji.always_intersects(&jf), "joint vs joint for {inv} ≥ {ev}");
        }
    }

    fn prom_opt(rel: &DependencyRelation, n: u32) -> ThresholdAssignment {
        let ops = ["Write", "Read", "Seal"];
        let evs = [
            ec("Write", "Ok"),
            ec("Write", "Disabled"),
            ec("Read", "Ok"),
            ec("Read", "Disabled"),
            ec("Seal", "Ok"),
        ];
        quorumcc_quorum::optimize(rel, n, &ops, &evs, &["Read", "Write", "Seal"]).unwrap()
    }

    #[test]
    fn validate_catches_mismatched_membership() {
        let c = Config::new(1, 0..3, ThresholdAssignment::new(4));
        let err = c.validate(&DependencyRelation::new()).unwrap_err();
        assert!(matches!(err, ReplicationError::InvalidReconfig(_)));
        assert!(err.to_string().contains("4 sites"));
        let empty = Config::new(1, std::iter::empty(), ThresholdAssignment::new(0));
        assert!(matches!(
            empty.validate(&DependencyRelation::new()),
            Err(ReplicationError::InvalidReconfig(_))
        ));
    }

    #[test]
    fn members_are_sorted_and_deduplicated() {
        let c = Config::new(1, [4, 0, 4, 2], ThresholdAssignment::new(3));
        assert_eq!(c.members, vec![0, 2, 4]);
        assert_eq!(c.majority(), 2);
        assert_eq!(c.to_string(), "epoch 1 members {s0,s2,s4}");
    }
}
